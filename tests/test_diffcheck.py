"""Tests for the differential-correctness harness.

Green paths for every phase, synthetic-violation detection for the
report machinery, and — the acceptance criterion — proof that
re-introducing any of the latent bugs fixed alongside the harness
(endpoint-only page touching, zero-delta grow events, silent geomean
intersection) makes the axiom phase fail.
"""

import json

import pytest

from repro.core.harness import RunMeasurement
from repro.diffcheck import cli as diffcheck_cli
from repro.diffcheck import fuzz as fuzz_mod
from repro.diffcheck.axioms import (
    AXIOM_GEOMEAN,
    AXIOM_GROW0,
    AXIOM_MTE_RETAG,
    AXIOM_SEGMENT,
    AXIOM_TOUCH,
    AXIOM_W64_BCE,
    AXIOM_W64_GUARD,
    check_axioms,
)
from repro.diffcheck.fuzz import build_program, check_case, check_fuzz, outcome_of
from repro.diffcheck.invariants import (
    CHECK_COMPUTE_CONST,
    CHECK_COMPUTE_ORDER,
    CHECK_CPU_MONOTONE,
    CHECK_MEDIAN_ORDER,
    CHECK_MEM_SAMPLED,
    CHECK_MTE_NO_VMA,
    CHECK_MTE_SCALING,
    CHECK_PAGES_EQUAL,
    INVARIANTS,
    check_invariants,
)
from repro.diffcheck.reference import (
    CHECK_OUTPUT,
    StrategyObservation,
    check_reference,
    check_workload,
    observe,
)
from repro.diffcheck.report import DiffReport, Violation, violation_from_json
from repro.oskernel.procstat import UtilisationSample
from repro.runtime.memory import LinearMemory, MemoryEvent
from repro.stats import summary as summary_stats

pytestmark = pytest.mark.diff


# ---------------------------------------------------------------------------
# Report machinery


class TestReport:
    def test_pass_fail_counting(self):
        report = DiffReport()
        assert report.check("x", True)
        assert not report.check("x", False, subject={"w": "gemm"}, detail="boom")
        report.skip("x", 2)
        assert not report.ok
        assert report.checks_run == 2
        counts = report.counts["x"]
        assert (counts.passed, counts.failed, counts.skipped) == (1, 1, 2)

    def test_json_roundtrip_merge(self):
        a = DiffReport()
        a.check("c1", False, subject={"k": 1}, detail="d", expected={2}, actual=(3,))
        a.skip("c2")
        b = DiffReport()
        b.merge_json(a.to_json())
        b.merge_json(a.to_json())
        assert len(b.violations) == 2
        assert b.counts["c1"].failed == 2
        assert b.counts["c2"].skipped == 2
        # expected/actual got coerced to JSON-stable plain data
        assert b.violations[0].expected == [2]
        assert b.violations[0].actual == [3]

    def test_violation_render_and_json(self):
        v = Violation("sweep.x", {"workload": "gemm"}, "ordering violated",
                      expected="a >= b", actual={"a": 1.0})
        line = v.render()
        assert "sweep.x" in line and "workload=gemm" in line
        assert violation_from_json(v.to_json()).check == "sweep.x"


# ---------------------------------------------------------------------------
# Axioms: green, then each satellite bug re-introduced


def _axiom_report() -> DiffReport:
    report = DiffReport()
    check_axioms(report)
    return report


def _failed_checks(report: DiffReport) -> set:
    return {v.check for v in report.violations}


class TestAxioms:
    def test_fixed_substrate_passes(self):
        report = _axiom_report()
        assert report.ok, [v.render() for v in report.violations]
        assert report.checks_run >= 15

    def test_endpoint_only_touch_bug_detected(self, monkeypatch):
        def buggy_touch(self, address, size):
            first = address >> 12
            last = (address + size - 1) >> 12
            self.touched_pages.add(first)
            if last != first:
                self.touched_pages.add(last)

        monkeypatch.setattr(LinearMemory, "_touch", buggy_touch)
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_TOUCH in _failed_checks(report)
        assert AXIOM_SEGMENT in _failed_checks(report)

    def test_grow_zero_event_bug_detected(self, monkeypatch):
        def buggy_grow(self, delta_pages):
            if delta_pages < 0:
                return -1
            new_pages = self.pages + delta_pages
            if new_pages > self.max_pages:
                return -1
            old_pages = self.pages
            self.events.append(MemoryEvent("grow", old_pages, new_pages))
            self.pages = new_pages
            self.data.extend(bytes(delta_pages * 65536))
            return old_pages

        monkeypatch.setattr(LinearMemory, "grow", buggy_grow)
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_GROW0 in _failed_checks(report)

    def test_silent_geomean_intersection_bug_detected(self, monkeypatch):
        from repro.stats.summary import geomean

        def buggy(measured, baseline, allow_missing=False):
            common = sorted(set(measured) & set(baseline))
            if not common:
                raise ValueError("no common benchmarks")
            return geomean(measured[n] / baseline[n] for n in common)

        monkeypatch.setattr(summary_stats, "geomean_of_ratios", buggy)
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_GEOMEAN in _failed_checks(report)

    def test_wrong_retag_granule_detected(self, monkeypatch):
        # Re-introduce the bug the granule axiom exists for: an mte
        # registration that retags whole 4 KiB pages instead of the
        # architectural 16-byte granules — grow then under-counts the
        # STG work by 256x and the strategy looks nearly free.
        from dataclasses import replace

        from repro.runtime.strategies import STRATEGIES, strategy_named

        monkeypatch.setitem(
            STRATEGIES, "mte", replace(strategy_named("mte"), tag_granule=4096)
        )
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_MTE_RETAG in _failed_checks(report)

    def test_retag_accounting_dropped_detected(self, monkeypatch):
        # A grow that forgets to record retag work entirely.
        def buggy_grow(self, delta_pages):
            if delta_pages < 0:
                return -1
            new_pages = self.pages + delta_pages
            if new_pages > self.max_pages:
                return -1
            old_pages = self.pages
            if delta_pages == 0:
                return old_pages
            self.events.append(MemoryEvent("grow", old_pages, new_pages))
            self.pages = new_pages
            self.data.extend(bytes(delta_pages * 65536))
            return old_pages

        monkeypatch.setattr(LinearMemory, "grow", buggy_grow)
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_MTE_RETAG in _failed_checks(report)

    def test_wasm64_guard_elision_detected(self, monkeypatch):
        # Re-enable the affine pooled guard for 64-bit memories — the
        # elision is only sound when the 8 GiB guard region absorbs
        # the unchecked intermediate accesses, so the BCE-legality
        # axiom must flag it.
        from repro.compiler import pipeline as pipeline_mod

        monkeypatch.setattr(
            pipeline_mod, "_affine_guard_allowed", lambda strategy: True
        )
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_W64_BCE in _failed_checks(report)

    def test_wasm64_guard_absorption_detected(self, monkeypatch):
        # A memory layer that forgets memory64 and lets the guard
        # region swallow far accesses under wasm64.
        real_init = LinearMemory.__init__

        def buggy_init(self, limits, strategy=None, track_pages=True,
                       memory64=False):
            real_init(self, limits, strategy, track_pages, memory64=False)
            self.memory64 = False  # guard-region semantics for everyone

        monkeypatch.setattr(LinearMemory, "__init__", buggy_init)
        report = _axiom_report()
        assert not report.ok
        assert AXIOM_W64_GUARD in _failed_checks(report)


# ---------------------------------------------------------------------------
# Reference phase


class TestReference:
    def test_observation_is_deterministic(self):
        first = observe("trisolv", "mini", "trap")
        second = observe("trisolv", "mini", "trap")
        assert first == second
        assert first.trap is None
        assert first.loads > 0 and first.stores > 0 and first.pages > 0

    def test_single_workload_all_strategies_agree(self):
        report = check_workload("gemm", "mini")
        assert report.ok, [v.render() for v in report.violations]
        assert report.counts[CHECK_OUTPUT].passed == 6  # vs 6 non-base strategies

    def test_fanout_matches_serial(self):
        serial, parallel = DiffReport(), DiffReport()
        names = ["trisolv", "durbin"]
        check_reference(names, "mini", ["none", "trap"], serial, jobs=1)
        check_reference(names, "mini", ["none", "trap"], parallel, jobs=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.ok

    def test_divergent_observation_is_reported(self, monkeypatch):
        real_observe = observe

        def perturbed(workload, size, strategy):
            obs = real_observe(workload, size, strategy)
            if strategy == "clamp":  # simulate a strategy changing results
                return StrategyObservation(
                    workload=obs.workload, size=obs.size, strategy=obs.strategy,
                    outputs=tuple((n, "0" * 64) for n, _ in obs.outputs),
                    loads=obs.loads + 1, stores=obs.stores,
                    pages=obs.pages, pages_digest=obs.pages_digest,
                )
            return obs

        import repro.diffcheck.reference as reference_mod

        monkeypatch.setattr(reference_mod, "observe", perturbed)
        report = check_workload("trisolv", "mini")
        failed = _failed_checks(report)
        assert "ref.output-equivalence" in failed
        assert "ref.loadstore-equivalence" in failed


# ---------------------------------------------------------------------------
# Sweep invariants over synthetic measurements


def _measurement(
    strategy="trap",
    threads=1,
    median=2.0,
    compute=1.0,
    busy=4.0,
    pages=100,
    mem=1000.0,
    wall=1.0,
    workload="gemm",
    mprotect_calls=None,
) -> RunMeasurement:
    kernel_stats = {"pages_populated": pages}
    if mprotect_calls is not None:
        kernel_stats["mprotect_calls"] = mprotect_calls
    return RunMeasurement(
        workload=workload, runtime="wavm", strategy=strategy, isa="x86_64",
        threads=threads, size="mini",
        iteration_seconds=[median, median],
        wall_seconds=wall,
        utilisation=UtilisationSample(
            elapsed=wall, busy_time=busy, utilisation_percent=50.0,
            user_percent=40.0, sys_percent=10.0, irq_percent=0.0,
            context_switches_per_sec=100.0,
        ),
        mem_avg_bytes=mem,
        kernel_stats=kernel_stats,
        mmap_read_wait=0.0, mmap_write_wait=0.0,
        compute_seconds=compute,
    )


class TestInvariants:
    def test_catalogue_is_documented(self):
        for check_id, description in INVARIANTS.items():
            assert check_id.startswith("sweep.") and description

    def test_consistent_grid_passes(self):
        rows = [
            _measurement(strategy=s, threads=t, compute=c, median=c * 2,
                         busy=4.0 * t)
            for (s, c) in [("none", 1.0), ("clamp", 1.5), ("trap", 1.2),
                           ("mprotect", 1.1), ("uffd", 1.05)]
            for t in (1, 4)
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert report.ok, [v.render() for v in report.violations]

    def test_inline_cost_order_violation(self):
        rows = [
            _measurement(strategy="trap", compute=1.0),
            _measurement(strategy="clamp", compute=0.5),  # cheaper than trap!
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_COMPUTE_ORDER in _failed_checks(report)

    def test_median_order_violation(self):
        rows = [
            _measurement(strategy="none", compute=1.0, median=3.0),
            _measurement(strategy="trap", compute=1.2, median=2.0),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_MEDIAN_ORDER in _failed_checks(report)

    def test_pages_divergence_detected(self):
        rows = [
            _measurement(strategy="trap", pages=100),
            _measurement(strategy="uffd", compute=0.9, median=1.9, pages=101),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_PAGES_EQUAL in _failed_checks(report)

    def test_sampled_memory_spread_detected(self):
        rows = [
            _measurement(strategy="trap", mem=1000.0),
            _measurement(strategy="uffd", compute=0.9, median=1.9, mem=5000.0),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_MEM_SAMPLED in _failed_checks(report)

    def test_undersampled_memory_is_skipped_not_failed(self):
        rows = [
            _measurement(strategy="trap", mem=1000.0, wall=0.004),
            _measurement(strategy="uffd", compute=0.9, median=1.9,
                         mem=5000.0, wall=0.004),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_MEM_SAMPLED not in _failed_checks(report)
        assert report.counts[CHECK_MEM_SAMPLED].skipped == 1

    def test_cpu_monotonicity_violation(self):
        rows = [
            _measurement(threads=1, busy=4.0),
            _measurement(threads=4, busy=3.0),  # busy time dropped
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_CPU_MONOTONE in _failed_checks(report)

    def test_thread_dependent_compute_detected(self):
        rows = [
            _measurement(threads=1, compute=1.0),
            _measurement(threads=4, compute=1.3),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_COMPUTE_CONST in _failed_checks(report)

    def test_mte_scaling_collapse_detected(self):
        # mte degrading under threads like mprotect (mmap_lock convoy
        # shape) violates the flatness invariant; the reverse grid,
        # with mprotect collapsing and mte flat, is the expected shape.
        bad = [
            _measurement(strategy="mprotect", threads=1, median=2.0),
            _measurement(strategy="mprotect", threads=16, median=2.2,
                         busy=64.0),
            _measurement(strategy="mte", threads=1, median=1.9,
                         compute=1.05, mprotect_calls=1),
            _measurement(strategy="mte", threads=16, median=4.0,
                         compute=1.05, busy=64.0, mprotect_calls=16),
        ]
        report = DiffReport()
        check_invariants(bad, report)
        assert CHECK_MTE_SCALING in _failed_checks(report)

        good = [
            _measurement(strategy="mprotect", threads=1, median=2.0),
            _measurement(strategy="mprotect", threads=16, median=4.0,
                         busy=64.0),
            _measurement(strategy="mte", threads=1, median=1.9,
                         compute=1.05, mprotect_calls=1),
            _measurement(strategy="mte", threads=16, median=1.9,
                         compute=1.05, busy=64.0, mprotect_calls=16),
        ]
        report = DiffReport()
        check_invariants(good, report)
        assert CHECK_MTE_SCALING not in _failed_checks(report)

    def test_mte_vma_traffic_detected(self):
        # An mte row whose kernel stats show mprotect calls beyond the
        # one-per-worker arena setup leaked VMA traffic.
        rows = [
            _measurement(strategy="mte", threads=4, compute=1.05,
                         median=2.1, mprotect_calls=12, busy=16.0),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_MTE_NO_VMA in _failed_checks(report)

        rows = [
            _measurement(strategy="mte", threads=4, compute=1.05,
                         median=2.1, mprotect_calls=4, busy=16.0),
        ]
        report = DiffReport()
        check_invariants(rows, report)
        assert CHECK_MTE_NO_VMA not in _failed_checks(report)
        assert report.counts[CHECK_MTE_NO_VMA].passed == 1


# ---------------------------------------------------------------------------
# Fuzz phase


class TestFuzz:
    def test_seeded_generation_is_deterministic(self):
        import random

        from repro.wasm import encode_module

        first = encode_module(build_program(random.Random(7)))
        second = encode_module(build_program(random.Random(7)))
        assert first == second

    def test_cases_pass_on_fixed_substrate(self):
        report = DiffReport()
        for seed in range(25):
            check_case(seed, report)
        assert report.ok, [v.render() for v in report.violations]
        assert report.checks_run >= 100

    def test_fanout_matches_serial(self):
        serial, parallel = DiffReport(), DiffReport()
        check_fuzz(12, 100, serial, jobs=1)
        check_fuzz(12, 100, parallel, jobs=3)
        assert serial.to_json() == parallel.to_json()

    def test_nondeterministic_encoder_detected(self, monkeypatch):
        real_encode = fuzz_mod.encode_module
        calls = {"n": 0}

        def flaky_encode(module):
            calls["n"] += 1
            raw = real_encode(module)
            if calls["n"] % 2 == 0:  # second encode differs
                raw += b"\x00\x00"
            return raw

        monkeypatch.setattr(fuzz_mod, "encode_module", flaky_encode)
        report = DiffReport()
        check_case(0, report)
        assert "fuzz.encode-idempotence" in _failed_checks(report)

    def test_outcomes_cover_values_and_traps(self):
        import random

        kinds = set()
        for seed in range(60):
            rng = random.Random(seed)
            module = build_program(rng)
            arg = rng.randrange(0, 2**31)
            kinds.add(outcome_of(module, arg, "trap")[0])
        assert kinds == {"value", "trap"}  # trap-prone statements do fire


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_axioms_only_exits_zero(self, capsys):
        assert diffcheck_cli.main(["--phases", "axioms"]) == 0
        out = capsys.readouterr().out
        assert "0 divergence(s)" in out

    def test_reintroduced_bug_fails_cli(self, monkeypatch, capsys):
        def buggy_grow(self, delta_pages):
            if delta_pages < 0:
                return -1
            new_pages = self.pages + delta_pages
            if new_pages > self.max_pages:
                return -1
            old_pages = self.pages
            self.events.append(MemoryEvent("grow", old_pages, new_pages))
            self.pages = new_pages
            self.data.extend(bytes(delta_pages * 65536))
            return old_pages

        monkeypatch.setattr(LinearMemory, "grow", buggy_grow)
        assert diffcheck_cli.main(["--phases", "axioms"]) == 1
        assert "axiom.memory.grow-zero-noop" in capsys.readouterr().out

    def test_json_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = diffcheck_cli.main(
            ["--phases", "axioms,fuzz", "--fuzz-cases", "5",
             "--json", str(out)]
        )
        assert code == 0
        raw = json.loads(out.read_text())
        assert raw["ok"] is True
        assert raw["checks_run"] > 0
        assert raw["violations"] == []

    def test_reference_subset_via_cli(self, capsys):
        code = diffcheck_cli.main(
            ["--phases", "reference", "--workload", "trisolv"]
        )
        assert code == 0
        assert "1 workloads" in capsys.readouterr().out

    def test_unknown_phase_rejected(self, capsys):
        assert diffcheck_cli.main(["--phases", "nope"]) == 2

    def test_sweep_phase_smoke(self, tmp_path, capsys):
        import os

        from repro.core.engine import reset_default_engine

        saved = os.environ.get("REPRO_CACHE_DIR")
        try:
            code = diffcheck_cli.main(
                ["--phases", "sweep", "--workload", "trisolv",
                 "--threads", "1,4", "--cache-dir", str(tmp_path)]
            )
        finally:
            # --cache-dir redirects the process-wide engine and the
            # profile-cache env var; put both back for later tests.
            reset_default_engine()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
        assert code == 0
        assert "measurements under invariants" in capsys.readouterr().out
