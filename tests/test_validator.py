"""Tests for the module validator."""

import pytest

from repro.wasm import ModuleBuilder, ValidationError, validate_module
from repro.wasm.instructions import Instr
from repro.wasm.module import Export, Function, Global, Module
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, ValType

I32, I64, F64 = ValType.I32, ValType.I64, ValType.F64


def module_with_body(body, params=(), results=(), locals_=(), memory=False):
    module = Module()
    module.types.append(FuncType(tuple(params), tuple(results)))
    module.funcs.append(Function(type_index=0, locals=list(locals_), body=body))
    if memory:
        module.memories.append(MemoryType(Limits(1)))
    return module


def assert_invalid(body, match, **kwargs):
    with pytest.raises(ValidationError, match=match):
        validate_module(module_with_body(body, **kwargs))


class TestStackTyping:
    def test_valid_arith(self):
        validate_module(
            module_with_body(
                [Instr("i32.const", (1,)), Instr("i32.const", (2,)), Instr("i32.add")],
                results=[I32],
            )
        )

    def test_underflow_detected(self):
        assert_invalid([Instr("i32.add")], "underflow", results=[I32])

    def test_type_mismatch_detected(self):
        assert_invalid(
            [Instr("i32.const", (1,)), Instr("f64.const", (1.0,)), Instr("i32.add")],
            "expected i32",
            results=[I32],
        )

    def test_leftover_values_detected(self):
        assert_invalid(
            [Instr("i32.const", (1,)), Instr("i32.const", (2,))],
            "remain on stack",
            results=[I32],
        )

    def test_missing_result_detected(self):
        assert_invalid([], "underflow", results=[I32])

    def test_select_requires_matching_types(self):
        assert_invalid(
            [
                Instr("i32.const", (1,)),
                Instr("f64.const", (1.0,)),
                Instr("i32.const", (0,)),
                Instr("select"),
            ],
            "expected",
            results=[I32],
        )

    def test_unreachable_makes_stack_polymorphic(self):
        validate_module(
            module_with_body([Instr("unreachable"), Instr("i32.add")], results=[I32])
        )


class TestLocalsGlobals:
    def test_local_index_checked(self):
        assert_invalid([Instr("local.get", (0,))], "local index", results=[I32])

    def test_local_type_respected(self):
        assert_invalid(
            [Instr("local.get", (0,)), Instr("i64.const", (0,)), Instr("i64.add")],
            "expected i64",
            locals_=[I32],
            results=[I64],
        )

    def test_global_set_immutable_rejected(self):
        module = module_with_body(
            [Instr("i32.const", (1,)), Instr("global.set", (0,))]
        )
        module.globals.append(
            Global(GlobalType(I32, mutable=False), [Instr("i32.const", (0,))])
        )
        with pytest.raises(ValidationError, match="immutable"):
            validate_module(module)

    def test_global_get_type(self):
        module = module_with_body([Instr("global.get", (0,))])
        module.types[0] = FuncType((), (I64,))
        module.globals.append(
            Global(GlobalType(I64, mutable=True), [Instr("i64.const", (5,))])
        )
        validate_module(module)


class TestControlFlow:
    def test_block_result_type(self):
        validate_module(
            module_with_body(
                [Instr("block", (I32,)), Instr("i32.const", (3,)), Instr("end")],
                results=[I32],
            )
        )

    def test_block_missing_result(self):
        assert_invalid(
            [Instr("block", (I32,)), Instr("end")], "underflow", results=[I32]
        )

    def test_branch_depth_checked(self):
        assert_invalid(
            [Instr("block", (None,)), Instr("br", (5,)), Instr("end")],
            "branch depth",
        )

    def test_br_to_function_level_is_return(self):
        validate_module(
            module_with_body([Instr("i32.const", (1,)), Instr("br", (0,))], results=[I32])
        )

    def test_if_requires_condition(self):
        assert_invalid([Instr("if", (None,)), Instr("end")], "underflow")

    def test_if_with_result_needs_both_arms(self):
        validate_module(
            module_with_body(
                [
                    Instr("i32.const", (1,)),
                    Instr("if", (I32,)),
                    Instr("i32.const", (1,)),
                    Instr("else"),
                    Instr("i32.const", (2,)),
                    Instr("end"),
                ],
                results=[I32],
            )
        )

    def test_else_without_if_rejected(self):
        assert_invalid(
            [Instr("block", (None,)), Instr("else"), Instr("end")],
            "else without",
        )

    def test_unclosed_block_rejected(self):
        assert_invalid([Instr("block", (None,))], "unclosed")

    def test_br_table_label_types_must_match(self):
        assert_invalid(
            [
                Instr("block", (I32,)),
                Instr("block", (None,)),
                Instr("i32.const", (0,)),
                Instr("br_table", ((0,), 1)),
                Instr("end"),
                Instr("unreachable"),
                Instr("end"),
            ],
            "mismatched types",
            results=[I32],
        )

    def test_loop_branch_goes_to_start(self):
        # Branch to a loop needs no values even if the loop has a result.
        validate_module(
            module_with_body(
                [
                    Instr("loop", (I32,)),
                    Instr("i32.const", (0,)),
                    Instr("br_if", (0,)),
                    Instr("i32.const", (7,)),
                    Instr("end"),
                ],
                results=[I32],
            )
        )


class TestCalls:
    def test_call_types_checked(self):
        module = Module()
        module.types.append(FuncType((I32,), (I32,)))
        module.types.append(FuncType((), ()))
        module.funcs.append(
            Function(type_index=1, body=[Instr("call", (1,))])
        )
        module.funcs.append(Function(type_index=0, body=[Instr("local.get", (0,))]))
        with pytest.raises(ValidationError, match="underflow"):
            validate_module(module)

    def test_call_index_checked(self):
        assert_invalid([Instr("call", (42,))], "out of range")

    def test_call_indirect_requires_table(self):
        assert_invalid(
            [Instr("i32.const", (0,)), Instr("call_indirect", (0, 0))],
            "no table",
        )


class TestMemoryRules:
    def test_load_requires_memory(self):
        assert_invalid(
            [Instr("i32.const", (0,)), Instr("i32.load", (2, 0))],
            "no memory",
            results=[I32],
        )

    def test_alignment_bound(self):
        assert_invalid(
            [Instr("i32.const", (0,)), Instr("i32.load", (3, 0))],
            "alignment",
            results=[I32],
            memory=True,
        )

    def test_memory_grow_requires_memory(self):
        assert_invalid(
            [Instr("i32.const", (1,)), Instr("memory.grow")],
            "no memory",
            results=[I32],
        )


class TestModuleStructure:
    def test_two_memories_rejected(self):
        module = Module()
        module.memories = [MemoryType(Limits(1)), MemoryType(Limits(1))]
        with pytest.raises(ValidationError, match="one memory"):
            validate_module(module)

    def test_duplicate_export_names_rejected(self):
        module = module_with_body([])
        module.exports = [Export("f", "func", 0), Export("f", "func", 0)]
        with pytest.raises(ValidationError, match="duplicate"):
            validate_module(module)

    def test_export_index_checked(self):
        module = module_with_body([])
        module.exports = [Export("g", "func", 3)]
        with pytest.raises(ValidationError, match="out of range"):
            validate_module(module)

    def test_start_signature_checked(self):
        module = module_with_body([Instr("i32.const", (1,))], results=[I32])
        module.start = 0
        with pytest.raises(ValidationError, match="start"):
            validate_module(module)

    def test_global_init_type_checked(self):
        module = Module()
        module.globals.append(
            Global(GlobalType(I32, True), [Instr("i64.const", (1,))])
        )
        with pytest.raises(ValidationError, match="type"):
            validate_module(module)

    def test_error_message_names_function(self):
        module = module_with_body([Instr("i32.add")], results=[I32])
        module.funcs[0].name = "broken"
        with pytest.raises(ValidationError, match="broken"):
            validate_module(module)
