"""Encoder/decoder round-trip tests, including property-based module generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm import (
    DecodeError,
    ModuleBuilder,
    decode_module,
    encode_module,
    validate_module,
)
from repro.wasm.instructions import Instr
from repro.wasm.module import DataSegment, Global, Module
from repro.wasm.types import GlobalType, Limits, MemoryType, ValType


def roundtrip(module):
    return decode_module(encode_module(module))


class TestHeader:
    def test_empty_module(self):
        module = roundtrip(Module())
        assert module.funcs == []
        assert module.types == []

    def test_bad_magic_rejected(self):
        with pytest.raises(DecodeError, match="magic"):
            decode_module(b"\x7fELF" + b"\x00" * 10)

    def test_bad_version_rejected(self):
        with pytest.raises(DecodeError, match="version"):
            decode_module(b"\x00asm\x02\x00\x00\x00")

    def test_truncated_section_rejected(self):
        good = encode_module(_simple_module())
        with pytest.raises(DecodeError):
            decode_module(good[:-3])


def _simple_module():
    mb = ModuleBuilder("simple")
    mb.add_memory(2, 10)
    fb = mb.func("f", params=[ValType.I32], results=[ValType.I32], export=True)
    fb.emit("local.get", 0)
    fb.emit("i32.const", -7)
    fb.emit("i32.add")
    return mb.build()


class TestStructuredRoundtrip:
    def test_function_bodies_preserved(self):
        module = _simple_module()
        again = roundtrip(module)
        assert again.funcs[0].body == module.funcs[0].body
        assert again.types == module.types

    def test_memory_limits_preserved(self):
        module = roundtrip(_simple_module())
        assert module.memories[0].limits == Limits(2, 10)

    def test_exports_preserved(self):
        module = roundtrip(_simple_module())
        names = {e.name: e.kind for e in module.exports}
        assert names == {"memory": "memory", "f": "func"}

    def test_globals_roundtrip(self):
        mb = ModuleBuilder()
        mb.add_global(ValType.I64, 123456789, mutable=True)
        mb.add_global(ValType.F64, 2.5, mutable=False)
        module = roundtrip(mb.build())
        assert module.globals[0].type == GlobalType(ValType.I64, True)
        assert module.globals[0].init == [Instr("i64.const", (123456789,))]
        assert module.globals[1].type == GlobalType(ValType.F64, False)

    def test_table_and_elements_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.func("t", results=[ValType.I32])
        fb.emit("i32.const", 9)
        mb.add_table(4)
        mb.add_element(0, 1, [0, 0])
        module = roundtrip(mb.build())
        assert module.tables[0].limits.minimum == 4
        assert module.elements[0].func_indices == [0, 0]

    def test_data_segments_roundtrip(self):
        mb = ModuleBuilder()
        mb.add_memory(1)
        mb.add_data(0, 16, b"hello world")
        module = roundtrip(mb.build())
        assert module.data[0].data == b"hello world"
        assert module.data[0].offset == [Instr("i32.const", (16,))]

    def test_locals_run_length_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.func("f")
        for _ in range(3):
            fb.add_local(ValType.I32)
        for _ in range(2):
            fb.add_local(ValType.F64)
        fb.add_local(ValType.I32)
        module = roundtrip(mb.build())
        assert module.funcs[0].locals == [
            ValType.I32, ValType.I32, ValType.I32,
            ValType.F64, ValType.F64, ValType.I32,
        ]

    def test_control_flow_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.func("f", params=[ValType.I32], results=[ValType.I32])
        with fb.block(ValType.I32) as b:
            fb.emit("local.get", 0)
            with fb.if_(ValType.I32):
                fb.emit("i32.const", 1)
                fb.else_()
                fb.emit("i32.const", 2)
        module = roundtrip(mb.build())
        assert module.funcs[0].body == mb.build().funcs[0].body

    def test_br_table_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.func("f", params=[ValType.I32])
        with fb.block() as b0:
            with fb.block() as b1:
                fb.emit("local.get", 0)
                fb.emit("br_table", (0, 1, 0), 1)
        module = roundtrip(mb.build())
        assert Instr("br_table", ((0, 1, 0), 1)) in module.funcs[0].body

    def test_start_function_roundtrip(self):
        mb = ModuleBuilder()
        fb = mb.func("init")
        fb.emit("nop")
        mb.set_start(fb)
        assert roundtrip(mb.build()).start == 0

    def test_float_consts_roundtrip_exactly(self):
        mb = ModuleBuilder()
        fb = mb.func("f", results=[ValType.F64])
        fb.emit("f64.const", 0.1)
        module = roundtrip(mb.build())
        assert module.funcs[0].body[0].args[0] == 0.1

    def test_reencoding_is_stable(self):
        first = encode_module(_simple_module())
        assert encode_module(decode_module(first)) == first


# ----------------------------------------------------------------------
# Property-based: random straight-line modules round-trip and validate
# ----------------------------------------------------------------------
_INT_BIN = ["i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor"]


@st.composite
def straightline_func(draw):
    """A random well-typed i32 expression as postfix instructions."""
    instrs = [Instr("i32.const", (draw(st.integers(-(2**31), 2**31 - 1)),))]
    depth = 1
    for _ in range(draw(st.integers(0, 30))):
        if depth >= 2 and draw(st.booleans()):
            instrs.append(Instr(draw(st.sampled_from(_INT_BIN))))
            depth -= 1
        else:
            instrs.append(Instr("i32.const", (draw(st.integers(-(2**31), 2**31 - 1)),)))
            depth += 1
    while depth > 1:
        instrs.append(Instr(draw(st.sampled_from(_INT_BIN))))
        depth -= 1
    return instrs


@given(st.lists(straightline_func(), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_random_modules_roundtrip_and_validate(bodies):
    mb = ModuleBuilder("random")
    for index, body in enumerate(bodies):
        fb = mb.func(f"f{index}", results=[ValType.I32], export=True)
        fb.body.extend(body)
    module = mb.build()
    validate_module(module)
    again = roundtrip(module)
    validate_module(again)
    for func_a, func_b in zip(module.funcs, again.funcs):
        assert func_a.body == func_b.body
    assert encode_module(again) == encode_module(module)
