"""Tests for /proc/stat-style accounting and the MemAvailable model."""

import pytest

from repro.cpu import Machine, MachineSpec, SimThread
from repro.oskernel import Kernel, MemInfoModel, ProcStat
from repro.oskernel.layout import PAGE_SIZE, THP_GRANULARITY
from repro.sim import Engine


def make_system(cores=2):
    engine = Engine()
    spec = MachineSpec(
        name="test",
        isa="x86_64",
        cores=cores,
        frequency_hz=1e9,
        memory_bytes=1 << 30,
        switch_cost=0.0,
    )
    machine = Machine(engine, spec)
    return engine, machine


class TestProcStat:
    def test_fully_busy_single_core(self):
        engine, machine = make_system(cores=2)
        stat = ProcStat(machine)
        start = stat.snapshot()
        thread = SimThread(engine, "t", machine.core(0))

        def body():
            yield from thread.startup()
            yield from thread.run(2.0, "user")
            thread.finish()

        engine.run_process(body())
        sample = stat.window(start, stat.snapshot())
        # One of two cores busy for the whole window = 100% (paper scale).
        assert sample.utilisation_percent == pytest.approx(100.0)
        assert sample.user_percent == pytest.approx(100.0)

    def test_two_busy_cores_read_200_percent(self):
        engine, machine = make_system(cores=2)
        stat = ProcStat(machine)
        start = stat.snapshot()

        def body(core_index):
            thread = SimThread(engine, f"t{core_index}", machine.core(core_index))
            yield from thread.startup()
            yield from thread.run(3.0, "user")
            thread.finish()

        engine.process(body(0))
        engine.process(body(1))
        engine.run()
        sample = stat.window(start, stat.snapshot())
        assert sample.utilisation_percent == pytest.approx(200.0)

    def test_half_idle(self):
        engine, machine = make_system(cores=1)
        stat = ProcStat(machine)
        start = stat.snapshot()
        thread = SimThread(engine, "t", machine.core(0))

        def body():
            yield from thread.startup()
            yield from thread.run(1.0, "user")
            yield from thread.sleep(1.0)
            thread.finish()

        engine.run_process(body())
        sample = stat.window(start, stat.snapshot())
        assert sample.utilisation_percent == pytest.approx(50.0)

    def test_sys_and_irq_buckets_counted(self):
        engine, machine = make_system(cores=1)
        stat = ProcStat(machine)
        start = stat.snapshot()
        machine.core(0).post_irq(0.5)
        thread = SimThread(engine, "t", machine.core(0))

        def body():
            yield from thread.startup()
            yield from thread.run(0.5, "sys")
            thread.finish()

        engine.run_process(body())
        engine.run(until=1.0)
        sample = stat.window(start, stat.snapshot())
        assert sample.sys_percent > 0
        assert sample.irq_percent > 0

    def test_zero_window_rejected(self):
        engine, machine = make_system()
        stat = ProcStat(machine)
        snap = stat.snapshot()
        with pytest.raises(ValueError):
            stat.window(snap, snap)

    def test_context_switch_rate(self):
        engine, machine = make_system(cores=1)
        stat = ProcStat(machine)
        start = stat.snapshot()

        def body(name):
            thread = SimThread(engine, name, machine.core(0))
            yield from thread.startup()
            yield from thread.run(1.0, "user")
            thread.finish()

        engine.process(body("a"))
        engine.process(body("b"))
        engine.run()
        sample = stat.window(start, stat.snapshot())
        assert sample.context_switches_per_sec > 0


class TestMemInfo:
    def test_unknown_isa_rejected(self):
        with pytest.raises(ValueError):
            MemInfoModel("sparc")

    def test_empty_usage_is_zero(self):
        engine, machine = make_system()
        kernel = Kernel(engine, machine)
        proc = kernel.create_process("p")
        model = MemInfoModel("x86_64")
        assert model.usage_bytes([proc]) == 0

    def _populate(self, isa, pages):
        engine, machine = make_system()
        kernel = Kernel(engine, machine)
        proc = kernel.create_process("p")
        area = proc.aspace.map_area(1 << 30, "mem")
        area.populate(0, pages * PAGE_SIZE)
        return MemInfoModel(isa).usage_bytes([proc])

    def test_x86_rounds_to_coarser_granularity_than_arm(self):
        """Fig. 6's x86-vs-Arm gap: same population, larger x86 charge."""
        pages = 512  # 2 MiB populated
        assert self._populate("x86_64", pages) > self._populate("armv8", pages)

    def test_arm_rounding_is_2mib(self):
        usage = self._populate("armv8", 1)  # one 4 KiB page
        assert usage == THP_GRANULARITY["armv8"]

    def test_charge_never_exceeds_area_length(self):
        engine, machine = make_system()
        kernel = Kernel(engine, machine)
        proc = kernel.create_process("p")
        area = proc.aspace.map_area(1 << 20, "small")  # 1 MiB area
        area.populate(0, area.length)
        usage = MemInfoModel("x86_64").usage_bytes([proc])
        assert usage == area.length

    def test_time_weighted_average(self):
        engine, machine = make_system()
        kernel = Kernel(engine, machine)
        proc = kernel.create_process("p")
        area = proc.aspace.map_area(1 << 30, "mem")
        model = MemInfoModel("armv8")
        model.sample([proc], weight=1.0)  # zero usage
        area.populate(0, 2 << 20)
        model.sample([proc], weight=1.0)  # 2 MiB charged
        assert model.average_bytes == pytest.approx((2 << 20) / 2)

    def test_average_with_no_samples_is_zero(self):
        assert MemInfoModel("x86_64").average_bytes == 0.0
