"""Tests for the opcode table's internal consistency."""

import pytest

from repro.wasm import opcodes


def test_no_duplicate_names_or_codes():
    names = [info.name for info in opcodes.BY_NAME.values()]
    codes = [info.code for info in opcodes.BY_CODE.values()]
    assert len(names) == len(set(names))
    assert len(codes) == len(set(codes))


def test_mvp_coverage():
    """Spot-check well-known opcode byte assignments against the spec."""
    expected = {
        "unreachable": 0x00,
        "call": 0x10,
        "call_indirect": 0x11,
        "drop": 0x1A,
        "local.get": 0x20,
        "i32.load": 0x28,
        "i64.store32": 0x3E,
        "memory.grow": 0x40,
        "i32.const": 0x41,
        "f64.const": 0x44,
        "i32.add": 0x6A,
        "i64.rotr": 0x8A,
        "f32.sqrt": 0x91,
        "f64.copysign": 0xA6,
        "i32.wrap_i64": 0xA7,
        "f64.reinterpret_i64": 0xBF,
        "i64.extend32_s": 0xC4,
    }
    for name, code in expected.items():
        assert opcodes.info(name).code == code


def test_memory_ops_have_access_bytes():
    for info in opcodes.BY_NAME.values():
        if info.category in ("load", "store"):
            assert info.access_bytes in (1, 2, 4, 8), info.name
            assert info.imm == "memarg"
        else:
            assert info.access_bytes == 0, info.name


def test_load_signatures():
    info = opcodes.info("i64.load16_s")
    assert info.params == ("i32",)
    assert info.results == ("i64",)
    assert info.sign == "s"


def test_store_signatures_have_no_results():
    for info in opcodes.BY_NAME.values():
        if info.category == "store":
            assert info.results == ()
            assert info.params[0] == "i32"


def test_comparisons_return_i32():
    for info in opcodes.BY_NAME.values():
        if info.category == "compare":
            assert info.results == ("i32",), info.name


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="v128"):
        opcodes.info("v128.load")


def test_category_partition():
    valid = {
        "control", "parametric", "variable", "load", "store",
        "memory", "const", "compare", "arith", "convert",
    }
    for info in opcodes.BY_NAME.values():
        assert info.category in valid, info.name


def test_table_size_is_full_mvp():
    # 13 control + 2 parametric + 5 variable + 27 memory + 4 const +
    # 123 numeric + 5 sign-extension = 179 (memory includes the
    # bulk-memory ops memory.copy/memory.fill, 0xFC-prefixed)
    assert len(opcodes.BY_NAME) == 179
