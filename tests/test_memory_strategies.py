"""Tests for linear memory and the functional side of bounds strategies."""

import pytest

from repro.oskernel.layout import WASM_PAGE_SIZE
from repro.runtime import LinearMemory, STRATEGIES, strategy_named
from repro.runtime.strategies import PAPER_STRATEGY_ORDER, STRATEGY_ORDER
from repro.wasm.errors import Trap
from repro.wasm.types import Limits


class TestLinearMemory:
    def test_initial_size(self):
        mem = LinearMemory(Limits(2, 10))
        assert mem.pages == 2
        assert mem.size_bytes == 2 * WASM_PAGE_SIZE
        assert len(mem.data) == mem.size_bytes

    def test_grow_returns_old_size(self):
        mem = LinearMemory(Limits(1, 10))
        assert mem.grow(3) == 1
        assert mem.pages == 4
        assert mem.grow(0) == 4

    def test_grow_beyond_max_fails(self):
        mem = LinearMemory(Limits(1, 2))
        assert mem.grow(5) == -1
        assert mem.pages == 1

    def test_grow_negative_fails(self):
        mem = LinearMemory(Limits(1, 4))
        assert mem.grow(-1) == -1

    def test_grow_records_event(self):
        mem = LinearMemory(Limits(1, 10))
        mem.grow(2)
        assert [(e.pages_before, e.pages_after) for e in mem.events] == [(1, 3)]

    def test_grow_zero_records_no_event(self):
        # memory.grow 0 is a pure size query: nothing for the kernel
        # replay to do, so it must not appear as VMA work.
        mem = LinearMemory(Limits(2, 10))
        assert mem.grow(0) == 2
        assert mem.events == []
        assert mem.pages == 2
        assert len(mem.data) == 2 * WASM_PAGE_SIZE
        mem.grow(1)
        assert mem.grow(0) == 3
        assert [(e.pages_before, e.pages_after) for e in mem.events] == [(2, 3)]

    def test_grown_memory_zeroed_and_usable(self):
        mem = LinearMemory(Limits(1, 10))
        mem.grow(1)
        address = WASM_PAGE_SIZE + 8
        assert mem.load_u64(address) == 0
        mem.store_u64(address, 0xDEADBEEF)
        assert mem.load_u64(address) == 0xDEADBEEF

    def test_typed_roundtrips(self):
        mem = LinearMemory(Limits(1))
        mem.store_f64(0, -2.75)
        assert mem.load_f64(0) == -2.75
        mem.store_f32(8, 1.5)
        assert mem.load_f32(8) == 1.5
        mem.store_u32(16, 0xFFFFFFFF)
        assert mem.load_u32(16) == 0xFFFFFFFF

    def test_page_touch_tracking(self):
        mem = LinearMemory(Limits(1))
        mem.store_u32(0, 1)
        mem.store_u32(5000, 1)
        assert mem.touched_pages == {0, 1}

    def test_straddling_access_touches_both_pages(self):
        mem = LinearMemory(Limits(1))
        mem.store_u64(4092, 1)  # crosses the 4096 boundary
        assert mem.touched_pages == {0, 1}

    def test_multi_page_access_touches_interior_pages(self):
        # A ranged write spanning >2 pages (data-segment init, WASI
        # writes) first-touches every page in the range, not just the
        # endpoints.
        mem = LinearMemory(Limits(1))
        mem.store_bytes(100, bytes(3 * 4096 + 500))
        assert mem.touched_pages == {0, 1, 2, 3}

    def test_multi_page_load_touches_interior_pages(self):
        mem = LinearMemory(Limits(1))
        mem.load_bytes(4096, 4 * 4096)
        assert mem.touched_pages == {1, 2, 3, 4}

    def test_touch_range_covers_raw_writes(self):
        mem = LinearMemory(Limits(1))
        mem.touch_range(8000, 2 * 4096)
        assert mem.touched_pages == {1, 2, 3}
        mem.touch_range(0, 0)  # empty range: no pages
        assert mem.touched_pages == {1, 2, 3}

    def test_touch_range_respects_tracking_flag(self):
        mem = LinearMemory(Limits(1), track_pages=False)
        mem.touch_range(0, 3 * 4096)
        assert mem.touched_pages == set()

    def test_reset_tracking(self):
        mem = LinearMemory(Limits(1, 4))
        mem.store_u32(0, 1)
        mem.grow(1)
        mem.reset_tracking()
        assert mem.touched_pages == set()
        assert mem.events == []
        assert mem.store_count == 0

    def test_tracking_can_be_disabled(self):
        mem = LinearMemory(Limits(1), track_pages=False)
        mem.store_u32(0, 1)
        assert mem.touched_pages == set()


class TestStrategyCatalogue:
    def test_all_seven_strategies_present(self):
        # The paper's five plus the hardware-assisted extensions;
        # further extensions (e.g. the projected CHERI strategy) may
        # register additional entries at runtime.
        assert {"none", "clamp", "trap", "mprotect", "uffd"} <= set(STRATEGIES)
        assert STRATEGY_ORDER == [
            "none", "clamp", "trap", "mprotect", "uffd", "mte", "wasm64"
        ]
        assert PAPER_STRATEGY_ORDER == [
            "none", "clamp", "trap", "mprotect", "uffd"
        ]
        assert set(PAPER_STRATEGY_ORDER) < set(STRATEGY_ORDER)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown bounds strategy"):
            strategy_named("mpk")

    def test_unknown_strategy_message_lists_presentation_order(self):
        # The message shows STRATEGY_ORDER (what figures/docs print),
        # not an alphabetical sort of the registry.
        with pytest.raises(ValueError, match=r"'none', 'clamp', 'trap'"):
            strategy_named("mpk")

    def test_inline_code_shapes(self):
        assert strategy_named("none").inline_check == ""
        assert strategy_named("clamp").inline_check == "clamp"
        assert strategy_named("trap").inline_check == "trap"
        assert strategy_named("mprotect").inline_check == ""
        assert strategy_named("uffd").inline_check == ""
        assert strategy_named("mte").inline_check == "mte"
        assert strategy_named("wasm64").inline_check == "trap"

    def test_kernel_mechanisms_match_paper(self):
        mprotect = strategy_named("mprotect")
        assert mprotect.grow_mechanism == "mprotect"
        assert mprotect.reset_mechanism == "mprotect"
        uffd = strategy_named("uffd")
        assert uffd.grow_mechanism == "atomic"
        assert uffd.fault_mechanism == "uffd"

    def test_mte_retags_with_no_vma_traffic(self):
        mte = strategy_named("mte")
        assert mte.grow_mechanism == "retag"
        assert mte.tag_granule == 16
        assert mte.requires_memory_tagging
        assert not mte.uses_guard_region  # tag checks, not a guard map
        assert mte.reset_mechanism == "madvise"

    def test_wasm64_is_explicit_check_without_guard(self):
        wasm64 = strategy_named("wasm64")
        assert wasm64.addr_bits == 64
        assert not wasm64.uses_guard_region
        assert not wasm64.requires_memory_tagging
        assert wasm64.grow_mechanism == "noop"

    def test_guard_region_classification(self):
        # Exactly the strategies whose OOB soundness needs the 8 GiB
        # guard mapping — the set a 64-bit memory must reject.
        users = {n for n in STRATEGY_ORDER
                 if strategy_named(n).uses_guard_region}
        assert users == {"none", "mprotect", "uffd"}


class TestOutOfBoundsSemantics:
    def oob_address(self, mem):
        return mem.size_bytes + 128

    @pytest.mark.parametrize("name", ["trap", "mprotect", "uffd", "mte", "wasm64"])
    def test_trapping_strategies_trap(self, name):
        mem = LinearMemory(Limits(1), strategy_named(name))
        with pytest.raises(Trap, match="out-of-bounds"):
            mem.load_u32(self.oob_address(mem))
        with pytest.raises(Trap, match="out-of-bounds"):
            mem.store_u32(self.oob_address(mem), 1)

    def test_none_reads_zero_and_absorbs_writes(self):
        mem = LinearMemory(Limits(1), strategy_named("none"))
        assert mem.load_u32(self.oob_address(mem)) == 0
        mem.store_u32(self.oob_address(mem), 7)  # silently absorbed
        assert mem.load_u32(self.oob_address(mem)) == 0

    def test_clamp_redirects_to_end_of_memory(self):
        mem = LinearMemory(Limits(1), strategy_named("clamp"))
        mem.store_u32(mem.size_bytes - 4, 0xAAAAAAAA)
        value = mem.load_u32(self.oob_address(mem))
        assert value == 0xAAAAAAAA  # clamped to the last valid slot

    def test_clamp_write_lands_in_bounds(self):
        mem = LinearMemory(Limits(1), strategy_named("clamp"))
        mem.store_u32(self.oob_address(mem), 0x12345678)
        assert mem.load_u32(mem.size_bytes - 4) == 0x12345678

    def test_boundary_access_exact_fit_ok(self):
        mem = LinearMemory(Limits(1), strategy_named("trap"))
        mem.store_u64(mem.size_bytes - 8, 1)  # last 8 bytes: fine
        with pytest.raises(Trap):
            mem.store_u64(mem.size_bytes - 7, 1)  # one byte over


class TestMteRetagAccounting:
    def test_grow_records_granule_count(self):
        mem = LinearMemory(Limits(1, 16), strategy_named("mte"))
        mem.grow(3)
        (event,) = mem.events
        assert event.granules == 3 * WASM_PAGE_SIZE // 16

    def test_multiple_grows_accumulate_per_event(self):
        mem = LinearMemory(Limits(1, 16), strategy_named("mte"))
        mem.grow(1)
        mem.grow(4)
        assert [e.granules for e in mem.events] == [
            WASM_PAGE_SIZE // 16, 4 * WASM_PAGE_SIZE // 16
        ]

    @pytest.mark.parametrize("name", PAPER_STRATEGY_ORDER + ["wasm64"])
    def test_untagged_strategies_record_zero_granules(self, name):
        mem = LinearMemory(Limits(1, 16), strategy_named(name))
        mem.grow(2)
        assert [e.granules for e in mem.events] == [0]

    def test_grow_zero_retags_nothing(self):
        mem = LinearMemory(Limits(2, 16), strategy_named("mte"))
        assert mem.grow(0) == 2
        assert mem.events == []


class TestWasm64Memory:
    def test_strategy_implies_memory64(self):
        mem = LinearMemory(Limits(1), strategy_named("wasm64"))
        assert mem.memory64

    @pytest.mark.parametrize("name", ["none", "mprotect", "uffd"])
    def test_guard_region_strategies_rejected(self, name):
        with pytest.raises(ValueError, match="guard"):
            LinearMemory(Limits(1), strategy_named(name), memory64=True)

    @pytest.mark.parametrize("name", ["clamp", "trap", "mte"])
    def test_explicit_check_strategies_accepted(self, name):
        mem = LinearMemory(Limits(1), strategy_named(name), memory64=True)
        assert mem.memory64

    def test_access_beyond_4gib_traps(self):
        # Under a 32-bit memory this address would land inside the
        # 8 GiB guard region; a 64-bit memory has no guard to absorb
        # it, so the explicit check must fire.
        mem = LinearMemory(Limits(1), strategy_named("wasm64"))
        with pytest.raises(Trap, match="out-of-bounds"):
            mem.load_u64((1 << 32) + 64)

    def test_clamp64_redirects_far_access(self):
        # clamp on a 64-bit memory clamps exactly like on 32-bit —
        # even for addresses past where the guard region would end.
        mem = LinearMemory(Limits(1), strategy_named("clamp"), memory64=True)
        mem.store_u32(mem.size_bytes - 4, 0xBEEF)
        assert mem.load_u32((1 << 35) + 8) == 0xBEEF

    def test_in_bounds_behaviour_unchanged(self):
        mem = LinearMemory(Limits(1), strategy_named("wasm64"))
        mem.store_u64(128, 0x1122334455667788)
        assert mem.load_u64(128) == 0x1122334455667788
        assert mem.grow(1) == 1
        assert mem.load_u64(WASM_PAGE_SIZE + 8) == 0
