"""Tests for the simulated kernel: syscalls, faults, locks, shootdowns."""

import pytest

from repro.cpu import Machine, MachineSpec, SimThread
from repro.oskernel import Kernel, SegFault
from repro.oskernel.layout import PAGE_SIZE, KernelCosts
from repro.oskernel.vma import Prot
from repro.sim import Engine


def make_system(cores=4):
    engine = Engine()
    spec = MachineSpec(
        name="test",
        isa="x86_64",
        cores=cores,
        frequency_hz=1e9,
        memory_bytes=1 << 30,
        quantum=1e-3,
        switch_cost=0.0,
    )
    machine = Machine(engine, spec)
    kernel = Kernel(engine, machine)
    return engine, machine, kernel


def run_in_thread(engine, machine, body_factory, core_index=0, tgid=0):
    """Run a single kernel-calling body in a thread and return its value."""
    thread = SimThread(engine, "t", machine.core(core_index), tgid=tgid)

    def body():
        yield from thread.startup()
        result = yield from body_factory(thread)
        thread.finish()
        return result

    return engine.run_process(body())


class TestSyscalls:
    def test_mmap_reserve_creates_prot_none_area(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 64 * PAGE_SIZE, "mem")
            return area

        area = run_in_thread(engine, machine, body, tgid=proc.tgid)
        assert area.prot_map.prot_at(0) == Prot.NONE
        assert proc.stats["mmap_calls"] == 1
        assert engine.now > 0  # syscall consumed time

    def test_mprotect_grow_pattern(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 1024 * PAGE_SIZE, "mem")
            yield from kernel.sys_mprotect(thread, proc, area, 0, 64 * PAGE_SIZE, Prot.RW)
            return area

        area = run_in_thread(engine, machine, body, tgid=proc.tgid)
        assert area.prot_map.prot_at(0) == Prot.RW
        assert area.prot_map.prot_at(64 * PAGE_SIZE) == Prot.NONE
        assert proc.stats["mprotect_calls"] == 1

    def test_mprotect_revoke_zaps_and_shoots_down(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 64 * PAGE_SIZE, "mem")
            yield from kernel.sys_mprotect(thread, proc, area, 0, 16 * PAGE_SIZE, Prot.RW)
            yield from kernel.fault_anon_batch(thread, proc, area, 0, 16 * PAGE_SIZE)
            yield from kernel.sys_mprotect(thread, proc, area, 0, 16 * PAGE_SIZE, Prot.NONE)
            return area

        area = run_in_thread(engine, machine, body, tgid=proc.tgid)
        assert area.populated_bytes == 0
        assert proc.stats["pages_zapped"] == 16
        assert proc.stats["shootdowns"] == 1

    def test_madvise_dontneed_zaps_under_read_lock(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 64 * PAGE_SIZE, "mem")
            yield from kernel.sys_mprotect(thread, proc, area, 0, 64 * PAGE_SIZE, Prot.RW)
            yield from kernel.fault_anon_batch(thread, proc, area, 0, 32 * PAGE_SIZE)
            zapped = yield from kernel.sys_madvise_dontneed(
                thread, proc, area, 0, 64 * PAGE_SIZE
            )
            return zapped

        zapped = run_in_thread(engine, machine, body, tgid=proc.tgid)
        assert zapped == 32
        # madvise never takes the write lock.
        assert proc.mmap_lock.write_stats.acquisitions == 2  # mmap + mprotect only

    def test_munmap_removes_area(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 16 * PAGE_SIZE, "mem")
            yield from kernel.sys_mprotect(thread, proc, area, 0, 16 * PAGE_SIZE, Prot.RW)
            yield from kernel.fault_anon_batch(thread, proc, area, 0, 4 * PAGE_SIZE)
            zapped = yield from kernel.sys_munmap(thread, proc, area)
            return zapped

        assert run_in_thread(engine, machine, body, tgid=proc.tgid) == 4


class TestFaults:
    def test_anon_fault_populates_once(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 64 * PAGE_SIZE, "mem")
            first = yield from kernel.fault_anon_batch(thread, proc, area, 0, 8 * PAGE_SIZE)
            second = yield from kernel.fault_anon_batch(thread, proc, area, 0, 8 * PAGE_SIZE)
            return first, second

        first, second = run_in_thread(engine, machine, body, tgid=proc.tgid)
        assert (first, second) == (8, 0)
        assert proc.stats["anon_faults"] == 8

    def test_uffd_fault_requires_registration(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            area = yield from kernel.sys_mmap_reserve(thread, proc, 64 * PAGE_SIZE, "mem")
            yield from kernel.fault_uffd_batch(thread, proc, area, 0, PAGE_SIZE)

        with pytest.raises(SegFault):
            run_in_thread(engine, machine, body, tgid=proc.tgid)

    def test_uffd_fault_costs_more_than_anon(self):
        """Per-page, the SIGBUS+ioctl path is pricier than a plain fault."""

        def run(kind):
            engine, machine, kernel = make_system()
            proc = kernel.create_process("p")

            def body(thread):
                area = yield from kernel.sys_mmap_reserve(
                    thread, proc, 256 * PAGE_SIZE, "mem"
                )
                if kind == "uffd":
                    yield from kernel.sys_uffd_register(thread, proc, area)
                    start = engine.now
                    yield from kernel.fault_uffd_batch(
                        thread, proc, area, 0, 256 * PAGE_SIZE
                    )
                else:
                    yield from kernel.sys_mprotect(
                        thread, proc, area, 0, 256 * PAGE_SIZE, Prot.RW
                    )
                    start = engine.now
                    yield from kernel.fault_anon_batch(
                        thread, proc, area, 0, 256 * PAGE_SIZE
                    )
                return engine.now - start

            return run_in_thread(engine, machine, body, tgid=proc.tgid)

        assert run("uffd") > run("anon")

    def test_sigsegv_delivery_costs_time(self):
        engine, machine, kernel = make_system()
        proc = kernel.create_process("p")

        def body(thread):
            start = engine.now
            yield from kernel.deliver_sigsegv(thread)
            return engine.now - start

        assert run_in_thread(engine, machine, body, tgid=proc.tgid) > 0


class TestShootdowns:
    def test_shootdown_interrupts_other_cores_of_same_process(self):
        engine, machine, kernel = make_system(cores=3)
        proc = kernel.create_process("p")
        other_proc = kernel.create_process("q")

        def spinner(name, core_index, tgid):
            thread = SimThread(engine, name, machine.core(core_index), tgid=tgid)

            def body():
                yield from thread.startup()
                yield from thread.run(1.0)
                thread.finish()

            return body()

        def zapper():
            thread = SimThread(engine, "zapper", machine.core(0), tgid=proc.tgid)

            def body():
                yield from thread.startup()
                area = yield from kernel.sys_mmap_reserve(
                    thread, proc, 64 * PAGE_SIZE, "mem"
                )
                yield from kernel.sys_mprotect(
                    thread, proc, area, 0, 16 * PAGE_SIZE, Prot.RW
                )
                yield from kernel.fault_anon_batch(thread, proc, area, 0, 16 * PAGE_SIZE)
                yield from kernel.sys_mprotect(
                    thread, proc, area, 0, 16 * PAGE_SIZE, Prot.NONE
                )
                thread.finish()

            return body()

        engine.process(spinner("same-proc", 1, proc.tgid))
        engine.process(spinner("other-proc", 2, other_proc.tgid))
        engine.process(zapper())
        engine.run()
        # Core 1 (same process) got the IPI; core 2 (other process) did not.
        assert machine.core(1).acct.irq > 0
        assert machine.core(2).acct.irq == 0


class TestLockContention:
    def test_mprotect_storm_serialises_faulting_threads(self):
        """The paper's §4.1.1 effect in miniature.

        Two threads fault continuously (read lock); a third thread issues
        a stream of mprotect calls (write lock).  The writer must have
        measurable wait/hold impact on the readers.
        """
        engine, machine, kernel = make_system(cores=3)
        proc = kernel.create_process("p")

        def setup_and_run():
            thread = SimThread(engine, "setup", machine.core(0), tgid=proc.tgid)

            def body():
                yield from thread.startup()
                areas = []
                for i in range(3):
                    area = yield from kernel.sys_mmap_reserve(
                        thread, proc, 4096 * PAGE_SIZE, f"mem{i}"
                    )
                    yield from kernel.sys_mprotect(
                        thread, proc, area, 0, 4096 * PAGE_SIZE, Prot.RW
                    )
                    areas.append(area)
                thread.finish()
                return areas

            return body()

        areas = engine.run_process(setup_and_run())

        def faulter(name, core_index, area):
            thread = SimThread(engine, name, machine.core(core_index), tgid=proc.tgid)

            def body():
                yield from thread.startup()
                for _ in range(50):
                    yield from kernel.fault_anon_batch(
                        thread, proc, area, 0, 64 * PAGE_SIZE
                    )
                    yield from kernel.sys_madvise_dontneed(
                        thread, proc, area, 0, 64 * PAGE_SIZE
                    )
                thread.finish()

            return body()

        def protector(area):
            thread = SimThread(engine, "prot", machine.core(0), tgid=proc.tgid)

            def body():
                yield from thread.startup()
                for _ in range(50):
                    yield from kernel.sys_mprotect(
                        thread, proc, area, 0, 1024 * PAGE_SIZE, Prot.RW
                    )
                    yield from kernel.fault_anon_batch(
                        thread, proc, area, 0, 1024 * PAGE_SIZE
                    )
                    yield from kernel.sys_mprotect(
                        thread, proc, area, 0, 1024 * PAGE_SIZE, Prot.NONE
                    )
                thread.finish()

            return body()

        engine.process(faulter("f1", 1, areas[0]))
        engine.process(faulter("f2", 2, areas[1]))
        engine.process(protector(areas[2]))
        engine.run()
        assert proc.mmap_lock.read_stats.total_wait_time > 0
        assert proc.mmap_lock.write_stats.acquisitions > 100
