"""Tests for the benchmark harness and instance lifecycle.

These assert the *system-level* shapes the paper reports: strategy
parity at one thread, mmap_lock collapse for mprotect at 16 threads,
V8's helper/GC behaviour, native process isolation, and the
THP-granularity memory accounting.
"""

import pytest

from repro.core.harness import RunMeasurement, run_benchmark


def bench(workload="trisolv", runtime="wavm", strategy="none", threads=1,
          iterations=3, isa="x86_64"):
    return run_benchmark(
        workload, runtime, strategy, isa,
        threads=threads, size="mini", iterations=iterations,
    )


class TestBasicOperation:
    def test_returns_expected_iteration_count(self):
        m = bench(threads=2, iterations=4)
        assert len(m.iteration_seconds) == 8  # 2 workers x 4 timed

    def test_iteration_time_positive_and_sane(self):
        m = bench()
        assert 0 < m.median_iteration < 1.0

    def test_single_thread_saturates_one_core(self):
        m = bench()
        assert m.utilisation.utilisation_percent == pytest.approx(100.0, abs=3.0)

    def test_sixteen_threads_saturate_machine_with_none(self):
        m = bench(threads=16)
        assert m.utilisation.utilisation_percent > 1550.0

    def test_unsupported_combination_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            bench(runtime="wavm", isa="riscv64")
        with pytest.raises(ValueError, match="strategy"):
            bench(runtime="wasm3", strategy="clamp")
        with pytest.raises(ValueError, match="exceed"):
            run_benchmark("gemm", "v8", "none", "riscv64", threads=4, size="mini")

    def test_deterministic(self):
        a = bench(threads=4, iterations=3)
        b = bench(threads=4, iterations=3)
        assert a.iteration_seconds == b.iteration_seconds
        assert a.utilisation.utilisation_percent == b.utilisation.utilisation_percent


class TestStrategySystemEffects:
    def test_one_thread_strategy_parity(self):
        """§4.1: mprotect/uffd within a few points of none at 1 thread."""
        none = bench(strategy="none").median_iteration
        mprotect = bench(strategy="mprotect").median_iteration
        uffd = bench(strategy="uffd").median_iteration
        assert mprotect / none < 1.08
        assert uffd / none < 1.10

    def test_mprotect_collapses_at_16_threads(self):
        """§4.1.1: the headline contention result, on a short benchmark."""
        none = bench(strategy="none", threads=16)
        mprotect = bench(strategy="mprotect", threads=16)
        # Utilisation visibly below full saturation...
        assert mprotect.utilisation.utilisation_percent < 1450.0
        # ...driven by write-side mmap_lock waiting...
        assert mprotect.mmap_write_wait > 10 * none.mmap_write_wait
        # ...and slower measured iterations.
        assert mprotect.median_iteration > 1.05 * none.median_iteration

    def test_uffd_scales_like_none(self):
        """§4.2.1: uffd avoids the exclusive lock entirely."""
        none = bench(strategy="none", threads=16)
        uffd = bench(strategy="uffd", threads=16)
        assert uffd.utilisation.utilisation_percent > 1550.0
        assert uffd.median_iteration < 1.10 * none.median_iteration

    def test_mprotect_triggers_shootdowns(self):
        m = bench(strategy="mprotect", threads=4, iterations=3)
        assert m.kernel_stats["shootdowns"] > 0
        assert m.kernel_stats["mprotect_calls"] > 0

    def test_uffd_uses_uffd_faults(self):
        m = bench(strategy="uffd")
        assert m.kernel_stats["uffd_faults"] > 0
        m2 = bench(strategy="none")
        assert m2.kernel_stats["uffd_faults"] == 0
        assert m2.kernel_stats["anon_faults"] > 0


class TestV8Behaviour:
    def test_helper_threads_push_utilisation_above_one_core(self):
        m = bench(workload="gemm", runtime="v8", strategy="mprotect")
        assert m.utilisation.utilisation_percent > 110.0

    def test_v8_cannot_saturate_16_cores(self):
        v8 = bench(workload="gemm", runtime="v8", strategy="mprotect", threads=16)
        wavm = bench(workload="gemm", runtime="wavm", strategy="mprotect", threads=16)
        assert v8.utilisation.utilisation_percent < wavm.utilisation.utilisation_percent

    def test_v8_context_switch_blowup_at_16_threads(self):
        """Fig. 5b: an order of magnitude more switches."""
        v8 = bench(workload="gemm", runtime="v8", strategy="none", threads=16)
        wavm = bench(workload="gemm", runtime="wavm", strategy="none", threads=16)
        assert (
            v8.utilisation.context_switches_per_sec
            > 8 * wavm.utilisation.context_switches_per_sec
        )


class TestNativeBaseline:
    def test_native_runs_and_reports(self):
        m = bench(runtime="native-clang", strategy="none", threads=4)
        assert m.kernel_stats["munmap_calls"] > 0  # per-iteration teardown
        assert m.median_iteration > 0

    def test_native_scales_cleanly(self):
        """Per-process mmap_locks: no cross-worker serialisation."""
        one = bench(runtime="native-clang", strategy="none", threads=1)
        sixteen = bench(runtime="native-clang", strategy="none", threads=16)
        assert sixteen.median_iteration < 1.05 * one.median_iteration
        assert sixteen.utilisation.utilisation_percent > 1550.0


class TestMemoryAccounting:
    def test_thp_granularity_differs_across_isas(self):
        """Fig. 6: same workload appears bigger on x86-64 than Armv8."""
        x86 = bench(workload="gemm", threads=4, isa="x86_64")
        arm = bench(workload="gemm", threads=4, isa="armv8")
        assert x86.mem_avg_bytes > arm.mem_avg_bytes

    def test_memory_scales_with_workers(self):
        one = bench(workload="gemm", threads=1, isa="armv8")
        four = bench(workload="gemm", threads=4, isa="armv8")
        assert four.mem_avg_bytes > 2 * one.mem_avg_bytes

    def test_spec_uses_more_memory_than_polybench(self):
        pbc = bench(workload="gemm", threads=1, isa="armv8")
        spec = bench(workload="505.mcf", threads=1, isa="armv8", iterations=2)
        assert spec.mem_avg_bytes > 5 * pbc.mem_avg_bytes
