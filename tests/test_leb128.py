"""Tests for LEB128 encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.wasm.errors import DecodeError
from repro.wasm.leb128 import (
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_u32,
    encode_unsigned,
)


class TestUnsigned:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (624485, b"\xe5\x8e\x26"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_unsigned(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_unsigned(-1)

    def test_u32_range_checked(self):
        with pytest.raises(ValueError):
            encode_u32(1 << 32)
        assert encode_u32((1 << 32) - 1)

    def test_truncated_input(self):
        with pytest.raises(DecodeError):
            decode_unsigned(b"\x80", 0)

    def test_overlong_rejected(self):
        # Six continuation bytes cannot fit in u32.
        with pytest.raises(DecodeError):
            decode_unsigned(b"\x80\x80\x80\x80\x80\x01", 0, 32)

    def test_value_exceeding_bits_rejected(self):
        # 2^32 encoded in 5 bytes.
        with pytest.raises(DecodeError):
            decode_unsigned(b"\x80\x80\x80\x80\x10", 0, 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_u32(self, value):
        encoded = encode_unsigned(value)
        decoded, offset = decode_unsigned(encoded, 0, 32)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_u64(self, value):
        encoded = encode_unsigned(value)
        decoded, offset = decode_unsigned(encoded, 0, 64)
        assert decoded == value


class TestSigned:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (-1, b"\x7f"),
            (63, b"\x3f"),
            (64, b"\xc0\x00"),
            (-64, b"\x40"),
            (-123456, b"\xc0\xbb\x78"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_signed(value) == expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_signed(1 << 31, 32)
        with pytest.raises(ValueError):
            encode_signed(-(1 << 31) - 1, 32)

    def test_truncated_input(self):
        with pytest.raises(DecodeError):
            decode_signed(b"\xff", 0)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_roundtrip_s32(self, value):
        encoded = encode_signed(value, 32)
        decoded, offset = decode_signed(encoded, 0, 32)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_s64(self, value):
        encoded = encode_signed(value, 64)
        decoded, _ = decode_signed(encoded, 0, 64)
        assert decoded == value

    def test_offset_advances_through_stream(self):
        stream = encode_signed(-5) + encode_signed(300)
        first, offset = decode_signed(stream, 0)
        second, offset = decode_signed(stream, offset)
        assert (first, second) == (-5, 300)
