"""Replay the seeded fuzz regression corpus (tests/fuzz_corpus/).

Every entry is a once-found failure promoted to a permanent
regression: fuzzer seeds go back through the full ``check_case``
oracle (and additionally through every dispatch mode), hand-written
``.wat`` distillations run under the full bounds-strategy x dispatch
grid, and campaign finds (the ``"campaign"`` list in seeds.json,
written by ``leaps-bench fuzz --promote``) replay through the
campaign's own oracle stack.  See tests/fuzz_corpus/README.md for the
promotion policy.
"""

import json
import pathlib
import random

import pytest

from repro.diffcheck import fuzz
from repro.runtime.interpreter import DISPATCH_MODES, Interpreter
from repro.runtime.strategies import STRATEGY_ORDER
from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.errors import Trap
from repro.wasm.wat_parser import parse_wat

pytestmark = pytest.mark.diff

CORPUS_DIR = pathlib.Path(__file__).parent / "fuzz_corpus"
MANIFEST = json.loads((CORPUS_DIR / "seeds.json").read_text())
SEED_CASES = MANIFEST["cases"]
SEED_ARGS = MANIFEST["args"]
CAMPAIGN_CASES = MANIFEST.get("campaign", [])
WAT_CASES = sorted(CORPUS_DIR.glob("*.wat"))


def _outcome(module, arg, strategy, dispatch=None, tier=None):
    interp = Interpreter(
        module, strategy=strategy, dispatch=dispatch, tier=tier,
        validate=False, collect_profile=False, track_pages=True,
    )
    try:
        value = interp.invoke("run", arg)
    except Trap as exc:
        return ("trap", exc.kind)
    memory = interp.memory
    if memory is None:
        return ("value", value, 0, 0, ())
    return (
        "value", value, memory.load_count, memory.store_count,
        tuple(sorted(memory.touched_pages)),
    )


def test_corpus_is_populated():
    assert len(SEED_CASES) >= 8
    assert len(WAT_CASES) >= 4


@pytest.mark.parametrize(
    "case", SEED_CASES, ids=lambda c: f"seed{c['seed']}"
)
def test_seed_passes_full_oracle(case):
    """The promoted seed must stay green through every diffcheck layer."""
    report = fuzz.check_case(case["seed"])
    assert report.ok, "\n".join(v.render() for v in report.violations)


@pytest.mark.parametrize(
    "case", SEED_CASES, ids=lambda c: f"seed{c['seed']}"
)
def test_seed_dispatch_modes_agree(case, monkeypatch):
    """Dispatch modes agree on the seed's module for every strategy."""
    monkeypatch.setenv("REPRO_FUSE_STRICT", "1")
    rng = random.Random(case["seed"])
    module = fuzz.build_program(rng)
    validate_module(module)
    for strategy in STRATEGY_ORDER:
        for arg in SEED_ARGS:
            reference = _outcome(module, arg, strategy, "fused")
            for mode in DISPATCH_MODES:
                if mode == "fused":
                    continue
                observed = _outcome(module, arg, strategy, mode)
                assert observed == reference, (
                    f"seed {case['seed']} arg={arg} {strategy}: "
                    f"{mode} diverges from fused"
                )


@pytest.mark.parametrize(
    "case", SEED_CASES, ids=lambda c: f"seed{c['seed']}"
)
def test_seed_tiers_agree(case, monkeypatch):
    """Execution tiers agree on the seed's module for every strategy.

    Forced immediate tier-up plus strict mode, so any unexpected
    vectorizer failure on fuzzer-shaped programs is a hard error, and
    any divergence in value/loads/stores/pages is caught.
    """
    monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
    monkeypatch.setenv("REPRO_TIER_STRICT", "1")
    rng = random.Random(case["seed"])
    module = fuzz.build_program(rng)
    validate_module(module)
    for strategy in STRATEGY_ORDER:
        for arg in SEED_ARGS:
            reference = _outcome(module, arg, strategy, tier="fused")
            for tier in ("legacy", "opt"):
                observed = _outcome(module, arg, strategy, tier=tier)
                assert observed == reference, (
                    f"seed {case['seed']} arg={arg} {strategy}: "
                    f"tier {tier} diverges from fused"
                )


@pytest.mark.parametrize("path", WAT_CASES, ids=lambda p: p.stem)
def test_wat_regression_grid(path, monkeypatch):
    """Distilled regressions agree across strategies and dispatch modes.

    Within one strategy every dispatch mode must be bit-identical.
    Across strategies the usual diffcheck contract holds: identical
    value/loads/stores/pages when nothing traps; when a trapping
    strategy traps, all trapping strategies report the same kind and
    clamp/none complete without trapping.
    """
    monkeypatch.setenv("REPRO_FUSE_STRICT", "1")
    module = parse_wat(path.read_text())
    validate_module(module)
    module = decode_module(encode_module(module))
    validate_module(module)

    for arg in SEED_ARGS:
        by_strategy = {}
        for strategy in STRATEGY_ORDER:
            reference = _outcome(module, arg, strategy, "fused")
            for mode in DISPATCH_MODES:
                if mode == "fused":
                    continue
                observed = _outcome(module, arg, strategy, mode)
                assert observed == reference, (
                    f"{path.name} arg={arg} {strategy}: "
                    f"{mode} diverges from fused"
                )
            by_strategy[strategy] = reference

        trapping = {s: by_strategy[s] for s in fuzz._TRAPPING}
        if any(o[0] == "trap" for o in trapping.values()):
            kinds = {o[1] for o in trapping.values() if o[0] == "trap"}
            assert len(kinds) == 1 and all(
                o[0] == "trap" for o in trapping.values()
            ), f"{path.name} arg={arg}: trapping strategies disagree"
            if kinds == {"out-of-bounds-memory"}:
                for strategy in ("clamp", "none"):
                    assert by_strategy[strategy][0] == "value", (
                        f"{path.name} arg={arg}: {strategy} trapped on oob"
                    )
        else:
            outcomes = set(by_strategy.values())
            assert len(outcomes) == 1, (
                f"{path.name} arg={arg}: strategies disagree with no trap"
            )


@pytest.mark.parametrize("path", WAT_CASES, ids=lambda p: p.stem)
def test_wat_regression_opt_strict(path, monkeypatch):
    """Corpus replays under the optimizing tier in strict mode.

    ``REPRO_TIER_STRICT=1`` turns any tier-2 bailout into a hard
    error and ``REPRO_TIER_THRESHOLD=0`` forces immediate tier-up, so
    this catches both vectorizer divergence and silent fallback on
    every distilled regression shape.
    """
    monkeypatch.setenv("REPRO_TIER", "opt")
    monkeypatch.setenv("REPRO_TIER_STRICT", "1")
    monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
    module = parse_wat(path.read_text())
    validate_module(module)
    for strategy in STRATEGY_ORDER:
        for arg in SEED_ARGS:
            reference = _outcome(module, arg, strategy, tier="fused")
            observed = _outcome(module, arg, strategy, tier="opt")
            assert observed == reference, (
                f"{path.name} arg={arg} {strategy}: "
                "opt tier diverges from fused under strict replay"
            )


def test_campaign_entries_replay_clean():
    """Promoted campaign finds stay green through the campaign oracles.

    A plain loop (not parametrize) so an empty campaign list is simply
    a no-op rather than a collection error.
    """
    from repro.diffcheck.fuzz import check_module_case
    from repro.fuzz.genome import build_genome_module, genome_from_json
    from repro.fuzz.oracles import run_oracles

    for entry in CAMPAIGN_CASES:
        if "file" in entry:
            module = parse_wat((CORPUS_DIR / entry["file"]).read_text())
        else:
            module = build_genome_module(genome_from_json(entry["genome"]))
        validate_module(module)
        report = check_module_case(module, entry["arg"])
        genome = (
            genome_from_json(entry["genome"]) if "genome" in entry else None
        )
        run_oracles(
            module, entry["arg"], report, {"id": entry["id"]}, genome=genome
        )
        assert report.ok, entry["id"] + "\n" + "\n".join(
            v.render() for v in report.violations
        )
