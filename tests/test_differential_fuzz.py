"""Differential fuzzing across the toolchain.

Hypothesis generates random structured programs (nested loops,
branches, conditionals, array traffic).  Each program is executed by
the interpreter in three forms — as built, after an encode→decode
round trip, and after a WAT print (structural check only) — and the
observable results must agree exactly.  This catches codec bugs on
control flow that straight-line round-trip tests cannot reach.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import Interpreter
from repro.wasm import decode_module, encode_module, module_to_wat, validate_module
from repro.wasm.dsl import Const, DslModule, Select


@st.composite
def program(draw):
    """A random program writing into an i32 array, returning a checksum."""
    n = 16
    dm = DslModule("fuzz")
    arr = dm.array_i32("a", n)
    f = dm.func("run", params=[("seed", "i32")], results=["i32"])
    seed = f.params[0]
    i, j = f.i32("i"), f.i32("j")
    acc = f.i32("acc")

    statements = draw(st.integers(min_value=1, max_value=4))
    for _ in range(statements):
        kind = draw(st.sampled_from(["loop", "if", "nested", "while", "store"]))
        const_a = draw(st.integers(0, 1000))
        const_b = draw(st.integers(1, 7))
        if kind == "loop":
            with f.for_(i, 0, draw(st.integers(1, n))):
                f.store(arr[i], arr[i] + i * const_b + seed)
        elif kind == "if":
            with f.if_((seed & 1).eq(draw(st.integers(0, 1)))) as branch:
                f.set(acc, acc + const_a)
                branch.otherwise()
                f.set(acc, acc - const_a)
        elif kind == "nested":
            with f.for_(i, 0, draw(st.integers(1, 5))):
                with f.for_(j, 0, draw(st.integers(1, 5))):
                    with f.if_(((i + j) % const_b).eq(0)):
                        f.store(arr[(i + j) % n], arr[(i + j) % n] ^ const_a)
        elif kind == "while":
            f.set(j, const_b)
            with f.while_(lambda: j < const_a % 50 + 1):
                f.set(j, j * 2 + 1)
            f.set(acc, acc + j)
        else:
            index = draw(st.integers(0, n - 1))
            f.store(arr[index], Select(seed > const_a, acc, i) + const_b)

    with f.for_(i, 0, n):
        f.set(acc, acc * 31 + arr[i])
    f.ret(acc)
    return dm.build()


@given(program(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_binary_roundtrip_preserves_behaviour(module, seed):
    validate_module(module)
    direct = Interpreter(module, validate=False).invoke("run", seed)
    decoded = decode_module(encode_module(module))
    validate_module(decoded)
    roundtrip = Interpreter(decoded, validate=False).invoke("run", seed)
    assert direct == roundtrip


@given(program())
@settings(max_examples=30, deadline=None)
def test_wat_printer_never_crashes_and_balances(module):
    text = module_to_wat(module)
    assert text.count("(") == text.count(")") or '"' in text
    assert "(module" in text
    # Control structure indentation stays non-negative and balanced.
    for func in module.funcs:
        depth = 0
        for ins in func.body:
            if ins.op == "end":
                depth -= 1
            elif ins.op in ("block", "loop", "if"):
                depth += 1
        assert depth == 0


@given(program(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_execution_is_deterministic(module, seed):
    first = Interpreter(module, validate=False).invoke("run", seed)
    second = Interpreter(module, validate=False).invoke("run", seed)
    assert first == second
