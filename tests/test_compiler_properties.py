"""Property-based tests over randomly generated DSL programs.

Hypothesis builds random (but well-typed) kernels; the properties
check structural invariants of the compiler pipeline that must hold
for *any* program, not just the benchmark suite:

* lowering + passes never crash and never lose stores;
* DCE and CSE only remove instructions;
* enabling more passes never increases the modelled cost of a profile;
* block leaders always point at real wasm instructions;
* expression semantics survive the interpreter (random expressions are
  evaluated both by a Python mirror and by the Wasm interpreter).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.frontend import lower_function
from repro.compiler.pipeline import ALL_PASSES, CompilerConfig, compile_module
from repro.compiler.timing import cycles_for_profile
from repro.isa import isa_named
from repro.runtime import Interpreter, strategy_named
from repro.wasm.dsl import Const, DslModule

M32 = 0xFFFFFFFF


# ----------------------------------------------------------------------
# Random i32 expression trees with a Python-semantics mirror
# ----------------------------------------------------------------------
@st.composite
def i32_expr(draw, depth=0):
    """Returns (dsl_builder, python_value)."""
    if depth >= 4 or draw(st.booleans()):
        value = draw(st.integers(-(2**31), 2**31 - 1))
        return Const(value, "i32"), value & M32
    op = draw(st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
    left, lval = draw(i32_expr(depth + 1))
    right, rval = draw(i32_expr(depth + 1))
    if op == "add":
        return left + right, (lval + rval) & M32
    if op == "sub":
        return left - right, (lval - rval) & M32
    if op == "mul":
        return left * right, (lval * rval) & M32
    if op == "and":
        return left & right, lval & rval
    if op == "or":
        return left | right, lval | rval
    return left ^ right, lval ^ rval


@given(i32_expr())
@settings(max_examples=80, deadline=None)
def test_random_expressions_evaluate_correctly(pair):
    expr, expected = pair
    dm = DslModule()
    f = dm.func("f", results=["i32"])
    f.ret(expr)
    module = dm.build()
    assert Interpreter(module).invoke("f") == expected


# ----------------------------------------------------------------------
# Random small kernels (loop + array traffic)
# ----------------------------------------------------------------------
@st.composite
def random_kernel(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    stride = draw(st.integers(min_value=1, max_value=3))
    scale = draw(st.integers(min_value=1, max_value=7))
    use_nested = draw(st.booleans())
    dm = DslModule("rand")
    a = dm.array_i32("a", n * 4)
    f = dm.func("bench")
    i = f.i32("i")
    j = f.i32("j")
    with f.for_(i, 0, n):
        f.store(a[i * stride], a[i * stride] + i * scale)
        if use_nested:
            with f.for_(j, 0, 3):
                f.store(a[j], a[j] ^ (i + j))
    return dm.build()


@given(random_kernel())
@settings(max_examples=40, deadline=None)
def test_pipeline_structural_invariants(module):
    func = module.funcs[-1]
    func_index = module.num_imported_funcs + len(module.funcs) - 1
    raw = lower_function(module, func_index, func)
    raw_ops = [ins.op for ins in raw.instructions()]

    config = CompilerConfig(
        name="p", passes=frozenset(ALL_PASSES),
        regalloc_quality=1.0, addressing_fusion=True,
    )
    compiled = compile_module(
        module, isa_named("x86_64"), config, strategy_named("trap")
    )
    opt = compiled.functions[func_index].irf
    opt_ops = [ins.op for ins in opt.instructions()]

    # Stores are never removed by optimisation.
    assert opt_ops.count("store") == raw_ops.count("store")
    # Optimisation only shrinks the instruction stream.
    assert len(opt_ops) <= len(raw_ops)
    # Leaders point at real wasm pcs.
    body_len = len(func.body)
    for block in opt.blocks:
        assert -1 <= block.leader_pc < body_len
        if block.leader_pc >= 0:
            assert func.body[block.leader_pc].op not in ("end", "else")
    # Every block got a machine-op cost.
    for block in opt.blocks:
        assert block.id in compiled.functions[func_index].block_cycles
        assert compiled.functions[func_index].block_cycles[block.id] >= 0


@given(random_kernel())
@settings(max_examples=25, deadline=None)
def test_more_passes_never_cost_more(module):
    interp = Interpreter(module, collect_profile=True)
    interp.invoke("bench")
    profile = interp.take_profile("rand", "prop")
    isa = isa_named("x86_64")
    strategy = strategy_named("none")

    def cost(passes):
        config = CompilerConfig(
            name="p", passes=frozenset(passes),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        return cycles_for_profile(
            compile_module(module, isa, config, strategy), profile
        )

    minimal = cost({"dce"})
    full = cost(ALL_PASSES)
    assert full <= minimal * 1.0001


@given(random_kernel())
@settings(max_examples=25, deadline=None)
def test_strategy_cost_ordering_holds_for_any_program(module):
    interp = Interpreter(module, collect_profile=True)
    interp.invoke("bench")
    profile = interp.take_profile("rand", "prop")
    isa = isa_named("x86_64")
    config = CompilerConfig(
        name="p", passes=frozenset(ALL_PASSES),
        regalloc_quality=1.0, addressing_fusion=True,
    )

    def cost(strategy):
        return cycles_for_profile(
            compile_module(module, isa, config, strategy_named(strategy)), profile
        )

    none, trap, clamp = cost("none"), cost("trap"), cost("clamp")
    assert none <= trap <= clamp
