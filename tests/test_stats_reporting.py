"""Tests for statistics helpers and terminal reporting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.reporting import render_bars, render_table
from repro.stats import geomean, geomean_of_ratios, median, summarize


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_scale_invariance(self, values, factor):
        """geomean(k*x) == k * geomean(x) — the Fleming-Wallace property."""
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(factor * geomean(values), rel=1e-9)


class TestGeomeanOfRatios:
    def test_matches_manual(self):
        measured = {"a": 2.0, "b": 8.0}
        baseline = {"a": 1.0, "b": 2.0}
        assert geomean_of_ratios(measured, baseline) == pytest.approx(
            math.sqrt(2.0 * 4.0)
        )

    def test_partial_overlap_rejected(self):
        measured = {"a": 2.0, "b": 8.0, "c": 5.0}
        baseline = {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError, match="only one side"):
            geomean_of_ratios(measured, baseline)

    def test_partial_overlap_names_the_culprits(self):
        with pytest.raises(ValueError, match="c, d"):
            geomean_of_ratios({"a": 2.0, "c": 5.0}, {"a": 1.0, "d": 3.0})

    def test_allow_missing_uses_intersection(self):
        measured = {"a": 2.0, "b": 8.0, "c": 5.0}
        baseline = {"a": 1.0, "b": 2.0}
        assert geomean_of_ratios(
            measured, baseline, allow_missing=True
        ) == pytest.approx(math.sqrt(8.0))

    def test_disjoint_rejected(self):
        with pytest.raises(ValueError, match="common"):
            geomean_of_ratios({"a": 1.0}, {"b": 1.0})


class TestMedianSummary:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty(self):
        with pytest.raises(ValueError):
            median([])

    def test_summary(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.median == 2.0
        assert s.mean == pytest.approx(2.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)


class TestRenderTable:
    def test_aligned_columns(self):
        out = render_table(["name", "x"], [["gemm", 1.5], ["a-long-name", 10.25]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        assert render_table(["h"], [["v"]], title="T").startswith("T")

    def test_number_formatting(self):
        out = render_table(["x"], [[1234.5], [0.123456], [12.34]])
        assert "1,234" in out or "1,235" in out
        assert "0.123" in out
        assert "12.3" in out


class TestRenderBars:
    def test_scaling(self):
        out = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_reference_marker(self):
        out = render_bars(["a", "b"], [0.5, 2.0], width=20, reference=1.0)
        assert "│" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty_is_ok(self):
        assert render_bars([], [], title="x") == "x"
