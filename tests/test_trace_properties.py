"""Property-based trace invariants (satellite 3).

Hypothesis drives arbitrary thread interleavings through (a) the raw
writer-preferring RWLock and (b) the kernel's VMA operations on one
shared area, then asserts the recorded traces satisfy the structural
invariants: no negative lock wait/hold times, writer holds pairwise
disjoint and excluding readers, and exclusive VMA mutations only ever
inside an ``mmap_lock`` write hold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.machine import MACHINE_SPECS, Machine
from repro.cpu.thread import SimThread
from repro.oskernel.kernel import Kernel
from repro.oskernel.layout import PAGE_SIZE
from repro.oskernel.vma import Prot
from repro.sim.engine import Delay, Engine
from repro.sim.resources import RWLock
from repro.trace import summary as trace_summary
from repro.trace.events import LOCK_ACQUIRE, LOCK_RELEASE
from repro.trace.tracer import tracing

pytestmark = pytest.mark.trace

# Delays come from a small grid: the point is interleaving diversity,
# not float fuzzing (which the exact-reconciliation suite covers).
_DELAYS = st.sampled_from([0.0, 1e-6, 3e-6, 1e-5])

_LOCK_OPS = st.lists(
    st.tuples(st.booleans(), _DELAYS, _DELAYS),  # (is_write, pre, hold)
    min_size=1, max_size=6,
)


@settings(max_examples=25, deadline=None)
@given(st.lists(_LOCK_OPS, min_size=2, max_size=4))
def test_rwlock_interleavings_hold_invariants(actors):
    engine = Engine()
    lock = RWLock(engine, "mmap_lock.test")

    def actor(ops):
        for is_write, pre, hold in ops:
            if pre:
                yield Delay(pre)
            if is_write:
                yield from lock.acquire_write()
                if hold:
                    yield Delay(hold)
                lock.release_write()
            else:
                token = yield from lock.acquire_read()
                if hold:
                    yield Delay(hold)
                lock.release_read(token)

    with tracing() as sink:
        for index, ops in enumerate(actors):
            engine.process(actor(ops), name=f"actor{index}")
        engine.run()

    events = sink.events
    assert trace_summary.check_invariants(events) == []

    # Explicitly reconstruct writer hold intervals: each must close
    # before the next opens (pairwise disjoint), and arithmetic from
    # wait/hold args must never go negative.
    intervals = []
    open_since = None
    for event in events:
        if event.args.get("mode") != "write":
            continue
        if event.name == LOCK_ACQUIRE:
            assert open_since is None
            assert event.args["wait"] >= 0
            open_since = event.ts
        elif event.name == LOCK_RELEASE:
            assert open_since is not None
            assert event.args["hold"] >= 0
            intervals.append((open_since, event.ts))
            open_since = None
    assert open_since is None
    for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
        assert next_start >= prev_end


_AREA_PAGES = 64

_VMA_OPS = st.lists(
    st.tuples(
        st.sampled_from(["rw", "none", "madvise", "fault"]),
        st.integers(min_value=0, max_value=_AREA_PAGES - 1),  # offset pages
        st.integers(min_value=1, max_value=_AREA_PAGES),      # span pages
        _DELAYS,
    ),
    min_size=1, max_size=5,
)


@settings(max_examples=20, deadline=None)
@given(st.lists(_VMA_OPS, min_size=2, max_size=4))
def test_vma_interleavings_never_mutate_outside_lock(actors):
    """Overlapping VMA ops from many threads on one shared area."""
    engine = Engine()
    machine = Machine(engine, MACHINE_SPECS["x86_64"])
    kernel = Kernel(engine, machine)
    proc = kernel.create_process("prop")
    state = {}

    def setup():
        thread = SimThread(engine, "setup", machine.core(0), tgid=proc.tgid)
        yield from thread.startup()
        state["area"] = yield from kernel.sys_mmap_reserve(
            thread, proc, _AREA_PAGES * PAGE_SIZE, name="prop-arena"
        )
        for index, ops in enumerate(actors):
            engine.process(actor(index, ops), name=f"actor{index}")
        thread.finish()

    def actor(index, ops):
        core = machine.core((index + 1) % len(machine.cores))
        thread = SimThread(engine, f"mutator{index}", core, tgid=proc.tgid)
        yield from thread.startup()
        area = state["area"]
        for kind, offset_pages, span_pages, pre in ops:
            if pre:
                yield from thread.sleep(pre)
            offset = offset_pages * PAGE_SIZE
            length = min(span_pages, _AREA_PAGES - offset_pages) * PAGE_SIZE
            if kind == "rw":
                yield from kernel.sys_mprotect(
                    thread, proc, area, offset, length, Prot.RW
                )
            elif kind == "none":
                yield from kernel.sys_mprotect(
                    thread, proc, area, offset, length, Prot.NONE
                )
            elif kind == "madvise":
                yield from kernel.sys_madvise_dontneed(
                    thread, proc, area, offset, length
                )
            else:
                yield from kernel.fault_anon_batch(
                    thread, proc, area, offset, length
                )
        thread.finish()

    with tracing() as sink:
        engine.process(setup(), name="setup")
        engine.run()

    assert trace_summary.check_invariants(sink.events) == []
