"""Differential reconciliation suite (satellite 2).

Runs a small sweep grid through the ordinary (untraced) measurement
path, then re-runs each configuration under tracing and proves the
trace is a *second, independent accounting* of the same simulation:
trace-derived context switches, CPU utilisation, fault counts, and
mmap_lock wait totals must equal the sweep's own rows — exactly, not
approximately, because both paths replay identical float additions in
identical order.
"""

import pytest

from repro.api import SweepSpec, run
from repro.core.engine import MeasurementEngine
from repro.core.harness import run_benchmark
from repro.trace import summary as trace_summary
from repro.trace.tracer import tracing

pytestmark = pytest.mark.trace

SPEC = SweepSpec(
    workloads=["trisolv"],
    runtimes=["wavm"],
    strategies=["mprotect", "uffd"],
    threads=(1, 4),
    size="mini",
    iterations=2,
)


@pytest.fixture(scope="module")
def sweep_rows(tmp_path_factory):
    engine = MeasurementEngine(
        cache_dir=str(tmp_path_factory.mktemp("cache")), cache=False
    )
    return run(SPEC, engine=engine)


def _traced(row):
    with tracing() as sink:
        measurement = run_benchmark(
            row["workload"], row["runtime"], row["strategy"], row["isa"],
            threads=row["threads"], size=SPEC.size, iterations=SPEC.iterations,
        )
    return sink.events, measurement


def test_grid_covers_expected_rows(sweep_rows):
    assert len(sweep_rows) == 4
    assert {(r["strategy"], r["threads"]) for r in sweep_rows} == {
        ("mprotect", 1), ("mprotect", 4), ("uffd", 1), ("uffd", 4),
    }


@pytest.mark.parametrize("index", range(4))
def test_trace_reconciles_with_sweep_row(sweep_rows, index):
    row = sweep_rows[index]
    events, measurement = _traced(row)

    # The rerun reproduces the sweep's own measurement (determinism).
    assert measurement.median_iteration * 1e3 == row["median_ms"]
    assert measurement.utilisation.utilisation_percent == \
        row["utilisation_percent"]

    # The full cross-check: utilisation fields, kernel_stats counters,
    # and lock-wait totals all agree exactly.
    assert trace_summary.reconcile(events, measurement) == []

    # And the headline Figure-5 numbers re-derived from raw events
    # match the sweep CSV row, float-for-float.
    begin, end = trace_summary.window_markers(events)
    start_snap = trace_summary.replay_stat_snapshot(events, begin)
    end_snap = trace_summary.replay_stat_snapshot(events, end)
    from repro.oskernel.procstat import window_sample

    sample = window_sample(start_snap, end_snap)
    assert sample.context_switches_per_sec == row["ctx_per_sec"]
    assert sample.utilisation_percent == row["utilisation_percent"]
    assert trace_summary._replayed_wait(events, "write") * 1e3 == \
        row["mmap_write_wait_ms"]


def test_summary_window_matches_rows(sweep_rows):
    """The summarize() window block carries the same reconciled values."""
    for row in sweep_rows:
        events, _ = _traced(row)
        window = trace_summary.summarize(events)["window"]
        assert window["context_switches_per_sec"] == row["ctx_per_sec"]
        assert window["utilisation_percent"] == row["utilisation_percent"]
