(module
  (func (export "sum") (result f64)
    f64.const 0.1
    f64.const 0.2
    f64.add)
  (func (export "chain") (result f64)
    f64.const 2.5
    f64.const 4.0
    f64.mul
    f64.const 0.5
    f64.sub
    f64.const 3.0
    f64.div)
  (func (export "sqrt") (result f64)
    f64.const 2.0
    f64.sqrt))
