;; float->int truncation traps on NaN and out-of-range inputs.
(module
  (func (export "trunc_ok") (result i32)
    f64.const -3.9
    i32.trunc_f64_s)
  (func (export "trunc_nan") (result i32)
    f64.const 0
    f64.const 0
    f64.div
    i32.trunc_f64_s)
  (func (export "trunc_too_big") (result i32)
    f64.const 1e10
    i32.trunc_f64_s)
  (func (export "trunc_u_neg") (result i32)
    f64.const -1.5
    i32.trunc_f64_u))
