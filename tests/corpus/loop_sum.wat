;; The canonical counted loop: fused loop-header and increment regions.
(module
  (func (export "sum100") (result i32)
    (local i32 i32)
    block
      loop
        local.get 0
        i32.const 100
        i32.ge_s
        br_if 1
        local.get 1
        local.get 0
        i32.add
        local.set 1
        local.get 0
        i32.const 1
        i32.add
        local.set 0
        br 0
      end
    end
    local.get 1))
