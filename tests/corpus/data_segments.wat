;; Data-segment initialisation is observable but not counted as stores.
(module
  (memory 1)
  (data (i32.const 8) "\01\02\03\04")
  (data (i32.const 100) "hi")
  (func (export "read_init") (result i32)
    i32.const 8
    i32.load
    i32.const 100
    i32.load16_u
    i32.add))
