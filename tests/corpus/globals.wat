(module
  (global $count (mut i32) (i32.const 0))
  (global $base i32 (i32.const 100))
  (func (export "bump_twice") (result i32)
    global.get $count
    i32.const 1
    i32.add
    global.set $count
    global.get $count
    i32.const 2
    i32.add
    global.set $count
    global.get $count
    global.get $base
    i32.add))
