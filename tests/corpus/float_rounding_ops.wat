;; ceil/floor/trunc/nearest preserve negative zero where required.
(module
  (func (export "ceil_neg") (result i64)
    f64.const -0.5
    f64.ceil
    i64.reinterpret_f64)
  (func (export "trunc_neg") (result i64)
    f64.const -0.5
    f64.trunc
    i64.reinterpret_f64)
  (func (export "nearest_half") (result f64)
    f64.const 2.5
    f64.nearest)
  (func (export "nearest_neg") (result i64)
    f64.const -0.4
    f64.nearest
    i64.reinterpret_f64)
  (func (export "floor_pos") (result f64)
    f64.const 3.7
    f64.floor))
