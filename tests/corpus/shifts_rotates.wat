;; Shift counts are taken modulo the bit width.
(module
  (func (export "shl_mod") (result i32)
    i32.const 1
    i32.const 33
    i32.shl)
  (func (export "shr_s_neg") (result i32)
    i32.const -8
    i32.const 2
    i32.shr_s)
  (func (export "shr_u_neg") (result i32)
    i32.const -8
    i32.const 2
    i32.shr_u)
  (func (export "rotl") (result i32)
    i32.const 0x80000001
    i32.const 1
    i32.rotl)
  (func (export "rotr64") (result i64)
    i64.const 1
    i64.const 1
    i64.rotr))
