;; Signed vs unsigned comparison around the sign boundary.
(module
  (func (export "lt_s") (result i32)
    i32.const -1
    i32.const 1
    i32.lt_s)
  (func (export "lt_u") (result i32)
    i32.const -1
    i32.const 1
    i32.lt_u)
  (func (export "ge_s") (result i32)
    i32.const 0x80000000
    i32.const 0
    i32.ge_s)
  (func (export "ge_u") (result i32)
    i32.const 0x80000000
    i32.const 0
    i32.ge_u)
  (func (export "eqz") (result i32)
    i32.const 0
    i32.eqz)
  (func (export "i64_cmp") (result i32)
    i64.const -1
    i64.const 1
    i64.gt_u))
