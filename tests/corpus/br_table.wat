(module
  (func $pick (param i32) (result i32)
    block
      block
        block
          local.get 0
          br_table 0 1 2
        end
        i32.const 10
        return
      end
      i32.const 20
      return
    end
    i32.const 30)
  (func (export "case0") (result i32)
    i32.const 0
    call $pick)
  (func (export "case1") (result i32)
    i32.const 1
    call $pick)
  (func (export "default") (result i32)
    i32.const 9
    call $pick))
