;; Structured control flow: br out of nested blocks with results.
(module
  (func (export "br_out") (result i32)
    block (result i32)
      block (result i32)
        i32.const 7
        br 1
      end
      i32.const 1
      i32.add
    end)
  (func (export "br_depth0") (result i32)
    block (result i32)
      i32.const 3
      br 0
    end
    i32.const 10
    i32.add))
