(module
  (func $fib (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.lt_s
    if (result i32)
      local.get 0
    else
      local.get 0
      i32.const 1
      i32.sub
      call $fib
      local.get 0
      i32.const 2
      i32.sub
      call $fib
      i32.add
    end)
  (func (export "fib10") (result i32)
    i32.const 10
    call $fib))
