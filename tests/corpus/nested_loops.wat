;; Two nested counted loops (the PolyBench shape in miniature).
(module
  (func (export "grid") (result i32)
    (local i32 i32 i32)
    block
      loop
        local.get 0
        i32.const 5
        i32.ge_s
        br_if 1
        i32.const 0
        local.set 1
        block
          loop
            local.get 1
            i32.const 7
            i32.ge_s
            br_if 1
            local.get 2
            i32.const 1
            i32.add
            local.set 2
            local.get 1
            i32.const 1
            i32.add
            local.set 1
            br 0
          end
        end
        local.get 0
        i32.const 1
        i32.add
        local.set 0
        br 0
      end
    end
    local.get 2))
