;; memory.copy handles overlap in both directions.
(module
  (memory 1)
  (data (i32.const 0) "abcdefgh")
  (func (export "copy_fwd_overlap") (result i32)
    i32.const 2
    i32.const 0
    i32.const 6
    memory.copy
    i32.const 7
    i32.load8_u)
  (func (export "copy_back_overlap") (result i32)
    i32.const 8
    i32.const 10
    i32.const 4
    memory.copy
    i32.const 8
    i32.load8_u)
  (func (export "copy_disjoint") (result i32)
    i32.const 100
    i32.const 0
    i32.const 8
    memory.copy
    i32.const 100
    i32.load8_u
    i32.const 107
    i32.load8_u
    i32.add)
  (func (export "copy_oob_src") (result i32)
    i32.const 0
    i32.const 65530
    i32.const 100
    memory.copy
    i32.const 0
    i32.load8_u))
