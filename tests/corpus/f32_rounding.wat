;; f32 results round through single precision at every step.
(module
  (func (export "add_rounds") (result f32)
    f32.const 16777216
    f32.const 1
    f32.add)
  (func (export "mul_rounds") (result f32)
    f32.const 1.1
    f32.const 1.1
    f32.mul)
  (func (export "div") (result f32)
    f32.const 1
    f32.const 3
    f32.div))
