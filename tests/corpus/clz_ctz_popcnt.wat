(module
  (func (export "clz0") (result i32)
    i32.const 0
    i32.clz)
  (func (export "ctz0") (result i32)
    i32.const 0
    i32.ctz)
  (func (export "clz1") (result i32)
    i32.const 0x00F00000
    i32.clz)
  (func (export "popcnt") (result i32)
    i32.const 0xF0F0F0F0
    i32.popcnt)
  (func (export "clz64") (result i64)
    i64.const 1
    i64.clz))
