(module
  (func (export "f64_bits") (result i64)
    f64.const 1.5
    i64.reinterpret_f64)
  (func (export "bits_f64") (result f64)
    i64.const 0x3FF8000000000000
    f64.reinterpret_i64)
  (func (export "f32_bits") (result i32)
    f32.const -2.0
    i32.reinterpret_f32)
  (func (export "bits_f32") (result f32)
    i32.const 0x40490FDB
    f32.reinterpret_i32))
