;; Integer division edge cases: traps fire at the same point in every
;; dispatch mode (a div is only ever the last op of a fused region).
(module
  (func (export "div_ok") (result i32)
    i32.const -7
    i32.const 2
    i32.div_s)
  (func (export "div_by_zero") (result i32)
    i32.const 1
    i32.const 0
    i32.div_s)
  (func (export "div_overflow") (result i32)
    i32.const 0x80000000
    i32.const -1
    i32.div_s)
  (func (export "rem_signs") (result i32)
    i32.const -7
    i32.const 3
    i32.rem_s)
  (func (export "rem_u") (result i32)
    i32.const 0xFFFFFFFF
    i32.const 10
    i32.rem_u)
  (func (export "rem_by_zero") (result i32)
    i32.const 5
    i32.const 0
    i32.rem_u))
