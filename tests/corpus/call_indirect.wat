(module
  (table 2 funcref)
  (elem (i32.const 0) $inc $dec)
  (func $inc (param i32) (result i32)
    local.get 0
    i32.const 1
    i32.add)
  (func $dec (param i32) (result i32)
    local.get 0
    i32.const 1
    i32.sub)
  (func (export "dispatch") (result i32)
    i32.const 10
    i32.const 0
    call_indirect (type 0)
    i32.const 1
    call_indirect (type 0)))
