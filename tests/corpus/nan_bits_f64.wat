;; NaN production is canonical: observe the exact bit pattern.
(module
  (func (export "zero_div_zero") (result i64)
    f64.const 0
    f64.const 0
    f64.div
    i64.reinterpret_f64)
  (func (export "inf_minus_inf") (result i64)
    f64.const 1
    f64.const 0
    f64.div
    f64.const 1
    f64.const 0
    f64.div
    f64.sub
    i64.reinterpret_f64)
  (func (export "sqrt_neg") (result i64)
    f64.const -4
    f64.sqrt
    i64.reinterpret_f64)
  (func (export "neg_nan") (result i64)
    f64.const 0
    f64.const 0
    f64.div
    f64.neg
    i64.reinterpret_f64))
