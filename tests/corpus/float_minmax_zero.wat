;; min/max distinguish signed zeros; observe bits, not values.
(module
  (func (export "min_zeros") (result i64)
    f64.const -0.0
    f64.const 0.0
    f64.min
    i64.reinterpret_f64)
  (func (export "max_zeros") (result i64)
    f64.const -0.0
    f64.const 0.0
    f64.max
    i64.reinterpret_f64)
  (func (export "copysign") (result f64)
    f64.const 3.0
    f64.const -1.0
    f64.copysign))
