(module
  (func $abs (param i32) (result i32)
    local.get 0
    i32.const 0
    i32.lt_s
    if (result i32)
      i32.const 0
      local.get 0
      i32.sub
    else
      local.get 0
    end)
  (func (export "abs_neg") (result i32)
    i32.const -5
    call $abs)
  (func (export "abs_pos") (result i32)
    i32.const 5
    call $abs)
  (func (export "if_no_else") (result i32)
    (local i32)
    i32.const 1
    if
      i32.const 42
      local.set 0
    end
    local.get 0))
