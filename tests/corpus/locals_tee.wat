;; local.tee and read-after-write hazards inside fusable runs.
(module
  (func (export "tee_chain") (result i32)
    (local i32 i32)
    i32.const 5
    local.tee 0
    local.tee 1
    local.get 0
    i32.add
    local.get 1
    i32.add)
  (func (export "read_then_write") (result i32)
    (local i32)
    i32.const 3
    local.set 0
    local.get 0
    local.get 0
    i32.const 10
    local.set 0
    i32.add
    local.get 0
    i32.add)
  (func (export "tee_self") (result i32)
    (local i32)
    i32.const 8
    local.set 0
    local.get 0
    local.tee 0
    local.get 0
    i32.add))
