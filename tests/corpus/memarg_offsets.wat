;; Static offsets, including the last in-bounds slot and one past it.
(module
  (memory 1)
  (func (export "offset_load") (result i32)
    i32.const 100
    i32.const 77
    i32.store offset=28
    i32.const 96
    i32.load offset=32)
  (func (export "last_byte") (result i32)
    i32.const 65535
    i32.load8_u)
  (func (export "last_word") (result i32)
    i32.const 0
    i32.load offset=65532)
  (func (export "one_past") (result i32)
    i32.const 1
    i32.load offset=65532)
  (func (export "huge_offset") (result i32)
    i32.const 0
    i32.load8_u offset=131072))
