(module
  (memory 1 4)
  (func (export "grow_use") (result i32)
    memory.size
    drop
    i32.const 1
    memory.grow
    drop
    i32.const 70000
    i32.const 123
    i32.store
    i32.const 70000
    i32.load
    memory.size
    i32.add)
  (func (export "grow_fail") (result i32)
    i32.const 100
    memory.grow))
