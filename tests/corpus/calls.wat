(module
  (func $double (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.mul)
  (func $apply_twice (param i32) (result i32)
    local.get 0
    call $double
    call $double)
  (func (export "quad") (result i32)
    i32.const 5
    call $apply_twice)
  (func (export "early_return") (result i32)
    i32.const 1
    if
      i32.const 7
      return
    end
    i32.const 9))
