;; memory.fill: vectorized in the interpreter, one store per instruction.
(module
  (memory 1)
  (func (export "fill_sum") (result i32)
    i32.const 16
    i32.const 0xAB
    i32.const 8
    memory.fill
    i32.const 16
    i32.load8_u
    i32.const 23
    i32.load8_u
    i32.add
    i32.const 15
    i32.load8_u
    i32.add
    i32.const 24
    i32.load8_u
    i32.add)
  (func (export "fill_zero_len") (result i32)
    i32.const 0
    i32.const 0xFF
    i32.const 0
    memory.fill
    i32.const 0
    i32.load8_u)
  (func (export "fill_oob") (result i32)
    i32.const 65530
    i32.const 1
    i32.const 100
    memory.fill
    i32.const 65530
    i32.load8_u))
