(module
  (func (export "conv_s") (result f64)
    i32.const -5
    f64.convert_i32_s)
  (func (export "conv_u") (result f64)
    i32.const -5
    f64.convert_i32_u)
  (func (export "conv64") (result f32)
    i64.const 0xFFFFFFFFFFFFFFFF
    f32.convert_i64_u)
  (func (export "demote") (result f32)
    f64.const 1.0000000001
    f32.demote_f64)
  (func (export "promote") (result f64)
    f32.const 0.1
    f64.promote_f32))
