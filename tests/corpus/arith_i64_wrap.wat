;; i64 arithmetic wraps modulo 2**64.
(module
  (func (export "add_wrap") (result i64)
    i64.const 0xFFFFFFFFFFFFFFFF
    i64.const 1
    i64.add)
  (func (export "sub_wrap") (result i64)
    i64.const 0
    i64.const 1
    i64.sub)
  (func (export "mul_wrap") (result i64)
    i64.const 0x100000000
    i64.const 0x100000000
    i64.mul))
