;; Values pushed by one fused region are consumed by the next: loads
;; end a region, so the adds below always pop across region boundaries.
(module
  (memory 1)
  (func (export "stencil") (result f64)
    (local i32)
    i32.const 8
    local.set 0
    i32.const 8
    f64.const 1.25
    f64.store
    i32.const 16
    f64.const 2.25
    f64.store
    i32.const 24
    f64.const 4.5
    f64.store
    local.get 0
    f64.load
    local.get 0
    f64.load offset=8
    f64.add
    local.get 0
    f64.load offset=16
    f64.add
    f64.const 0.5
    f64.mul)
  (func (export "deep_stack") (result i32)
    i32.const 1
    i32.const 2
    i32.const 3
    i32.const 4
    i32.const 5
    i32.add
    i32.add
    i32.add
    i32.add))
