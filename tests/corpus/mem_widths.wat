;; Every load/store width, signed and unsigned reads.
(module
  (memory 1)
  (func (export "bytes") (result i32)
    i32.const 0
    i32.const 0x89
    i32.store8
    i32.const 0
    i32.load8_s
    i32.const 0
    i32.load8_u
    i32.add)
  (func (export "halves") (result i32)
    i32.const 2
    i32.const 0x8001
    i32.store16
    i32.const 2
    i32.load16_s
    i32.const 2
    i32.load16_u
    i32.add)
  (func (export "words") (result i32)
    i32.const 4
    i32.const 0xDEADBEEF
    i32.store
    i32.const 4
    i32.load)
  (func (export "longs") (result i64)
    i32.const 8
    i64.const -2
    i64.store
    i32.const 8
    i64.load)
  (func (export "long_sub") (result i64)
    i32.const 16
    i64.const 0x8000000080000000
    i64.store
    i32.const 16
    i64.load32_s
    i32.const 16
    i64.load32_u
    i64.add)
  (func (export "floats") (result f64)
    i32.const 24
    f32.const 1.5
    f32.store
    i32.const 28
    f64.const 2.5
    f64.store
    i32.const 24
    f32.load
    f64.promote_f32
    i32.const 28
    f64.load
    f64.add))
