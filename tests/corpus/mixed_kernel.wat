;; A miniature dot-product kernel: loop, address chains, loads, a
;; multiply-accumulate and a store per iteration.
(module
  (memory 1)
  (func (export "dot8") (result f64)
    (local i32 f64)
    block
      loop
        local.get 0
        i32.const 8
        i32.ge_s
        br_if 1
        local.get 0
        i32.const 8
        i32.mul
        local.get 0
        i32.const 1
        i32.add
        f64.convert_i32_s
        f64.store
        local.get 1
        local.get 0
        i32.const 8
        i32.mul
        f64.load
        local.get 0
        i32.const 2
        i32.add
        f64.convert_i32_s
        f64.mul
        f64.add
        local.set 1
        local.get 0
        i32.const 1
        i32.add
        local.set 0
        br 0
      end
    end
    local.get 1))
