(module
  (func (export "sel_true") (result i32)
    i32.const 11
    i32.const 22
    i32.const 1
    select)
  (func (export "sel_false") (result i32)
    i32.const 11
    i32.const 22
    i32.const 0
    select)
  (func (export "dropped") (result i32)
    i32.const 1
    i32.const 2
    drop)
  (func (export "sel_f64") (result f64)
    f64.const 1.5
    f64.const 2.5
    i32.const 0
    select))
