;; Width changes: wrap, zero/sign extension, sign-extension operators.
(module
  (func (export "wrap") (result i32)
    i64.const 0x1234567890ABCDEF
    i32.wrap_i64)
  (func (export "extend_s") (result i64)
    i32.const -2
    i64.extend_i32_s)
  (func (export "extend_u") (result i64)
    i32.const -2
    i64.extend_i32_u)
  (func (export "extend8") (result i32)
    i32.const 0x180
    i32.extend8_s)
  (func (export "extend16") (result i32)
    i32.const 0x18000
    i32.extend16_s)
  (func (export "extend32_64") (result i64)
    i64.const 0x80000000
    i64.extend32_s))
