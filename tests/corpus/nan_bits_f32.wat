(module
  (func (export "zero_div_zero") (result i32)
    f32.const 0
    f32.const 0
    f32.div
    i32.reinterpret_f32)
  (func (export "nan_min") (result i32)
    f32.const 0
    f32.const 0
    f32.div
    f32.const 1
    f32.min
    i32.reinterpret_f32))
