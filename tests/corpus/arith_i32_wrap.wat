;; i32 arithmetic wraps modulo 2**32.
(module
  (func (export "add_wrap") (result i32)
    i32.const 0xFFFFFFFF
    i32.const 1
    i32.add)
  (func (export "sub_wrap") (result i32)
    i32.const 0
    i32.const 1
    i32.sub)
  (func (export "mul_wrap") (result i32)
    i32.const 0x10000
    i32.const 0x10000
    i32.mul)
  (func (export "mixed_chain") (result i32)
    i32.const 0x7FFFFFFF
    i32.const 2
    i32.mul
    i32.const 3
    i32.add
    i32.const 5
    i32.sub))
