"""The coverage-guided fuzzing campaign (repro.fuzz).

Covers the campaign's own contracts rather than the substrate's:
deterministic coverage collection, jobs-independent campaign reports,
minimizer soundness, corpus promotion round trips under all three
execution tiers, the coverage advantage over same-budget random
seeding, and the acceptance scenario — a seeded reintroduction of the
interior-page touch regression is found, minimized and promoted
automatically.
"""

import json
import random

import pytest

from repro.diffcheck.fuzz import check_case, check_fuzz, check_module_case
from repro.diffcheck.report import DiffReport
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.genome import (
    Gene,
    Genome,
    build_genome_module,
    fill_pages,
    genome_from_json,
    genome_from_seed,
    genome_to_json,
)
from repro.fuzz.minimize import ddmin, minimize_bytes, minimize_genome
from repro.fuzz.mutators import mutate_bytes, mutate_genome, mutate_memarg
from repro.fuzz.oracles import run_oracles
from repro.fuzz.promote import module_to_flat_wat, promote_find
from repro.runtime.interpreter import Interpreter
from repro.runtime.memory import LinearMemory
from repro.wasm import encode_module, validate_module
from repro.wasm.coverage import COVERAGE, collecting
from repro.wasm.errors import Trap
from repro.wasm.wat_parser import parse_wat

pytestmark = pytest.mark.diff


def _run_genome(genome):
    module = build_genome_module(genome)
    interp = Interpreter(module, strategy="trap", validate=False)
    try:
        return interp.invoke("run", genome.arg)
    except Trap:
        return None


class TestCoverage:
    def test_disabled_by_default_and_cost_free(self):
        genome = genome_from_seed(3)
        assert not COVERAGE.enabled
        _run_genome(genome)
        assert COVERAGE.edge_count == 0

    def test_collection_is_deterministic(self):
        genome = genome_from_seed(5)
        snapshots = []
        for _ in range(2):
            with collecting():
                _run_genome(genome)
                snapshots.append((COVERAGE.snapshot(), COVERAGE.signature()))
        assert snapshots[0] == snapshots[1]
        snapshot, _ = snapshots[0]
        assert snapshot["decoder"] == {}  # nothing decoded in this run
        assert snapshot["dispatch"], "dispatch edges must be recorded"

    def test_collecting_restores_enabled_state(self):
        assert not COVERAGE.enabled
        with collecting():
            assert COVERAGE.enabled
        assert not COVERAGE.enabled


class TestCheckFuzzDeterminism:
    def test_jobs_do_not_change_report_or_batches(self):
        reports, progress = [], []
        for jobs in (1, 2):
            report = DiffReport()
            lines = []
            check_fuzz(40, 0, report, jobs=jobs, progress=lines.append)
            reports.append(json.dumps(report.to_json(), sort_keys=True))
            progress.append(lines)
        assert reports[0] == reports[1]
        assert progress[0] == progress[1]


class TestMutators:
    def test_genome_mutants_always_build(self):
        rng = random.Random(11)
        genome = genome_from_seed(1)
        for _ in range(100):
            genome = mutate_genome(genome, rng)
            assert genome.genes
            validate_module(build_genome_module(genome))

    def test_genome_json_roundtrip(self):
        genome = genome_from_seed(9)
        assert genome_from_json(genome_to_json(genome)) == genome


class TestMinimizer:
    def test_ddmin_finds_minimal_subset(self):
        # Failure requires both 3 and 7 to be present.
        result = ddmin(
            list(range(10)), lambda items: 3 in items and 7 in items
        )
        assert sorted(result) == [3, 7]

    def test_ddmin_never_returns_non_failing(self):
        result = ddmin([1, 2, 3, 4, 5, 6], lambda items: sum(items) >= 10)
        assert sum(result) >= 10
        assert len(result) < 6

    def test_minimize_genome_shrinks_to_responsible_gene(self):
        noise = tuple(genome_from_seed(2).genes)
        genome = Genome(noise + (Gene("fill", 9, 1, 100, 9000),), 5)

        def fails(candidate):
            return any(g.kind == "fill" for g in candidate.genes)

        minimized = minimize_genome(genome, fails)
        assert fails(minimized)
        assert len(minimized.genes) == 1
        assert minimized.genes[0].kind == "fill"
        # Constants shrink toward small values too.
        assert abs(minimized.genes[0].c) <= 100
        assert minimized.arg <= 5

    def test_minimize_bytes_prefix_predicate(self):
        data = bytes(range(40))

        def fails(candidate):
            return b"\x05" in candidate and b"\x20" in candidate

        minimized = minimize_bytes(data, fails)
        assert fails(minimized)
        assert len(minimized) <= 4


class TestPromotion:
    def test_round_trip_under_all_tiers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_TIER_STRICT", "1")
        genome = Genome(
            (Gene("fill", 170, 1, 100, 9000), Gene("loop", 3, 2, 8, 0)), 5
        )
        module = build_genome_module(genome)
        entry = promote_find(
            module, genome.arg, ["fuzz.page-span"], tmp_path, genome=genome
        )
        assert entry["file"].startswith("campaign_")
        replayed = parse_wat((tmp_path / entry["file"]).read_text())
        validate_module(replayed)

        def outcome(mod, tier):
            interp = Interpreter(
                mod, strategy="trap", validate=False, tier=tier,
                track_pages=True,
            )
            try:
                value = interp.invoke("run", entry["arg"])
            except Trap as exc:
                return ("trap", exc.kind)
            return (
                "value", value,
                interp.memory.load_count, interp.memory.store_count,
                tuple(sorted(interp.memory.touched_pages)),
            )

        for tier in ("legacy", "fused", "opt"):
            assert outcome(replayed, tier) == outcome(module, tier), tier
        report = check_module_case(replayed, entry["arg"])
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_promotion_is_idempotent(self, tmp_path):
        genome = genome_from_seed(2)
        module = build_genome_module(genome)
        first = promote_find(module, genome.arg, ["fuzz.x"], tmp_path)
        second = promote_find(module, genome.arg, ["fuzz.x"], tmp_path)
        assert first["id"] == second["id"]
        catalogue = json.loads((tmp_path / "seeds.json").read_text())
        assert len(catalogue["campaign"]) == 1

    def test_flat_wat_preserves_behaviour(self):
        for seed in range(8):
            genome = genome_from_seed(seed)
            module = build_genome_module(genome)
            replayed = parse_wat(module_to_flat_wat(module))
            validate_module(replayed)
            assert encode_module(replayed) is not None


class TestCampaign:
    def test_report_identical_across_jobs(self, tmp_path):
        payloads = []
        for jobs in (1, 2):
            result = run_campaign(CampaignConfig(
                cases=40, seed=1, jobs=jobs, corpus_dir=tmp_path / str(jobs),
            ))
            payloads.append(json.dumps(result, sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_clean_substrate_produces_no_finds(self, tmp_path):
        result = run_campaign(CampaignConfig(
            cases=60, seed=1, jobs=1, corpus_dir=tmp_path,
        ))
        assert not result["confirmed_divergence"], result["finds"]
        assert result["finds"] == []
        assert result["corpus"]["entries"] >= 8

    def test_beats_random_seeding_on_every_map(self, tmp_path):
        """Same budget, strictly more distinct edges per coverage map."""
        budget = 60
        result = run_campaign(CampaignConfig(
            cases=budget, seed=1, jobs=1, corpus_dir=tmp_path,
        ))
        random_edges = set()
        for seed in range(1, budget + 1):
            with collecting():
                check_case(seed, DiffReport())
                random_edges |= COVERAGE.edge_keys()
        random_per_map = {}
        for map_name, _, _ in random_edges:
            random_per_map[map_name] = random_per_map.get(map_name, 0) + 1
        campaign_per_map = result["coverage"]["per_map"]
        for map_name in ("decoder", "validator", "dispatch"):
            assert campaign_per_map[map_name] > random_per_map[map_name], (
                map_name, campaign_per_map, random_per_map
            )


def _buggy_touch(self, address, size):
    """PR 3's interior-page regression: only first/last page recorded."""
    if not self.track_pages or size <= 0:
        return
    self.touched_pages.add(address >> 12)
    self.touched_pages.add((address + size - 1) >> 12)


class TestSeededRegression:
    def test_interior_page_bug_found_minimized_promoted(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(LinearMemory, "_touch", _buggy_touch)
        result = run_campaign(CampaignConfig(
            cases=60, seed=0, jobs=1, corpus_dir=tmp_path,
            promote=True, max_finds=3,
        ))
        assert result["confirmed_divergence"]
        span = [
            f for f in result["finds"] if "fuzz.page-span" in f["checks"]
        ]
        assert span, result["finds"]
        find = span[0]
        # Minimized to the responsible ranged access alone.
        genome = genome_from_json(find["genome"])
        assert len(genome.genes) == 1
        assert genome.genes[0].kind == "fill"
        assert len(fill_pages(genome)) >= 3  # has interior pages
        # Promoted as replayable WAT plus a seeds.json campaign entry.
        assert find["promoted"], find
        assert (tmp_path / find["promoted"]).exists()
        catalogue = json.loads((tmp_path / "seeds.json").read_text())
        promoted_ids = {e["id"] for e in catalogue["campaign"]}
        assert find["promoted"].split("_")[1].split(".")[0] in promoted_ids

        # With the real (fixed) runtime the promoted find replays green.
        monkeypatch.undo()
        replayed = parse_wat((tmp_path / find["promoted"]).read_text())
        report = DiffReport()
        check_module_case(replayed, genome.arg, report)
        run_oracles(replayed, genome.arg, report, {}, genome=genome)
        assert report.ok, "\n".join(v.render() for v in report.violations)


class TestByteLevelMutants:
    def test_byte_mutants_hit_decoder_rejection_edges(self):
        rng = random.Random(3)
        encoded = encode_module(build_genome_module(genome_from_seed(3)))
        saw_error_edge = False
        for _ in range(120):
            mutant = (
                mutate_memarg(encoded, rng) if rng.random() < 0.5
                else mutate_bytes(encoded, rng)
            )
            with collecting():
                from repro.wasm import decode_module
                from repro.wasm.errors import WasmError
                try:
                    decode_module(mutant)
                except WasmError:
                    pass
                if any(
                    cur == "^error" for _, cur in COVERAGE.decoder
                ):
                    saw_error_edge = True
                    break
        assert saw_error_edge, "no decoder rejection edge ever recorded"
