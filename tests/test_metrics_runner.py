"""Tests for static module metrics and the sweep runner."""

import pytest

from repro.api import FIELDS, SweepSpec, run, to_csv
from repro.core.profiles import profile_for
from repro.wasm.metrics import module_stats


class TestModuleStats:
    @pytest.fixture(scope="class")
    def gemm_stats(self):
        module, _ = profile_for("gemm", "mini")
        return module_stats(module)

    def test_function_inventory(self, gemm_stats):
        names = {f.name for f in gemm_stats.functions}
        assert {"init", "kernel", "bench"} <= names

    def test_instruction_counts_consistent(self, gemm_stats):
        assert gemm_stats.total_instructions == sum(
            gemm_stats.opcode_histogram.values()
        )

    def test_kernel_has_nested_loops(self, gemm_stats):
        kernel = next(f for f in gemm_stats.functions if f.name == "kernel")
        assert kernel.max_nesting >= 6  # 3 loops, each block+loop

    def test_memory_ops_counted(self, gemm_stats):
        assert gemm_stats.static_memory_op_fraction > 0.02
        kernel = next(f for f in gemm_stats.functions if f.name == "kernel")
        assert kernel.memory_ops > 0

    def test_binary_size_positive(self, gemm_stats):
        assert gemm_stats.binary_bytes > 100
        assert gemm_stats.memory_pages >= 1

    def test_top_opcodes(self, gemm_stats):
        top = dict(gemm_stats.top_opcodes(5))
        assert "local.get" in top or "i32.const" in top

    def test_bench_calls_init_and_kernel(self, gemm_stats):
        bench = next(f for f in gemm_stats.functions if f.name == "bench")
        assert bench.calls == 2


class TestSweepSpec:
    def test_invalid_combinations_skipped(self):
        spec = SweepSpec(
            workloads=["gemm"],
            runtimes=["wavm", "wasm3"],
            strategies=["none", "trap"],
            isas=["x86_64", "riscv64"],
            threads=[1, 4],
        )
        configs = list(spec.configurations())
        # wavm has no riscv backend; wasm3 only traps; riscv has 1 core.
        assert ("wavm", "none", "x86_64", 1) in configs
        assert ("wasm3", "trap", "riscv64", 1) in configs
        assert all(r != "wavm" or i != "riscv64" for r, _, i, _ in configs)
        assert ("wasm3", "none", "x86_64", 1) not in configs
        assert ("wasm3", "trap", "riscv64", 4) not in configs

    def test_run_produces_rows(self):
        spec = SweepSpec(
            workloads=["trisolv"],
            runtimes=["wavm"],
            strategies=["none", "mprotect"],
            threads=[1],
            size="mini",
            iterations=2,
        )
        seen = []
        rows = run(spec, progress=seen.append)
        assert len(rows) == 2
        assert len(seen) == 2
        for row in rows:
            assert set(FIELDS) <= set(row)
            assert row["median_ms"] > 0

    def test_csv_export(self):
        spec = SweepSpec(
            workloads=["trisolv"], runtimes=["wavm"], strategies=["none"],
            size="mini", iterations=2,
        )
        text = to_csv(run(spec))
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,runtime,strategy")
        assert len(lines) == 2
        assert "trisolv,wavm,none" in lines[1]
