"""Smoke + invariant tests for the figure experiments.

Each experiment runs on tiny inputs (mini size, reduced workload sets)
and its output is checked against the paper's qualitative claims.
"""

import json

import pytest

from repro.core.experiments import fig1, fig2, fig3, fig4, fig5, fig6, replication
from repro.core.experiments.common import (
    PBC_QUICK,
    SPEC_QUICK,
    configs_for_isa,
    suite_names,
)

# Narrow sets keep the suite fast; contention shapes survive because
# the short benchmarks are included.
FAST_PBC = ["gemm", "trisolv"]
FAST_SPEC = ["519.lbm"]


@pytest.fixture(autouse=True)
def small_sets(monkeypatch):
    for module in (fig1, fig2, fig3, fig4, fig5, fig6, replication):
        monkeypatch.setattr(
            module,
            "suite_names",
            lambda suite, quick: FAST_PBC if suite == "polybench" else FAST_SPEC,
        )


class TestCommon:
    def test_quick_sets_are_subsets_of_catalogue(self):
        from repro.workloads import WORKLOADS

        for name in PBC_QUICK + SPEC_QUICK:
            assert name in WORKLOADS

    def test_configs_for_isa_respects_backend_gaps(self):
        x86 = configs_for_isa("x86_64")
        riscv = configs_for_isa("riscv64")
        assert ("wavm", "mprotect") in x86
        assert all(runtime not in ("wavm", "wasmtime") for runtime, _ in riscv)
        assert ("wasm3", "trap") in riscv


class TestFig1:
    def test_rows_and_invariants(self):
        rows = fig1.run(size="mini")
        assert {r["benchmark"] for r in rows} == set(FAST_PBC + FAST_SPEC)
        for row in rows:
            # Checks can only slow V8 down.
            assert row["v8_default_vs_native"] >= row["v8_none_vs_native"] * 0.99
            assert row["v8_trap_vs_native"] >= row["v8_none_vs_native"] * 0.99
        assert "Fig. 1" in fig1.render(rows)


class TestFig2:
    def test_x86_ordering(self):
        rows = fig2.run("x86_64", size="mini")
        by = {
            (r["suite"], r["runtime"], r["strategy"]): r["geomean_vs_native"]
            for r in rows
        }
        # Runtime ordering on the default strategy (§4.1).
        assert by[("polybench", "wavm", "mprotect")] < by[("polybench", "wasmtime", "mprotect")]
        assert by[("polybench", "v8", "mprotect")] < by[("polybench", "wasm3", "trap")]
        # clamp worse than trap everywhere.
        for runtime in ("wavm", "wasmtime", "v8"):
            assert by[("polybench", runtime, "clamp")] > by[("polybench", runtime, "trap")]
        # mprotect/uffd near none except V8's ~10 points.
        assert by[("polybench", "wavm", "mprotect")] - by[("polybench", "wavm", "none")] < 0.06
        v8_gap = by[("polybench", "v8", "mprotect")] - by[("polybench", "v8", "none")]
        assert 0.03 < v8_gap < 0.25

    def test_riscv_has_no_spec_and_no_cranelift(self):
        rows = fig2.run("riscv64", size="mini")
        assert {r["suite"] for r in rows} == {"polybench"}
        assert {r["runtime"] for r in rows} == {"native-gcc", "v8", "wasm3"}


class TestFig3:
    def test_mprotect_scales_worst_on_polybench(self):
        rows = fig3.run(isa="x86_64", size="mini", suites=("polybench",))
        at16 = {
            (r["runtime"], r["strategy"]): r["slowdown_vs_1t"]
            for r in rows
            if r["threads"] == 16
        }
        assert at16[("wavm", "mprotect")] > at16[("wavm", "none")]
        # Scaling is near-perfect for none/uffd.
        assert at16[("wavm", "none")] < 1.03
        assert at16[("wavm", "uffd")] < 1.05


class TestFig4:
    def test_utilisation_shapes(self):
        rows = fig4.run(isa="x86_64", size="mini", suites=("polybench",))
        by = {
            (r["runtime"], r["strategy"], r["threads"]): r["utilisation_percent"]
            for r in rows
        }
        # Everyone saturates one core single-threaded; V8 exceeds it.
        assert by[("wavm", "none", 1)] == pytest.approx(100, abs=5)
        assert by[("v8", "none", 1)] > 110
        # 16 threads: none saturates; mprotect does not; V8 does not.
        assert by[("wavm", "none", 16)] > 1550
        assert by[("wavm", "mprotect", 16)] < by[("wavm", "none", 16)] - 50
        assert by[("v8", "none", 16)] < 1550


class TestFig5:
    def test_v8_context_switch_blowup(self):
        rows = fig5.run(isa="x86_64", size="mini", suites=("polybench",))
        by = {
            (r["runtime"], r["strategy"], r["threads"]): r["ctx_per_sec"]
            for r in rows
        }
        # Order-of-magnitude on long benchmarks (see test_harness); the
        # suite geomean still shows a clear multiple.
        assert by[("v8", "none", 16)] > 3 * by[("wavm", "none", 16)]
        assert by[("wavm", "mprotect", 16)] > 3 * by[("wavm", "none", 16)]


class TestFig6:
    def test_memory_insensitive_to_strategy_but_not_isa(self):
        x86_rows = fig6.run(isa="x86_64", size="mini", suites=("polybench",))
        arm_rows = fig6.run(isa="armv8", size="mini", suites=("polybench",))
        x86 = {
            (r["runtime"], r["strategy"]): r["mem_avg_mib"] for r in x86_rows
        }
        arm = {
            (r["runtime"], r["strategy"]): r["mem_avg_mib"] for r in arm_rows
        }
        # Strategy-insensitive within a runtime (paper: "no significant
        # variance"): none vs uffd within 2x.
        ratio = x86[("wavm", "none")] / x86[("wavm", "uffd")]
        assert 0.5 < ratio < 2.0
        # THP granularity: x86 reports much more than Armv8 (Fig. 6).
        assert x86[("wavm", "none")] > 3 * arm[("wavm", "none")]


class TestReplication:
    def test_all_claims_present(self):
        rows = replication.run(size="mini")
        claims = {r["claim"] for r in rows}
        assert "wasm3-vs-v8-x86_64" in claims
        assert "jangda-spec-v8-x86_64" in claims
        assert "wavm-overhead-x86" in claims
        wasm3 = [r for r in rows if r["claim"] == "wasm3-vs-v8-x86_64"][0]
        assert 3.0 < wasm3["measured"] < 15.0


class TestPersistence:
    def test_results_saved_as_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        rows = fig1.run(size="mini")
        from repro.core.experiments.common import save_results

        path = save_results("fig1-test", rows)
        loaded = json.loads(path.read_text())
        assert loaded[0]["benchmark"] == rows[0]["benchmark"]


class TestCheriExtension:
    def test_projected_strategy_behaves_like_uffd_at_scale(self, monkeypatch):
        from repro.core.experiments import extension_cheri

        monkeypatch.setattr(
            extension_cheri, "suite_names", lambda suite, quick: ["trisolv"]
        )
        rows = extension_cheri.run(size="mini")
        by = {r["strategy"]: r for r in rows}
        # No inline code: single-thread cost equals `none` exactly.
        assert by["cheri"]["geomean_vs_native_1t"] == pytest.approx(
            by["none"]["geomean_vs_native_1t"], rel=1e-3
        )
        # No exclusive-lock traffic: scales like uffd, not mprotect.
        assert by["cheri"]["trisolv_util_16t"] > 1550
        assert by["mprotect"]["trisolv_util_16t"] < 1500
