"""Shared pytest plumbing for the test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden trace files instead of comparing to them",
    )


@pytest.fixture
def regen_golden(request):
    """True when the run should regenerate golden files."""
    return request.config.getoption("--regen-golden")
