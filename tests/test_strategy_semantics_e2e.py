"""End-to-end functional semantics of the bounds strategies.

Whole Wasm programs that intentionally stray out of bounds, executed
under every strategy: the trapping strategies must stop the program at
the faulting access, ``clamp`` must redirect it, and ``none`` must let
it run to completion reading zeros — §3.1's semantics, observed from
inside the program rather than via the memory API.
"""

import pytest

from repro.runtime import Interpreter
from repro.runtime.strategies import STRATEGY_ORDER
from repro.wasm import Trap
from repro.wasm.dsl import DslModule


def oob_scanner(n_valid=4):
    """Sums a[0..limit): reads past the end when limit is too large."""
    dm = DslModule("scanner")
    a = dm.array_i32("a", n_valid)
    f = dm.func("fill")
    i = f.i32()
    with f.for_(i, 0, n_valid):
        f.store(a[i], i + 1)
    g = dm.func("scan", params=[("limit", "i32")], results=["i32"])
    limit = g.params[0]
    i, acc = g.i32(), g.i32()
    with g.for_(i, 0, limit):
        g.set(acc, acc + a[i])
    g.ret(acc)
    return dm.build(), n_valid


def oob_writer():
    """Writes one i32 far beyond the single declared page."""
    dm = DslModule("writer")
    a = dm.array_i32("a", 4)
    f = dm.func("poke", params=[("addr", "i32"), ("value", "i32")])
    # Raw address write through a[0]'s slot plus an offset expression.
    f.store(a[f.params[0] % 4], f.params[1])
    w = dm.func("wild", params=[("value", "i32")])
    w.fb.emit("i32.const", 32 * 65536)  # far past the declared memory
    value_idx = 0
    w.fb.emit("local.get", value_idx)
    w.fb.emit("i32.store", 2, 0)
    return dm.build()


class TestTrappingStrategies:
    @pytest.mark.parametrize(
        "strategy", ["trap", "mprotect", "uffd", "mte", "wasm64"]
    )
    def test_oob_read_traps(self, strategy):
        module, n_valid = oob_scanner()
        interp = Interpreter(module, strategy=strategy)
        interp.invoke("fill")
        # In-bounds reads fine...
        assert interp.invoke("scan", n_valid) == sum(range(1, n_valid + 1))
        # ...but scanning past the memory end traps.
        pages_worth = 64 * 1024 // 4
        with pytest.raises(Trap, match="out-of-bounds"):
            interp.invoke("scan", 64 * pages_worth)

    @pytest.mark.parametrize(
        "strategy", ["trap", "mprotect", "uffd", "mte", "wasm64"]
    )
    def test_oob_write_traps(self, strategy):
        module = oob_writer()
        interp = Interpreter(module, strategy=strategy)
        with pytest.raises(Trap, match="out-of-bounds"):
            interp.invoke("wild", 7)


class TestNone:
    def test_oob_reads_see_zero_and_program_completes(self):
        module, n_valid = oob_scanner()
        interp = Interpreter(module, strategy="none")
        interp.invoke("fill")
        pages_worth = 64 * 1024 // 4
        # The whole scan beyond memory contributes only zeros.
        result = interp.invoke("scan", 2 * pages_worth)
        assert result == sum(range(1, n_valid + 1))

    def test_oob_write_is_absorbed(self):
        module = oob_writer()
        interp = Interpreter(module, strategy="none")
        interp.invoke("wild", 42)  # no trap, no effect


class TestClamp:
    def test_oob_write_lands_at_memory_end(self):
        module = oob_writer()
        interp = Interpreter(module, strategy="clamp")
        interp.invoke("wild", 0x5A5A5A5A)
        end = interp.memory.size_bytes
        assert interp.memory.load_u32(end - 4) == 0x5A5A5A5A

    def test_oob_read_returns_last_slot(self):
        module, n_valid = oob_scanner()
        interp = Interpreter(module, strategy="clamp")
        interp.invoke("fill")
        end = interp.memory.size_bytes
        interp.memory.store_u32(end - 4, 1000)
        pages_worth = 64 * 1024 // 4
        over = 4  # read four slots past the end -> four clamped reads
        result = interp.invoke("scan", 16 * pages_worth + over)
        expected_valid = sum(range(1, n_valid + 1))
        # All OOB reads observed the clamped last slot.
        assert result >= expected_valid + over * 1000


class TestStrategyAgreementInBounds:
    def test_all_strategies_agree_on_well_behaved_programs(self):
        module, n_valid = oob_scanner()
        results = {}
        for strategy in STRATEGY_ORDER:
            interp = Interpreter(module, strategy=strategy)
            interp.invoke("fill")
            results[strategy] = interp.invoke("scan", n_valid)
        assert len(results) == 7
        assert len(set(results.values())) == 1

    def test_all_strategies_agree_on_counters_and_pages(self):
        # Bit-identity goes beyond the return value: the load/store
        # counters and first-touched page set must match across all
        # seven strategies for an in-bounds program.
        module, n_valid = oob_scanner()
        observed = {}
        for strategy in STRATEGY_ORDER:
            interp = Interpreter(module, strategy=strategy)
            interp.invoke("fill")
            interp.invoke("scan", n_valid)
            mem = interp.memory
            observed[strategy] = (
                mem.load_count, mem.store_count, frozenset(mem.touched_pages)
            )
        assert len(set(observed.values())) == 1
