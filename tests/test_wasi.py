"""Tests for the WASI preview-1 shim."""

import pytest

from repro.runtime import Interpreter
from repro.runtime.wasi import ERRNO_BADF, ERRNO_SUCCESS, ProcExit, WasiEnvironment
from repro.wasm import ModuleBuilder
from repro.wasm.types import ValType

I32, I64 = ValType.I32, ValType.I64

pytestmark = pytest.mark.wasi


def wasi_module(*import_names):
    """A module importing the named WASI functions, with helpers."""
    mb = ModuleBuilder("wasi-test")
    indices = {}
    signatures = {
        "args_sizes_get": ([I32, I32], [I32]),
        "args_get": ([I32, I32], [I32]),
        "clock_time_get": ([I32, I64, I32], [I32]),
        "fd_write": ([I32, I32, I32, I32], [I32]),
        "random_get": ([I32, I32], [I32]),
        "proc_exit": ([I32], []),
    }
    for name in import_names:
        params, results = signatures[name]
        indices[name] = mb.import_func(
            WasiEnvironment.MODULE, name, params, results
        )
    return mb, indices


def instantiate(mb, argv=None, seed=0):
    wasi = WasiEnvironment(argv=argv, seed=seed)
    interp = Interpreter(mb.build(), imports=wasi.imports())
    wasi.bind(interp)
    return interp, wasi


class TestFdWrite:
    def make(self, text=b"hello, wasi\n", fd=1):
        mb, idx = wasi_module("fd_write")
        mb.add_memory(1)
        mb.add_data(0, 64, text)          # the string
        # iovec at 0: base=64, len=len(text)
        fb = mb.func("say", results=[I32], export=True)
        fb.emit("i32.const", 0)
        fb.emit("i32.const", 64)
        fb.emit("i32.store", 2, 0)
        fb.emit("i32.const", 4)
        fb.emit("i32.const", len(text))
        fb.emit("i32.store", 2, 0)
        fb.emit("i32.const", fd)
        fb.emit("i32.const", 0)   # iovs
        fb.emit("i32.const", 1)   # iovs_len
        fb.emit("i32.const", 32)  # nwritten
        fb.emit("call", idx["fd_write"])
        return mb

    def test_stdout_captured(self):
        interp, wasi = instantiate(self.make())
        assert interp.invoke("say") == ERRNO_SUCCESS
        assert wasi.stdout() == "hello, wasi\n"
        assert interp.memory.load_u32(32) == 12  # nwritten

    def test_stderr_separate(self):
        interp, wasi = instantiate(self.make(b"oops", fd=2))
        interp.invoke("say")
        assert wasi.stderr() == "oops"
        assert wasi.stdout() == ""

    def test_bad_fd(self):
        interp, wasi = instantiate(self.make(fd=7))
        assert interp.invoke("say") == ERRNO_BADF


class TestClock:
    def make(self):
        mb, idx = wasi_module("clock_time_get")
        mb.add_memory(1)
        fb = mb.func("now", results=[I32], export=True)
        fb.emit("i32.const", 0)    # CLOCK_REALTIME
        fb.emit("i64.const", 0)    # precision
        fb.emit("i32.const", 16)   # out ptr
        fb.emit("call", idx["clock_time_get"])
        return mb

    def test_monotonic_and_deterministic(self):
        interp, _ = instantiate(self.make())
        interp.invoke("now")
        first = interp.memory.load_u64(16)
        interp.invoke("now")
        second = interp.memory.load_u64(16)
        assert second > first
        # A fresh environment replays the same virtual clock.
        interp2, _ = instantiate(self.make())
        interp2.invoke("now")
        assert interp2.memory.load_u64(16) == first


class TestArgs:
    def make(self):
        mb, idx = wasi_module("args_sizes_get", "args_get")
        mb.add_memory(1)
        fb = mb.func("load_args", results=[I32], export=True)
        fb.emit("i32.const", 0)
        fb.emit("i32.const", 4)
        fb.emit("call", idx["args_sizes_get"])
        fb.emit("drop")
        fb.emit("i32.const", 16)   # argv pointers
        fb.emit("i32.const", 128)  # string buffer
        fb.emit("call", idx["args_get"])
        return mb

    def test_argv_marshalled(self):
        interp, _ = instantiate(self.make(), argv=["prog", "--fast"])
        assert interp.invoke("load_args") == ERRNO_SUCCESS
        memory = interp.memory
        assert memory.load_u32(0) == 2           # argc
        assert memory.load_u32(4) == len("prog") + 1 + len("--fast") + 1
        first = memory.load_u32(16)
        raw = bytes(memory.load_bytes(first, 5))
        assert raw == b"prog\x00"


class TestRandom:
    def make(self):
        mb, idx = wasi_module("random_get")
        mb.add_memory(1)
        fb = mb.func("roll", results=[I32], export=True)
        fb.emit("i32.const", 0)
        fb.emit("i32.const", 16)
        fb.emit("call", idx["random_get"])
        return mb

    def test_seeded_and_reproducible(self):
        interp_a, _ = instantiate(self.make(), seed=42)
        interp_b, _ = instantiate(self.make(), seed=42)
        interp_c, _ = instantiate(self.make(), seed=43)
        interp_a.invoke("roll")
        interp_b.invoke("roll")
        interp_c.invoke("roll")
        a = bytes(interp_a.memory.load_bytes(0, 16))
        b = bytes(interp_b.memory.load_bytes(0, 16))
        c = bytes(interp_c.memory.load_bytes(0, 16))
        assert a == b
        assert a != c
        assert a != bytes(16)


class TestProcExit:
    def test_exit_raises_with_code(self):
        mb, idx = wasi_module("proc_exit")
        mb.add_memory(1)
        fb = mb.func("die", export=True)
        fb.emit("i32.const", 3)
        fb.emit("call", idx["proc_exit"])
        interp, _ = instantiate(mb)
        with pytest.raises(ProcExit) as info:
            interp.invoke("die")
        assert info.value.code == 3


class TestUnbound:
    def test_unbound_environment_traps_clearly(self):
        mb, idx = wasi_module("random_get")
        mb.add_memory(1)
        fb = mb.func("roll", results=[I32], export=True)
        fb.emit("i32.const", 0)
        fb.emit("i32.const", 4)
        fb.emit("call", idx["random_get"])
        wasi = WasiEnvironment()
        interp = Interpreter(mb.build(), imports=wasi.imports())
        from repro.wasm.errors import Trap

        with pytest.raises(Trap, match="bind"):
            interp.invoke("roll")
