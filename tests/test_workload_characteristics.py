"""Workload-characterization tests.

The paper is a workload characterization study; these tests pin down
the *computational character* of every suite member so the proxies
cannot silently drift away from what they stand in for (e.g. a SPEC
"pointer-chasing" proxy that stops chasing pointers would pass the
numeric check but fail here).
"""

import pytest

from repro.core.profiles import profile_for


def profile(name, size="mini"):
    return profile_for(name, size)[1]


def op_share(prof, prefixes):
    total = prof.total_instrs
    hits = sum(
        count for op, count in prof.op_totals.items()
        if op.startswith(prefixes)
    )
    return hits / total


class TestPolybenchCharacter:
    def test_float_kernels_are_f64_dominated(self):
        for name in ("gemm", "cholesky", "jacobi-2d", "adi"):
            prof = profile(name)
            assert op_share(prof, ("f64.",)) > 0.03, name
            assert op_share(prof, ("f32.",)) == 0.0, name

    def test_integer_kernels_have_no_float_ops(self):
        for name in ("floyd-warshall", "nussinov"):
            prof = profile(name)
            assert op_share(prof, ("f64.", "f32.")) == 0.0, name

    def test_memory_density_spread_exists(self):
        """Fig. 1 depends on a spread of memory-access densities."""
        fractions = {
            name: profile(name).mem_access_fraction
            for name in ("gemm", "durbin", "floyd-warshall", "gesummv")
        }
        assert max(fractions.values()) > 1.25 * min(fractions.values())

    def test_all_kernels_touch_memory(self):
        for name in ("gemm", "trisolv", "deriche", "seidel-2d"):
            prof = profile(name)
            assert prof.mem_loads > 0 and prof.mem_stores > 0

    def test_stencils_read_more_than_they_write(self):
        for name in ("jacobi-2d", "heat-3d", "seidel-2d", "fdtd-2d"):
            prof = profile(name)
            assert prof.mem_loads > 2 * prof.mem_stores, name

    def test_division_heavy_solvers(self):
        # Every solver divides by pivots/diagonals in its kernel.
        for name in ("cholesky", "trisolv", "ludcmp", "durbin"):
            assert profile(name).op_totals.get("f64.div", 0) > 0, name

    def test_sqrt_only_where_expected(self):
        assert profile("cholesky").op_totals.get("f64.sqrt", 0) > 0
        assert profile("gramschmidt").op_totals.get("f64.sqrt", 0) > 0
        assert profile("gemm").op_totals.get("f64.sqrt", 0) == 0


class TestSpecProxyCharacter:
    def test_mcf_is_integer_and_branchy(self):
        prof = profile("505.mcf")
        assert op_share(prof, ("f64.", "f32.")) == 0.0
        # Data-dependent branching: br_if executes frequently.
        assert prof.op_totals.get("br_if", 0) > 0.02 * prof.total_instrs

    def test_namd_and_nab_are_float_with_sqrt_or_div(self):
        namd = profile("508.namd")
        nab = profile("544.nab")
        assert op_share(namd, ("f64.",)) > 0.10
        assert namd.op_totals.get("f64.div", 0) > 0
        assert nab.op_totals.get("f64.sqrt", 0) > 0

    def test_lbm_is_the_most_memory_intense_float_proxy(self):
        lbm = profile("519.lbm")
        namd = profile("508.namd")
        assert lbm.mem_accesses > 2 * namd.mem_accesses
        assert lbm.mem_loads > 2 * lbm.mem_stores  # stencil reads

    def test_deepsjeng_recurses(self):
        prof = profile("531.deepsjeng")
        calls = prof.op_totals.get("call", 0)
        assert calls > 50  # deep recursive search
        assert op_share(prof, ("f64.", "f32.")) == 0.0

    def test_xz_walks_hash_chains(self):
        prof = profile("557.xz")
        # Chain walking: loads dominate stores heavily.
        assert prof.mem_loads > 2 * prof.mem_stores
        assert op_share(prof, ("f64.", "f32.")) == 0.0

    def test_x264_is_branchy_integer_sad(self):
        prof = profile("525.x264")
        assert prof.op_totals.get("select", 0) > 0  # |diff| via select
        assert op_share(prof, ("f64.", "f32.")) == 0.0


class TestProfileScaling:
    def test_work_grows_superlinearly_for_cubic_kernels(self):
        mini = profile("gemm", "mini")
        small = profile("gemm", "small")
        assert small.total_instrs > 8 * mini.total_instrs

    def test_mem_fraction_stable_across_sizes(self):
        mini = profile("gemm", "mini").mem_access_fraction
        small = profile("gemm", "small").mem_access_fraction
        assert abs(mini - small) < 0.05

    def test_grow_events_absent_with_preallocated_memory(self):
        # DSL modules declare their full memory; instance-level growth
        # is modelled by the lifecycle, not wasm-level memory.grow.
        assert profile("gemm").grow_events == []
