"""Semantic tests for the interpreter: numerics, control flow, traps."""

import math
import struct

import pytest

from repro.wasm import ModuleBuilder, Trap
from repro.wasm.errors import ExhaustionError, LinkError
from repro.wasm.types import ValType
from repro.runtime import Interpreter, HostFunc

I32, I64, F32, F64 = ValType.I32, ValType.I64, ValType.F32, ValType.F64


def run1(op, *args, types=None, result=I32, consts=None):
    """Evaluate a single instruction applied to constant arguments."""
    mb = ModuleBuilder()
    types = types or [I32] * len(args)
    fb = mb.func("f", params=list(types), results=[result], export=True)
    for index in range(len(args)):
        fb.emit("local.get", index)
    if consts:
        fb.emit(op, *consts)
    else:
        fb.emit(op)
    interp = Interpreter(mb.build())
    return interp.invoke("f", *args)


class TestI32Arithmetic:
    def test_add_wraps(self):
        assert run1("i32.add", 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert run1("i32.sub", 0, 1) == 0xFFFFFFFF

    def test_mul_wraps(self):
        assert run1("i32.mul", 0x10000, 0x10000) == 0

    def test_div_s_truncates_toward_zero(self):
        assert run1("i32.div_s", (-7) & 0xFFFFFFFF, 2) == (-3) & 0xFFFFFFFF

    def test_div_u(self):
        assert run1("i32.div_u", 0xFFFFFFFF, 2) == 0x7FFFFFFF

    def test_div_by_zero_traps(self):
        with pytest.raises(Trap, match="divide-by-zero"):
            run1("i32.div_s", 1, 0)

    def test_div_overflow_traps(self):
        with pytest.raises(Trap, match="overflow"):
            run1("i32.div_s", 0x80000000, 0xFFFFFFFF)

    def test_rem_s_sign_follows_dividend(self):
        assert run1("i32.rem_s", (-7) & 0xFFFFFFFF, 3) == (-1) & 0xFFFFFFFF
        assert run1("i32.rem_s", 7, (-3) & 0xFFFFFFFF) == 1

    def test_rem_s_no_overflow_trap(self):
        assert run1("i32.rem_s", 0x80000000, 0xFFFFFFFF) == 0

    def test_shifts_mask_count(self):
        assert run1("i32.shl", 1, 33) == 2
        assert run1("i32.shr_u", 0x80000000, 31) == 1

    def test_shr_s_is_arithmetic(self):
        assert run1("i32.shr_s", 0x80000000, 31) == 0xFFFFFFFF

    def test_rotl(self):
        assert run1("i32.rotl", 0x80000001, 1) == 0x00000003

    def test_rotr(self):
        assert run1("i32.rotr", 0x00000003, 1) == 0x80000001

    def test_clz_ctz_popcnt(self):
        assert run1("i32.clz", 1) == 31
        assert run1("i32.clz", 0) == 32
        assert run1("i32.ctz", 0x80000000) == 31
        assert run1("i32.ctz", 0) == 32
        assert run1("i32.popcnt", 0xF0F0F0F0) == 16

    def test_signed_comparisons(self):
        neg_one = 0xFFFFFFFF
        assert run1("i32.lt_s", neg_one, 0) == 1
        assert run1("i32.lt_u", neg_one, 0) == 0
        assert run1("i32.ge_s", neg_one, 0) == 0

    def test_eqz(self):
        assert run1("i32.eqz", 0) == 1
        assert run1("i32.eqz", 7) == 0


class TestI64Arithmetic:
    def test_add_wraps(self):
        assert run1("i64.add", (1 << 64) - 1, 1, types=[I64, I64], result=I64) == 0

    def test_mul(self):
        assert (
            run1("i64.mul", 1 << 32, 1 << 32, types=[I64, I64], result=I64) == 0
        )

    def test_div_s(self):
        neg7 = (-7) & ((1 << 64) - 1)
        assert run1("i64.div_s", neg7, 2, types=[I64, I64], result=I64) == (-3) & (
            (1 << 64) - 1
        )

    def test_clz64(self):
        assert run1("i64.clz", 1, types=[I64], result=I64) == 63


class TestFloats:
    def test_f64_arith(self):
        assert run1("f64.add", 1.5, 2.25, types=[F64, F64], result=F64) == 3.75

    def test_f64_div_by_zero_gives_inf(self):
        assert run1("f64.div", 1.0, 0.0, types=[F64, F64], result=F64) == math.inf
        assert run1("f64.div", -1.0, 0.0, types=[F64, F64], result=F64) == -math.inf

    def test_zero_div_zero_is_nan(self):
        assert math.isnan(run1("f64.div", 0.0, 0.0, types=[F64, F64], result=F64))

    def test_min_nan_propagates(self):
        assert math.isnan(
            run1("f64.min", math.nan, 1.0, types=[F64, F64], result=F64)
        )

    def test_min_negative_zero(self):
        result = run1("f64.min", -0.0, 0.0, types=[F64, F64], result=F64)
        assert math.copysign(1.0, result) == -1.0

    def test_max_positive_zero(self):
        result = run1("f64.max", -0.0, 0.0, types=[F64, F64], result=F64)
        assert math.copysign(1.0, result) == 1.0

    def test_sqrt(self):
        assert run1("f64.sqrt", 9.0, types=[F64], result=F64) == 3.0

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(run1("f64.sqrt", -1.0, types=[F64], result=F64))

    def test_nearest_ties_to_even(self):
        assert run1("f64.nearest", 2.5, types=[F64], result=F64) == 2.0
        assert run1("f64.nearest", 3.5, types=[F64], result=F64) == 4.0

    def test_floor_ceil_trunc(self):
        assert run1("f64.floor", -1.5, types=[F64], result=F64) == -2.0
        assert run1("f64.ceil", -1.5, types=[F64], result=F64) == -1.0
        assert run1("f64.trunc", -1.9, types=[F64], result=F64) == -1.0

    def test_copysign(self):
        assert run1("f64.copysign", 3.0, -1.0, types=[F64, F64], result=F64) == -3.0

    def test_f32_rounds_results(self):
        # 0.1 + 0.2 in f32 differs from f64.
        result = run1("f32.add", 0.1, 0.2, types=[F32, F32], result=F32)
        expected = struct.unpack("<f", struct.pack("<f",
            struct.unpack("<f", struct.pack("<f", 0.1))[0]
            + struct.unpack("<f", struct.pack("<f", 0.2))[0]))[0]
        assert result == expected

    def test_f32_abs(self):
        assert run1("f32.abs", -2.5, types=[F32], result=F32) == 2.5


class TestConversions:
    def test_wrap(self):
        assert run1("i32.wrap_i64", (1 << 35) + 7, types=[I64]) == 7

    def test_extend_s(self):
        assert (
            run1("i64.extend_i32_s", 0xFFFFFFFF, types=[I32], result=I64)
            == (1 << 64) - 1
        )

    def test_extend_u(self):
        assert run1("i64.extend_i32_u", 0xFFFFFFFF, types=[I32], result=I64) == 0xFFFFFFFF

    def test_trunc_basic(self):
        assert run1("i32.trunc_f64_s", -3.7, types=[F64]) == (-3) & 0xFFFFFFFF

    def test_trunc_nan_traps(self):
        with pytest.raises(Trap, match="invalid-conversion"):
            run1("i32.trunc_f64_s", math.nan, types=[F64])

    def test_trunc_overflow_traps(self):
        with pytest.raises(Trap, match="overflow"):
            run1("i32.trunc_f64_s", 3e9, types=[F64])

    def test_trunc_unsigned_range(self):
        assert run1("i32.trunc_f64_u", 3e9, types=[F64]) == 3_000_000_000

    def test_convert(self):
        assert run1("f64.convert_i32_s", 0xFFFFFFFF, types=[I32], result=F64) == -1.0
        assert run1("f64.convert_i32_u", 0xFFFFFFFF, types=[I32], result=F64) == 4294967295.0

    def test_reinterpret_roundtrip(self):
        bits = run1("i64.reinterpret_f64", 1.5, types=[F64], result=I64)
        assert bits == struct.unpack("<Q", struct.pack("<d", 1.5))[0]

    def test_sign_extension_ops(self):
        assert run1("i32.extend8_s", 0x80, types=[I32]) == 0xFFFFFF80
        assert run1("i32.extend16_s", 0x8000, types=[I32]) == 0xFFFF8000
        assert run1("i64.extend32_s", 0x80000000, types=[I64], result=I64) == (
            0xFFFFFFFF80000000
        )


class TestControlFlow:
    def test_if_else(self):
        mb = ModuleBuilder()
        fb = mb.func("f", params=[I32], results=[I32], export=True)
        fb.emit("local.get", 0)
        with fb.if_(I32):
            fb.emit("i32.const", 10)
            fb.else_()
            fb.emit("i32.const", 20)
        interp = Interpreter(mb.build())
        assert interp.invoke("f", 1) == 10
        assert interp.invoke("f", 0) == 20

    def test_br_table(self):
        mb = ModuleBuilder()
        fb = mb.func("f", params=[I32], results=[I32], export=True)
        result = fb.add_local(I32)
        with fb.block() as b0:
            with fb.block() as b1:
                with fb.block() as b2:
                    fb.emit("local.get", 0)
                    fb.emit("br_table", (0, 1), 2)
                fb.emit("i32.const", 100)
                fb.emit("local.set", result)
                fb.br(b0)
            fb.emit("i32.const", 200)
            fb.emit("local.set", result)
            fb.br(b0)
        fb.emit("local.get", result)
        interp = Interpreter(mb.build())
        assert interp.invoke("f", 0) == 100
        assert interp.invoke("f", 1) == 200
        assert interp.invoke("f", 9) == 0  # default: falls out with local unset

    def test_early_return(self):
        mb = ModuleBuilder()
        fb = mb.func("f", params=[I32], results=[I32], export=True)
        fb.emit("local.get", 0)
        with fb.if_():
            fb.emit("i32.const", 1)
            fb.emit("return")
        fb.emit("i32.const", 2)
        interp = Interpreter(mb.build())
        assert interp.invoke("f", 1) == 1
        assert interp.invoke("f", 0) == 2

    def test_unreachable_traps(self):
        mb = ModuleBuilder()
        fb = mb.func("f", export=True)
        fb.emit("unreachable")
        with pytest.raises(Trap, match="unreachable"):
            Interpreter(mb.build()).invoke("f")

    def test_loop_iterates(self):
        mb = ModuleBuilder()
        fb = mb.func("fact", params=[I32], results=[I32], export=True)
        acc = fb.add_local(I32)
        fb.emit("i32.const", 1)
        fb.emit("local.set", acc)
        with fb.block() as done:
            with fb.loop() as top:
                fb.emit("local.get", 0)
                fb.emit("i32.eqz")
                fb.br_if(done)
                fb.emit("local.get", acc)
                fb.emit("local.get", 0)
                fb.emit("i32.mul")
                fb.emit("local.set", acc)
                fb.emit("local.get", 0)
                fb.emit("i32.const", 1)
                fb.emit("i32.sub")
                fb.emit("local.set", 0)
                fb.br(top)
        fb.emit("local.get", acc)
        assert Interpreter(mb.build()).invoke("fact", 6) == 720

    def test_recursion(self):
        mb = ModuleBuilder()
        fb = mb.func("fib", params=[I32], results=[I32], export=True)
        fb.emit("local.get", 0)
        fb.emit("i32.const", 2)
        fb.emit("i32.lt_s")
        with fb.if_(I32):
            fb.emit("local.get", 0)
            fb.else_()
            fb.emit("local.get", 0)
            fb.emit("i32.const", 1)
            fb.emit("i32.sub")
            fb.emit("call", 0)
            fb.emit("local.get", 0)
            fb.emit("i32.const", 2)
            fb.emit("i32.sub")
            fb.emit("call", 0)
            fb.emit("i32.add")
        assert Interpreter(mb.build()).invoke("fib", 10) == 55

    def test_stack_exhaustion(self):
        mb = ModuleBuilder()
        fb = mb.func("inf", export=True)
        fb.emit("call", 0)
        with pytest.raises(ExhaustionError):
            Interpreter(mb.build()).invoke("inf")


class TestHostFunctions:
    def test_host_call(self):
        mb = ModuleBuilder()
        host_index = mb.import_func("env", "twice", [I32], [I32])
        fb = mb.func("f", params=[I32], results=[I32], export=True)
        fb.emit("local.get", 0)
        fb.emit("call", host_index)
        interp = Interpreter(
            mb.build(),
            imports={("env", "twice"): HostFunc((I32,), (I32,), lambda x: x * 2)},
        )
        assert interp.invoke("f", 21) == 42

    def test_missing_import_raises(self):
        mb = ModuleBuilder()
        mb.import_func("env", "gone", [], [])
        fb = mb.func("f", export=True)
        fb.emit("nop")
        with pytest.raises(LinkError, match="unresolved"):
            Interpreter(mb.build())

    def test_import_type_mismatch(self):
        mb = ModuleBuilder()
        mb.import_func("env", "h", [I32], [I32])
        fb = mb.func("f", export=True)
        fb.emit("nop")
        with pytest.raises(LinkError, match="type"):
            Interpreter(
                mb.build(), imports={("env", "h"): HostFunc((), (), lambda: None)}
            )


class TestGlobals:
    def test_global_get_set(self):
        mb = ModuleBuilder()
        g = mb.add_global(I32, 5, mutable=True)
        fb = mb.func("bump", results=[I32], export=True)
        fb.emit("global.get", g)
        fb.emit("i32.const", 1)
        fb.emit("i32.add")
        fb.emit("global.set", g)
        fb.emit("global.get", g)
        interp = Interpreter(mb.build())
        assert interp.invoke("bump") == 6
        assert interp.invoke("bump") == 7
