"""Tests for address spaces and reservation areas."""

import pytest

from repro.oskernel.addressspace import AddressSpace, Area, pages_in
from repro.oskernel.layout import PAGE_SIZE
from repro.oskernel.vma import VmaError


class TestPagesIn:
    def test_exact_pages(self):
        assert pages_in(PAGE_SIZE) == 1
        assert pages_in(4 * PAGE_SIZE) == 4

    def test_rounds_up(self):
        assert pages_in(1) == 1
        assert pages_in(PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert pages_in(0) == 0


class TestArea:
    def make(self, pages=16):
        return Area(start=0x1000_0000, length=pages * PAGE_SIZE, name="test")

    def test_populate_counts_new_pages_only(self):
        area = self.make()
        assert area.populate(0, 4 * PAGE_SIZE) == 4
        assert area.populate(0, 4 * PAGE_SIZE) == 0
        assert area.populate(2 * PAGE_SIZE, 4 * PAGE_SIZE) == 2
        assert area.populated_bytes == 6 * PAGE_SIZE

    def test_populate_partial_page_rounds_up(self):
        area = self.make()
        assert area.populate(0, 100) == 1

    def test_zap_range(self):
        area = self.make()
        area.populate(0, 8 * PAGE_SIZE)
        assert area.zap(2 * PAGE_SIZE, 2 * PAGE_SIZE) == 2
        assert area.populated_bytes == 6 * PAGE_SIZE
        assert area.zap(2 * PAGE_SIZE, 2 * PAGE_SIZE) == 0

    def test_zap_all(self):
        area = self.make()
        area.populate(0, 5 * PAGE_SIZE)
        assert area.zap_all() == 5
        assert area.populated_bytes == 0

    def test_out_of_range_rejected(self):
        area = self.make(pages=4)
        with pytest.raises(VmaError):
            area.populate(0, 5 * PAGE_SIZE)
        with pytest.raises(VmaError):
            area.zap(4 * PAGE_SIZE, PAGE_SIZE)


class TestAddressSpace:
    def test_map_areas_do_not_overlap(self):
        aspace = AddressSpace()
        a = aspace.map_area(10 * PAGE_SIZE, "a")
        b = aspace.map_area(10 * PAGE_SIZE, "b")
        assert a.end <= b.start

    def test_map_aligns_length(self):
        aspace = AddressSpace()
        area = aspace.map_area(100, "tiny")
        assert area.length == PAGE_SIZE

    def test_invalid_length_rejected(self):
        with pytest.raises(VmaError):
            AddressSpace().map_area(0)

    def test_find_area(self):
        aspace = AddressSpace()
        a = aspace.map_area(4 * PAGE_SIZE, "a")
        assert aspace.find_area(a.start) is a
        assert aspace.find_area(a.start + PAGE_SIZE) is a
        assert aspace.find_area(a.end) is not a

    def test_unmap_returns_zapped_pages(self):
        aspace = AddressSpace()
        area = aspace.map_area(8 * PAGE_SIZE)
        area.populate(0, 3 * PAGE_SIZE)
        assert aspace.unmap_area(area) == 3
        assert aspace.find_area(area.start) is None

    def test_unmap_twice_rejected(self):
        aspace = AddressSpace()
        area = aspace.map_area(PAGE_SIZE)
        aspace.unmap_area(area)
        with pytest.raises(VmaError):
            aspace.unmap_area(area)

    def test_vma_count_aggregates_intervals(self):
        from repro.oskernel.vma import Prot

        aspace = AddressSpace()
        a = aspace.map_area(16 * PAGE_SIZE)
        b = aspace.map_area(16 * PAGE_SIZE)
        assert aspace.vma_count == 2
        a.prot_map.protect(PAGE_SIZE, 2 * PAGE_SIZE, Prot.RW)
        assert aspace.vma_count == 4

    def test_populated_bytes_aggregates(self):
        aspace = AddressSpace()
        a = aspace.map_area(16 * PAGE_SIZE)
        b = aspace.map_area(16 * PAGE_SIZE)
        a.populate(0, 2 * PAGE_SIZE)
        b.populate(0, 3 * PAGE_SIZE)
        assert aspace.populated_bytes == 5 * PAGE_SIZE
