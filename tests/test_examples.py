"""Smoke tests: every shipped example must run end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "dot product" in out
    assert "wasm3" in out


def test_wasm_toolchain(capsys):
    out = run_example("wasm_toolchain.py", capsys)
    assert "fib(15)      = 610" in out
    assert "trapped as expected" in out
    assert "(module" in out


def test_custom_workload(capsys):
    out = run_example("custom_workload.py", capsys)
    assert "matches the NumPy reference" in out
    assert "riscv64" in out


@pytest.mark.slow
def test_serverless_scaling(capsys):
    out = run_example("serverless_scaling.py", capsys)
    assert "mprotect" in out and "uffd" in out
    assert "userfaultfd" in out
