"""Tests for simulated synchronisation primitives."""

import pytest

from repro.sim import Delay, Engine, Gate, Mutex, RWLock, Semaphore
from repro.sim.engine import SimError


class TestMutex:
    def test_uncontended_acquire_is_instant(self):
        engine = Engine()
        mutex = Mutex(engine)

        def body():
            yield from mutex.acquire()
            assert engine.now == 0.0
            mutex.release()

        engine.run_process(body())
        assert mutex.stats.acquisitions == 1
        assert mutex.stats.contended_acquisitions == 0

    def test_mutual_exclusion(self):
        engine = Engine()
        mutex = Mutex(engine)
        trace = []

        def worker(tag):
            yield from mutex.acquire()
            trace.append(("enter", tag, engine.now))
            yield Delay(2.0)
            trace.append(("exit", tag, engine.now))
            mutex.release()

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert trace == [
            ("enter", "a", 0.0),
            ("exit", "a", 2.0),
            ("enter", "b", 2.0),
            ("exit", "b", 4.0),
        ]

    def test_fifo_ordering(self):
        engine = Engine()
        mutex = Mutex(engine)
        order = []

        def holder():
            yield from mutex.acquire()
            yield Delay(1.0)
            mutex.release()

        def waiter(tag, arrival):
            yield Delay(arrival)
            yield from mutex.acquire()
            order.append(tag)
            mutex.release()

        engine.process(holder())
        engine.process(waiter("first", 0.1))
        engine.process(waiter("second", 0.2))
        engine.process(waiter("third", 0.3))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_release_unlocked_raises(self):
        engine = Engine()
        mutex = Mutex(engine)
        with pytest.raises(SimError):
            mutex.release()

    def test_wait_time_recorded(self):
        engine = Engine()
        mutex = Mutex(engine)

        def holder():
            yield from mutex.acquire()
            yield Delay(5.0)
            mutex.release()

        def waiter():
            yield Delay(1.0)
            yield from mutex.acquire()
            mutex.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert mutex.stats.total_wait_time == pytest.approx(4.0)
        assert mutex.stats.max_wait_time == pytest.approx(4.0)


class TestRWLock:
    def test_readers_share(self):
        engine = Engine()
        lock = RWLock(engine)
        concurrent = []

        def reader(tag):
            token = yield from lock.acquire_read()
            concurrent.append(engine.now)
            yield Delay(3.0)
            lock.release_read(token)

        engine.process(reader("a"))
        engine.process(reader("b"))
        engine.run()
        # Both readers entered at t=0: fully concurrent.
        assert concurrent == [0.0, 0.0]
        assert engine.now == 3.0

    def test_writer_excludes_readers(self):
        engine = Engine()
        lock = RWLock(engine)
        trace = []

        def writer():
            yield from lock.acquire_write()
            trace.append(("w-enter", engine.now))
            yield Delay(2.0)
            trace.append(("w-exit", engine.now))
            lock.release_write()

        def reader():
            yield Delay(0.5)
            token = yield from lock.acquire_read()
            trace.append(("r-enter", engine.now))
            lock.release_read(token)

        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert trace == [("w-enter", 0.0), ("w-exit", 2.0), ("r-enter", 2.0)]

    def test_waiting_writer_blocks_new_readers(self):
        """The mmap_lock behaviour that drives the paper's Fig. 3-5.

        Reader R1 holds the lock; writer W queues; reader R2 arrives
        after W and must NOT jump the queue even though R1 is active.
        """
        engine = Engine()
        lock = RWLock(engine)
        trace = []

        def r1():
            token = yield from lock.acquire_read()
            yield Delay(4.0)
            lock.release_read(token)
            trace.append(("r1-done", engine.now))

        def writer():
            yield Delay(1.0)
            yield from lock.acquire_write()
            trace.append(("w-enter", engine.now))
            yield Delay(2.0)
            lock.release_write()

        def r2():
            yield Delay(2.0)
            token = yield from lock.acquire_read()
            trace.append(("r2-enter", engine.now))
            lock.release_read(token)

        engine.process(r1())
        engine.process(writer())
        engine.process(r2())
        engine.run()
        assert trace == [
            ("r1-done", 4.0),
            ("w-enter", 4.0),
            ("r2-enter", 6.0),
        ]

    def test_reader_batch_granted_together(self):
        engine = Engine()
        lock = RWLock(engine)
        entries = []

        def writer():
            yield from lock.acquire_write()
            yield Delay(2.0)
            lock.release_write()

        def reader(tag, arrival):
            yield Delay(arrival)
            token = yield from lock.acquire_read()
            entries.append((tag, engine.now))
            yield Delay(1.0)
            lock.release_read(token)

        engine.process(writer())
        engine.process(reader("a", 0.5))
        engine.process(reader("b", 1.0))
        engine.run()
        assert entries == [("a", 2.0), ("b", 2.0)]

    def test_release_errors(self):
        engine = Engine()
        lock = RWLock(engine)
        with pytest.raises(SimError):
            lock.release_write()
        with pytest.raises(SimError):
            lock.release_read(0)

    def test_write_wait_time_recorded(self):
        engine = Engine()
        lock = RWLock(engine)

        def reader():
            token = yield from lock.acquire_read()
            yield Delay(3.0)
            lock.release_read(token)

        def writer():
            yield Delay(1.0)
            yield from lock.acquire_write()
            lock.release_write()

        engine.process(reader())
        engine.process(writer())
        engine.run()
        assert lock.write_stats.total_wait_time == pytest.approx(2.0)


class TestSemaphore:
    def test_permits_limit_concurrency(self):
        engine = Engine()
        sem = Semaphore(engine, permits=2)
        active = {"count": 0, "max": 0}

        def worker():
            yield from sem.acquire()
            active["count"] += 1
            active["max"] = max(active["max"], active["count"])
            yield Delay(1.0)
            active["count"] -= 1
            sem.release()

        for _ in range(5):
            engine.process(worker())
        engine.run()
        assert active["max"] == 2

    def test_negative_permits_rejected(self):
        with pytest.raises(SimError):
            Semaphore(Engine(), permits=-1)


class TestGate:
    def test_waiters_released_on_open(self):
        engine = Engine()
        gate = Gate(engine)
        released = []

        def waiter(tag):
            yield from gate.wait()
            released.append((tag, engine.now))

        engine.process(waiter("a"))
        engine.process(waiter("b"))
        engine.call_after(5.0, gate.open_gate)
        engine.run()
        assert released == [("a", 5.0), ("b", 5.0)]

    def test_open_gate_passes_immediately(self):
        engine = Engine()
        gate = Gate(engine)
        gate.open_gate()
        log = []

        def body():
            yield from gate.wait()
            log.append(engine.now)

        engine.process(body())
        engine.run()
        assert log == [0.0]
