"""Tests for the protection-interval (VMA) structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oskernel.vma import Prot, ProtectionMap, VmaError

PAGE = 4096


class TestBasics:
    def test_initial_state_is_one_interval(self):
        pmap = ProtectionMap(16 * PAGE)
        assert pmap.interval_count == 1
        assert pmap.prot_at(0) == Prot.NONE
        assert pmap.prot_at(16 * PAGE - 1) == Prot.NONE

    def test_invalid_size_rejected(self):
        with pytest.raises(VmaError):
            ProtectionMap(0)
        with pytest.raises(VmaError):
            ProtectionMap(-PAGE)

    def test_prot_at_out_of_range(self):
        pmap = ProtectionMap(PAGE)
        with pytest.raises(VmaError):
            pmap.prot_at(PAGE)
        with pytest.raises(VmaError):
            pmap.prot_at(-1)

    def test_bad_protect_range_rejected(self):
        pmap = ProtectionMap(4 * PAGE)
        with pytest.raises(VmaError):
            pmap.protect(2 * PAGE, PAGE, Prot.RW)  # start >= end
        with pytest.raises(VmaError):
            pmap.protect(0, 5 * PAGE, Prot.RW)  # beyond size


class TestSplitMerge:
    def test_protect_middle_splits_twice(self):
        pmap = ProtectionMap(10 * PAGE)
        outcome = pmap.protect(2 * PAGE, 5 * PAGE, Prot.RW)
        assert outcome.splits == 2
        assert pmap.interval_count == 3
        assert pmap.prot_at(PAGE) == Prot.NONE
        assert pmap.prot_at(3 * PAGE) == Prot.RW
        assert pmap.prot_at(6 * PAGE) == Prot.NONE

    def test_protect_prefix_splits_once(self):
        pmap = ProtectionMap(10 * PAGE)
        outcome = pmap.protect(0, 4 * PAGE, Prot.RW)
        assert outcome.splits == 1
        assert pmap.interval_count == 2

    def test_protect_whole_region_no_split(self):
        pmap = ProtectionMap(10 * PAGE)
        outcome = pmap.protect(0, 10 * PAGE, Prot.RW)
        assert outcome.splits == 0
        assert pmap.interval_count == 1

    def test_restoring_protection_merges_back(self):
        pmap = ProtectionMap(10 * PAGE)
        pmap.protect(2 * PAGE, 5 * PAGE, Prot.RW)
        outcome = pmap.protect(2 * PAGE, 5 * PAGE, Prot.NONE)
        assert outcome.merges == 2
        assert pmap.interval_count == 1

    def test_adjacent_equal_regions_merge(self):
        pmap = ProtectionMap(10 * PAGE)
        pmap.protect(0, 3 * PAGE, Prot.RW)
        outcome = pmap.protect(3 * PAGE, 6 * PAGE, Prot.RW)
        assert pmap.interval_count == 2
        assert outcome.merges >= 1

    def test_changed_bytes_reports_only_changes(self):
        pmap = ProtectionMap(10 * PAGE)
        pmap.protect(0, 4 * PAGE, Prot.RW)
        outcome = pmap.protect(0, 8 * PAGE, Prot.RW)
        assert outcome.changed_bytes == 4 * PAGE

    def test_growing_rw_prefix_is_typical_wasm_grow(self):
        """The runtime pattern: repeatedly extend an RW prefix."""
        pmap = ProtectionMap(1024 * PAGE)
        pmap.protect(0, 16 * PAGE, Prot.RW)
        for end in (32, 64, 128):
            pmap.protect(0, end * PAGE, Prot.RW)
            assert pmap.interval_count == 2  # RW prefix + NONE tail


class TestAccessibility:
    def test_accessibility_by_prot(self):
        pmap = ProtectionMap(4 * PAGE)
        pmap.protect(0, PAGE, Prot.READ)
        pmap.protect(PAGE, 2 * PAGE, Prot.RW)
        assert pmap.is_accessible(0, write=False)
        assert not pmap.is_accessible(0, write=True)
        assert pmap.is_accessible(PAGE, write=True)
        assert not pmap.is_accessible(3 * PAGE, write=False)


@st.composite
def protect_ops(draw):
    size = 64
    start = draw(st.integers(min_value=0, max_value=size - 1))
    end = draw(st.integers(min_value=start + 1, max_value=size))
    prot = draw(st.sampled_from([Prot.NONE, Prot.READ, Prot.RW]))
    return (start * PAGE, end * PAGE, prot)


class TestProperties:
    @given(st.lists(protect_ops(), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_page_array(self, ops):
        """The interval map must agree with a page-by-page model."""
        size_pages = 64
        pmap = ProtectionMap(size_pages * PAGE)
        naive = [Prot.NONE] * size_pages
        for start, end, prot in ops:
            pmap.protect(start, end, prot)
            for page in range(start // PAGE, end // PAGE):
                naive[page] = prot
        for page in range(size_pages):
            assert pmap.prot_at(page * PAGE) == naive[page]

    @given(st.lists(protect_ops(), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_intervals_always_sorted_merged_and_covering(self, ops):
        pmap = ProtectionMap(64 * PAGE)
        for start, end, prot in ops:
            pmap.protect(start, end, prot)
            intervals = pmap.intervals()
            assert intervals[0][0] == 0
            assert intervals[-1][1] == 64 * PAGE
            for (s1, e1, p1), (s2, e2, p2) in zip(intervals, intervals[1:]):
                assert e1 == s2  # contiguous
                assert p1 != p2  # fully merged
