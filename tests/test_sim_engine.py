"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim import Delay, Engine, SimError


def test_clock_starts_at_zero():
    engine = Engine()
    assert engine.now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    fired = []
    engine.call_after(5.0, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [5.0]
    assert engine.now == 5.0


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.call_after(3.0, lambda: order.append("c"))
    engine.call_after(1.0, lambda: order.append("a"))
    engine.call_after(2.0, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    order = []
    for tag in ["first", "second", "third"]:
        engine.call_after(1.0, lambda t=tag: order.append(t))
    engine.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_early():
    engine = Engine()
    fired = []
    engine.call_after(10.0, lambda: fired.append("late"))
    engine.run(until=5.0)
    assert fired == []
    assert engine.now == 5.0
    engine.run()
    assert fired == ["late"]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimError):
        engine.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimError):
        Delay(-1.0)


def test_process_runs_and_returns_value():
    engine = Engine()

    def body():
        yield Delay(2.0)
        yield Delay(3.0)
        return "done"

    result = engine.run_process(body())
    assert result == "done"
    assert engine.now == 5.0


def test_process_waits_on_event():
    engine = Engine()
    event = engine.event("signal")
    log = []

    def waiter():
        value = yield event
        log.append((engine.now, value))

    engine.process(waiter())
    engine.call_after(4.0, lambda: event.succeed("payload"))
    engine.run()
    assert log == [(4.0, "payload")]


def test_multiple_waiters_resume_in_wait_order():
    engine = Engine()
    event = engine.event()
    log = []

    def waiter(tag):
        yield event
        log.append(tag)

    engine.process(waiter("a"))
    engine.process(waiter("b"))
    engine.call_after(1.0, lambda: event.succeed())
    engine.run()
    assert log == ["a", "b"]


def test_process_join():
    engine = Engine()

    def child():
        yield Delay(7.0)
        return 42

    def parent():
        value = yield engine.process(child())
        return value + 1

    assert engine.run_process(parent()) == 43
    assert engine.now == 7.0


def test_event_failure_propagates_into_process():
    engine = Engine()
    event = engine.event()
    caught = []

    def body():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    engine.process(body())
    engine.call_after(1.0, lambda: event.fail(ValueError("boom")))
    engine.run()
    assert caught == ["boom"]


def test_process_crash_fails_done_event():
    engine = Engine()

    def body():
        yield Delay(1.0)
        raise RuntimeError("crash")

    process = engine.process(body())
    engine.run()
    with pytest.raises(RuntimeError, match="crash"):
        process.done_event.result()


def test_double_trigger_rejected():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimError):
        event.succeed(2)


def test_all_of_gathers_results():
    engine = Engine()
    first = engine.timeout(1.0, "one")
    second = engine.timeout(2.0, "two")
    results = []

    def body():
        values = yield engine.all_of([first, second])
        results.append(values)

    engine.process(body())
    engine.run()
    assert results == [["one", "two"]]
    assert engine.now == 2.0


def test_all_of_empty_triggers_immediately():
    engine = Engine()
    results = []

    def body():
        values = yield engine.all_of([])
        results.append(values)

    engine.process(body())
    engine.run()
    assert results == [[]]


def test_deadlock_detected_by_run_process():
    engine = Engine()

    def body():
        yield engine.event("never")

    with pytest.raises(SimError, match="deadlocked"):
        engine.run_process(body())


def test_interrupt_kills_process():
    engine = Engine()

    def body():
        yield Delay(100.0)

    process = engine.process(body())
    engine.call_after(1.0, lambda: process.interrupt())
    engine.run()
    assert not process.alive


def test_yielding_garbage_raises():
    engine = Engine()

    def body():
        yield "not a waitable"

    process = engine.process(body())
    engine.run()
    with pytest.raises(SimError, match="unsupported"):
        process.done_event.result()


def test_determinism_across_runs():
    def simulate():
        engine = Engine()
        trace = []

        def worker(tag, delay):
            for _ in range(3):
                yield Delay(delay)
                trace.append((engine.now, tag))

        engine.process(worker("x", 1.0))
        engine.process(worker("y", 1.0))
        engine.process(worker("z", 0.5))
        engine.run()
        return trace

    assert simulate() == simulate()
