"""Tests for global bounds-check elimination (repro.compiler.bce).

Dominance-phase legality is exercised on hand-built IR (precise control
over scope paths and facts); the loop phase runs on DSL-built kernels
through the real frontend; gating, conservation and the global toggle
go through the full pipeline.
"""

import os

import pytest

from repro.compiler.bce import BCEStats, bounds_check_elimination
from repro.compiler.frontend import lower_function, lower_module
from repro.compiler.ir import IRFunction, IRInstr
from repro.compiler.passes import run_passes
from repro.compiler.pipeline import ALL_PASSES, CompilerConfig, compile_module
from repro.compiler.timing import check_counts_for_profile, cycles_for_profile
from repro.isa import isa_named
from repro.runtime import Interpreter, strategy_named
from repro.runtimes.registry import RUNTIMES, bce_enabled, set_bce_enabled
from repro.wasm.dsl import DslModule

X86 = isa_named("x86_64")

NO_BCE = frozenset(ALL_PASSES) - {"bce", "bceloop"}


def check(reg, nbytes=8):
    return IRInstr("boundscheck", None, (reg,), nbytes)


def checks_in(irf):
    return [ins for ins in irf.instructions() if ins.op == "boundscheck"]


def run_bce(irf, loops=False):
    stats = BCEStats()
    bounds_check_elimination(irf, loops_enabled=loops, stats=stats)
    return stats


def build_saxpy(n=8):
    dm = DslModule("saxpy")
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)
    f = dm.func("run", params=[("a", "f64")])
    a = f.params[0]
    i = f.i32("i")
    with f.for_(i, 0, n):
        f.store(y[i], a * x[i] + y[i])
    return dm.build()


def lowered(module, func_index=0):
    return lower_function(module, func_index, module.funcs[func_index])


# ----------------------------------------------------------------------
# Dominance phase, on hand-built IR
# ----------------------------------------------------------------------
class TestDominancePhase:
    def test_dominated_duplicate_in_same_block(self):
        irf = IRFunction(0, "f")
        b = irf.new_block()
        b.instrs = [check(1), check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 1
        assert len(checks_in(irf)) == 1
        assert stats.elided_by_block == {b.id: 1}

    def test_narrower_fact_does_not_cover_wider_check(self):
        irf = IRFunction(0, "f")
        b = irf.new_block()
        b.instrs = [check(1, 4), check(1, 8), check(1, 4)]
        stats = run_bce(irf)
        # The 8-byte check survives (4 < 8) but widens the fact, so the
        # trailing 4-byte check is covered.
        assert stats.eliminated_dominated == 1
        assert [c.imm for c in checks_in(irf)] == [4, 8]

    def test_outer_scope_dominates_nested_block(self):
        irf = IRFunction(0, "f")
        outer = irf.new_block(scope_path=())
        inner = irf.new_block(scope_path=(("blk", 3),))
        outer.instrs = [check(1)]
        inner.instrs = [check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 1
        assert checks_in(irf)[0] is outer.instrs[0]

    def test_if_arm_does_not_dominate_join(self):
        irf = IRFunction(0, "f")
        arm = irf.new_block(scope_path=(("if", 2, 0),), if_depth=1)
        join = irf.new_block(scope_path=())
        arm.instrs = [check(1)]
        join.instrs = [check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 0
        assert len(checks_in(irf)) == 2

    def test_redefinition_kills_fact(self):
        irf = IRFunction(0, "f")
        b = irf.new_block()
        b.instrs = [check(1), IRInstr("iadd", 1, (2, 3)), check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 0

    def test_growmem_kills_all_facts(self):
        irf = IRFunction(0, "f")
        b = irf.new_block()
        b.instrs = [check(1), IRInstr("growmem", 4, (5,)), check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 0

    def test_fact_from_outside_loop_dropped_if_loop_redefines(self):
        # r1 is checked before the loop but advanced inside it: the
        # pre-loop fact is stale on iteration 2, so the in-loop check
        # must survive.
        irf = IRFunction(0, "f")
        pre = irf.new_block(scope_path=())
        body = irf.new_block(loop_path=(7,), scope_path=(("loop", 7),))
        pre.instrs = [check(1)]
        body.instrs = [check(1), IRInstr("iadd", 1, (1, 2))]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 0
        assert len(checks_in(irf)) == 2

    def test_fact_established_inside_loop_still_works(self):
        irf = IRFunction(0, "f")
        irf.new_block(scope_path=())
        body = irf.new_block(loop_path=(7,), scope_path=(("loop", 7),))
        body.instrs = [check(1), check(1)]
        stats = run_bce(irf)
        assert stats.eliminated_dominated == 1


# ----------------------------------------------------------------------
# Loop phase, through the real frontend
# ----------------------------------------------------------------------
class TestLoopPhase:
    def test_affine_checks_pooled_into_preheader(self):
        irf = lowered(build_saxpy())
        before = len(checks_in(irf))
        assert before == 3  # x[i] load, y[i] load, y[i] store
        stats = BCEStats()
        run_passes(irf, {"licm", "bce", "bceloop"}, bce_stats=stats)
        assert stats.eliminated_affine == 3
        assert stats.guards_added == 1
        # No checks left inside the loop; one pooled guard outside.
        in_loop = [
            ins for b in irf.blocks if b.loop_path
            for ins in b.instrs if ins.op == "boundscheck"
        ]
        assert in_loop == []
        guards = [
            ins for b in irf.blocks if not b.loop_path
            for ins in b.instrs if ins.op == "boundscheck"
        ]
        assert len(guards) == 1
        # Pooled guard: widened to the max access size, no live source.
        assert guards[0].srcs == ()
        assert guards[0].imm == 8

    def test_invariant_check_hoisted_with_licm(self):
        # x[k] with loop-invariant k: LICM hoists the address compute,
        # then BCE hoists the (now invariant) check as a guard.
        dm = DslModule("inv")
        x = dm.array_f64("x", 8)
        f = dm.func("run", params=[("k", "i32")], results=["f64"])
        k = f.params[0]
        s = f.f64("s")
        i = f.i32("i")
        with f.for_(i, 0, 8):
            f.set(s, s + x[k])
        f.ret(s)
        irf = lowered(dm.build())
        stats = BCEStats()
        run_passes(irf, {"licm", "bce", "bceloop"}, bce_stats=stats)
        assert stats.eliminated_invariant >= 1
        in_loop = [
            ins for b in irf.blocks if b.loop_path
            for ins in b.instrs if ins.op == "boundscheck"
        ]
        assert in_loop == []
        guards = [
            ins for b in irf.blocks if not b.loop_path
            for ins in b.instrs if ins.op == "boundscheck"
        ]
        assert len(guards) >= 1
        assert all(g.srcs for g in guards)  # hoisted checks keep their reg

    def test_loop_phase_disabled_without_bceloop(self):
        irf = lowered(build_saxpy())
        stats = BCEStats()
        run_passes(irf, {"licm", "bce"}, bce_stats=stats)
        assert stats.eliminated_affine == 0
        assert stats.eliminated_invariant == 0
        assert stats.guards_added == 0

    def test_growmem_in_loop_disables_loop_phase(self):
        irf = IRFunction(0, "f")
        irf.new_block(scope_path=())  # preheader
        header = irf.new_block(loop_path=(9,), scope_path=(("loop", 9),))
        header.instrs = [
            IRInstr("phi", 1),
            check(1),
            IRInstr("growmem", 5, (6,)),
            IRInstr("iadd", 1, (1, 2)),
        ]
        stats = run_bce(irf, loops=True)
        assert stats.eliminated_affine == 0
        assert stats.eliminated_invariant == 0
        assert len(checks_in(irf)) == 1

    def test_elided_by_block_matches_total(self):
        irf = lowered(build_saxpy())
        stats = BCEStats()
        run_passes(irf, {"licm", "bce", "bceloop"}, bce_stats=stats)
        assert sum(stats.elided_by_block.values()) == stats.eliminated_total


# ----------------------------------------------------------------------
# Pipeline gating + conservation
# ----------------------------------------------------------------------
class TestPipelineGating:
    def compile(self, module, strategy, passes, config=None):
        config = config or CompilerConfig(
            name="test", passes=frozenset(passes), regalloc_quality=0.92,
            addressing_fusion=True, stack_checks=True,
        )
        return compile_module(module, X86, config, strategy_named(strategy))

    def test_non_inline_strategies_unaffected_by_bce(self):
        module = build_saxpy()
        for strategy in ("none", "mprotect", "uffd"):
            with_bce = self.compile(module, strategy, ALL_PASSES)
            without = self.compile(module, strategy, NO_BCE)
            for idx in with_bce.functions:
                assert (
                    with_bce.functions[idx].machine_ops
                    == without.functions[idx].machine_ops
                )
                assert (
                    with_bce.functions[idx].block_cycles
                    == without.functions[idx].block_cycles
                )
            assert with_bce.checks_elided_static == 0

    def test_static_conservation_for_inline_strategies(self):
        module = build_saxpy()
        for strategy in ("trap", "clamp"):
            on = self.compile(module, strategy, ALL_PASSES)
            off = self.compile(module, strategy, NO_BCE)
            assert off.checks_elided_static == 0
            assert on.checks_elided_static > 0
            # Guards may add emitted sites, but never more than elided.
            assert (
                off.checks_emitted_static
                <= on.checks_emitted_static + on.checks_elided_static
            )

    def test_dynamic_conservation_and_speedup(self):
        module = build_saxpy()
        interp = Interpreter(module)
        interp.invoke("run", 2.0)
        profile = interp.take_profile("saxpy", "test")
        on = self.compile(module, "trap", ALL_PASSES)
        off = self.compile(module, "trap", NO_BCE)
        counts_on = check_counts_for_profile(on, profile)
        counts_off = check_counts_for_profile(off, profile)
        assert counts_off["elided"] == 0
        assert counts_on["elided"] > 0
        assert (
            counts_off["emitted"]
            <= counts_on["emitted"] + counts_on["elided"]
        )
        assert cycles_for_profile(on, profile) < cycles_for_profile(off, profile)


# ----------------------------------------------------------------------
# Configuration + the global toggle
# ----------------------------------------------------------------------
class TestConfigAndToggle:
    def test_bceloop_requires_bce(self):
        with pytest.raises(ValueError, match="'bceloop' requires 'bce'"):
            CompilerConfig(
                name="bad", passes=frozenset({"bceloop"}),
                regalloc_quality=1.0, addressing_fusion=True,
            )

    def test_set_bce_enabled_strips_and_restores_passes(self):
        assert bce_enabled()
        v8 = RUNTIMES["v8"]
        default = v8.compiler.passes
        assert {"bce", "bceloop"} <= default
        try:
            set_bce_enabled(False)
            assert not bce_enabled()
            assert "bce" not in v8.compiler.passes
            assert "bceloop" not in v8.compiler.passes
            assert os.environ.get("REPRO_NO_BCE") == "1"
        finally:
            set_bce_enabled(True)
        assert bce_enabled()
        assert v8.compiler.passes == default
        assert "REPRO_NO_BCE" not in os.environ

    def test_toggle_is_idempotent(self):
        before = RUNTIMES["wavm"].compiler.passes
        set_bce_enabled(True)
        assert RUNTIMES["wavm"].compiler.passes == before
