"""Effective-address semantics: base + static offset edge cases.

Wasm memory instructions compute ``effective = base(u32) + offset(u32)``
with no wraparound — the 33-bit sum is what makes the paper's 8 GiB
guard-region reservation sound (§2.3).  These tests pin that math.
"""

import pytest

from repro.runtime import Interpreter
from repro.wasm import ModuleBuilder, Trap
from repro.wasm.types import ValType

I32 = ValType.I32


def module_with_load(offset, pages=1):
    mb = ModuleBuilder()
    mb.add_memory(pages)
    fb = mb.func("peek", params=[I32], results=[I32], export=True)
    fb.emit("local.get", 0)
    fb.emit("i32.load", 2, offset)
    return mb.build()


def module_with_store(offset, pages=1):
    mb = ModuleBuilder()
    mb.add_memory(pages)
    fb = mb.func("poke", params=[I32, I32], export=True)
    fb.emit("local.get", 0)
    fb.emit("local.get", 1)
    fb.emit("i32.store", 2, offset)
    return mb.build()


class TestStaticOffsets:
    def test_offset_added_to_base(self):
        module = module_with_store(8)
        interp = Interpreter(module, strategy="trap")
        interp.invoke("poke", 100, 0xABCD)
        assert interp.memory.load_u32(108) == 0xABCD

    def test_large_offset_within_bounds(self):
        module = module_with_load(65536 - 4, pages=2)
        interp = Interpreter(module, strategy="trap")
        interp.memory.store_u32(65536 - 4, 77)
        assert interp.invoke("peek", 0) == 77

    def test_offset_pushes_access_out_of_bounds(self):
        module = module_with_load(65536 - 2)  # 1 page: last 2 bytes + 2 over
        interp = Interpreter(module, strategy="trap")
        with pytest.raises(Trap, match="out-of-bounds"):
            interp.invoke("peek", 0)

    def test_huge_base_plus_offset_does_not_wrap(self):
        # base near 2^32 plus a static offset must not wrap back into
        # valid memory: the 33-bit sum lands in the guard region.
        module = module_with_load(16)
        interp = Interpreter(module, strategy="trap")
        with pytest.raises(Trap, match="out-of-bounds"):
            interp.invoke("peek", 0xFFFFFFF0)

    def test_none_strategy_absorbs_guard_region_access(self):
        module = module_with_load(16)
        interp = Interpreter(module, strategy="none")
        assert interp.invoke("peek", 0xFFFFFFF0) == 0

    def test_boundary_exact_fit(self):
        module = module_with_load(65536 - 4)
        interp = Interpreter(module, strategy="trap")
        assert interp.invoke("peek", 0) == 0  # exactly the last word

    def test_sub_width_access_at_boundary(self):
        mb = ModuleBuilder()
        mb.add_memory(1)
        fb = mb.func("last_byte", results=[I32], export=True)
        fb.emit("i32.const", 65535)
        fb.emit("i32.load8_u", 0, 0)
        interp = Interpreter(mb.build(), strategy="trap")
        assert interp.invoke("last_byte") == 0


class TestGrowInteraction:
    def test_access_becomes_valid_after_grow(self):
        mb = ModuleBuilder()
        mb.add_memory(1, 4)
        fb = mb.func("grow_and_write", results=[I32], export=True)
        fb.emit("i32.const", 1)
        fb.emit("memory.grow")
        fb.emit("drop")
        fb.emit("i32.const", 65536 + 128)  # inside the grown page
        fb.emit("i32.const", 99)
        fb.emit("i32.store", 2, 0)
        fb.emit("i32.const", 65536 + 128)
        fb.emit("i32.load", 2, 0)
        interp = Interpreter(mb.build(), strategy="trap")
        assert interp.invoke("grow_and_write") == 99

    def test_memory_size_reflects_grow(self):
        mb = ModuleBuilder()
        mb.add_memory(2, 10)
        fb = mb.func("f", results=[I32], export=True)
        fb.emit("i32.const", 3)
        fb.emit("memory.grow")
        fb.emit("drop")
        fb.emit("memory.size")
        interp = Interpreter(mb.build(), strategy="trap")
        assert interp.invoke("f") == 5

    def test_failed_grow_returns_minus_one(self):
        mb = ModuleBuilder()
        mb.add_memory(1, 2)
        fb = mb.func("f", results=[I32], export=True)
        fb.emit("i32.const", 100)
        fb.emit("memory.grow")
        interp = Interpreter(mb.build(), strategy="trap")
        assert interp.invoke("f") == 0xFFFFFFFF
