"""Tests for the leaps-bench CLI."""

import pytest

from repro.core import cli
from repro.core.experiments import fig1


def test_help_returns_zero(capsys):
    assert cli.main(["--help"]) == 0
    assert "leaps-bench" in capsys.readouterr().out


def test_no_args_prints_usage(capsys):
    assert cli.main([]) == 0
    assert "fig1" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert cli.main(["fig9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_dispatch_runs_experiment(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setattr(
        fig1, "suite_names", lambda suite, quick: ["gemm"] if suite == "polybench" else []
    )
    assert cli.main(["fig1", "--size", "mini"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    assert (tmp_path / "fig1.json").exists()


class TestExitCodes:
    """Every failure mode must surface as a non-zero exit status."""

    def test_crashing_experiment_returns_one(self, monkeypatch, capsys):
        def boom(argv):
            raise RuntimeError("measurement backend fell over")

        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        monkeypatch.setitem(cli._EXPERIMENTS, "fig1", boom)
        assert cli.main(["fig1"]) == 1
        err = capsys.readouterr().err
        assert "fig1: error: measurement backend fell over" in err

    def test_repro_debug_reraises(self, monkeypatch):
        def boom(argv):
            raise RuntimeError("boom")

        monkeypatch.setenv("REPRO_DEBUG", "1")
        monkeypatch.setitem(cli._EXPERIMENTS, "fig1", boom)
        with pytest.raises(RuntimeError, match="boom"):
            cli.main(["fig1"])

    def test_argparse_error_propagates_its_code(self, capsys):
        assert cli.main(["fig1", "--bogus-flag"]) == 2
        assert "--bogus-flag" in capsys.readouterr().err

    def test_system_exit_none_is_success(self, monkeypatch):
        monkeypatch.setitem(
            cli._EXPERIMENTS, "fig1", lambda argv: (_ for _ in ()).throw(SystemExit)
        )
        assert cli.main(["fig1"]) == 0

    def test_system_exit_message_maps_to_one(self, monkeypatch, capsys):
        def bail(argv):
            raise SystemExit("could not write results")

        monkeypatch.setitem(cli._EXPERIMENTS, "fig1", bail)
        assert cli.main(["fig1"]) == 1

    def test_all_reports_worst_failure(self, monkeypatch, capsys):
        calls = []

        def ok(argv):
            calls.append("ok")
            return []

        def boom(argv):
            calls.append("boom")
            raise RuntimeError("nope")

        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        monkeypatch.setattr(cli, "_EXPERIMENTS", {"good": ok, "bad": boom})
        assert cli.main(["all"]) == 1
        # The crash must not stop the remaining figures.
        assert calls == ["ok", "boom"]

    def test_all_green_returns_zero(self, monkeypatch):
        monkeypatch.setattr(
            cli, "_EXPERIMENTS", {"a": lambda argv: [], "b": lambda argv: 0}
        )
        assert cli.main(["all"]) == 0
