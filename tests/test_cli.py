"""Tests for the leaps-bench CLI."""

import pytest

from repro.core import cli
from repro.core.experiments import fig1


def test_help_returns_zero(capsys):
    assert cli.main(["--help"]) == 0
    assert "leaps-bench" in capsys.readouterr().out


def test_no_args_prints_usage(capsys):
    assert cli.main([]) == 0
    assert "fig1" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert cli.main(["fig9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_dispatch_runs_experiment(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setattr(
        fig1, "suite_names", lambda suite, quick: ["gemm"] if suite == "polybench" else []
    )
    assert cli.main(["fig1", "--size", "mini"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    assert (tmp_path / "fig1.json").exists()
