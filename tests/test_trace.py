"""Unit tests for the event-tracing layer: tracer, sinks, JSONL,
Chrome export, CLI — plus the headline acceptance checks (tracing off
changes nothing; mprotect contends on mmap_lock where uffd does not).
"""

import json

import pytest

from repro.core.engine import measurement_to_json
from repro.core.harness import run_benchmark
from repro.trace import chrome as trace_chrome
from repro.trace import summary as trace_summary
from repro.trace.cli import main as trace_main
from repro.trace.events import (
    LOCK_ACQUIRE,
    TraceEvent,
    category_of,
    event_from_json,
    event_to_json,
)
from repro.trace.tracer import (
    TRACE,
    JsonlSink,
    ListSink,
    NullSink,
    RingBufferSink,
    TraceError,
    read_jsonl,
    tracing,
    write_jsonl,
)


def _run(strategy, threads, **kw):
    kw.setdefault("size", "mini")
    kw.setdefault("iterations", 2)
    kw.setdefault("warmup", 1)
    return run_benchmark("trisolv", "wavm", strategy, "x86_64",
                         threads=threads, **kw)


class TestTracer:
    def test_disabled_by_default(self):
        assert not TRACE.enabled
        TRACE.emit(1.0, "lock.acquire", lock="x")  # no-op, no error

    def test_start_stop_collects(self):
        sink = ListSink()
        TRACE.start(sink)
        try:
            assert TRACE.enabled
            TRACE.emit(0.5, LOCK_ACQUIRE, thread="t", lock="l",
                       mode="read", wait=0.0, contended=False)
        finally:
            assert TRACE.stop() is sink
        assert not TRACE.enabled
        [event] = sink.events
        assert event.name == LOCK_ACQUIRE
        assert event.ts == 0.5
        assert event.cat == category_of(LOCK_ACQUIRE) == "lock"
        assert event.args["lock"] == "l"

    def test_nested_start_raises(self):
        with tracing():
            with pytest.raises(TraceError):
                TRACE.start(ListSink())

    def test_seq_strictly_increasing(self):
        with tracing() as sink:
            for _ in range(5):
                TRACE.emit(0.0, "sim.spawn", thread="t")
        seqs = [event.seq for event in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_ring_buffer_keeps_latest(self):
        with tracing(RingBufferSink(3)) as sink:
            for index in range(10):
                TRACE.emit(float(index), "sim.spawn", thread=f"t{index}")
        assert [event.ts for event in sink.events] == [7.0, 8.0, 9.0]

    def test_null_sink_discards(self):
        with tracing(NullSink()) as sink:
            TRACE.emit(0.0, "sim.spawn", thread="t")
        assert sink.events == []


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing() as sink:
            TRACE.emit(0.25, LOCK_ACQUIRE, thread="w0", core=3, tgid=7,
                       lock="mmap_lock.7", mode="write", wait=1e-6,
                       contended=True)
            TRACE.emit(0.5, "run.end", wall=0.5)
        write_jsonl(sink.events, str(path))
        back = read_jsonl(str(path))
        assert back == sink.events

    def test_event_json_omits_defaults(self):
        event = TraceEvent(seq=1, ts=0.0, name="run.end", cat="run")
        record = event_to_json(event)
        assert "thread" not in record and "core" not in record
        assert event_from_json(record) == event

    def test_jsonl_sink_streams(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with tracing(JsonlSink(str(path))) as sink:
            TRACE.emit(0.0, "sim.spawn", thread="a")
            TRACE.emit(1.0, "sim.exit", thread="a")
        assert sink.count == 2
        events = read_jsonl(str(path))
        assert [event.name for event in events] == ["sim.spawn", "sim.exit"]


class TestChrome:
    def test_structure(self):
        with tracing() as sink:
            _run("mprotect", 2)
        doc = trace_chrome.to_chrome(sink.events)
        assert doc["displayTimeUnit"] == "ms"
        records = doc["traceEvents"]
        phases = {record["ph"] for record in records}
        assert {"B", "E", "i", "M"} <= phases
        begins = sum(1 for r in records if r["ph"] == "B")
        ends = sum(1 for r in records if r["ph"] == "E")
        assert begins == ends > 0
        # B/E records drop the .begin/.end suffix and µs timestamps.
        spans = [r for r in records if r["ph"] in "BE"]
        assert all(not r["name"].endswith((".begin", ".end")) for r in spans)
        names = {r["args"]["name"] for r in records if r["ph"] == "M"}
        assert "worker0" in names and "worker1" in names

    def test_write_chrome(self, tmp_path):
        with tracing() as sink:
            TRACE.emit(0.0, "iter.begin", thread="w", tgid=1, index=0)
            TRACE.emit(1.0, "iter.end", thread="w", tgid=1, index=0)
        path = tmp_path / "c.json"
        trace_chrome.write_chrome(sink.events, str(path))
        doc = json.loads(path.read_text())
        timestamps = [r["ts"] for r in doc["traceEvents"] if r["ph"] == "E"]
        assert timestamps == [1e6]


class TestAcceptance:
    """The ISSUE's acceptance criteria, verified directly."""

    def test_tracing_disabled_output_identical(self):
        baseline = measurement_to_json(_run("mprotect", 2))
        with tracing():
            traced = measurement_to_json(_run("mprotect", 2))
        untraced = measurement_to_json(_run("mprotect", 2))
        # Identical whether traced or not — instrumentation is inert.
        assert json.dumps(baseline, sort_keys=True) == \
            json.dumps(traced, sort_keys=True) == \
            json.dumps(untraced, sort_keys=True)

    def test_mprotect_contends_where_uffd_does_not(self):
        with tracing() as sink:
            _run("mprotect", 4)
        mprotect_summary = trace_summary.summarize(sink.events)
        with tracing() as sink:
            _run("uffd", 4)
        uffd_summary = trace_summary.summarize(sink.events)
        assert trace_summary.contention_events(mprotect_summary) > 0
        assert trace_summary.contention_events(uffd_summary) == 0


class TestCli:
    def test_record_summarize_export(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        chrome_path = tmp_path / "c.json"
        rc = trace_main([
            "record", "--workload", "trisolv", "--runtime", "wavm",
            "--strategy", "mprotect", "--threads", "2", "--size", "mini",
            "--iterations", "2", "-o", str(trace_path),
            "--chrome", str(chrome_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mmap_lock" in out and "timed window" in out
        assert trace_path.exists() and chrome_path.exists()

        rc = trace_main(["summarize", str(trace_path), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert summary["window"]["context_switches"] >= 0

        export_path = tmp_path / "c2.json"
        rc = trace_main(["export", str(trace_path), "-o", str(export_path)])
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(export_path.read_text())
        assert doc["traceEvents"]

    def test_top_level_dispatch(self, tmp_path, capsys, monkeypatch):
        from repro.core.cli import main as top_main

        monkeypatch.chdir(tmp_path)
        rc = top_main([
            "trace", "record", "--workload", "trisolv", "--runtime", "wavm",
            "--strategy", "clamp", "--threads", "1", "--size", "mini",
            "--iterations", "1", "-o", "t.jsonl",
        ])
        assert rc == 0
        assert (tmp_path / "t.jsonl").exists()
        capsys.readouterr()

    def test_unknown_command_still_errors(self, capsys):
        from repro.core.cli import main as top_main

        assert top_main(["nonsense"]) == 2
        assert "trace" in capsys.readouterr().err
