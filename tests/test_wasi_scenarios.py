"""The WASI scenario axis: kernel costs, determinism, tier identity.

Four layers under one marker (``-m wasi``):

* unit coverage for the fd table and the syscall cost model — the
  kernel side of the axis;
* the determinism regression contracts on the preview-1 shim (a
  rejected clock read must not tick, a zero-length ``random_get`` must
  not advance the xorshift stream);
* cross-tier bit-identity: every WASI workload produces identical
  checked arrays, identical captured stdout, and an identical syscall
  census under all three interpreter tiers;
* end-to-end accounting: a traced WASI benchmark reconciles
  float-exactly against its ``RunMeasurement`` and yields non-empty
  per-syscall latency histograms.
"""

import pytest

from repro.core.harness import run_benchmark
from repro.isa import isa_named
from repro.oskernel import fdtable as fdt
from repro.oskernel.fdtable import FdTable
from repro.oskernel.syscalls import SyscallCostModel, SyscallCosts, _SERVICE
from repro.runtime import Interpreter
from repro.runtime.hostiface import payload_bucket
from repro.runtime.wasi import (
    ERRNO_INVAL,
    ERRNO_SUCCESS,
    WasiEnvironment,
)
from repro.trace import summary as trace_summary
from repro.trace.events import SYSCALL_WASI
from repro.trace.histogram import (
    bucket_bounds,
    histograms_to_json,
    latency_bucket,
    latency_histograms,
    render_histograms,
)
from repro.trace.tracer import tracing
from repro.wasm import ModuleBuilder
from repro.workloads import WASI
from repro.workloads.base import instantiate, read_array

pytestmark = pytest.mark.wasi

TIERS = ("legacy", "fused", "opt")


def bound_env(**kwargs):
    """A WasiEnvironment bound to a memory-only module instance."""
    mb = ModuleBuilder("wasi-scenarios")
    mb.add_memory(1)
    env = WasiEnvironment(**kwargs)
    interp = Interpreter(mb.build(), imports=env.imports())
    env.bind(interp)
    return env, interp


# ----------------------------------------------------------------------
# Determinism regression contracts
# ----------------------------------------------------------------------

class TestDeterminismContracts:
    def test_zero_length_random_get_does_not_advance_stream(self):
        env, interp = bound_env(seed=5)
        before = env._rand_state
        assert env.random_get(0, 0) == (ERRNO_SUCCESS, 0)
        assert env._rand_state == before
        # The next real read is what a run without the empty read sees.
        env.random_get(0, 8)
        first = bytes(interp.memory.load_bytes(0, 8))
        fresh, fresh_interp = bound_env(seed=5)
        fresh.random_get(0, 8)
        assert bytes(fresh_interp.memory.load_bytes(0, 8)) == first

    def test_rejected_clock_read_does_not_tick(self):
        env, interp = bound_env()
        assert env.clock_time_get(7, 0, 16) == ERRNO_INVAL
        assert env._clock_ns == 0
        assert env.clock_time_get(0, 0, 16) == ERRNO_SUCCESS
        # First accepted read lands on the first tick, INVAL-free.
        assert interp.memory.load_u64(16) == 1_000

    def test_recorder_census_is_seed_independent_bytes_are_not(self):
        a, _ = bound_env(seed=1)
        b, _ = bound_env(seed=2)
        for env in (a, b):
            env.imports()[(WasiEnvironment.MODULE, "random_get")].fn(0, 16)
        assert a.recorder.snapshot() == b.recorder.snapshot()
        assert a.recorder.snapshot()["random_get"]["bytes"] == 16


# ----------------------------------------------------------------------
# Fd table
# ----------------------------------------------------------------------

class TestFdTable:
    def test_path_open_read_seek_close_round_trip(self):
        table = FdTable(files={"in.txt": b"0123456789"})
        errno, fd = table.open_path(fdt.PREOPEN_FD, "/in.txt")
        assert (errno, fd) == (ERRNO_SUCCESS, 4)
        assert table.read(fd, 4) == (ERRNO_SUCCESS, b"0123")
        assert table.seek(fd, -2, fdt.WHENCE_END) == (ERRNO_SUCCESS, 8)
        assert table.read(fd, 8) == (ERRNO_SUCCESS, b"89")
        assert table.close(fd) == ERRNO_SUCCESS
        assert table.read(fd, 1)[0] == fdt.ERRNO_BADF

    def test_open_missing_without_creat_is_noent(self):
        table = FdTable()
        assert table.open_path(fdt.PREOPEN_FD, "/nope")[0] == fdt.ERRNO_NOENT
        errno, fd = table.open_path(
            fdt.PREOPEN_FD, "/new", oflags=fdt.OFLAGS_CREAT, write=True
        )
        assert errno == ERRNO_SUCCESS
        assert table.write(fd, b"hi") == (ERRNO_SUCCESS, 2)
        assert table.file_bytes("new") == b"hi"

    def test_append_mode_writes_at_end(self):
        table = FdTable(files={"log": b"aaa"})
        _, fd = table.open_path(
            fdt.PREOPEN_FD, "/log", fdflags=fdt.FDFLAGS_APPEND, write=True
        )
        table.seek(fd, 0, fdt.WHENCE_SET)
        table.write(fd, b"bb")
        assert table.file_bytes("log") == b"aaabb"

    def test_trunc_requires_write_capability(self):
        table = FdTable(files={"f": b"data"})
        assert table.open_path(
            fdt.PREOPEN_FD, "/f", oflags=fdt.OFLAGS_TRUNC
        )[0] == fdt.ERRNO_INVAL
        errno, _ = table.open_path(
            fdt.PREOPEN_FD, "/f", oflags=fdt.OFLAGS_TRUNC, write=True
        )
        assert errno == ERRNO_SUCCESS
        assert table.file_bytes("f") == b""

    def test_stdio_and_preopen_are_protected(self):
        table = FdTable()
        for fd in (0, 1, 2, fdt.PREOPEN_FD):
            assert table.close(fd) == fdt.ERRNO_NOTCAPABLE
        assert table.seek(1, 0, fdt.WHENCE_SET)[0] == fdt.ERRNO_NOTCAPABLE
        assert table.open_path(1, "/x")[0] == fdt.ERRNO_NOTCAPABLE

    def test_direct_marking_is_per_file(self):
        table = FdTable(files={"hot": b"x", "cold": b"y"}, direct=("cold",))
        _, hot = table.open_path(fdt.PREOPEN_FD, "/hot")
        _, cold = table.open_path(fdt.PREOPEN_FD, "/cold")
        assert not table.is_direct(hot)
        assert table.is_direct(cold)


# ----------------------------------------------------------------------
# Syscall cost model
# ----------------------------------------------------------------------

class TestSyscallCostModel:
    def model(self, isa="x86_64", hz=3.0e9):
        return SyscallCostModel(isa_named(isa), hz)

    def test_entry_cost_comes_from_the_isa(self):
        isa = isa_named("x86_64")
        model = self.model(hz=2.0e9)
        assert model.entry_seconds == isa.syscall_entry_cycles / 2.0e9
        # Every priced call pays at least the crossing.
        for name in SyscallCostModel.known_syscalls():
            assert model.per_call(name) >= model.entry_seconds

    def test_direct_regime_adds_backing_store_fill(self):
        model = self.model()
        buffered = model.per_call("fd_read", 4096)
        direct = model.per_call("fd_read", 4096, direct=True)
        costs = SyscallCosts()
        assert direct - buffered == pytest.approx(
            4096 * costs.direct_per_byte
        )
        # Payload-free calls price identically in both regimes.
        assert model.per_call("fd_seek", direct=True) == \
            model.per_call("fd_seek")

    def test_batch_is_per_call_times_calls(self):
        model = self.model()
        total, per = model.batch("fd_write", 10, 640)
        assert per == model.per_call("fd_write", 64.0)
        assert total == per * 10
        assert model.batch("fd_write", 0, 0) == (0.0, 0.0)

    def test_unknown_syscall_is_a_loud_keyerror(self):
        with pytest.raises(KeyError, match="no cost entry"):
            self.model().per_call("fd_datasync")

    def test_every_shim_syscall_is_priced(self):
        # The cost table and the decorated surface must never drift:
        # a shim call the model cannot price would crash mid-replay.
        declared = set(WasiEnvironment.syscall_specs())
        assert declared <= set(_SERVICE)


# ----------------------------------------------------------------------
# Host-interface registry surface
# ----------------------------------------------------------------------

class TestHostInterfaceSurface:
    def test_specs_cover_the_preview1_surface(self):
        specs = WasiEnvironment.syscall_specs()
        assert set(specs) == {
            "args_sizes_get", "args_get", "environ_sizes_get",
            "environ_get", "clock_time_get", "random_get", "poll_oneoff",
            "fd_write", "fd_read", "fd_seek", "fd_close", "fd_fdstat_get",
            "path_open", "proc_exit",
        }
        for name, (params, results) in specs.items():
            assert isinstance(params, tuple) and isinstance(results, tuple)

    def test_imports_derive_from_decorators(self):
        env = WasiEnvironment()
        table = env.imports()
        assert set(table) == {
            (WasiEnvironment.MODULE, name)
            for name in WasiEnvironment.syscall_specs()
        }
        hf = table[(WasiEnvironment.MODULE, "clock_time_get")]
        assert hf.name == "clock_time_get"
        assert len(hf.params) == 3 and len(hf.results) == 1

    def test_recorder_buckets_key_on_log2_payload(self):
        env, _ = bound_env(seed=1)
        rand = env.imports()[(WasiEnvironment.MODULE, "random_get")].fn
        for nbytes in (3, 3, 64):
            rand(0, nbytes)
        entry = env.recorder.snapshot()["random_get"]
        assert entry["calls"] == 3 and entry["bytes"] == 70
        assert entry["buckets"] == {
            str(payload_bucket(3)): [2, 6],
            str(payload_bucket(64)): [1, 64],
        }

    def test_direct_reads_record_under_their_cost_name(self):
        env, interp = bound_env(
            files={"cold.bin": b"z" * 64}, direct=("cold.bin",)
        )
        memory = interp.memory
        # path string + one iovec in scratch memory.
        memory.store_bytes(256, b"cold.bin")
        env.path_open(fdt.PREOPEN_FD, 0, 256, 8, 0, 0, 0, 0, 512)
        fd = memory.load_u32(512)
        memory.store_u32(0, 64)   # iov base
        memory.store_u32(4, 64)   # iov len
        env.imports()[(WasiEnvironment.MODULE, "fd_read")].fn(fd, 0, 1, 128)
        counts = env.recorder.counts()
        assert counts["fd_read@direct"] == 1
        assert "fd_read" not in counts


# ----------------------------------------------------------------------
# Latency histograms
# ----------------------------------------------------------------------

class TestLatencyHistograms:
    def test_bucket_edges(self):
        assert latency_bucket(0.0) == 0
        assert latency_bucket(1e-9) == 1
        assert latency_bucket(255e-9) == 8
        assert latency_bucket(256e-9) == 9
        assert bucket_bounds(0) == (0, 1)
        assert bucket_bounds(9) == (256, 512)

    def test_histograms_from_dict_events(self):
        events = [
            {"name": SYSCALL_WASI,
             "args": {"sys": "fd_read", "calls": 10, "bytes": 640,
                      "per_call": 300e-9, "charged": 3e-6}},
            {"name": SYSCALL_WASI,
             "args": {"sys": "fd_read", "calls": 2, "bytes": 8,
                      "per_call": 150e-9, "charged": 3e-7}},
            {"name": "other", "args": {}},
        ]
        table = latency_histograms(events)
        assert set(table) == {"fd_read"}
        entry = table["fd_read"]
        assert entry["calls"] == 12 and entry["bytes"] == 648
        assert entry["buckets"] == {
            latency_bucket(150e-9): 2, latency_bucket(300e-9): 10,
        }
        encoded = histograms_to_json(table)
        assert all(
            isinstance(k, str) for k in encoded["fd_read"]["buckets"]
        )
        report = render_histograms(table)
        assert "fd_read: 12 calls" in report and "|@" in report

    def test_empty_trace_renders_a_notice(self):
        assert "no syscall.wasi" in render_histograms({})


# ----------------------------------------------------------------------
# Cross-tier bit-identity
# ----------------------------------------------------------------------

class TestCrossTierIdentity:
    @pytest.mark.parametrize(
        "workload", [w.name for w in WASI], ids=[w.name for w in WASI]
    )
    def test_tiers_agree_on_every_observable(self, workload):
        entry = next(w for w in WASI if w.name == workload)
        built = entry.build("mini")
        observed = {}
        for tier in TIERS:
            interp, env = instantiate(
                built, tier=tier, collect_profile=False, track_pages=False
            )
            interp.invoke("bench")
            observed[tier] = (
                {
                    name: read_array(interp, built.arrays[name]).tobytes()
                    for name in entry.check_arrays
                },
                env.stdout(),
                env.recorder.snapshot(),
            )
        baseline = observed[TIERS[0]]
        assert baseline[2], "workload made no recorded syscalls"
        for tier in TIERS[1:]:
            assert observed[tier] == baseline, tier


# ----------------------------------------------------------------------
# End-to-end accounting
# ----------------------------------------------------------------------

class TestEndToEndAccounting:
    @pytest.fixture(scope="class")
    def traced(self):
        with tracing() as sink:
            measurement = run_benchmark(
                "wasi-grep", "wavm", "none", "x86_64",
                threads=1, size="mini", iterations=2, warmup=1,
            )
        return sink.events, measurement

    def test_measurement_carries_syscall_accounting(self, traced):
        _, m = traced
        assert m.syscall_seconds > 0
        assert set(m.syscall_stats) == {
            "fd_close", "fd_read", "fd_write", "path_open"
        }
        replayed = sum(e["seconds"] for e in m.syscall_stats.values())
        assert replayed == pytest.approx(
            m.syscall_seconds * m.threads * (2 + 1)  # iterations + warmup
        )

    def test_trace_reconciles_float_exactly(self, traced):
        events, m = traced
        assert trace_summary.reconcile(events, m) == []
        # The per-name kernel accounting is bit-identical, not close.
        assert trace_summary._replayed_syscalls(events) == m.syscall_stats

    def test_histograms_cover_the_syscall_census(self, traced):
        events, m = traced
        table = latency_histograms(events)
        assert set(table) == set(m.syscall_stats)
        for name, entry in table.items():
            assert entry["calls"] == m.syscall_stats[name]["calls"]
            assert entry["seconds"] == m.syscall_stats[name]["seconds"]
