"""Tests for the WAT text parser."""

import pytest

from repro.runtime import Interpreter
from repro.wasm import encode_module, decode_module, validate_module
from repro.wasm.wat_parser import WatParseError, parse_wat


def load(text):
    module = parse_wat(text)
    validate_module(module)
    return module


class TestBasics:
    def test_empty_module(self):
        module = load("(module)")
        assert module.funcs == []

    def test_simple_function(self):
        module = load("""
            (module
              (func $add (export "add") (param i32 i32) (result i32)
                local.get 0
                local.get 1
                i32.add))
        """)
        assert Interpreter(module).invoke("add", 2, 3) == 5

    def test_comments_stripped(self):
        module = load("""
            (module ;; line comment
              (; block
                 comment ;)
              (func (export "f") (result i32)
                i32.const 7))
        """)
        assert Interpreter(module).invoke("f") == 7

    def test_locals_and_loop(self):
        module = load("""
            (module
              (func $sum (export "sum") (param i32) (result i32)
                (local i32 i32)
                block
                  loop
                    local.get 1
                    local.get 0
                    i32.ge_s
                    br_if 1
                    local.get 2
                    local.get 1
                    i32.add
                    local.set 2
                    local.get 1
                    i32.const 1
                    i32.add
                    local.set 1
                    br 0
                  end
                end
                local.get 2))
        """)
        assert Interpreter(module).invoke("sum", 5) == 0 + 1 + 2 + 3 + 4

    def test_block_with_result(self):
        module = load("""
            (module
              (func (export "f") (result i32)
                block (result i32)
                  i32.const 9
                end))
        """)
        assert Interpreter(module).invoke("f") == 9

    def test_if_else(self):
        module = load("""
            (module
              (func (export "pick") (param i32) (result i32)
                local.get 0
                if (result i32)
                  i32.const 1
                else
                  i32.const 2
                end))
        """)
        interp = Interpreter(module)
        assert interp.invoke("pick", 5) == 1
        assert interp.invoke("pick", 0) == 2


class TestMemoryAndData:
    def test_memory_load_store_with_memarg(self):
        module = load("""
            (module
              (memory 1)
              (func (export "rt") (param i32 i64) (result i64)
                local.get 0
                local.get 1
                i64.store offset=8
                local.get 0
                i64.load offset=8))
        """)
        assert Interpreter(module).invoke("rt", 0, 123456789) == 123456789

    def test_data_segment(self):
        module = load("""
            (module
              (memory 1)
              (data (i32.const 4) "AB")
              (func (export "peek") (result i32)
                i32.const 4
                i32.load8_u))
        """)
        assert Interpreter(module).invoke("peek") == ord("A")

    def test_memory_limits(self):
        module = load("(module (memory 2 5))")
        assert module.memories[0].limits.minimum == 2
        assert module.memories[0].limits.maximum == 5


class TestNamesAndCalls:
    def test_forward_call_by_name(self):
        module = load("""
            (module
              (func $main (export "main") (result i32)
                i32.const 20
                call $helper)
              (func $helper (param i32) (result i32)
                local.get 0
                i32.const 1
                i32.add))
        """)
        assert Interpreter(module).invoke("main") == 21

    def test_globals_by_name(self):
        module = load("""
            (module
              (global $counter (mut i32) (i32.const 10))
              (func (export "bump") (result i32)
                global.get $counter
                i32.const 1
                i32.add
                global.set $counter
                global.get $counter))
        """)
        interp = Interpreter(module)
        assert interp.invoke("bump") == 11
        assert interp.invoke("bump") == 12

    def test_table_and_elem(self):
        module = load("""
            (module
              (table 2 funcref)
              (elem (i32.const 0) $a $b)
              (func $a (result i32) i32.const 10)
              (func $b (result i32) i32.const 20)
              (func (export "pick") (param i32) (result i32)
                local.get 0
                call_indirect (type 0)))
        """)
        interp = Interpreter(module)
        assert interp.invoke("pick", 0) == 10
        assert interp.invoke("pick", 1) == 20

    def test_start_function(self):
        module = load("""
            (module
              (global $x (mut i32) (i32.const 0))
              (start $init)
              (func $init
                i32.const 99
                global.set $x)
              (func (export "get") (result i32)
                global.get $x))
        """)
        assert Interpreter(module).invoke("get") == 99


class TestRoundTrip:
    def test_parsed_module_encodes_to_valid_binary(self):
        module = load("""
            (module
              (memory 1)
              (func (export "f") (param i32) (result i32)
                local.get 0
                i32.const 3
                i32.mul))
        """)
        again = decode_module(encode_module(module))
        validate_module(again)
        assert Interpreter(again).invoke("f", 7) == 21


class TestErrors:
    def test_not_a_module(self):
        with pytest.raises(WatParseError, match="module"):
            parse_wat("(func)")

    def test_unknown_instruction(self):
        with pytest.raises(WatParseError, match="unknown instruction"):
            parse_wat("(module (func v128.load))")

    def test_folded_form_rejected(self):
        with pytest.raises(WatParseError, match="folded"):
            parse_wat("(module (func (result i32) (i32.add (i32.const 1) (i32.const 2))))")

    def test_unterminated_string(self):
        with pytest.raises(WatParseError, match="unterminated"):
            parse_wat('(module (data (i32.const 0) "oops))')

    def test_unknown_name(self):
        with pytest.raises(WatParseError, match="unknown func name"):
            parse_wat("(module (func call $missing))")

    def test_missing_paren(self):
        with pytest.raises(WatParseError, match="closing"):
            parse_wat("(module (func")
