"""Unit tests for the instance lifecycle and iteration plans."""

import pytest

from repro.core.lifecycle import (
    FAULT_PHASE_FRACTION,
    InstanceLifecycle,
    IterationPlan,
    make_plan,
)
from repro.cpu import Machine, MachineSpec, SimThread
from repro.oskernel import Kernel
from repro.oskernel.layout import GUARD_REGION_BYTES, PAGE_SIZE
from repro.runtime import strategy_named
from repro.sim import Engine


def system(cores=2):
    engine = Engine()
    machine = Machine(
        engine,
        MachineSpec("t", "x86_64", cores, 1e9, 1 << 30, switch_cost=0.0),
    )
    kernel = Kernel(engine, machine)
    return engine, machine, kernel


def run_lifecycle(plan, iterations=2, cores=2):
    engine, machine, kernel = system(cores)
    proc = kernel.create_process("p")
    proc.cpumask.add(0)
    thread = SimThread(engine, "w", machine.core(0), tgid=proc.tgid)
    lifecycle = InstanceLifecycle(kernel, proc, thread, plan)
    timings = []

    def body():
        yield from thread.startup()
        yield from lifecycle.setup()
        for _ in range(iterations):
            timed = yield from lifecycle.run_iteration()
            timings.append(timed)
        thread.finish()

    engine.run_process(body())
    return proc, timings


def plan_for(strategy_name, compute=1e-3, memory=1 << 20, native=False, **kw):
    return make_plan(
        cycles=compute * 1e9,
        frequency_hz=1e9,
        strategy=strategy_named(strategy_name),
        time_scale=1.0,
        memory_bytes=memory,
        native=native,
        **kw,
    )


class TestMakePlan:
    def test_compute_scaling(self):
        plan = make_plan(1e6, 1e9, strategy_named("none"), 100.0, 1 << 20)
        assert plan.compute_seconds == pytest.approx(0.1)

    def test_memory_clamped_to_guard_region(self):
        plan = make_plan(1e6, 1e9, strategy_named("none"), 1.0, 1 << 60)
        assert plan.memory_bytes == GUARD_REGION_BYTES

    def test_touched_pages_cover_footprint(self):
        plan = plan_for("none", memory=10 * PAGE_SIZE)
        assert plan.touched_pages >= 10


class TestStrategies:
    def test_mprotect_calls_per_iteration(self):
        proc, _ = run_lifecycle(plan_for("mprotect"), iterations=3)
        # Setup reserve (mmap) + grow/reset mprotect per iteration.
        assert proc.stats["mprotect_calls"] == 6
        assert proc.stats["madvise_calls"] == 0

    def test_none_uses_madvise_reset(self):
        proc, _ = run_lifecycle(plan_for("none"), iterations=3)
        assert proc.stats["madvise_calls"] == 3
        # One mprotect at setup (map reservation RW), none per iteration.
        assert proc.stats["mprotect_calls"] == 1

    def test_uffd_registers_and_faults_via_sigbus(self):
        proc, _ = run_lifecycle(plan_for("uffd"), iterations=2)
        assert proc.stats["uffd_faults"] > 0
        assert proc.stats["anon_faults"] == 0

    def test_every_iteration_refaults(self):
        proc, _ = run_lifecycle(plan_for("none", memory=2 << 20), iterations=3)
        # 2 MiB footprint -> one THP fault per iteration.
        assert proc.stats["anon_faults"] == 3
        assert proc.stats["pages_zapped"] == 3 * 512

    def test_native_maps_per_iteration(self):
        proc, _ = run_lifecycle(plan_for("none", native=True), iterations=3)
        assert proc.stats["mmap_calls"] == 3
        assert proc.stats["munmap_calls"] == 3

    def test_timed_exceeds_compute_by_fault_overhead_only(self):
        plan = plan_for("none", compute=5e-3, memory=1 << 20)
        _, timings = run_lifecycle(plan, iterations=2)
        for timed in timings:
            assert plan.compute_seconds <= timed < plan.compute_seconds * 1.2


class TestGcPacing:
    def test_gc_pauses_extend_timed_region(self):
        base = plan_for("none", compute=10e-3)
        with_gc = make_plan(
            cycles=10e6, frequency_hz=1e9, strategy=strategy_named("none"),
            time_scale=1.0, memory_bytes=1 << 20,
            gc_interval=1e-3, gc_duration=0.5e-3,
        )
        _, plain = run_lifecycle(base, iterations=1)
        _, paced = run_lifecycle(with_gc, iterations=1)
        # ~10 pauses of 0.5ms inside a 10ms region.
        assert paced[0] > plain[0] + 8 * 0.5e-3

    def test_gc_debt_carries_across_iterations(self):
        plan = make_plan(
            cycles=0.4e6, frequency_hz=1e9, strategy=strategy_named("none"),
            time_scale=1.0, memory_bytes=1 << 20,
            gc_interval=1e-3, gc_duration=0.5e-3,
        )
        _, timings = run_lifecycle(plan, iterations=6)
        # 0.4ms compute per iteration, 1ms interval: a pause roughly
        # every third iteration — so not every timing is equal.
        assert len(set(round(t, 7) for t in timings)) > 1


class TestFaultSpread:
    def test_faults_confined_to_first_phase(self):
        """The fault batches replay across the first 40% of compute."""
        assert 0.0 < FAULT_PHASE_FRACTION < 1.0
        plan = plan_for("none", compute=2e-3, memory=64 << 20)
        proc, timings = run_lifecycle(plan, iterations=1)
        assert proc.stats["pages_populated"] == plan.touched_pages
