"""Tests for the runtime models and their paper-mandated invariants."""

import pytest

from repro.core.profiles import profile_for
from repro.isa import isa_named
from repro.runtime import strategy_named
from repro.runtimes import RUNTIMES, WASM_RUNTIMES, runtime_named


@pytest.fixture(scope="module")
def gemm():
    return profile_for("gemm", "mini")


class TestRegistry:
    def test_environments_registered(self):
        # The paper's six (§3.2) plus the Liftoff extension tier.
        assert set(RUNTIMES) == {
            "native-clang", "native-gcc", "wavm", "wasmtime", "v8",
            "v8-liftoff", "wasm3",
        }
        assert WASM_RUNTIMES == ["wavm", "wasmtime", "v8", "wasm3"]

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            runtime_named("wasmer")

    def test_riscv_backend_gaps_match_paper(self):
        # §3.4: WAVM's MCJIT crashes on RISC-V; Cranelift has no target.
        assert not runtime_named("wavm").supports("riscv64")
        assert not runtime_named("wasmtime").supports("riscv64")
        assert runtime_named("v8").supports("riscv64")
        assert runtime_named("wasm3").supports("riscv64")
        assert runtime_named("native-clang").supports("riscv64")

    def test_default_strategy_is_mprotect_for_compiled_runtimes(self):
        # §3.2: WAVM, Wasmtime and V8 use mprotect by default.
        for name in ("wavm", "wasmtime", "v8"):
            assert runtime_named(name).default_strategy == "mprotect"

    def test_wasm3_only_traps(self):
        assert runtime_named("wasm3").strategies == ("trap",)

    def test_native_has_no_bounds_checking(self):
        assert runtime_named("native-clang").strategies == ("none",)

    def test_v8_has_helper_threads_and_gc(self):
        v8 = runtime_named("v8")
        assert v8.helper_threads > 0
        assert v8.gc_pause_interval > 0

    def test_native_spawns_processes(self):
        assert runtime_named("native-clang").process_per_instance
        assert not runtime_named("wavm").process_per_instance


class TestCycleInvariants:
    """The paper's §1.3/§4.1 orderings, checked on a real profile."""

    def cycles(self, gemm, runtime, strategy, isa="x86_64"):
        module, profile = gemm
        return runtime_named(runtime).cycles(
            module, profile, isa_named(isa), strategy_named(strategy)
        )

    def test_runtime_ordering_on_default_strategy(self, gemm):
        native = self.cycles(gemm, "native-clang", "none")
        wavm = self.cycles(gemm, "wavm", "mprotect")
        wasmtime = self.cycles(gemm, "wasmtime", "mprotect")
        v8 = self.cycles(gemm, "v8", "mprotect")
        wasm3 = self.cycles(gemm, "wasm3", "trap")
        assert native < wavm < wasmtime
        assert wasmtime < v8 * 1.05  # "V8 very closely" behind Wasmtime
        assert v8 < wasm3

    def test_strategy_ordering_within_each_runtime(self, gemm):
        for runtime in ("wavm", "wasmtime", "v8"):
            none = self.cycles(gemm, runtime, "none")
            trap = self.cycles(gemm, runtime, "trap")
            clamp = self.cycles(gemm, runtime, "clamp")
            mprotect = self.cycles(gemm, runtime, "mprotect")
            uffd = self.cycles(gemm, runtime, "uffd")
            assert none <= mprotect <= trap < clamp, runtime
            assert uffd == mprotect, runtime  # same compiled code shape

    def test_v8_pays_extra_for_signal_strategies(self, gemm):
        # §4.1: "10 points difference for the V8 runtime".
        v8_gap = self.cycles(gemm, "v8", "mprotect") / self.cycles(gemm, "v8", "none")
        wavm_gap = self.cycles(gemm, "wavm", "mprotect") / self.cycles(
            gemm, "wavm", "none"
        )
        assert v8_gap > 1.03
        assert wavm_gap == pytest.approx(1.0)

    def test_wasm3_in_titzer_band_vs_v8(self, gemm):
        ratio = self.cycles(gemm, "wasm3", "trap") / self.cycles(gemm, "v8", "mprotect")
        assert 4.0 < ratio < 15.0

    def test_relative_strategy_costs_isa_independent(self, gemm):
        """§1.3: strategy cost ratios within a few points across ISAs."""
        gaps = {}
        for isa in ("x86_64", "armv8"):
            trap = self.cycles(gemm, "wavm", "trap", isa)
            none = self.cycles(gemm, "wavm", "none", isa)
            gaps[isa] = trap / none
        assert abs(gaps["x86_64"] - gaps["armv8"]) < 0.10

    def test_unsupported_isa_raises(self, gemm):
        module, profile = gemm
        with pytest.raises(ValueError, match="backend"):
            runtime_named("wavm").cycles(
                module, profile, isa_named("riscv64"), strategy_named("none")
            )

    def test_gcc_faster_than_clang_on_loops(self, gemm):
        assert self.cycles(gemm, "native-gcc", "none") < self.cycles(
            gemm, "native-clang", "none"
        )

    def test_compilation_cached(self, gemm):
        module, profile = gemm
        runtime = runtime_named("wavm")
        first = runtime.compiled(module, isa_named("x86_64"), strategy_named("none"))
        second = runtime.compiled(module, isa_named("x86_64"), strategy_named("none"))
        assert first is second


class TestTierTradeoff:
    """Titzer-style translation-time/code-quality statistics."""

    def test_compile_time_ordering(self, gemm):
        module, _ = gemm
        times = {
            name: runtime_named(name).compile_seconds(module)
            for name in ("wasm3", "v8-liftoff", "wasmtime", "v8", "wavm")
        }
        assert times["wasm3"] < times["v8-liftoff"] < times["wasmtime"]
        assert times["wasmtime"] < times["v8"] < times["wavm"]

    def test_liftoff_much_slower_than_turbofan_at_runtime(self, gemm):
        module, profile = gemm
        isa = isa_named("x86_64")
        strategy = strategy_named("mprotect")
        liftoff = runtime_named("v8-liftoff").cycles(module, profile, isa, strategy)
        turbofan = runtime_named("v8").cycles(module, profile, isa, strategy)
        assert liftoff > 1.3 * turbofan

    def test_code_size_zero_for_interpreter(self, gemm):
        module, _ = gemm
        isa = isa_named("x86_64")
        assert runtime_named("wasm3").code_size_ops(
            module, isa, strategy_named("trap")
        ) == 0
        assert runtime_named("wavm").code_size_ops(
            module, isa, strategy_named("none")
        ) > 0
