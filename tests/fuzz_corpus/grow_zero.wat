;; Regression: memory.grow 0 must succeed without emitting a grow
;; event (fixed in the diffcheck PR) — and must agree across modes.
(module
  (memory 1 4)
  (func (export "run") (param i32) (result i32)
    i32.const 0
    memory.grow
    i32.const 1
    memory.grow
    i32.add
    i32.const 0
    memory.grow
    i32.add
    memory.size
    i32.add))
