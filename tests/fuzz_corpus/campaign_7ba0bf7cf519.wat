(module
  (memory 3 19)
  (export "memory" (memory 0))
  (func $f0 (export "run") (param i32) (result i32) (local i32 i32 i32)
    i32.const 67436
    i32.const 9
    i32.const 7037
    memory.fill
    i32.const 0
    local.set 1
    block
    loop
    local.get 1
    i32.const 16
    i32.ge_s
    br_if 1
    local.get 3
    i32.const 31
    i32.mul
    local.get 1
    i32.const 4
    i32.mul
    i32.const 65536
    i32.add
    i32.load offset=0 align=4
    i32.add
    local.set 3
    local.get 1
    i32.const 1
    i32.add
    local.set 1
    br 0
    end
    end
    local.get 3
    return
  )
)
