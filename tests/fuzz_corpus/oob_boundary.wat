;; Out-of-bounds probes at the exact page boundary: the last in-bounds
;; word, one byte past, and a far miss.  Trapping strategies must
;; report identical trap kinds; clamp/none must complete identically.
(module
  (memory 1)
  (func (export "run") (param i32) (result i32)
    i32.const 65532
    local.get 0
    i32.store
    i32.const 65532
    i32.load
    i32.const 65533
    i32.load
    i32.add))
