;; Arg-dependent f64->i32 truncation overflow: in range for small
;; args, traps with integer-overflow for large ones.
(module
  (func (export "run") (param i32) (result i32)
    local.get 0
    f64.convert_i32_u
    f64.const 2000000.0
    f64.mul
    i32.trunc_f64_s))
