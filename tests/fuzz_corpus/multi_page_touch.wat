;; Regression: LinearMemory._touch must record the *interior* pages of
;; accesses spanning more than two pages (fixed in the diffcheck PR;
;; memory.fill/copy make such ranges expressible from wasm).
(module
  (memory 4)
  (func (export "run") (param i32) (result i32)
    i32.const 2048
    local.get 0
    i32.const 250000
    memory.fill
    i32.const 4096
    i32.const 2048
    i32.const 200000
    memory.copy
    i32.const 100000
    i32.load8_u))
