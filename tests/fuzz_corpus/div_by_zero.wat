;; Arg-dependent divide-by-zero: traps iff arg == 0; the quotient path
;; must agree bit-for-bit when it does not trap.
(module
  (func (export "run") (param i32) (result i32)
    i32.const 1000000
    local.get 0
    i32.div_u
    i32.const -1000000
    local.get 0
    i32.const 1
    i32.add
    i32.div_s
    i32.add))
