"""Tests for the compiler: frontend, passes, regalloc, isel, timing."""

import pytest

from repro.compiler.frontend import lower_function, lower_module
from repro.compiler.ir import PURE_OPS
from repro.compiler.isel import SelectionConfig, select_function
from repro.compiler.passes import (
    constant_fold,
    dead_code_elim,
    local_cse,
    loop_invariant_code_motion,
    run_passes,
    strength_reduce,
)
from repro.compiler.pipeline import ALL_PASSES, CompilerConfig, compile_module
from repro.compiler.regalloc import estimate_spills
from repro.compiler.timing import cycles_for_profile, interpreter_cycles
from repro.isa import isa_named
from repro.isa.model import OPK
from repro.runtime import Interpreter, strategy_named
from repro.wasm.dsl import Const, DslModule


def build_saxpy(n=8):
    """y[i] = a*x[i] + y[i] — one loop, one invariant-rich address per op."""
    dm = DslModule("saxpy")
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)
    f = dm.func("run", params=[("a", "f64")])
    a = f.params[0]
    i = f.i32("i")
    with f.for_(i, 0, n):
        f.store(y[i], a * x[i] + y[i])
    return dm.build()


def lowered(module, func_index=0):
    return lower_function(module, func_index, module.funcs[func_index])


def all_ops(irf):
    return [ins.op for ins in irf.instructions()]


class TestFrontend:
    def test_boundscheck_before_every_access(self):
        irf = lowered(build_saxpy())
        ops = all_ops(irf)
        assert ops.count("boundscheck") == 3  # 2 loads + 1 store
        assert ops.count("load") == 2
        assert ops.count("store") == 1

    def test_loop_carried_local_gets_phi(self):
        irf = lowered(build_saxpy())
        phis = [ins for ins in irf.instructions() if ins.op == "phi"]
        assert len(phis) == 1  # only `i` is written inside the loop

    def test_loop_header_block_identified(self):
        irf = lowered(build_saxpy())
        loop_blocks = [b for b in irf.blocks if b.loop_depth == 1]
        assert loop_blocks, "loop body must be inside a loop path"

    def test_leaders_exclude_end_and_else(self):
        module = build_saxpy()
        irf = lowered(module)
        body = module.funcs[0].body
        for block in irf.blocks:
            if block.leader_pc >= 0:
                assert body[block.leader_pc].op not in ("end", "else")

    def test_locals_are_register_renames(self):
        # local.get/set must not emit IR instructions.
        dm = DslModule()
        f = dm.func("f", params=[("x", "i32")], results=["i32"])
        t = f.i32()
        f.set(t, f.params[0] + 1)
        f.ret(t)
        irf = lowered(dm.build())
        ops = all_ops(irf)
        assert "iadd" in ops
        assert ops.count("move") == 0

    def test_lower_module_covers_all_functions(self):
        dm = DslModule()
        dm.func("a").fb.emit("nop")
        dm.func("b").fb.emit("nop")
        irfs = lower_module(dm.build())
        assert set(irfs) == {0, 1}

    def test_call_lowering(self):
        dm = DslModule()
        g = dm.func("g", params=[("x", "i32")], results=["i32"], export=False)
        g.ret(g.params[0])
        f = dm.func("f", results=["i32"])
        f.ret(f.call(g, 5))
        irf = lower_module(dm.build())[1]
        assert "call" in all_ops(irf)


class TestPasses:
    def test_constant_fold(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        f.ret(Const(3, "i32") + 4)
        irf = lowered(dm.build())
        consts = constant_fold(irf)
        assert "iadd" not in all_ops(irf)
        assert 7 in consts.values()

    def test_cse_unifies_duplicate_address_math(self):
        dm = DslModule()
        arr = dm.array_f64("A", 16)
        f = dm.func("f", params=[("i", "i32")])
        i = f.params[0]
        f.store(arr[i], arr[i] + 1.0)  # address computed for load and store
        irf = lowered(dm.build())
        before = all_ops(irf).count("ishl") + all_ops(irf).count("imul")
        local_cse(irf, check_elim=False)
        after = all_ops(irf).count("ishl") + all_ops(irf).count("imul")
        assert after < before

    def test_checkelim_drops_redundant_boundscheck(self):
        dm = DslModule()
        arr = dm.array_f64("A", 16)
        f = dm.func("f", params=[("i", "i32")])
        i = f.params[0]
        f.store(arr[i], arr[i] + 1.0)
        irf = lowered(dm.build())
        local_cse(irf, check_elim=True)
        assert all_ops(irf).count("boundscheck") == 1

    def test_cse_does_not_merge_loads_across_stores(self):
        dm = DslModule()
        arr = dm.array_f64("A", 16)
        f = dm.func("f", results=["f64"])
        f.store(arr[0], 1.0)
        first = f.f64()
        f.set(first, arr[0])
        f.store(arr[0], 2.0)
        f.ret(arr[0] + first)
        irf = lowered(dm.build())
        local_cse(irf, check_elim=False)
        assert all_ops(irf).count("load") == 2  # reload after the store

    def test_licm_hoists_invariant_address_parts(self):
        module = build_saxpy()
        irf = lowered(module)
        local_cse(irf, check_elim=False)
        hoisted = loop_invariant_code_motion(irf)
        # x and y base addresses (const) stay; the per-iteration i<<3 is
        # variant; invariants like the trip bound const may hoist.
        assert hoisted >= 0  # smoke: no crash, counts consistent
        # Stronger: an expression invariant in the inner loop hoists.
        dm = DslModule()
        arr = dm.array_f64("A", 64)
        f = dm.func("f", params=[("k", "i32")])
        k = f.params[0]
        i = f.i32()
        with f.for_(i, 0, 8):
            f.store(arr[k * 7], arr[k * 7] + 1.0)  # k*7 is invariant
        irf2 = lowered(dm.build())
        local_cse(irf2, check_elim=False)
        hoisted2 = loop_invariant_code_motion(irf2)
        assert hoisted2 > 0
        loop_blocks = [b for b in irf2.blocks if b.loop_depth == 1]
        assert not any(
            ins.op == "imul" for b in loop_blocks for ins in b.instrs
        ), "k*7 should have been hoisted out of the loop"

    def test_licm_does_not_hoist_loop_variant(self):
        module = build_saxpy()
        irf = lowered(module)
        loop_invariant_code_motion(irf)
        loop_blocks = [b for b in irf.blocks if b.loop_depth == 1]
        # i<<3 (address scaling by the loop variable) must stay inside.
        assert any(
            ins.op in ("ishl", "imul") for b in loop_blocks for ins in b.instrs
        )

    def test_strength_reduction(self):
        dm = DslModule()
        f = dm.func("f", params=[("x", "i32")], results=["i32"])
        f.ret(f.params[0] * 8)
        irf = lowered(dm.build())
        consts = constant_fold(irf)
        assert strength_reduce(irf, consts) == 1
        assert "imul" not in all_ops(irf)
        assert "ishl" in all_ops(irf)

    def test_dce_removes_unused_pure_ops(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        f.eval_drop(Const(1, "i32") + 2)  # computed then dropped
        f.ret(Const(5, "i32"))
        irf = lowered(dm.build())
        removed = dead_code_elim(irf)
        assert removed >= 2

    def test_dce_keeps_stores(self):
        module = build_saxpy()
        irf = lowered(module)
        dead_code_elim(irf)
        assert "store" in all_ops(irf)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown passes"):
            CompilerConfig(
                name="x", passes=frozenset({"vectorize"}),
                regalloc_quality=1.0, addressing_fusion=True,
            )


class TestRegalloc:
    def test_low_pressure_no_spills(self):
        irf = lowered(build_saxpy())
        report = estimate_spills(irf, isa_named("x86_64"), quality=1.0)
        assert report.spilled_regs == 0

    def test_reduced_quality_can_spill(self):
        # A function with many simultaneously-live values.
        dm = DslModule()
        arr = dm.array_f64("A", 64)
        f = dm.func("f", results=["f64"])
        locals_ = [f.f64() for _ in range(24)]
        for index, lv in enumerate(locals_):
            f.set(lv, arr[index])
        total = f.f64()
        for lv in locals_:
            f.set(total, total + lv)
        f.ret(total)
        irf = lowered(dm.build())
        generous = estimate_spills(irf, isa_named("x86_64"), quality=1.0)
        tight = estimate_spills(irf, isa_named("x86_64"), quality=0.3)
        assert tight.total_ops > generous.total_ops

    def test_spill_avoids_hot_loop_registers(self):
        """Victims should be cold values, keeping inner-loop regs live."""
        dm = DslModule()
        arr = dm.array_f64("A", 64)
        f = dm.func("f", results=["f64"])
        # Cold values: loaded before the loop, only used after it.
        cold = [f.f64() for _ in range(10)]
        for index, lv in enumerate(cold):
            f.set(lv, arr[index])
        acc, i = f.f64(), f.i32()
        with f.for_(i, 0, 16):
            f.set(acc, acc + arr[i] * 2.0)
        total = f.f64()
        f.set(total, acc)
        for lv in cold:
            f.set(total, total + lv)
        f.ret(total)
        irf = lowered(dm.build())
        report = estimate_spills(irf, isa_named("x86_64"), quality=0.3)
        assert report.total_ops > 0
        loop_block_ids = {b.id for b in irf.blocks if b.loop_depth > 0}
        hot_spills = sum(report.per_block.get(b, 0) for b in loop_block_ids)
        cold_spills = report.total_ops - hot_spills
        assert cold_spills >= hot_spills


class TestIsel:
    def select(self, module, inline_check="", fusion=True, extra=0, isa="x86_64"):
        # BCE excluded: these tests exercise how isel lowers checks
        # that are actually present in the IR.
        irf = lowered(module)
        run_passes(irf, set(ALL_PASSES) - {"bce", "bceloop"})
        config = SelectionConfig(
            inline_check=inline_check, extra_access_ops=extra,
            addressing_fusion=fusion,
        )
        return irf, select_function(irf, isa_named(isa), config)

    def flat(self, ops):
        return [kind for kinds in ops.values() for kind in kinds]

    def test_clamp_emits_cmp_cmov(self):
        irf, ops = self.select(build_saxpy(), inline_check="clamp")
        kinds = self.flat(ops)
        assert OPK.CMOV in kinds

    def test_clamp_on_riscv_uses_alu_sequence(self):
        irf, ops = self.select(build_saxpy(), inline_check="clamp", isa="riscv64")
        kinds = self.flat(ops)
        assert OPK.CMOV not in kinds

    def test_trap_emits_fused_check(self):
        irf, ops = self.select(build_saxpy(), inline_check="trap")
        assert OPK.CMP_BRANCH in self.flat(ops)

    def test_none_emits_no_check_ops(self):
        irf, ops = self.select(build_saxpy(), inline_check="")
        kinds = self.flat(ops)
        assert OPK.CMOV not in kinds
        assert OPK.CMP_BRANCH not in kinds

    def test_extra_access_ops_add_alu(self):
        _, plain = self.select(build_saxpy(), inline_check="")
        _, extra = self.select(build_saxpy(), inline_check="", extra=1)
        assert len(self.flat(extra)) > len(self.flat(plain))

    def test_fusion_reduces_op_count(self):
        _, fused = self.select(build_saxpy(), fusion=True)
        _, unfused = self.select(build_saxpy(), fusion=False)
        assert len(self.flat(fused)) < len(self.flat(unfused))

    def test_inline_check_inhibits_fusion(self):
        _, none_ops = self.select(build_saxpy(), inline_check="")
        _, trap_ops = self.select(build_saxpy(), inline_check="trap")
        # trap adds check ops AND loses the folded address math.
        assert len(self.flat(trap_ops)) > len(self.flat(none_ops)) + 2

    def test_call_indirect_includes_table_checks(self):
        dm = DslModule()
        f = dm.func("f", params=[("x", "i32")], results=["i32"])
        f.ret(f.params[0])
        module = dm.build()
        module.tables.append(
            __import__("repro.wasm.types", fromlist=["TableType"]).TableType(
                __import__("repro.wasm.types", fromlist=["Limits"]).Limits(1)
            )
        )
        from repro.wasm.instructions import Instr
        module.funcs[0].body = [
            Instr("local.get", (0,)),
            Instr("local.get", (0,)),
            Instr("call_indirect", (0, 0)),
        ]
        irf = lower_function(module, 0, module.funcs[0])
        config = SelectionConfig("", 0, True)
        ops = select_function(irf, isa_named("x86_64"), config)
        kinds = self.flat(ops)
        assert OPK.CALL_IND in kinds
        assert kinds.count(OPK.CMP_BRANCH) >= 2  # bounds + signature


class TestTiming:
    def make_profile(self, module):
        interp = Interpreter(module)
        interp.invoke("run", 2.0)
        return interp.take_profile("saxpy", "test")

    def test_cycles_scale_with_work(self):
        small = build_saxpy(8)
        big = build_saxpy(64)
        isa = isa_named("x86_64")
        config = CompilerConfig(
            name="t", passes=frozenset(ALL_PASSES),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        strategy = strategy_named("none")
        cycles_small = cycles_for_profile(
            compile_module(small, isa, config, strategy), self.make_profile(small)
        )
        cycles_big = cycles_for_profile(
            compile_module(big, isa, config, strategy), self.make_profile(big)
        )
        assert cycles_big > 5 * cycles_small

    def test_trap_costs_more_than_none(self):
        module = build_saxpy(32)
        profile = self.make_profile(module)
        isa = isa_named("x86_64")
        config = CompilerConfig(
            name="t", passes=frozenset(ALL_PASSES),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        none_cycles = cycles_for_profile(
            compile_module(module, isa, config, strategy_named("none")), profile
        )
        trap_cycles = cycles_for_profile(
            compile_module(module, isa, config, strategy_named("trap")), profile
        )
        clamp_cycles = cycles_for_profile(
            compile_module(module, isa, config, strategy_named("clamp")), profile
        )
        assert none_cycles < trap_cycles < clamp_cycles

    def test_interpreter_much_slower_than_compiled(self):
        module = build_saxpy(32)
        profile = self.make_profile(module)
        isa = isa_named("x86_64")
        config = CompilerConfig(
            name="t", passes=frozenset(ALL_PASSES),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        compiled_cycles = cycles_for_profile(
            compile_module(module, isa, config, strategy_named("none")), profile
        )
        interp = interpreter_cycles(profile, isa)
        assert interp > 4 * compiled_cycles

    def test_uncalled_function_costs_nothing(self):
        dm = DslModule()
        f = dm.func("run", params=[("a", "f64")])
        f.set(f.f64(), f.params[0])
        unused = dm.func("unused")
        unused.fb.emit("nop")
        module = dm.build()
        profile = self.make_profile(module)
        isa = isa_named("x86_64")
        config = CompilerConfig(
            name="t", passes=frozenset(ALL_PASSES),
            regalloc_quality=1.0, addressing_fusion=True,
        )
        compiled = compile_module(module, isa, config, strategy_named("none"))
        assert cycles_for_profile(compiled, profile) >= 0
