"""Tests for the sweep service: dedup, fault isolation, streaming, HTTP.

The acceptance pair the PR hangs on:

* **dedup** — N identical concurrent jobs trigger exactly ONE engine
  execution; the other N-1 subscribe to the in-flight future
  (``coalesced`` counter).
* **fault isolation** — a grid containing one poisoned configuration
  still returns a result row for every other configuration, with the
  failure surfaced as a structured per-row error.

Engine executions are observed by monkeypatching the engine module's
``_execute`` with a fake that fabricates measurements — the service
tests exercise scheduling, not the simulator (one end-to-end test runs
the real thing).  The fake runs in the manager's engine thread (the
service engine is serial in-process for these grids), so a plain
counter is race-free.
"""

import asyncio
import dataclasses
import json
import threading
import time

import pytest

from repro.api import SweepSpec
from repro.core import engine as engine_mod
from repro.core.engine import MeasurementEngine, MeasurementRequest
from repro.core.lru import LRUCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import SweepService
from repro.service.httpd import HTTPRequest, ProtocolError
from repro.service.jobs import JobManager, validate_spec_names


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "profiles"))
    monkeypatch.setenv(
        "REPRO_MEASUREMENT_CACHE_DIR", str(tmp_path / "measurements")
    )
    engine_mod.reset_default_engine()
    yield tmp_path
    engine_mod.reset_default_engine()


def fake_measurement(request: MeasurementRequest):
    """A structurally valid RunMeasurement without running the simulator."""
    from repro.core.harness import RunMeasurement
    from repro.oskernel.procstat import UtilisationSample

    return RunMeasurement(
        workload=request.workload,
        runtime=request.runtime,
        strategy=request.strategy,
        isa=request.isa,
        threads=request.threads,
        size=request.size,
        iteration_seconds=[0.001] * request.iterations,
        wall_seconds=0.001 * request.iterations,
        utilisation=UtilisationSample(1.0, 0.5, 50.0, 40.0, 10.0, 0.0, 12.0),
        mem_avg_bytes=1 << 20,
        kernel_stats={"mmap": 1},
        mmap_read_wait=0.0,
        mmap_write_wait=0.0,
        compute_seconds=0.001,
        bounds_checks={"emitted": 10, "elided": 2},
    )


class FakeExecute:
    """Stands in for ``engine_mod._execute``; counts and can poison."""

    def __init__(self, delay=0.0, poison=None):
        self.calls = []
        self.delay = delay
        #: (field, value) — requests matching it raise.
        self.poison = poison

    def __call__(self, payload):
        request = MeasurementRequest(**payload)
        self.calls.append(request)
        if self.delay:
            time.sleep(self.delay)
        if self.poison and getattr(request, self.poison[0]) == self.poison[1]:
            raise RuntimeError(f"poisoned config {request.label()}")
        return {
            "measurement": engine_mod.measurement_to_json(
                fake_measurement(request)
            ),
            "elapsed": self.delay,
        }


SPEC = SweepSpec(
    workloads=["trisolv"], runtimes=["wavm"],
    strategies=["none", "mprotect"], size="mini", iterations=2,
)


def run_async(coro):
    return asyncio.run(coro)


def make_manager(tmp_path, **kwargs):
    engine = MeasurementEngine(
        jobs=1, cache_dir=tmp_path / "measurements"
    )
    return JobManager(engine=engine, **kwargs)


class TestDedupAndIsolation:
    def test_n_identical_concurrent_jobs_one_execution(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: N concurrent identical jobs -> 1 engine execution."""
        fake = FakeExecute(delay=0.05)
        monkeypatch.setattr(engine_mod, "_execute", fake)

        async def scenario():
            manager = make_manager(tmp_path)
            jobs = [manager.submit(SPEC) for _ in range(5)]
            await asyncio.gather(*(job.done.wait() for job in jobs))
            return manager, jobs

        manager, jobs = run_async(scenario())
        # One execution per unique request cell, not per job.
        assert len(fake.calls) == len(SPEC.requests()) == 2
        metrics = manager.metrics()
        assert metrics["requests"]["coalesced"] == 4 * 2
        assert metrics["requests"]["computed"] == 2
        for job in jobs:
            assert job.state == "done"
            assert len(job.rows) == 2
        # Subscribers carry the same measured values as the owner.
        owner_rows = [dict(r, cache_hit=0, source="x") for r in jobs[0].rows]
        for job in jobs[1:]:
            assert [
                dict(r, cache_hit=0, source="x") for r in job.rows
            ] == owner_rows

    def test_poisoned_config_isolated_per_row(self, tmp_path, monkeypatch):
        """Acceptance: one poisoned config, every other row still lands."""
        fake = FakeExecute(poison=("strategy", "mprotect"))
        monkeypatch.setattr(engine_mod, "_execute", fake)
        spec = dataclasses.replace(
            SPEC, strategies=("none", "mprotect", "trap")
        )

        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(spec)
            await job.done.wait()
            return manager, job

        manager, job = run_async(scenario())
        assert job.state == "done"
        assert len(job.rows) == 3
        errors = [row for row in job.rows if "error" in row]
        oks = [row for row in job.rows if "error" not in row]
        assert len(errors) == 1 and len(oks) == 2
        assert errors[0]["strategy"] == "mprotect"
        assert errors[0]["error_kind"] == "RuntimeError"
        assert "poisoned" in errors[0]["error"]
        assert manager.metrics()["requests"]["errors"] == 1

    def test_error_rows_not_cached(self, tmp_path, monkeypatch):
        fake = FakeExecute(poison=("strategy", "mprotect"))
        monkeypatch.setattr(engine_mod, "_execute", fake)

        async def scenario():
            manager = make_manager(tmp_path)
            first = manager.submit(SPEC)
            await first.done.wait()
            second = manager.submit(SPEC)
            await second.done.wait()
            return second

        second = run_async(scenario())
        sources = {
            (row["strategy"], row["source"]) for row in second.rows
        }
        # The good row came from the LRU; the poisoned one re-executed.
        assert ("none", "lru") in sources
        assert ("mprotect", "error") in sources
        executed = [r for r in fake.calls if r.strategy == "mprotect"]
        assert len(executed) == 2  # retried, not served from cache

    def test_row_lru_bounded_with_eviction_counters(
        self, tmp_path, monkeypatch
    ):
        fake = FakeExecute()
        monkeypatch.setattr(engine_mod, "_execute", fake)
        spec = dataclasses.replace(
            SPEC, workloads=("trisolv", "gemm", "atax")
        )

        async def scenario():
            manager = make_manager(tmp_path, row_cache_capacity=2)
            job = manager.submit(spec)
            await job.done.wait()
            return manager

        manager = run_async(scenario())
        stats = manager.metrics()["row_cache"]
        assert stats["capacity"] == 2
        assert stats["size"] <= 2
        assert stats["peak"] <= 2
        assert stats["evictions"] >= 4  # 6 rows through a 2-slot cache

    def test_unknown_names_rejected_at_submit(self, tmp_path):
        with pytest.raises(ValueError, match="unknown workload"):
            validate_spec_names(SweepSpec(workloads=["nope"]))
        with pytest.raises(ValueError, match="unknown strategy"):
            validate_spec_names(
                SweepSpec(workloads=["trisolv"], strategies=["nope"])
            )
        with pytest.raises(ValueError, match="unknown ISA"):
            validate_spec_names(
                SweepSpec(workloads=["trisolv"], isas=["nope"])
            )

    def test_drain_rejects_new_jobs(self, tmp_path, monkeypatch):
        fake = FakeExecute()
        monkeypatch.setattr(engine_mod, "_execute", fake)

        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)
            await job.done.wait()
            await manager.drain(timeout=10)
            with pytest.raises(RuntimeError, match="draining"):
                manager.submit(SPEC)
            return job

        job = run_async(scenario())
        assert job.state == "done"


class TestJobEvents:
    def test_event_stream_replays_and_terminates(self, tmp_path, monkeypatch):
        fake = FakeExecute()
        monkeypatch.setattr(engine_mod, "_execute", fake)

        async def scenario():
            manager = make_manager(tmp_path)
            job = manager.submit(SPEC)
            await job.done.wait()
            # Late subscriber still sees full history (replay).
            queue, sink = manager.subscribe(job)
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            manager.unsubscribe(job, sink)
            return events

        events = run_async(scenario())
        names = [event["name"] for event in events]
        assert names[0] == "job.accepted"
        assert names.count("job.row") == 2
        assert names[-1] == "job.done"
        done = events[-1]["args"]
        assert done["rows"] == 2 and done["errors"] == 0
        rows = [e["args"]["row"] for e in events if e["name"] == "job.row"]
        assert {row["strategy"] for row in rows} == {"none", "mprotect"}


class HttpService:
    """Run a SweepService on a private loop thread; sync client access."""

    def __init__(self, tmp_path):
        self.engine = MeasurementEngine(
            jobs=1, cache_dir=tmp_path / "measurements"
        )
        self.loop = asyncio.new_event_loop()
        self.service = None
        self.address = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start")

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def boot():
            self.service = SweepService(
                host="127.0.0.1", port=0, engine=self.engine
            )
            self.address = await self.service.start()
            self._ready.set()

        self.loop.run_until_complete(boot())
        self.loop.run_forever()

    def client(self) -> ServiceClient:
        host, port = self.address
        return ServiceClient(host, port, timeout=60)

    def close(self):
        async def teardown():
            await self.service.stop(drain_timeout=30)

        future = asyncio.run_coroutine_threadsafe(teardown(), self.loop)
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


@pytest.fixture
def http_service(tmp_path, monkeypatch):
    fake = FakeExecute()
    monkeypatch.setattr(engine_mod, "_execute", fake)
    service = HttpService(tmp_path)
    service.fake = fake
    yield service
    service.close()


class TestHttpEndpoints:
    def test_submit_wait_and_metrics(self, http_service):
        with http_service.client() as client:
            assert client.health()["status"] == "ok"
            result = client.submit(SPEC, wait=True)
            assert result["state"] == "done"
            assert result["rows"] == 2
            assert len(result["row_data"]) == 2
            again = client.submit(SPEC.to_json(), wait=True)
            assert again["sources"] == {"lru": 2}
            metrics = client.metrics()
            assert metrics["requests"]["lru_hits"] == 2
            assert metrics["row_cache"]["hits"] == 2
            assert metrics["jobs"]["completed"] == 2
            assert metrics["engine"]["memory_cache"]["capacity"] >= 1

    def test_async_submit_poll_and_events(self, http_service):
        with http_service.client() as client:
            ack = client.submit(SPEC)
            assert ack["job"].startswith("j")
            result = client.result(ack["job"], wait=True)
            assert result["state"] == "done"
            events = list(client.stream_events(ack["job"]))
            names = [event["name"] for event in events]
            assert names[0] == "job.accepted"
            assert names[-1] == "job.done"
            listing = client.jobs()
            assert listing[0]["job"] == ack["job"]

    def test_bad_requests_rejected(self, http_service):
        with http_service.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"workloads": ["no-such-workload"]}, wait=True)
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"bogus_field": 1}, wait=True)
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/no/such/route")
            assert excinfo.value.status == 404
            assert client.metrics()["jobs"]["rejected"] == 2

    def test_concurrent_identical_http_jobs_coalesce(self, http_service):
        http_service.fake.delay = 0.2
        results = []

        def submit_one():
            with http_service.client() as client:
                results.append(client.submit(SPEC, wait=True))

        threads = [threading.Thread(target=submit_one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4
        assert all(r["rows"] == 2 for r in results)
        assert len(http_service.fake.calls) == 2  # one execution, 4 clients
        with http_service.client() as client:
            assert client.metrics()["requests"]["coalesced"] == 6


class TestHttpLayer:
    """Protocol-level units that need no running daemon."""

    def test_request_flags_and_json(self):
        request = HTTPRequest(
            method="POST", path="/jobs", query={"wait": "1"},
            headers={"connection": "close"},
            body=json.dumps({"a": 1}).encode(),
        )
        assert request.flag("wait") and not request.flag("stream")
        assert not request.keep_alive
        assert request.json() == {"a": 1}

    def test_bad_json_raises_protocol_error(self):
        request = HTTPRequest("POST", "/jobs", {}, {}, b"{nope")
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_lru_cache_unit(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency
        cache.put("c", 3)  # evicts b (least recent)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["peak"] == 2 and stats["size"] == 2
        assert stats["hits"] == 3 and stats["misses"] == 2


@pytest.mark.slow
class TestEndToEnd:
    def test_real_measurement_through_service(self, tmp_path):
        """No fakes: a real mini sweep through daemon, client and cache."""

        async def scenario():
            engine = MeasurementEngine(
                jobs=1, cache_dir=tmp_path / "measurements"
            )
            service = SweepService(host="127.0.0.1", port=0, engine=engine)
            host, port = await service.start()
            loop = asyncio.get_running_loop()
            spec = SweepSpec(
                workloads=["trisolv"], runtimes=["wavm"],
                strategies=["none"], size="mini", iterations=2,
            )

            def do_requests():
                with ServiceClient(host, port, timeout=300) as client:
                    first = client.submit(spec, wait=True)
                    second = client.submit(spec, wait=True)
                    return first, second

            first, second = await loop.run_in_executor(None, do_requests)
            await service.stop(drain_timeout=60)
            return first, second

        first, second = run_async(scenario())
        assert first["state"] == "done" and first["errors"] == 0
        row = first["row_data"][0]
        assert row["workload"] == "trisolv" and row["median_ms"] > 0
        assert second["sources"] == {"lru": 1}
        assert second["row_data"][0]["median_ms"] == row["median_ms"]
