"""Tests for the structured builder, the DSL and the WAT printer."""

import numpy as np
import pytest

from repro.runtime import Interpreter
from repro.wasm import ModuleBuilder, module_to_wat, validate_module
from repro.wasm.builder import BuilderError
from repro.wasm.dsl import Const, DslError, DslModule, Select
from repro.wasm.types import ValType

I32 = ValType.I32


class TestBuilder:
    def test_label_depths_computed(self):
        mb = ModuleBuilder()
        fb = mb.func("f")
        with fb.block() as outer:
            with fb.block() as inner:
                assert fb.depth_of(inner) == 0
                assert fb.depth_of(outer) == 1
        validate_module(mb.build())

    def test_branch_to_closed_label_rejected(self):
        mb = ModuleBuilder()
        fb = mb.func("f")
        with fb.block() as label:
            pass
        with pytest.raises(BuilderError, match="already closed"):
            fb.br(label)

    def test_foreign_label_rejected(self):
        mb = ModuleBuilder()
        fa = mb.func("a")
        fother = mb.func("b")
        with fa.block() as label:
            with pytest.raises(BuilderError, match="another function"):
                fother.depth_of(label)

    def test_else_outside_if_rejected(self):
        mb = ModuleBuilder()
        fb = mb.func("f")
        with pytest.raises(BuilderError, match="outside an if"):
            fb.else_()

    def test_unclosed_control_rejected_at_build(self):
        mb = ModuleBuilder()
        fb = mb.func("f")
        fb._control.append(object())  # simulate an unclosed block
        fb._control[-1] = type("L", (), {"builder": fb, "kind": "block", "position": 0})()
        with pytest.raises(BuilderError, match="unclosed"):
            mb.build()

    def test_imports_must_precede_functions(self):
        mb = ModuleBuilder()
        mb.func("f")
        with pytest.raises(BuilderError, match="imports"):
            mb.import_func("env", "h", [], [])

    def test_build_is_idempotent(self):
        mb = ModuleBuilder()
        fb = mb.func("f", results=[I32], export=True)
        fb.emit("i32.const", 3)
        first = mb.build()
        second = mb.build()
        assert first is second or len(second.funcs) == 1

    def test_function_indices_account_for_imports(self):
        mb = ModuleBuilder()
        mb.import_func("env", "h", [], [])
        fb = mb.func("f")
        assert fb.index == 1


class TestDslExpressions:
    def eval_expr(self, builder_fn, result="i32"):
        dm = DslModule("t")
        f = dm.func("f", results=[result])
        f.ret(builder_fn(f))
        module = dm.build()
        validate_module(module)
        return Interpreter(module).invoke("f")

    def test_arithmetic_precedence(self):
        assert self.eval_expr(lambda f: Const(2, "i32") + 3 * 4) == 14

    def test_float_math(self):
        value = self.eval_expr(
            lambda f: (Const(2.0, "f64") + 0.25) * 4.0, result="f64"
        )
        assert value == 9.0

    def test_comparison_produces_i32(self):
        assert self.eval_expr(lambda f: Const(3, "i32") < 5) == 1
        assert self.eval_expr(lambda f: Const(7, "i32") < 5) == 0

    def test_signed_division(self):
        assert self.eval_expr(lambda f: Const(-7, "i32") // 2) == (-3) & 0xFFFFFFFF

    def test_select(self):
        assert self.eval_expr(
            lambda f: Select(Const(1, "i32"), Const(10, "i32"), Const(20, "i32"))
        ) == 10

    def test_conversions(self):
        assert self.eval_expr(lambda f: Const(3, "i32").to_f64() + 0.5, result="f64") == 3.5
        assert self.eval_expr(lambda f: Const(3.9, "f64").to_i32()) == 3

    def test_sqrt(self):
        assert self.eval_expr(lambda f: Const(16.0, "f64").sqrt(), result="f64") == 4.0

    def test_min_max_float(self):
        assert self.eval_expr(
            lambda f: Const(3.0, "f64").min_(1.0), result="f64"
        ) == 1.0
        assert self.eval_expr(
            lambda f: Const(3.0, "f64").max_(1.0), result="f64"
        ) == 3.0

    def test_integer_min_via_select(self):
        assert self.eval_expr(lambda f: Const(3, "i32").min_(8)) == 3

    def test_type_mismatch_rejected(self):
        with pytest.raises(DslError, match="type mismatch"):
            Const(1, "i32") + Const(1.0, "f64")

    def test_float_truediv_int_rejected(self):
        with pytest.raises(DslError, match="//"):
            Const(1, "i32") / 2

    def test_bool_literal_rejected(self):
        with pytest.raises(DslError, match="bool"):
            Const(1, "i32") + True


class TestDslStatements:
    def test_for_loop_sums(self):
        dm = DslModule()
        f = dm.func("f", params=[("n", "i32")], results=["i32"])
        n = f.params[0]
        total, i = f.i32("total"), f.i32("i")
        with f.for_(i, 0, n):
            f.set(total, total + i)
        f.ret(total)
        interp = Interpreter(dm.build())
        assert interp.invoke("f", 10) == 45

    def test_for_loop_downwards(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        total, i = f.i32(), f.i32()
        with f.for_(i, 5, 0, step=-1):  # 5,4,3,2,1
            f.set(total, total + i)
        f.ret(total)
        assert Interpreter(dm.build()).invoke("f") == 15

    def test_for_loop_with_step(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        total, i = f.i32(), f.i32()
        with f.for_(i, 0, 10, step=3):  # 0,3,6,9
            f.set(total, total + i)
        f.ret(total)
        assert Interpreter(dm.build()).invoke("f") == 18

    def test_zero_step_rejected(self):
        dm = DslModule()
        f = dm.func("f")
        i = f.i32()
        with pytest.raises(DslError, match="non-zero"):
            with f.for_(i, 0, 10, step=0):
                pass

    def test_while_loop(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        x = f.i32()
        f.set(x, 1)
        with f.while_(lambda: x < 100):
            f.set(x, x * 2)
        f.ret(x)
        assert Interpreter(dm.build()).invoke("f") == 128

    def test_if_otherwise(self):
        dm = DslModule()
        f = dm.func("f", params=[("c", "i32")], results=["i32"])
        c = f.params[0]
        r = f.i32()
        with f.if_(c) as branch:
            f.set(r, 1)
            branch.otherwise()
            f.set(r, 2)
        f.ret(r)
        interp = Interpreter(dm.build())
        assert interp.invoke("f", 5) == 1
        assert interp.invoke("f", 0) == 2

    def test_nested_function_call(self):
        dm = DslModule()
        sq = dm.func("sq", params=[("x", "i32")], results=["i32"], export=False)
        sq.ret(sq.params[0] * sq.params[0])
        f = dm.func("f", params=[("x", "i32")], results=["i32"])
        f.ret(f.call(sq, f.params[0]) + 1)
        assert Interpreter(dm.build()).invoke("f", 6) == 37

    def test_array_shapes_and_strides(self):
        dm = DslModule()
        arr = dm.array_f64("A", 3, 4, 5)
        assert arr.strides == (20, 5, 1)
        assert arr.nbytes == 3 * 4 * 5 * 8

    def test_arrays_do_not_overlap_and_are_aligned(self):
        dm = DslModule()
        a = dm.array_f64("A", 7)
        b = dm.array_f64("B", 7)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.base + a.nbytes

    def test_array_store_load(self):
        dm = DslModule()
        a = dm.array_f64("A", 4, 4)
        f = dm.func("f", results=["f64"])
        i = f.i32()
        with f.for_(i, 0, 4):
            f.store(a[i, i], i.to_f64() * 2.0)
        f.ret(a[2, 2] + a[3, 3])
        assert Interpreter(dm.build()).invoke("f") == 10.0

    def test_matrix_matches_numpy_layout(self):
        dm = DslModule()
        a = dm.matrix_f64("A", 3, 5)
        f = dm.func("fill")
        i, j = f.i32(), f.i32()
        with f.for_(i, 0, 3):
            with f.for_(j, 0, 5):
                f.store(a[i, j], (i * 10 + j).to_f64())
        interp = Interpreter(dm.build())
        interp.invoke("fill")
        got = np.frombuffer(
            bytes(interp.memory.data[a.base : a.base + a.nbytes]), dtype="<f8"
        ).reshape(3, 5)
        expected = np.fromfunction(lambda i, j: i * 10 + j, (3, 5))
        assert np.array_equal(got, expected)

    def test_wrong_index_count_rejected(self):
        dm = DslModule()
        a = dm.matrix_f64("A", 3, 3)
        with pytest.raises(DslError, match="dims"):
            a[1]

    def test_required_pages(self):
        dm = DslModule()
        dm.array_f64("A", 10000)  # 80 KB > one 64 KiB page
        assert dm.required_pages == 3  # 64 KiB base offset + 80 KB data


class TestWatPrinter:
    def test_renders_key_elements(self):
        dm = DslModule("pretty")
        a = dm.array_f64("A", 8)
        f = dm.func("f", params=[("x", "i32")], results=["f64"])
        f.ret(a[f.params[0]])
        text = module_to_wat(dm.build())
        assert "(module" in text
        assert "f64.load" in text
        assert '(export "f" (func 0))' in text
        assert "(memory" in text

    def test_indentation_follows_nesting(self):
        dm = DslModule()
        f = dm.func("f", results=["i32"])
        i = f.i32()
        with f.for_(i, 0, 3):
            pass
        f.ret(i)
        text = module_to_wat(dm.build())
        assert "      loop" in text  # nested inside block
