"""Tests for the optimizing tier (tiering.py + vectorize.py).

Covers the tier-up heuristic, tier/dispatch resolution, the disk
artifact cache and its pruning, bit-identical observables between the
``opt`` tier and the fused reference (outputs, memory counters,
touched pages, reconstructed per-pc profiles), the entry-guard deopt
path, and ``REPRO_TIER_STRICT``.
"""

import json
import struct

import pytest

from repro.core.profiles import clear_profile_cache, module_for
from repro.runtime import tiering, vectorize
from repro.runtime.interpreter import Interpreter
from repro.runtime.predecode import (
    interpreter_build_digest,
    prune_stale_artifacts,
)
from repro.wasm import validate_module
from repro.wasm.wat_parser import parse_wat


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_profile_cache()
    yield tmp_path
    clear_profile_cache()


def _bits(value):
    if isinstance(value, float):
        return ("f64", struct.pack("<d", value))
    if isinstance(value, tuple):
        return tuple(_bits(v) for v in value)
    return value


def _observables(module, digest, tier):
    interp = Interpreter(
        module, collect_profile=True, track_pages=True,
        module_digest=digest, tier=tier,
    )
    out = _bits(interp.invoke("bench"))
    profile = interp.take_profile("x", "y")
    return {
        "out": out,
        "instr_counts": dict(profile.instr_counts),
        "op_totals": dict(profile.op_totals),
        "total_instrs": profile.total_instrs,
        "mem_loads": profile.mem_loads,
        "mem_stores": profile.mem_stores,
        "pages_touched": profile.pages_touched,
        "grow_events": list(profile.grow_events),
        "peak_pages": profile.peak_pages,
    }, interp


class TestTierResolution:
    def test_default_is_opt_on_fused_dispatch(self):
        module, _ = module_for("trisolv", "mini")
        interp = Interpreter(module)
        assert interp.tier == "opt"
        assert interp.dispatch == "fused"
        assert interp._tiering is not None

    def test_explicit_dispatch_disables_tier2(self):
        # Dispatch-mode comparisons must keep measuring dispatch alone.
        module, _ = module_for("trisolv", "mini")
        for dispatch in ("legacy", "nofuse", "fused"):
            interp = Interpreter(module, dispatch=dispatch)
            assert interp._tiering is None

    def test_tier_param_picks_dispatch(self):
        module, _ = module_for("trisolv", "mini")
        assert Interpreter(module, tier="legacy").dispatch == "legacy"
        assert Interpreter(module, tier="fused").dispatch == "fused"
        assert Interpreter(module, tier="fused")._tiering is None
        assert Interpreter(module, tier="opt")._tiering is not None

    def test_tier_env_var(self, monkeypatch):
        module, _ = module_for("trisolv", "mini")
        monkeypatch.setenv("REPRO_TIER", "legacy")
        assert Interpreter(module).dispatch == "legacy"
        monkeypatch.setenv("REPRO_TIER", "opt")
        assert Interpreter(module)._tiering is not None

    def test_unknown_tier_rejected(self):
        module, _ = module_for("trisolv", "mini")
        with pytest.raises(ValueError):
            Interpreter(module, tier="turbofan")


class TestTierUpHeuristic:
    def test_cold_functions_stay_on_tier1(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", str(10**9))
        module, digest = module_for("gemm", "mini")
        _, interp = _observables(module, digest, "opt")
        assert not any(interp._tiering.handlers.values())

    def test_hot_functions_tier_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        module, digest = module_for("gemm", "mini")
        _, interp = _observables(module, digest, "opt")
        installed = [h for h in interp._tiering.handlers.values() if h]
        assert len(installed) >= 2  # init and kernel

    def test_score_accumulates_across_calls(self, monkeypatch):
        # Threshold just above one kernel-body score: the second call
        # must tier up even though the first did not.
        module, digest = module_for("gemm", "mini")
        body_len = len(module.funcs[0].body)
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", str(body_len + 1))
        interp = Interpreter(module, module_digest=digest, tier="opt")
        interp.invoke("bench")
        first = sum(1 for h in interp._tiering.handlers.values() if h)
        interp.invoke("bench")
        second = sum(1 for h in interp._tiering.handlers.values() if h)
        assert second >= first
        assert second >= 1


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["gemm", "trisolv", "jacobi-2d"])
    def test_opt_matches_fused_mini(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_TIER_STRICT", "1")
        module, digest = module_for(workload, "mini")
        reference, _ = _observables(module, digest, "fused")
        observed, interp = _observables(module, digest, "opt")
        assert any(interp._tiering.handlers.values())
        for key, value in reference.items():
            assert observed[key] == value, f"{workload}: {key} differs"

    def test_opt_matches_fused_small_numpy_path(self, monkeypatch):
        # small trip counts exceed REPRO_TIER_VECMIN, so the NumPy
        # batched path (not just the scalar codegen) is exercised.
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_TIER_STRICT", "1")
        module, digest = module_for("gemm", "small")
        reference, _ = _observables(module, digest, "fused")
        observed, _ = _observables(module, digest, "opt")
        for key, value in reference.items():
            assert observed[key] == value, f"gemm-small: {key} differs"


DEOPT_WAT = """
(module
  (memory 1)
  (func (export "run") (result i32)
    (local i32) (local i32)
    block
      loop
        local.get 0
        i32.const 10000
        i32.ge_s
        br_if 1
        local.get 1
        local.get 0
        i32.const 8
        i32.mul
        i32.load
        i32.add
        local.set 1
        local.get 0
        i32.const 1
        i32.add
        local.set 0
        br 0
      end
    end
    local.get 1))
"""


class TestDeopt:
    def test_entry_guard_falls_back_to_tier1(self, monkeypatch):
        """NEED (80 KiB) exceeds the one-page memory: the guard must
        deopt before any side effect and tier 1 must produce the trap,
        identically to the fused reference."""
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_TIER_STRICT", "1")
        module = parse_wat(DEOPT_WAT)
        validate_module(module)

        def run(tier):
            interp = Interpreter(module, tier=tier)
            try:
                return ("value", interp.invoke("run")), interp
            except Exception as exc:
                return ("trap", type(exc).__name__, str(exc)), interp

        reference, _ = run("fused")
        observed, interp = run("opt")
        assert observed == reference
        assert reference[0] == "trap"
        # The handler *was* installed — the trap proves the deopt path
        # ran (tier-2 bodies never trap; the guard bailed first).
        assert any(interp._tiering.handlers.values())


class TestArtifactCache:
    def test_disk_roundtrip(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        module, digest = module_for("gemm", "mini")
        first, interp = _observables(module, digest, "opt")
        files = list(isolated_cache.glob("tier2-*.json"))
        assert len(files) == 1
        raw = json.loads(files[0].read_text())
        assert raw["version"] == vectorize.TIER2_VERSION
        assert any(a.get("eligible") for a in raw["funcs"].values())
        # A fresh interpreter loads the artifact instead of recompiling
        # and still produces bit-identical observables.
        plans = interp._plans
        reloaded = tiering.artifacts_for_module(module, plans, digest)
        fresh = tiering.artifacts_for_module(module, plans, None)
        assert {k: v for k, v in reloaded.items()} == fresh
        second, _ = _observables(module, digest, "opt")
        assert second == first

    def test_corrupt_artifact_recompiled(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        module, digest = module_for("gemm", "mini")
        _observables(module, digest, "opt")
        path = next(isolated_cache.glob("tier2-*.json"))
        path.write_text("{not json")
        first, interp = _observables(module, digest, "opt")
        assert any(interp._tiering.handlers.values())

    def test_prune_evicts_only_stale_builds(self, isolated_cache):
        build = interpreter_build_digest()[:8]
        stale = [
            isolated_cache / "predecode-aaaaaaaaaaaaaaaa-00000000.json",
            isolated_cache / "tier2-aaaaaaaaaaaaaaaa-00000000.json",
        ]
        fresh = [
            isolated_cache / f"predecode-bbbbbbbbbbbbbbbb-{build}.json",
            isolated_cache / f"tier2-bbbbbbbbbbbbbbbb-{build}.json",
        ]
        profile = isolated_cache / "gemm-mini-cccccccccccccccc.json"
        for path in stale + fresh + [profile]:
            path.write_text("{}")
        removed = prune_stale_artifacts(isolated_cache)
        assert sorted(removed) == sorted(p.name for p in stale)
        for path in stale:
            assert not path.exists()
        for path in fresh + [profile]:
            assert path.exists()

    def test_plan_write_prunes_stale_entries(self, isolated_cache):
        stale = isolated_cache / "predecode-aaaaaaaaaaaaaaaa-00000000.json"
        stale.write_text("{}")
        module, digest = module_for("trisolv", "mini")
        Interpreter(module, module_digest=digest)
        assert not stale.exists()


class TestStrictness:
    def test_strict_surfaces_tier2_bugs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_TIER_STRICT", "1")

        def boom(artifact, memory):
            raise RuntimeError("injected tier-2 install failure")

        monkeypatch.setattr(vectorize, "install", boom)
        module, digest = module_for("trisolv", "mini")
        interp = Interpreter(module, module_digest=digest, tier="opt")
        with pytest.raises(RuntimeError, match="injected"):
            interp.invoke("bench")

    def test_non_strict_falls_back_to_tier1(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
        monkeypatch.delenv("REPRO_TIER_STRICT", raising=False)

        def boom(artifact, memory):
            raise RuntimeError("injected tier-2 install failure")

        monkeypatch.setattr(vectorize, "install", boom)
        module, digest = module_for("trisolv", "mini")
        reference, _ = _observables(module, digest, "fused")
        observed, interp = _observables(module, digest, "opt")
        assert not any(interp._tiering.handlers.values())
        assert observed == reference
