"""Tests for the measurement engine: caching, invalidation, fan-out.

Mirrors the structure of ``test_profiles_cache.py`` for the disk-cache
behaviour, and adds the determinism guarantee the parallel path must
uphold: ``--jobs 4`` output is bit-identical to ``--jobs 1``.
"""

import dataclasses
import json
import multiprocessing
import os
import sys

import pytest

from repro.core import engine as engine_mod
from repro.core.engine import (
    MeasurementEngine,
    MeasurementRequest,
    SweepFailure,
    calibration_hash,
    measurement_from_json,
    measurement_to_json,
)
from repro.api import FIELDS, SweepSpec, run, to_csv
from repro.core.profiles import clear_profile_cache


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Point every cache at tmp_path; yields the measurements dir.

    Cache-writing tests ALSO pass this directory explicitly as
    ``cache_dir=`` so they cannot leak a stray ``.cache/measurements``
    into the working tree even if the env-var plumbing changes.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "profiles"))
    monkeypatch.setenv(
        "REPRO_MEASUREMENT_CACHE_DIR", str(tmp_path / "measurements")
    )
    clear_profile_cache()
    engine_mod.reset_default_engine()
    yield tmp_path / "measurements"
    clear_profile_cache()
    engine_mod.reset_default_engine()


REQUEST = MeasurementRequest(
    "trisolv", "wavm", "mprotect", "x86_64", threads=4, size="mini",
    iterations=2,
)


class TestMeasurementCache:
    def test_miss_then_hit(self, isolated_caches):
        eng = MeasurementEngine(cache_dir=isolated_caches)
        first = eng.measure_one(REQUEST)
        assert not first.cache_hit
        files = list(isolated_caches.glob("trisolv-mini-*.json"))
        assert len(files) == 1
        second = MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST)
        assert second.cache_hit
        assert second.measurement == first.measurement

    def test_memory_cache_skips_disk(self, isolated_caches):
        eng = MeasurementEngine(cache_dir=isolated_caches)
        first = eng.measure_one(REQUEST)
        for path in isolated_caches.glob("*.json"):
            path.unlink()
        again = eng.measure_one(REQUEST)
        assert again.cache_hit
        assert again.measurement == first.measurement

    def test_cache_disabled(self, isolated_caches):
        eng = MeasurementEngine(cache=False, cache_dir=isolated_caches)
        eng.measure_one(REQUEST)
        assert not list(isolated_caches.glob("*.json"))
        assert not eng.measure_one(REQUEST).cache_hit

    def test_distinct_configurations_distinct_entries(self, isolated_caches):
        eng = MeasurementEngine(cache_dir=isolated_caches)
        other = dataclasses.replace(REQUEST, strategy="none")
        assert eng.key_for(REQUEST) != eng.key_for(other)
        eng.run([REQUEST, other])
        assert len(list(isolated_caches.glob("*.json"))) == 2

    def test_module_digest_invalidates_key(self, monkeypatch):
        eng = MeasurementEngine()
        before = eng.key_for(REQUEST)
        monkeypatch.setattr(
            engine_mod, "module_digest", lambda workload, size: "0" * 64
        )
        assert eng.key_for(REQUEST) != before

    def test_calibration_hash_invalidates_key(self, monkeypatch):
        eng = MeasurementEngine()
        before = eng.key_for(REQUEST)
        monkeypatch.setattr(
            engine_mod, "calibration_hash", lambda *a: "f" * 64
        )
        assert eng.key_for(REQUEST) != before

    def test_calibration_hash_tracks_constants(self, monkeypatch):
        from repro.runtimes import runtime_named

        before = calibration_hash("wavm", "mprotect", "x86_64", "trisolv")
        engine_mod._calibration_memo.clear()
        monkeypatch.setattr(
            runtime_named("wavm"), "schedule_overhead", 9.99
        )
        after = calibration_hash("wavm", "mprotect", "x86_64", "trisolv")
        engine_mod._calibration_memo.clear()
        assert after != before

    def test_corrupt_entry_recomputed(self, isolated_caches):
        MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST)
        path = next(isolated_caches.glob("*.json"))
        path.write_text("{not json")
        result = MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST)
        assert not result.cache_hit
        assert result.measurement.median_iteration > 0
        # The corrupt file was overwritten with a valid entry.
        assert MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST).cache_hit

    def test_wrong_key_in_entry_recomputed(self, isolated_caches):
        MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST)
        path = next(isolated_caches.glob("*.json"))
        raw = json.loads(path.read_text())
        raw["key"] = "0" * 64
        path.write_text(json.dumps(raw))
        assert not MeasurementEngine(cache_dir=isolated_caches).measure_one(REQUEST).cache_hit

    def test_round_trip_is_exact(self):
        result = MeasurementEngine(cache=False).measure_one(REQUEST)
        encoded = json.dumps(measurement_to_json(result.measurement))
        decoded = measurement_from_json(json.loads(encoded))
        assert decoded == result.measurement


class TestParallelDeterminism:
    GRID = [
        MeasurementRequest(w, r, s, "x86_64", threads=t, size="mini",
                           iterations=2)
        for w in ("trisolv", "gemm")
        for r, s in (("wavm", "mprotect"), ("v8", "none"), ("wasm3", "trap"))
        for t in (1, 4)
    ]

    def test_jobs4_bit_identical_to_jobs1(self):
        serial = MeasurementEngine(jobs=1, cache=False).run(self.GRID)
        parallel = MeasurementEngine(jobs=4, cache=False).run(self.GRID)
        for s, p in zip(serial, parallel):
            assert p.measurement == s.measurement  # floats exact, not approx
        # The serialised artefacts match byte for byte.
        serial_blob = json.dumps(
            [measurement_to_json(r.measurement) for r in serial]
        )
        parallel_blob = json.dumps(
            [measurement_to_json(r.measurement) for r in parallel]
        )
        assert parallel_blob == serial_blob

    def test_parallel_populates_shared_cache(self, isolated_caches):
        MeasurementEngine(jobs=4, cache_dir=isolated_caches).run(self.GRID)
        results = MeasurementEngine(jobs=1, cache_dir=isolated_caches).run(self.GRID)
        assert all(r.cache_hit for r in results)

    def test_duplicate_requests_computed_once(self):
        eng = MeasurementEngine(cache=False)
        results = eng.run([REQUEST, REQUEST, REQUEST])
        assert len(results) == 3
        assert results[0].measurement == results[1].measurement


class TestAutoJobs:
    """--jobs auto: size the pool to the machine, serial when it loses.

    Motivated by BENCH_sweep.json: on a 1-cpu host ``--jobs 4`` cold
    was ~2x slower than serial (2.875s vs 1.416s) — fork + pickle
    overhead with no parallelism to pay for it.
    """

    def test_auto_is_serial_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 1)
        assert engine_mod.resolve_jobs("auto") == 1

    def test_auto_matches_cpus_with_a_cap(self, monkeypatch):
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 4)
        assert engine_mod.resolve_jobs("auto") == 4
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 32)
        assert engine_mod.resolve_jobs("auto") == 8
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: None)
        assert engine_mod.resolve_jobs("auto") == 1

    def test_explicit_jobs_unchanged(self):
        assert engine_mod.resolve_jobs(1) == 1
        assert engine_mod.resolve_jobs(4) == 4
        assert engine_mod.resolve_jobs(0) == 1

    def test_auto_small_grid_never_touches_the_pool(self, monkeypatch):
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 8)
        eng = MeasurementEngine(jobs="auto", cache=False)
        assert eng.jobs == 8

        def _no_pool():
            raise AssertionError("pool spawned for a below-floor grid")

        monkeypatch.setattr(eng, "_pool", _no_pool)
        grid = [
            dataclasses.replace(REQUEST, strategy=s)
            for s in ("none", "trap", "mprotect")
        ]
        assert len(grid) < engine_mod._MIN_PARALLEL_MISSES
        results = eng.run(grid)
        assert len(results) == 3

    def test_cli_default_is_auto(self):
        import argparse

        from repro.core import cliopts

        parser = argparse.ArgumentParser(parents=[cliopts.sweep_parent()])
        assert parser.parse_args([]).jobs == "auto"
        assert parser.parse_args(["--jobs", "4"]).jobs == 4

    def test_configure_accepts_auto(self, monkeypatch):
        monkeypatch.setattr(engine_mod.os, "cpu_count", lambda: 1)
        eng = engine_mod.configure(jobs="auto")
        assert eng.jobs_requested == "auto"
        assert eng.jobs == 1


def _synthetic_measurement(request: MeasurementRequest, wall: float):
    """A valid RunMeasurement without paying for a simulator run."""
    from repro.core.harness import RunMeasurement
    from repro.oskernel.procstat import UtilisationSample

    return RunMeasurement(
        workload=request.workload,
        runtime=request.runtime,
        strategy=request.strategy,
        isa=request.isa,
        threads=request.threads,
        size=request.size,
        iteration_seconds=[wall / request.iterations] * request.iterations,
        wall_seconds=wall,
        utilisation=UtilisationSample(wall, wall, 100.0, 90.0, 10.0, 0.0, 5.0),
        mem_avg_bytes=1 << 20,
        kernel_stats={},
        mmap_read_wait=0.0,
        mmap_write_wait=0.0,
        compute_seconds=wall,
        bounds_checks={},
    )


class TestFaultIsolation:
    """One poisoned config must not abort the sweep (serial or pooled)."""

    GOOD = [
        dataclasses.replace(REQUEST, strategy=s)
        for s in ("none", "mprotect", "clamp")
    ]
    POISON = dataclasses.replace(REQUEST, strategy="trap")

    def _poison_trap(self, monkeypatch):
        real = engine_mod.run_benchmark

        def fake(**payload):
            if payload["strategy"] == "trap":
                raise RuntimeError("simulated poisoned config")
            return real(**payload)

        monkeypatch.setattr(engine_mod, "run_benchmark", fake)

    def test_serial_failure_reported_after_the_rest_ran(
        self, isolated_caches, monkeypatch
    ):
        self._poison_trap(monkeypatch)
        eng = MeasurementEngine(jobs=1, cache_dir=isolated_caches)
        grid = self.GOOD + [self.POISON]
        with pytest.raises(SweepFailure) as excinfo:
            eng.run(grid)
        failure = excinfo.value
        assert len(failure.errors) == 1
        assert failure.errors[0].kind == "RuntimeError"
        assert "poisoned" in failure.errors[0].message
        assert failure.errors[0].request == self.POISON
        assert self.POISON.label() in str(failure)
        # Every other request completed and carries a measurement.
        assert len(failure.results) == 4
        assert sum(1 for r in failure.results if r.ok) == 3
        # ... and was cached: a clean retry of the good cells is free.
        retry = MeasurementEngine(cache_dir=isolated_caches).run(self.GOOD)
        assert all(r.cache_hit for r in retry)

    def test_return_errors_yields_per_row_results(
        self, isolated_caches, monkeypatch
    ):
        self._poison_trap(monkeypatch)
        eng = MeasurementEngine(jobs=1, cache_dir=isolated_caches)
        results = eng.run(
            self.GOOD + [self.POISON], return_errors=True
        )  # must not raise
        assert [r.ok for r in results] == [True, True, True, False]
        bad = results[-1]
        assert bad.measurement is None
        assert bad.error.kind == "RuntimeError"
        # Failed requests are never cached — the next run retries them.
        again = MeasurementEngine(cache_dir=isolated_caches).run(
            [self.POISON], return_errors=True
        )
        assert not again[0].ok and not again[0].cache_hit

    def test_pool_failure_keeps_and_caches_other_results(
        self, isolated_caches, monkeypatch
    ):
        self._poison_trap(monkeypatch)
        eng = MeasurementEngine(jobs=2, cache_dir=isolated_caches)
        try:
            with pytest.raises(SweepFailure) as excinfo:
                eng.run(self.GOOD + [self.POISON])
        finally:
            eng.close()
        assert [e.request for e in excinfo.value.errors] == [self.POISON]
        # The siblings' results survived the worker exception and were
        # written to the shared disk cache.
        retry = MeasurementEngine(cache_dir=isolated_caches).run(self.GOOD)
        assert all(r.cache_hit for r in retry)

    def test_on_result_streams_every_outcome(
        self, isolated_caches, monkeypatch
    ):
        self._poison_trap(monkeypatch)
        eng = MeasurementEngine(jobs=1, cache_dir=isolated_caches)
        seen = []
        eng.run(
            self.GOOD + [self.POISON],
            return_errors=True,
            on_result=lambda req, key, res: seen.append((req.strategy, res.ok)),
        )
        assert sorted(seen) == [
            ("clamp", True), ("mprotect", True), ("none", True),
            ("trap", False),
        ]


class TestConfigureEnvLifecycle:
    """configure(cache_dir=...) must not leak REPRO_CACHE_DIR overrides."""

    def test_reset_restores_prior_value(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "orig"))
        engine_mod.configure(cache_dir=tmp_path / "override")
        assert os.environ["REPRO_CACHE_DIR"] == str(
            tmp_path / "override" / "profiles"
        )
        engine_mod.reset_default_engine()
        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path / "orig")

    def test_reset_unsets_when_previously_unset(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        engine_mod.configure(cache_dir=tmp_path / "override")
        assert "REPRO_CACHE_DIR" in os.environ
        engine_mod.reset_default_engine()
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_reconfigure_without_cache_dir_restores(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "orig"))
        engine_mod.configure(cache_dir=tmp_path / "a")
        # Re-pointing keeps tracking the ORIGINAL value, not "a".
        engine_mod.configure(cache_dir=tmp_path / "b")
        assert os.environ["REPRO_CACHE_DIR"] == str(
            tmp_path / "b" / "profiles"
        )
        engine_mod.configure(jobs=1)  # no cache_dir: override must end
        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path / "orig")


class TestMemoryCacheBound:
    """The in-process result cache must never outgrow its cap."""

    def _fake_bench(self, monkeypatch):
        monkeypatch.setattr(
            engine_mod, "run_benchmark",
            lambda **payload: _synthetic_measurement(
                MeasurementRequest(**payload), wall=1.0
            ),
        )

    def test_memory_never_exceeds_cap(self, isolated_caches, monkeypatch):
        self._fake_bench(monkeypatch)
        eng = MeasurementEngine(
            jobs=1, cache_dir=isolated_caches, memory_cap=4
        )
        grid = [
            dataclasses.replace(REQUEST, iterations=n) for n in range(1, 11)
        ]
        eng.run(grid)
        stats = eng.memory_stats()
        assert len(eng._memory) <= 4
        assert stats["peak"] <= 4  # held throughout, not just at the end
        assert stats["evictions"] >= 6

    def test_evicted_entries_fall_back_to_disk(
        self, isolated_caches, monkeypatch
    ):
        self._fake_bench(monkeypatch)
        eng = MeasurementEngine(
            jobs=1, cache_dir=isolated_caches, memory_cap=2
        )
        grid = [
            dataclasses.replace(REQUEST, iterations=n) for n in range(1, 6)
        ]
        eng.run(grid)
        # The first request was evicted from memory long ago; the disk
        # layer still serves it as a hit.
        result = eng.run([grid[0]])[0]
        assert result.cache_hit

    def test_cap_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_CACHE_CAP", "7")
        assert MeasurementEngine()._memory.capacity == 7
        monkeypatch.delenv("REPRO_MEMORY_CACHE_CAP")
        assert MeasurementEngine()._memory.capacity == 4096
        assert MeasurementEngine(memory_cap=3)._memory.capacity == 3


def _hammer_cache(cache_dir: str, wall: float, rounds: int) -> None:
    """Child-process body for the concurrent-writer test.

    Writes its own variant of the same cache entry over and over while
    verifying that every read parses as ONE complete variant — a torn
    or interleaved write would fail json parsing or produce a value
    neither process wrote.  Exit code carries the verdict.
    """
    eng = MeasurementEngine(cache_dir=cache_dir)
    key = eng.key_for(REQUEST)
    path = eng._path_for(REQUEST, key)
    mine = _synthetic_measurement(REQUEST, wall=wall)
    for _ in range(rounds):
        eng._store(REQUEST, key, mine)
        try:
            raw = json.loads(path.read_text())
            loaded = measurement_from_json(raw["measurement"])
        except (ValueError, KeyError) as exc:
            print(f"torn read: {exc}", file=sys.stderr)
            sys.exit(1)
        if raw["key"] != key or loaded.wall_seconds not in (1.0, 2.0):
            print(f"foreign value: {loaded.wall_seconds}", file=sys.stderr)
            sys.exit(1)
        # Also exercise the engine's own (corruption-masking) loader
        # from a cold memory cache, as a second concurrent reader.
        eng._memory.clear()
        if eng._load(REQUEST, key) is None:
            print("entry vanished", file=sys.stderr)
            sys.exit(1)
    sys.exit(0)


class TestConcurrentCacheWriters:
    def test_two_processes_no_torn_reads(self, isolated_caches):
        """Two writers on one key: atomic replace keeps reads whole."""
        eng = MeasurementEngine(cache_dir=isolated_caches)
        key = eng.key_for(REQUEST)  # also warms the digest memos pre-fork
        eng._store(REQUEST, key, _synthetic_measurement(REQUEST, wall=1.0))
        children = [
            multiprocessing.Process(
                target=_hammer_cache,
                args=(str(isolated_caches), wall, 150),
            )
            for wall in (1.0, 2.0)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120)
        assert [child.exitcode for child in children] == [0, 0]
        # The surviving entry is a complete write from one of the two.
        final = MeasurementEngine(cache_dir=isolated_caches)._load(
            REQUEST, key
        )
        assert final is not None and final.wall_seconds in (1.0, 2.0)
        # No stray tmp files were left behind.
        assert not list(isolated_caches.glob("*.tmp.*"))


class TestSweepIntegration:
    SPEC = SweepSpec(
        workloads=["trisolv", "gemm"],
        runtimes=["wavm"],
        strategies=["none", "mprotect"],
        size="mini",
        iterations=2,
    )

    def test_rows_carry_cache_and_elapsed_columns(self, isolated_caches):
        rows = run(self.SPEC, engine=MeasurementEngine(cache_dir=isolated_caches))
        assert {"cache_hit", "elapsed_s"} <= set(FIELDS)
        for row in rows:
            assert row["cache_hit"] in (0, 1)
            assert row["elapsed_s"] >= 0
        again = run(self.SPEC, engine=MeasurementEngine(cache_dir=isolated_caches))
        assert all(row["cache_hit"] == 1 for row in again)

    def test_requests_are_workload_major(self):
        requests = self.SPEC.requests()
        workloads = [r.workload for r in requests]
        assert workloads == ["trisolv", "trisolv", "gemm", "gemm"]

    def test_csv_includes_extra_row_keys(self):
        rows = run(self.SPEC, engine=MeasurementEngine(cache=False))
        rows[0]["note"] = "ad-hoc"
        text = to_csv(rows)
        header = text.splitlines()[0]
        assert header.startswith("workload,runtime,strategy")
        assert "cache_hit" in header and "elapsed_s" in header
        assert header.endswith(",note")
