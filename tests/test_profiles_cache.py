"""Tests for the profile cache (memory + disk)."""

import json

import pytest

from repro.core.profiles import clear_profile_cache, profile_for


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_profile_cache()
    yield tmp_path
    clear_profile_cache()


class TestProfileCache:
    def test_profile_contents(self, isolated_cache):
        module, profile = profile_for("gemm", "mini")
        assert profile.workload == "gemm"
        assert profile.total_instrs > 1000
        assert profile.mem_loads > 0
        assert profile.pages_touched > 0
        assert profile.peak_pages >= 1
        # Per-pc counts exist for the executed functions.
        assert profile.instr_counts

    def test_memory_cache_returns_same_objects(self, isolated_cache):
        first = profile_for("gemm", "mini")
        second = profile_for("gemm", "mini")
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_disk_cache_round_trip(self, isolated_cache):
        _, original = profile_for("gemm", "mini")
        files = list(isolated_cache.glob("gemm-mini-*.json"))
        assert len(files) == 1
        clear_profile_cache()
        _, reloaded = profile_for("gemm", "mini")
        assert reloaded.instr_counts == original.instr_counts
        assert reloaded.op_totals == original.op_totals
        assert reloaded.grow_events == original.grow_events

    def test_corrupt_disk_entry_recomputed(self, isolated_cache):
        profile_for("gemm", "mini")
        path = next(isolated_cache.glob("gemm-mini-*.json"))
        path.write_text("{not json")
        clear_profile_cache()
        _, profile = profile_for("gemm", "mini")
        assert profile.total_instrs > 1000

    def test_sizes_cached_separately(self, isolated_cache):
        _, mini = profile_for("gemm", "mini")
        _, small = profile_for("gemm", "small")
        assert small.total_instrs > 3 * mini.total_instrs

    def test_profiles_are_deterministic(self, isolated_cache):
        _, first = profile_for("505.mcf", "mini")
        clear_profile_cache()
        for f in isolated_cache.glob("*.json"):
            f.unlink()
        _, second = profile_for("505.mcf", "mini")
        assert first.instr_counts == second.instr_counts
