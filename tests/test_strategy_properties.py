"""Property tests for the hardware-assisted bounds strategies.

Hypothesis-driven invariants that hold for *any* program/configuration
in the drawn space, not just the fixtures the example tests pin down:

* the MTE tag check is charged exactly once per memory access — the
  compiled-cycle delta between ``mte`` and a no-inline-check strategy
  is linear in the access count with slope ``cost(TAGCHECK)``;
* an ``mte`` run performs no VMA work during the timed phase — no
  mprotect syscalls, no VMA mutations — and its kernel mprotect count
  is exactly the one per-worker setup call;
* a ``wasm64`` access beyond 4 GiB traps out-of-bounds identically
  under every interpreter tier (legacy/fused/opt).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import CompilerConfig, compile_module
from repro.core.harness import run_benchmark
from repro.isa import isa_named
from repro.isa.model import OPK
from repro.runtime import Interpreter
from repro.runtime.strategies import strategy_named
from repro.trace.events import PHASE_TIMED_BEGIN, SYSCALL_MPROTECT, VMA_MUTATE
from repro.trace.tracer import tracing
from repro.wasm.dsl import DslModule
from repro.wasm.errors import Trap

pytestmark = pytest.mark.strategy

#: Pass-free configuration: nothing elides or reshapes checks, so the
#: per-access charge is exactly visible in the static cycle counts.
_BARE = CompilerConfig(
    name="prop-bare",
    passes=frozenset(),
    regalloc_quality=1.0,
    addressing_fusion=False,
)


def _straightline_stores(n: int):
    """A function body with ``n`` stores at distinct constant indices."""
    dm = DslModule("prop")
    arr = dm.array_i32("a", n)
    f = dm.func("run")
    for index in range(n):
        f.store(arr[index], index + 1)
    return dm.build()


def _static_cycles(compiled) -> float:
    return sum(
        cycles
        for func in compiled.functions.values()
        for cycles in func.block_cycles.values()
    )


class TestTagCheckCostLinearity:
    @given(n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_mte_delta_is_one_tagcheck_per_access(self, n):
        module = _straightline_stores(n)
        isa = isa_named("armv8")
        mte = compile_module(module, isa, _BARE, strategy_named("mte"))
        base = compile_module(module, isa, _BARE, strategy_named("mprotect"))
        delta = _static_cycles(mte) - _static_cycles(base)
        assert delta == pytest.approx(n * isa.cost(OPK.TAGCHECK))
        assert mte.checks_emitted_static == n

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_tagcheck_is_cheaper_than_software_checks(self, n):
        module = _straightline_stores(n)
        isa = isa_named("armv8")
        mte = _static_cycles(
            compile_module(module, isa, _BARE, strategy_named("mte"))
        )
        trap = _static_cycles(
            compile_module(module, isa, _BARE, strategy_named("trap"))
        )
        clamp = _static_cycles(
            compile_module(module, isa, _BARE, strategy_named("clamp"))
        )
        assert mte <= trap <= clamp


class TestMteVmaQuiescence:
    @given(
        threads=st.sampled_from([1, 2, 4]),
        workload=st.sampled_from(["trisolv", "durbin"]),
    )
    @settings(max_examples=4, deadline=None)
    def test_no_vma_traffic_in_timed_phase(self, threads, workload):
        with tracing() as sink:
            measurement = run_benchmark(
                workload, "wavm", "mte", "armv8",
                threads=threads, size="mini", iterations=2,
            )
        begin = next(
            e.seq for e in sink.events if e.name == PHASE_TIMED_BEGIN
        )
        # No mprotect syscalls and no exclusive (write-mmap_lock) VMA
        # mutations once the timed phase starts.  Shared zaps from the
        # madvise teardown are allowed: every guard-region strategy
        # does those, and they take only the read lock.
        timed_vma = [
            e.name for e in sink.events
            if e.seq > begin
            and (
                e.name == SYSCALL_MPROTECT
                or (e.name == VMA_MUTATE and e.args.get("excl"))
            )
        ]
        assert timed_vma == []
        # The only mprotect calls are the one RW enable per worker's
        # setup — grow retags in userspace instead of calling back
        # into the kernel.
        assert measurement.kernel_stats.get("mprotect_calls") == threads

    def test_mprotect_strategy_does_take_the_vma_path(self):
        # Contrast case: the invariant above is meaningful because the
        # mprotect strategy *does* mutate VMAs inside the timed phase.
        with tracing() as sink:
            run_benchmark(
                "trisolv", "wavm", "mprotect", "armv8",
                threads=1, size="mini", iterations=2,
            )
        begin = next(
            e.seq for e in sink.events if e.name == PHASE_TIMED_BEGIN
        )
        timed_vma = [
            e for e in sink.events
            if e.seq > begin
            and (
                e.name == SYSCALL_MPROTECT
                or (e.name == VMA_MUTATE and e.args.get("excl"))
            )
        ]
        assert timed_vma


def _far_store_module(base: int, offset: int):
    """One store whose effective address is base (u32) + offset."""
    dm = DslModule("far")
    dm.array_i32("a", 4)
    f = dm.func("run", params=[("value", "i32")], results=["i32"])
    f.fb.emit("i32.const", base)
    f.fb.emit("local.get", 0)
    f.fb.emit("i32.store", 2, offset)
    f.fb.emit("i32.const", 0)
    f.fb.emit("return")
    return dm.build()


class TestWasm64FarAccesses:
    @given(
        base=st.integers(min_value=(1 << 31), max_value=(1 << 32) - 16),
        offset=st.integers(min_value=1 << 31, max_value=(1 << 32) - 16),
        tier=st.sampled_from(["legacy", "fused", "opt"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_beyond_4gib_traps_in_every_tier(self, base, offset, tier):
        # base + offset lands in [4 GiB, 8 GiB): inside the 32-bit
        # guard region, but far past what a 64-bit memory may absorb.
        module = _far_store_module(base, offset)
        interp = Interpreter(
            module, strategy="wasm64", validate=False, tier=tier,
        )
        with pytest.raises(Trap) as excinfo:
            interp.invoke("run", 7)
        assert excinfo.value.kind == "out-of-bounds-memory"

    @given(tier=st.sampled_from(["legacy", "fused", "opt"]))
    @settings(max_examples=3, deadline=None)
    def test_none_absorbs_what_wasm64_traps(self, tier):
        # The same address under the guard-region baseline completes:
        # the divergence is strategy semantics, not interpreter tiers.
        module = _far_store_module((1 << 32) - 64, 1 << 31)
        interp = Interpreter(
            module, strategy="none", validate=False, tier=tier,
        )
        assert interp.invoke("run", 7) == 0
