"""Every workload is verified element-wise against its NumPy reference.

These are the load-bearing correctness tests of the reproduction: they
prove that what the timing pipeline profiles is the *real* computation
the paper benchmarks, not an approximation of it.
"""

import numpy as np
import pytest

from repro.wasm import validate_module
from repro.workloads import (
    POLYBENCH,
    SPEC,
    WASI,
    WORKLOADS,
    suite_workloads,
    workload_named,
)
from repro.workloads.base import run_and_extract

ALL_NAMES = sorted(WORKLOADS)


class TestCatalogue:
    def test_polybench_has_all_30_kernels(self):
        assert len(POLYBENCH) == 30

    def test_spec_has_the_papers_subset(self):
        names = {w.name for w in SPEC}
        assert names == {
            "505.mcf", "508.namd", "519.lbm", "525.x264",
            "531.deepsjeng", "544.nab", "557.xz",
        }

    def test_workload_named(self):
        assert workload_named("gemm").suite == "polybench"
        with pytest.raises(ValueError, match="unknown workload"):
            workload_named("nonexistent")

    def test_wasi_has_the_syscall_scenarios(self):
        names = {w.name for w in WASI}
        assert names == {
            "wasi-grep", "wasi-checksum", "wasi-montecarlo", "wasi-logappend",
        }
        assert all(w.suite == "wasi" for w in WASI)

    def test_suite_workloads(self):
        assert len(suite_workloads("all")) == 41
        assert len(suite_workloads("wasi")) == 4
        with pytest.raises(ValueError):
            suite_workloads("mibench")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_module_validates(name):
    built = WORKLOADS[name].build("mini")
    validate_module(built.module)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_matches_numpy_reference(name):
    workload = WORKLOADS[name]
    got = run_and_extract(workload, "mini")
    expected = workload.reference("mini")
    assert set(got) == set(expected)
    for key in expected:
        np.testing.assert_allclose(
            got[key], expected[key], rtol=1e-9, atol=1e-12,
            err_msg=f"{name}:{key}",
        )


@pytest.mark.parametrize("name", ["gemm", "505.mcf", "jacobi-2d"])
def test_small_preset_also_matches(name):
    workload = WORKLOADS[name]
    got = run_and_extract(workload, "small")
    expected = workload.reference("small")
    for key in expected:
        np.testing.assert_allclose(got[key], expected[key], rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_binary_roundtrip_preserves_behaviour(name):
    """Encode each workload to .wasm bytes, decode, and it still validates."""
    from repro.wasm import decode_module, encode_module

    built = WORKLOADS[name].build("mini")
    again = decode_module(encode_module(built.module))
    validate_module(again)
