"""Boundary-value and canonicalisation properties for the diff suite.

Hypothesis round-trip properties over the two substrate layers whose
corner cases the differential harness leans on: LEB128 at the exact
edges of its bit-widths (u32 max, s64 min, over-long forms) and the
interpreter's f32 canonicalisation (every f32-typed value the
interpreter produces must be exactly representable in IEEE single
precision, idempotent under re-rounding, and stable across the binary
round trip of an f32-computing module).
"""

import math
import os
import random
import struct

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.diffcheck import fuzz
from repro.runtime.interpreter import DISPATCH_MODES, Interpreter, to_f32
from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.builder import ModuleBuilder
from repro.wasm.errors import DecodeError, Trap
from repro.wasm.leb128 import (
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_u32,
    encode_unsigned,
)
from repro.wasm.types import ValType

pytestmark = pytest.mark.diff

U32_MAX = (1 << 32) - 1
U64_MAX = (1 << 64) - 1
S64_MIN = -(1 << 63)
S64_MAX = (1 << 63) - 1
S32_MIN = -(1 << 31)


class TestLeb128Boundaries:
    def test_u32_max_roundtrip(self):
        encoded = encode_u32(U32_MAX)
        assert encoded == b"\xff\xff\xff\xff\x0f"
        assert decode_unsigned(encoded, 0, 32) == (U32_MAX, 5)

    def test_u64_max_roundtrip(self):
        encoded = encode_unsigned(U64_MAX)
        assert len(encoded) == 10
        assert decode_unsigned(encoded, 0, 64) == (U64_MAX, 10)

    def test_s64_min_roundtrip(self):
        encoded = encode_signed(S64_MIN, 64)
        assert len(encoded) == 10
        assert decode_signed(encoded, 0, 64) == (S64_MIN, 10)

    def test_s64_max_roundtrip(self):
        encoded = encode_signed(S64_MAX, 64)
        assert decode_signed(encoded, 0, 64) == (S64_MAX, len(encoded))

    def test_s32_min_roundtrip(self):
        encoded = encode_signed(S32_MIN, 32)
        assert decode_signed(encoded, 0, 32) == (S32_MIN, len(encoded))

    def test_one_beyond_every_edge_rejected(self):
        with pytest.raises(ValueError):
            encode_u32(U32_MAX + 1)
        with pytest.raises(ValueError):
            encode_signed(S64_MIN - 1, 64)
        with pytest.raises(ValueError):
            encode_signed(S64_MAX + 1, 64)

    def test_overlong_unsigned_rejected(self):
        # 0 padded with redundant continuation bytes: too long for u32.
        with pytest.raises(DecodeError):
            decode_unsigned(b"\x80\x80\x80\x80\x80\x00", 0, 32)
        # Fits in 5 bytes but sets payload bits above bit 31.
        with pytest.raises(DecodeError):
            decode_unsigned(b"\xff\xff\xff\xff\x7f", 0, 32)

    def test_overlong_signed_rejected(self):
        # s64 needs at most 10 bytes; an 11-byte form must not decode.
        with pytest.raises(DecodeError):
            decode_signed(b"\x80" * 10 + b"\x00", 0, 64)
        # 10-byte form whose payload (2**63) exceeds the s64 range.
        with pytest.raises(DecodeError):
            decode_signed(b"\x80" * 9 + b"\x01", 0, 64)

    @given(st.integers(min_value=0, max_value=U64_MAX))
    def test_unsigned_minimal_length(self, value):
        """The encoder always emits the shortest form."""
        encoded = encode_unsigned(value)
        assert len(encoded) == max(1, math.ceil(value.bit_length() / 7))

    @given(st.integers(min_value=S64_MIN, max_value=S64_MAX))
    def test_signed_roundtrip_total(self, value):
        encoded = encode_signed(value, 64)
        decoded, offset = decode_signed(encoded, 0, 64)
        assert (decoded, offset) == (value, len(encoded))


def _f32_module(value: float, op: str):
    """A module whose exported ``run`` applies one f32 op to ``value``."""
    mb = ModuleBuilder("f32prop")
    fb = mb.func("run", results=[ValType.F32], export=True)
    if op == "const":
        fb.emit("f32.const", value)
    elif op == "demote":
        fb.emit("f64.const", value)
        fb.emit("f32.demote_f64")
    else:  # add: exercises arithmetic re-rounding
        fb.emit("f32.const", value)
        fb.emit("f32.const", 1.0)
        fb.emit("f32.add")
    return mb.build()


finite_f64 = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-3.0e38, max_value=3.0e38,
)


class TestF32Canonicalisation:
    @given(finite_f64)
    def test_to_f32_is_idempotent(self, value):
        once = to_f32(value)
        assert to_f32(once) == once or math.isnan(once)

    @given(finite_f64)
    def test_to_f32_matches_struct_rounding(self, value):
        expected = struct.unpack("<f", struct.pack("<f", value))[0]
        got = to_f32(value)
        assert got == expected or (math.isnan(got) and math.isnan(expected))

    @given(finite_f64, st.sampled_from(["const", "demote", "add"]))
    @settings(max_examples=120, deadline=None)
    def test_interpreter_results_are_single_precision(self, value, op):
        """Every f32 the interpreter returns survives re-rounding."""
        module = _f32_module(value, op)
        validate_module(module)
        result = Interpreter(module, validate=False).invoke("run")
        if math.isnan(result):
            return
        assert to_f32(result) == result

    @given(finite_f64, st.sampled_from(["const", "demote", "add"]))
    @settings(max_examples=60, deadline=None)
    def test_f32_results_survive_binary_roundtrip(self, value, op):
        module = _f32_module(value, op)
        direct = Interpreter(module, validate=False).invoke("run")
        decoded = decode_module(encode_module(module))
        roundtrip = Interpreter(decoded, validate=False).invoke("run")
        if math.isnan(direct):
            assert math.isnan(roundtrip)
        else:
            assert struct.pack("<f", direct) == struct.pack("<f", roundtrip)


class TestFusionEquivalence:
    """Superinstruction fusion is unobservable except in speed.

    For DSL-generated programs (the diffcheck fuzzer's generator, so
    shrinking happens on the seed), the fused, nofuse and legacy
    dispatch modes must produce bit-identical return values, memory
    load/store counts and touched-page sets.  REPRO_FUSE_STRICT turns
    any silent codegen fallback into a hard failure, so a property
    violation here cannot hide behind the unfused path.
    """

    @staticmethod
    def _observe(module, arg, dispatch):
        interp = Interpreter(
            module, dispatch=dispatch, validate=False,
            collect_profile=False, track_pages=True,
        )
        try:
            value = interp.invoke("run", arg)
        except Trap as exc:
            return ("trap", exc.kind)
        memory = interp.memory
        return (
            "value", value, memory.load_count, memory.store_count,
            tuple(sorted(memory.touched_pages)),
        )

    @given(st.integers(0, 10**9), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_dispatch_modes_agree(self, seed, arg):
        module = fuzz.build_program(random.Random(seed))
        validate_module(module)
        previous = os.environ.get("REPRO_FUSE_STRICT")
        os.environ["REPRO_FUSE_STRICT"] = "1"
        try:
            reference = self._observe(module, arg, "fused")
            for mode in DISPATCH_MODES:
                if mode != "fused":
                    assert self._observe(module, arg, mode) == reference
        finally:
            if previous is None:
                del os.environ["REPRO_FUSE_STRICT"]
            else:
                os.environ["REPRO_FUSE_STRICT"] = previous

    @given(st.integers(0, 10**9), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fusion_preserves_per_pc_counts(self, seed, arg):
        """Reconstructed per-pc counts match an actually-unfused run."""
        module = fuzz.build_program(random.Random(seed))
        profiles = {}
        for mode in ("fused", "nofuse"):
            interp = Interpreter(
                module, dispatch=mode, validate=False,
                collect_profile=True, track_pages=True,
            )
            try:
                interp.invoke("run", arg)
            except Trap:
                pass
            profile = interp.take_profile("fuzz", "prop")
            profiles[mode] = (
                dict(profile.instr_counts),
                dict(profile.op_totals),
                profile.total_instrs,
                profile.mem_loads,
                profile.mem_stores,
                profile.pages_touched,
            )
        assert profiles["fused"] == profiles["nofuse"]


class TestMutatorRobustness:
    """Campaign mutators never push the substrate outside WasmError.

    The decoder/validator contract for arbitrary mutated input is
    total: accept, or reject with a ``WasmError`` subclass.  Any other
    exception escaping is a harness bug (and the campaign records it
    as a ``fuzz.harness-error`` find).  DSL-level mutants are stronger
    still: they must always build into a validator-clean module.
    """

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_genome_mutants_always_valid(self, seed, mutseed):
        from repro.fuzz.genome import build_genome_module, genome_from_seed
        from repro.fuzz.mutators import mutate_genome

        rng = random.Random(mutseed)
        genome = genome_from_seed(seed)
        for _ in range(5):
            genome = mutate_genome(genome, rng)
            module = build_genome_module(genome)
            validate_module(module)
            assert encode_module(module)

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    # Found by this property: a code-section entry whose declared size
    # ran past end-of-input escaped as IndexError (decoder _Reader
    # accepted an end beyond len(data)).
    @example(seed=0, mutseed=894358740)
    @settings(max_examples=40, deadline=None)
    def test_byte_mutants_decode_or_wasm_error(self, seed, mutseed):
        from repro.fuzz.genome import build_genome_module, genome_from_seed
        from repro.fuzz.mutators import mutate_bytes, mutate_memarg
        from repro.wasm.errors import WasmError

        rng = random.Random(mutseed)
        data = encode_module(build_genome_module(genome_from_seed(seed)))
        for _ in range(8):
            mutator = mutate_memarg if rng.random() < 0.5 else mutate_bytes
            data = mutator(data, rng)
            try:
                module = decode_module(data)
            except WasmError:
                continue
            try:
                validate_module(module)
                encode_module(module)
            except WasmError:
                pass
