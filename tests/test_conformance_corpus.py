"""Conformance corpus: all dispatch modes agree on every program.

Each ``tests/corpus/*.wat`` fixture is a small program targeting one
semantic corner (wrap-around arithmetic, NaN bit patterns, memarg edge
offsets, br_table, bulk memory ops, …).  The harness runs every
exported function under all three dispatch modes — ``legacy`` (the
pre-rewrite per-op closures), ``nofuse`` (fast memory paths, no
fusion) and ``fused`` (superinstruction codegen) — and requires
*bit-identical observables*: results (floats compared by bit pattern),
trap kinds, per-pc execution counts, opcode totals, load/store counts
and touched-page sets.

Every module also makes a binary encode/decode round trip first, so
the corpus exercises the wire format (including the 0xFC-prefixed
bulk-memory opcodes) on the way in.
"""

import pathlib
import struct

import pytest

from repro.runtime.interpreter import DISPATCH_MODES, Interpreter
from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.errors import Trap
from repro.wasm.wat_parser import parse_wat

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.wat"))


def _bits(value):
    """Floats compared by IEEE bit pattern so NaN == NaN, -0.0 != 0.0."""
    if isinstance(value, float):
        return ("f64", struct.pack("<d", value))
    if isinstance(value, tuple):
        return tuple(_bits(v) for v in value)
    return value


def _run_module(module, dispatch=None, tier=None):
    interp = Interpreter(
        module,
        dispatch=dispatch,
        tier=tier,
        collect_profile=True,
        track_pages=True,
    )
    outcomes = []
    for export in module.exports:
        if export.kind != "func":
            continue
        try:
            outcomes.append((export.name, "ok", _bits(interp.invoke(export.name))))
        except Trap as trap:
            outcomes.append((export.name, "trap", trap.kind))
    profile = interp.take_profile("conformance", "corpus")
    return {
        "outcomes": outcomes,
        "instr_counts": dict(profile.instr_counts),
        "op_totals": dict(profile.op_totals),
        "total_instrs": profile.total_instrs,
        "mem_loads": profile.mem_loads,
        "mem_stores": profile.mem_stores,
        "pages_touched": profile.pages_touched,
        "grow_events": list(profile.grow_events),
        "peak_pages": profile.peak_pages,
    }


def test_corpus_is_populated():
    # The corpus is meant to grow; losing files should be loud.
    assert len(CORPUS) >= 30


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_dispatch_modes_agree(path, monkeypatch):
    monkeypatch.setenv("REPRO_FUSE_STRICT", "1")
    module = parse_wat(path.read_text())
    validate_module(module)
    # Wire round trip: the binary form must reproduce the module.
    module = decode_module(encode_module(module))
    validate_module(module)

    reference = _run_module(module, "fused")
    assert reference["outcomes"], f"{path.name} exports no functions"
    for mode in DISPATCH_MODES:
        if mode == "fused":
            continue
        observed = _run_module(module, mode)
        for key, value in reference.items():
            assert observed[key] == value, (
                f"{path.name}: {key} differs between fused and {mode}"
            )


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_tiers_agree(path, monkeypatch):
    """All three execution tiers are bit-identical on the corpus.

    ``REPRO_TIER_THRESHOLD=0`` forces immediate tier-up so the opt
    tier's whole-function compiler actually runs where it can;
    ``REPRO_TIER_STRICT=1`` turns unexpected vectorizer failures into
    hard errors instead of silent tier-1 fallbacks.  Agreement covers
    outcomes *and* the reconstructed per-pc profile.
    """
    monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
    monkeypatch.setenv("REPRO_TIER_STRICT", "1")
    monkeypatch.setenv("REPRO_FUSE_STRICT", "1")
    module = parse_wat(path.read_text())
    validate_module(module)
    module = decode_module(encode_module(module))
    validate_module(module)

    reference = _run_module(module, tier="fused")
    assert reference["outcomes"], f"{path.name} exports no functions"
    for tier in ("legacy", "opt"):
        observed = _run_module(module, tier=tier)
        for key, value in reference.items():
            assert observed[key] == value, (
                f"{path.name}: {key} differs between fused and tier {tier}"
            )


def test_tier2_compiles_some_of_the_corpus(monkeypatch):
    """The opt tier must engage on the corpus, not just bail out."""
    monkeypatch.setenv("REPRO_TIER_THRESHOLD", "0")
    monkeypatch.setenv("REPRO_TIER_STRICT", "1")
    installed = 0
    for path in CORPUS:
        module = parse_wat(path.read_text())
        interp = Interpreter(module, tier="opt")
        for export in module.exports:
            if export.kind == "func":
                try:
                    interp.invoke(export.name)
                except Trap:
                    pass
        installed += sum(
            1 for handler in interp._tiering.handlers.values() if handler
        )
    assert installed > 0, "tier-2 installed zero handlers across the corpus"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_fusion_actually_applies(path):
    """The corpus must exercise the fused path, not just fall back."""
    module = parse_wat(path.read_text())
    interp = Interpreter(module, dispatch="fused")
    for export in module.exports:
        if export.kind == "func":
            try:
                interp.invoke(export.name)
            except Trap:
                pass
    total_regions = sum(len(r) for r in interp._fused_regions.values())
    assert total_regions > 0, f"{path.name} compiled zero fused regions"
