"""Tests for the multicore machine model."""

import pytest

from repro.cpu import Machine, MachineSpec, MACHINE_SPECS, SimThread
from repro.sim import Engine, Mutex


def small_machine(cores=2, quantum=1.0, switch_cost=0.0):
    spec = MachineSpec(
        name="test",
        isa="x86_64",
        cores=cores,
        frequency_hz=1e9,
        memory_bytes=1 << 30,
        quantum=quantum,
        switch_cost=switch_cost,
    )
    engine = Engine()
    return engine, Machine(engine, spec)


class TestSingleThread:
    def test_exec_accounts_user_time(self):
        engine, machine = small_machine()
        thread = SimThread(engine, "t0", machine.core(0))

        def body():
            yield from thread.startup()
            yield from thread.run(5.0, "user")
            yield from thread.run(1.0, "sys")
            thread.finish()

        engine.run_process(body())
        assert machine.core(0).acct.user == pytest.approx(5.0)
        assert machine.core(0).acct.sys == pytest.approx(1.0)
        assert engine.now == pytest.approx(6.0)

    def test_zero_duration_exec(self):
        engine, machine = small_machine()
        thread = SimThread(engine, "t0", machine.core(0))

        def body():
            yield from thread.startup()
            yield from thread.run(0.0)
            thread.finish()

        engine.run_process(body())
        assert machine.core(0).acct.busy == 0.0


class TestTwoThreadsOneCore:
    def test_round_robin_interleaving(self):
        engine, machine = small_machine(cores=1, quantum=1.0)
        core = machine.core(0)
        done = {}

        def body(name):
            thread = SimThread(engine, name, core)
            yield from thread.startup()
            yield from thread.run(3.0)
            done[name] = engine.now
            thread.finish()

        engine.process(body("a"))
        engine.process(body("b"))
        engine.run()
        # Total work is 6s on one core.
        assert engine.now == pytest.approx(6.0)
        assert core.acct.user == pytest.approx(6.0)
        # Interleaving: neither finishes before ~5s.
        assert min(done.values()) >= 5.0
        # Context switches happened (at least one per quantum handoff).
        assert core.context_switches >= 4

    def test_uncontended_thread_runs_whole_segment(self):
        engine, machine = small_machine(cores=1, quantum=1.0)
        core = machine.core(0)
        thread = SimThread(engine, "solo", core)

        def body():
            yield from thread.startup()
            yield from thread.run(10.0)
            thread.finish()

        engine.run_process(body())
        # No preemption: one install plus the switch to idle at exit.
        assert core.context_switches == 2
        assert engine.now == pytest.approx(10.0)

    def test_switch_cost_accounted_as_sys(self):
        engine, machine = small_machine(cores=1, quantum=1.0, switch_cost=0.1)
        core = machine.core(0)

        def body(name):
            thread = SimThread(engine, name, core)
            yield from thread.startup()
            yield from thread.run(2.0)
            thread.finish()

        engine.process(body("a"))
        engine.process(body("b"))
        engine.run()
        assert core.acct.sys > 0.0


class TestBlocking:
    def test_block_on_releases_core_to_other_thread(self):
        engine, machine = small_machine(cores=1, quantum=10.0)
        core = machine.core(0)
        mutex = Mutex(engine)
        trace = []

        def locker():
            thread = SimThread(engine, "locker", core)
            yield from thread.startup()
            yield from thread.block_on(mutex.acquire())
            yield from thread.run(1.0)
            # Hold the lock while sleeping so `waiter` must block.
            yield from thread.sleep(5.0)
            mutex.release()
            trace.append(("locker-release", engine.now))
            thread.finish()

        def waiter():
            thread = SimThread(engine, "waiter", core)
            yield from thread.startup()
            yield from thread.run(0.5)
            yield from thread.block_on(mutex.acquire())
            trace.append(("waiter-acquired", engine.now))
            yield from thread.run(1.0)
            mutex.release()
            thread.finish()

        engine.process(locker())
        engine.process(waiter())
        engine.run()
        # Timeline: locker's block_on bounces the core, letting waiter run
        # its 0.5s first; locker then computes 1.0s and sleeps 5.0s while
        # holding the lock, releasing at t=6.5.
        assert ("waiter-acquired", 6.5) in trace
        # While locker slept, waiter could use the core: total busy time
        # is 2.5s of work even though wall time is 7s.
        assert core.acct.user == pytest.approx(2.5)

    def test_sleep_leaves_core_idle(self):
        engine, machine = small_machine(cores=1)
        core = machine.core(0)
        thread = SimThread(engine, "sleeper", core)

        def body():
            yield from thread.startup()
            yield from thread.run(1.0)
            yield from thread.sleep(4.0)
            yield from thread.run(1.0)
            thread.finish()

        engine.run_process(body())
        assert engine.now == pytest.approx(6.0)
        assert core.acct.busy == pytest.approx(2.0)


class TestIrq:
    def test_irq_on_idle_core_accounts_time(self):
        engine, machine = small_machine()
        core = machine.core(0)
        core.post_irq(0.25)
        assert core.acct.irq == pytest.approx(0.25)

    def test_irq_extends_running_segment(self):
        engine, machine = small_machine(cores=1)
        core = machine.core(0)
        thread = SimThread(engine, "victim", core)

        def body():
            yield from thread.startup()
            yield from thread.run(10.0)
            thread.finish()

        engine.process(body())
        # Interrupt in the middle of the segment steals 2s of wall time.
        engine.call_after(5.0, lambda: core.post_irq(2.0))
        engine.run()
        assert engine.now == pytest.approx(12.0)
        assert core.acct.user == pytest.approx(10.0)
        assert core.acct.irq == pytest.approx(2.0)

    def test_multiple_irqs_accumulate(self):
        engine, machine = small_machine(cores=1)
        core = machine.core(0)
        thread = SimThread(engine, "victim", core)

        def body():
            yield from thread.startup()
            yield from thread.run(4.0)
            thread.finish()

        engine.process(body())
        engine.call_after(1.0, lambda: core.post_irq(0.5))
        engine.call_after(2.0, lambda: core.post_irq(0.5))
        engine.run()
        assert engine.now == pytest.approx(5.0)


class TestMachine:
    def test_specs_present_for_all_three_isas(self):
        assert set(MACHINE_SPECS) == {"x86_64", "armv8", "riscv64"}
        assert MACHINE_SPECS["riscv64"].cores == 1
        assert MACHINE_SPECS["x86_64"].cores == 16
        assert MACHINE_SPECS["armv8"].cores == 16

    def test_riscv_memory_limit_matches_paper(self):
        # §3.4: the Nezha D1 has 1 GiB, which is why SPEC cannot run there.
        assert MACHINE_SPECS["riscv64"].memory_bytes == 1 << 30

    def test_round_robin_placement(self):
        engine, machine = small_machine(cores=3)
        indices = [machine.place().index for _ in range(5)]
        assert indices == [0, 1, 2, 0, 1]

    def test_cycle_conversion_roundtrip(self):
        engine, machine = small_machine()
        assert machine.cycles_to_seconds(2e9) == pytest.approx(2.0)
        assert machine.seconds_to_cycles(2.0) == pytest.approx(2e9)

    def test_parallel_threads_on_distinct_cores(self):
        engine, machine = small_machine(cores=2)
        finish = {}

        def body(name, core_index):
            thread = SimThread(engine, name, machine.core(core_index))
            yield from thread.startup()
            yield from thread.run(5.0)
            finish[name] = engine.now
            thread.finish()

        engine.process(body("a", 0))
        engine.process(body("b", 1))
        engine.run()
        # Perfect parallelism: both finish at t=5.
        assert finish == {"a": 5.0, "b": 5.0}
