"""Golden-trace regression suite (satellite 1).

One PolyBench workload (trisolv) crossed with the four wasm
bounds-checking strategies and two thread counts, each run traced and
checked three ways:

* structural invariants (every mmap_lock acquire has a release, no
  negative wait/hold, exclusive VMA mutations only under the writer);
* strategy-specific lock-discipline assertions (uffd's grow path never
  touches the kernel, mprotect's takes the writer every iteration);
* the integer-only :func:`golden_counters` projection against the
  committed golden file.

The goldens pin event *counts*, not simulated durations, so cost-table
recalibrations that only move timestamps do not churn them.  After an
intentional behaviour change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_trace_golden.py --regen-golden
"""

import json
from pathlib import Path

import pytest

from repro.core.harness import run_benchmark
from repro.trace import summary as trace_summary
from repro.trace.events import (
    STRATEGY_GROW_BEGIN,
    STRATEGY_GROW_END,
)
from repro.trace.tracer import tracing

pytestmark = pytest.mark.trace

GOLDEN_DIR = Path(__file__).parent / "golden_traces"

WORKLOAD, RUNTIME, ISA = "trisolv", "wavm", "x86_64"
ITERATIONS, WARMUP = 2, 1
GRID = [
    (strategy, threads)
    for strategy in ("clamp", "trap", "mprotect", "uffd")
    for threads in (1, 4)
]


def _traced_run(strategy, threads):
    with tracing() as sink:
        run_benchmark(
            WORKLOAD, RUNTIME, strategy, ISA,
            threads=threads, size="mini",
            iterations=ITERATIONS, warmup=WARMUP,
        )
    return sink.events


def _window_lock_modes(summary):
    """Mode tables for mmap_lock entries inside the timed window."""
    merged = {}
    for name, modes in summary["window"]["locks"].items():
        if name.startswith("mmap_lock"):
            for mode, entry in modes.items():
                bucket = merged.setdefault(
                    mode, {"acquisitions": 0, "contended": 0}
                )
                bucket["acquisitions"] += entry["acquisitions"]
                bucket["contended"] += entry["contended"]
    return merged


@pytest.mark.parametrize("strategy,threads", GRID)
def test_golden_trace(strategy, threads, regen_golden):
    events = _traced_run(strategy, threads)
    assert trace_summary.check_invariants(events) == []

    summary = trace_summary.summarize(events)
    counters = trace_summary.golden_counters(summary)

    golden_path = GOLDEN_DIR / f"{WORKLOAD}-{RUNTIME}-{strategy}-t{threads}.json"
    if regen_golden:
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(counters, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {golden_path.name}")
    expected = json.loads(golden_path.read_text())
    assert counters == expected, (
        f"trace counters diverged from {golden_path.name}; if the change "
        "is intentional, rerun with --regen-golden"
    )


@pytest.mark.parametrize("strategy,threads", GRID)
def test_lock_discipline(strategy, threads):
    events = _traced_run(strategy, threads)
    summary = trace_summary.summarize(events)
    modes = _window_lock_modes(summary)
    write_acq = modes.get("write", {}).get("acquisitions", 0)
    if strategy == "mprotect":
        # Grow and reset both take the writer, every timed iteration.
        assert write_acq >= threads * ITERATIONS
    else:
        # clamp/trap reset via madvise (read lock); uffd grows with an
        # atomic store — the timed window never sees the global writer.
        assert write_acq == 0


def test_mprotect_contends_at_four_threads():
    summary = trace_summary.summarize(_traced_run("mprotect", 4))
    assert trace_summary.contention_events(summary) > 0


def test_uffd_never_contends_in_timed_window():
    summary = trace_summary.summarize(_traced_run("uffd", 4))
    assert trace_summary.contention_events(summary) == 0
    modes = _window_lock_modes(summary)
    for entry in modes.values():
        assert entry["contended"] == 0


def test_uffd_grow_is_kernel_free():
    """Inside every uffd grow span, the growing thread makes no syscalls."""
    events = _traced_run("uffd", 4)
    open_since = {}  # thread -> seq of grow begin
    checked = 0
    for event in events:
        if event.name == STRATEGY_GROW_BEGIN:
            assert event.args["mechanism"] == "atomic"
            open_since[event.thread] = event.seq
        elif event.name == STRATEGY_GROW_END:
            open_since.pop(event.thread, None)
            checked += 1
        elif event.thread in open_since and event.name.startswith("syscall."):
            pytest.fail(
                f"{event.thread} made {event.name} inside an atomic grow "
                f"(seq {event.seq})"
            )
    assert checked >= 4 * ITERATIONS
