"""The ``repro.api`` facade: surface snapshot, equivalence, shims.

The surface snapshot pins the public names and the :class:`SweepSpec`
field list so an accidental rename or default change fails loudly; the
equivalence tests prove the facade returns byte-identical rows to the
deprecated entry points it replaced; the shim tests pin the
DeprecationWarning contract the CI deprecation gate relies on.
"""

import dataclasses
import warnings

import pytest

from repro import api
from repro.core.engine import MeasurementEngine
from repro.runtimes.registry import bce_enabled, set_bce_enabled

SPEC = api.SweepSpec(
    workloads=["gemm"],
    runtimes=("wavm", "v8"),
    strategies=("mprotect", "trap"),
    size="mini",
    iterations=2,
)


def engine():
    return MeasurementEngine(cache=False)


def stable(rows):
    """Rows minus the wall-clock column (everything else is seeded)."""
    return [
        {k: v for k, v in row.items() if k != "elapsed_s"} for row in rows
    ]


class TestSurfaceSnapshot:
    def test_public_names(self):
        assert sorted(api.__all__) == [
            "FIELDS",
            "ROW_SCHEMA",
            "SweepMeasurements",
            "SweepSpec",
            "measure",
            "row_from",
            "run",
            "to_csv",
        ]
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_row_fields(self):
        assert api.FIELDS == [
            "workload", "runtime", "strategy", "isa", "threads",
            "median_ms", "utilisation_percent", "ctx_per_sec",
            "mem_avg_mib", "mmap_write_wait_ms", "checks_emitted",
            "checks_elided", "syscall_calls", "syscall_ms",
            "cache_hit", "elapsed_s",
        ]
        assert list(api.ROW_SCHEMA) == api.FIELDS

    def test_sweep_spec_fields_and_defaults(self):
        fields = {
            f.name: f.default for f in dataclasses.fields(api.SweepSpec)
        }
        assert fields == {
            "workloads": dataclasses.MISSING,
            "runtimes": ("wavm",),
            "strategies": ("mprotect",),
            "isas": ("x86_64",),
            "threads": (1,),
            "size": "small",
            "iterations": 3,
            "warmup": 1,
            "scenario": "compute",
        }
        # Frozen: specs are shareable cache keys, not mutable state.
        with pytest.raises(dataclasses.FrozenInstanceError):
            SPEC.size = "large"

    def test_sweep_measurements_shape(self):
        for name in ("rows", "by_workload", "per_workload", "medians"):
            assert callable(getattr(api.SweepMeasurements, name)), name

    def test_validate_raises_where_configurations_skips(self):
        bad = api.SweepSpec(workloads=["gemm"], runtimes=("wavm",),
                            isas=("riscv64",))
        assert list(bad.configurations()) == []
        with pytest.raises(ValueError, match="no riscv64 backend"):
            bad.validate()

    def test_mte_on_untagged_isa_rejected_at_spec_time(self):
        # The harness would raise deep inside a worker; the spec must
        # fail at submission with the same hardware-gating message.
        bad = api.SweepSpec(workloads=["gemm"], runtimes=("wavm",),
                            strategies=("mte",), isas=("x86_64",))
        assert list(bad.configurations()) == []
        with pytest.raises(ValueError, match="memory-tagging.*armv8"):
            bad.validate()

    def test_mte_on_armv8_is_valid(self):
        spec = api.SweepSpec(workloads=["gemm"], runtimes=("wavm",),
                             strategies=("mte", "wasm64"), isas=("armv8",))
        spec.validate()
        combos = list(spec.configurations())
        assert ("wavm", "mte", "armv8", 1) in combos
        assert ("wavm", "wasm64", "armv8", 1) in combos


class TestSpecCanonicalization:
    """SweepSpec as a value type: hashable, serialisable, digestable.

    The sweep service keys job dedup on :meth:`SweepSpec.digest`, so
    list-vs-tuple construction differences must vanish at ``__init__``.
    """

    def test_lists_and_tuples_construct_equal_hashable_specs(self):
        a = api.SweepSpec(workloads=["gemm"], runtimes=["wavm", "v8"],
                          threads=[1, 4])
        b = api.SweepSpec(workloads=("gemm",), runtimes=("wavm", "v8"),
                          threads=(1, 4))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1  # usable as a dict/set key
        assert a.workloads == ("gemm",)
        assert a.threads == (1, 4)

    def test_replace_renormalizes(self):
        spec = dataclasses.replace(SPEC, strategies=["none"])
        assert spec.strategies == ("none",)
        assert isinstance(hash(spec), int)

    def test_bare_string_sequence_rejected(self):
        with pytest.raises(TypeError, match="bare string"):
            api.SweepSpec(workloads="gemm")
        with pytest.raises(TypeError, match="bare string"):
            api.SweepSpec(workloads=["gemm"], runtimes="wavm")

    def test_json_round_trip(self):
        raw = SPEC.to_json()
        assert raw["workloads"] == ["gemm"]
        assert raw["runtimes"] == ["wavm", "v8"]
        again = api.SweepSpec.from_json(raw)
        assert again == SPEC
        assert again.digest() == SPEC.digest()
        # And survives an actual JSON encode/decode cycle.
        import json

        assert api.SweepSpec.from_json(json.loads(json.dumps(raw))) == SPEC

    def test_from_json_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ValueError, match="unknown SweepSpec field"):
            api.SweepSpec.from_json({"workloads": ["gemm"], "bogus": 1})
        with pytest.raises(ValueError, match="workloads"):
            api.SweepSpec.from_json({"runtimes": ["wavm"]})

    def test_scenario_axis_round_trips_and_validates(self):
        spec = api.SweepSpec(workloads=["wasi-grep"], scenario="wasi")
        assert spec.to_json()["scenario"] == "wasi"
        assert api.SweepSpec.from_json(spec.to_json()) == spec
        with pytest.raises(ValueError, match="unknown scenario"):
            api.SweepSpec(workloads=["gemm"], scenario="io")

    def test_scenario_default_keeps_digests_byte_identical(self):
        # The field must be invisible at its default, so every job key
        # issued before the axis existed still dedups against the same
        # digest.  The hex is the pre-axis digest of this exact spec.
        assert "scenario" not in SPEC.canonical_json()
        legacy = api.SweepSpec(
            workloads=("trisolv",), runtimes=("wavm",),
            strategies=("mprotect",), isas=("x86_64",), threads=(1,),
            size="small", iterations=3, warmup=1,
        )
        assert legacy.digest() == (
            "26e1c6ea9de920c8192619e51f4e50c8"
            "3650189a8d55988f9ef35f16a38cc9ca"
        )

    def test_scenario_filters_mismatched_workloads(self):
        mixed = api.SweepSpec(
            workloads=["gemm", "wasi-grep"], scenario="wasi"
        )
        assert {r.workload for r in mixed.requests()} == {"wasi-grep"}
        with pytest.raises(ValueError, match="outside the 'wasi' scenario"):
            mixed.validate()
        compute = api.SweepSpec(workloads=["gemm", "wasi-grep"])
        assert {r.workload for r in compute.requests()} == {"gemm"}

    def test_digest_is_stable_and_discriminating(self):
        assert SPEC.digest() == SPEC.digest()
        assert len(SPEC.digest()) == 64
        other = dataclasses.replace(SPEC, iterations=3)
        assert other.digest() != SPEC.digest()
        # Canonical JSON is byte-stable: sorted keys, no whitespace.
        text = SPEC.canonical_json()
        assert " " not in text
        import json

        assert list(json.loads(text)) == sorted(json.loads(text))


class TestEquivalence:
    def test_run_matches_legacy_run_sweep(self):
        rows = api.run(SPEC, engine=engine())
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            from repro.core.runner import run_sweep

            legacy = run_sweep(SPEC, engine=engine())
        assert stable(rows) == stable(legacy)

    def test_run_matches_legacy_with_bce_disabled(self):
        assert bce_enabled()
        try:
            set_bce_enabled(False)
            rows = api.run(SPEC, engine=engine())
            with pytest.warns(DeprecationWarning):
                from repro.core.runner import run_sweep

                legacy = run_sweep(SPEC, engine=engine())
        finally:
            set_bce_enabled(True)
        assert stable(rows) == stable(legacy)
        assert all(row["checks_elided"] == 0 for row in rows)

    def test_measure_matches_legacy_common_measure(self):
        swept = api.measure(
            api.SweepSpec(workloads=["gemm"], runtimes=("wavm",),
                          strategies=("trap",), size="mini", iterations=2),
            engine=engine(), strict=True,
        )
        with pytest.warns(DeprecationWarning, match="repro.api.measure"):
            from repro.core.experiments import common

            legacy = common.measure(
                ["gemm"], "wavm", "trap", "x86_64",
                size="mini", iterations=2, engine=engine(),
            )
        from repro.core.engine import measurement_to_json

        ours = swept.per_workload()
        assert set(ours) == set(legacy)
        for name in ours:
            assert measurement_to_json(ours[name]) == measurement_to_json(
                legacy[name]
            )

    def test_bce_rows_report_counter_movement(self):
        rows = api.run(SPEC, engine=engine())
        trap = {r["runtime"]: r for r in rows if r["strategy"] == "trap"}
        mprot = {r["runtime"]: r for r in rows if r["strategy"] == "mprotect"}
        for runtime in ("wavm", "v8"):
            assert trap[runtime]["checks_elided"] > 0
            # Signal strategies emit no inline checks to elide.
            assert mprot[runtime]["checks_emitted"] == 0
            assert mprot[runtime]["checks_elided"] == 0


class TestDeprecatedShims:
    def test_runner_module_reexports(self):
        from repro.core import runner

        assert runner.FIELDS is api.FIELDS
        assert runner.SweepSpec is api.SweepSpec
        assert runner.to_csv is api.to_csv

    def test_engine_arg_shims_warn(self):
        import argparse

        from repro.core import engine as engine_mod

        parser = argparse.ArgumentParser()
        with pytest.warns(DeprecationWarning, match="cliopts"):
            engine_mod.add_engine_args(parser)
        args = parser.parse_args([])
        with pytest.warns(DeprecationWarning, match="cliopts"):
            engine_mod.configure_from_args(args)

    def test_facade_itself_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run(SPEC, engine=engine())
