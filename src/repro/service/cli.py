"""CLI entry points: ``leaps-bench serve`` and ``leaps-bench loadgen``.

::

    leaps-bench serve [--host H] [--port P] [--row-cache-cap N]
                      [--jobs N|auto] [--no-cache] [--cache-dir DIR]

    leaps-bench loadgen [--host H] [--port P]
                        [--workloads w1,w2] [--runtimes r1,r2]
                        [--strategies s1,s2] [--isas i1] [--threads 1,4]
                        [--size mini] [--iterations N]
                        [--concurrency C] [--requests N | --duration S]
                        [--json FILE]

``serve`` holds the measurement engine resident (process pool +
content-addressed cache) and prints one ``listening on http://...``
line once bound (``--port 0`` picks a free port).  ``loadgen`` drives
a running daemon and prints the latency/throughput report as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.api import SweepSpec
from repro.core import cliopts


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="leaps-bench serve",
        description="run the sweep engine as a long-lived HTTP/JSON daemon",
        parents=[cliopts.sweep_parent()],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8077,
        help="listen port (0 = pick a free one; default 8077)",
    )
    parser.add_argument(
        "--row-cache-cap", type=int, default=65536, metavar="N",
        help="bounded row-LRU capacity fronting the measurement cache",
    )
    args = parser.parse_args(argv)
    engine = cliopts.configure_sweep(args)

    from repro.service.daemon import run_service

    def ready(bound) -> None:
        host, port = bound
        print(f"leaps-bench serve: listening on http://{host}:{port}",
              flush=True)

    try:
        asyncio.run(
            run_service(
                args.host, args.port, engine=engine,
                row_cache_capacity=args.row_cache_cap, ready=ready,
            )
        )
    except KeyboardInterrupt:
        pass
    print("leaps-bench serve: drained, bye", flush=True)
    return 0


def _csv(value: str):
    return [item for item in value.split(",") if item]


def loadgen_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="leaps-bench loadgen",
        description="drive a running sweep daemon and report latency",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--workloads", type=_csv, default=["trisolv"])
    parser.add_argument("--runtimes", type=_csv, default=["wavm"])
    parser.add_argument("--strategies", type=_csv, default=["mprotect"])
    parser.add_argument("--isas", type=_csv, default=["x86_64"])
    parser.add_argument(
        "--threads", type=lambda v: [int(t) for t in _csv(v)], default=[1]
    )
    parser.add_argument("--size", default="mini")
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument(
        "--concurrency", type=int, default=100, metavar="C",
        help="open connections == service-side in-flight jobs",
    )
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="total jobs to submit (default: one per connection)",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="run for S seconds instead of a fixed job count",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the report to FILE",
    )
    args = parser.parse_args(argv)

    spec = SweepSpec(
        workloads=args.workloads, runtimes=args.runtimes,
        strategies=args.strategies, isas=args.isas, threads=args.threads,
        size=args.size, iterations=args.iterations,
    )

    from repro.service.loadgen import run_load

    report = asyncio.run(
        run_load(
            args.host, args.port, spec,
            concurrency=args.concurrency,
            total_jobs=args.requests,
            duration=args.duration,
        )
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if report["jobs"] == 0 or report["failures"]:
        print("loadgen: some requests failed", file=sys.stderr)
        return 1
    return 0
