"""``repro.service`` — the sweep engine as a long-running async daemon.

The CLI experiments run one grid and exit; the service keeps the
measurement engine (process pool + content-addressed cache) resident
and serves :class:`~repro.api.SweepSpec` jobs over HTTP/JSON to many
concurrent clients:

* :mod:`repro.service.httpd`  — a minimal stdlib HTTP/1.1 layer over
  ``asyncio.start_server`` (keep-alive, chunked NDJSON streaming);
* :mod:`repro.service.jobs`   — the job manager: shards each grid's
  requests onto the engine via ``run_in_executor``, dedupes in-flight
  identical requests on the engine's content-addressed keys (N
  concurrent identical jobs → one execution, N subscribers), fronts
  the cache with a bounded LRU, and broadcasts per-job row/progress
  events through the PR 2 trace sinks;
* :mod:`repro.service.daemon` — the HTTP routes (`/jobs`, `/metrics`,
  `/healthz`, NDJSON event streams) and graceful shutdown;
* :mod:`repro.service.client` — a stdlib synchronous client;
* :mod:`repro.service.loadgen` — the asyncio load generator behind
  ``leaps-bench loadgen`` and ``BENCH_service.json``.

Start it with ``leaps-bench serve``; see EXPERIMENTS.md § "Sweep
service".
"""

from repro.service.daemon import SweepService
from repro.service.jobs import Job, JobManager

__all__ = ["Job", "JobManager", "SweepService"]
