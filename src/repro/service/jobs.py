"""The sweep service's job manager: dedup, sharding, events, metrics.

One :class:`Job` is one submitted :class:`~repro.api.SweepSpec`.  The
manager expands it into the engine's :class:`MeasurementRequest`\\ s
and resolves each through a three-level ladder:

1. **row LRU** — a bounded in-loop cache of finished rows keyed by the
   engine's content-addressed keys (hit/miss/eviction counters served
   on ``/metrics``);
2. **in-flight table** — a request some other job is currently
   computing; this job *subscribes* to the same future instead of
   executing again, so N concurrent identical jobs cost one
   execution (the ``coalesced`` counter);
3. **the engine** — everything else is dispatched as one batch to
   :meth:`MeasurementEngine.run` on a dedicated executor thread (the
   engine's process pool provides the parallelism; the single thread
   keeps its internal caches race-free), with ``return_errors=True``
   so one poisoned config yields an error row instead of killing the
   batch, and ``on_result`` bridging each completion back onto the
   event loop as it happens.

Every row/progress/lifecycle observation is emitted as a PR 2
:class:`TraceEvent` through a per-job :class:`BroadcastSink`, which is
what the daemon's NDJSON endpoints stream — the service has no second
event vocabulary.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import SweepSpec, row_from
from repro.core.engine import (
    MeasurementEngine,
    MeasurementRequest,
    MeasurementResult,
    default_engine,
)
from repro.core.lru import LRUCache
from repro.trace.events import (
    JOB_ACCEPTED,
    JOB_DONE,
    JOB_ERROR,
    JOB_PROGRESS,
    JOB_ROW,
    event_to_json,
)
from repro.trace.tracer import BroadcastSink, Tracer

#: Row provenance values (the ``source`` column on each service row).
SOURCE_COMPUTED = "computed"      # this job executed the measurement
SOURCE_ENGINE_CACHE = "engine-cache"  # engine memory/disk cache hit
SOURCE_LRU = "lru"                # service row-LRU hit
SOURCE_COALESCED = "coalesced"    # subscribed to another job's execution
SOURCE_ERROR = "error"


def validate_spec_names(spec: SweepSpec) -> None:
    """Reject unknown workload/runtime/strategy/ISA names with ValueError.

    The grid product itself may legitimately *skip* combinations (a
    runtime without an ISA backend); a name that exists nowhere is a
    client error and should 400 at submit instead of failing the job.
    """
    from repro.isa import ISAS
    from repro.runtime.strategies import STRATEGIES
    from repro.runtimes import runtime_named
    from repro.workloads import workload_named

    for workload in spec.workloads:
        workload_named(workload)  # raises ValueError
    for runtime in spec.runtimes:
        runtime_named(runtime)  # raises KeyError-ish/ValueError
    for strategy in spec.strategies:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from "
                f"{sorted(STRATEGIES)}"
            )
    for isa in spec.isas:
        if isa not in ISAS:
            raise ValueError(
                f"unknown ISA {isa!r}; choose from {sorted(ISAS)}"
            )
    if spec.iterations < 1 or spec.warmup < 0:
        raise ValueError("iterations must be >= 1 and warmup >= 0")


def error_row(request: MeasurementRequest, result: MeasurementResult) -> dict:
    """The per-row shape of a failed request (fault isolation)."""
    assert result.error is not None
    return {
        "workload": request.workload,
        "runtime": request.runtime,
        "strategy": request.strategy,
        "isa": request.isa,
        "threads": request.threads,
        "error": result.error.message,
        "error_kind": result.error.kind,
        "cache_hit": 0,
        "elapsed_s": round(result.elapsed, 6),
        "source": SOURCE_ERROR,
    }


@dataclass
class Job:
    """One submitted sweep and everything observable about it."""

    id: str
    spec: SweepSpec
    digest: str
    created_unix: float
    #: Monotonic submit instant (latency measurements).
    _t0: float
    state: str = "running"  # running | done | failed
    total: int = 0
    rows: List[dict] = field(default_factory=list)
    #: computed/engine-cache/lru/coalesced/error tallies.
    sources: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    latency_s: Optional[float] = None
    events: BroadcastSink = field(default_factory=BroadcastSink)
    tracer: Tracer = field(default_factory=Tracer)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def __post_init__(self) -> None:
        self.tracer.start(self.events)

    def emit(self, name: str, **args) -> None:
        self.tracer.emit(time.monotonic() - self._t0, name, **args)

    @property
    def ok_rows(self) -> int:
        return sum(1 for row in self.rows if "error" not in row)

    @property
    def error_rows(self) -> int:
        return sum(1 for row in self.rows if "error" in row)

    def summary(self) -> dict:
        return {
            "job": self.id,
            "digest": self.digest,
            "state": self.state,
            "created_unix": self.created_unix,
            "spec": self.spec.to_json(),
            "requests": self.total,
            "rows": len(self.rows),
            "errors": self.error_rows,
            "sources": dict(self.sources),
            "latency_s": self.latency_s,
            **({"error": self.error} if self.error else {}),
        }

    def result(self) -> dict:
        payload = self.summary()
        payload["row_data"] = list(self.rows)
        return payload


class JobManager:
    """Owns the jobs table, the dedup ladder and the engine bridge."""

    def __init__(
        self,
        engine: Optional[MeasurementEngine] = None,
        row_cache_capacity: int = 65536,
        max_jobs_kept: int = 10000,
    ) -> None:
        self.engine = engine if engine is not None else default_engine()
        self.rows: LRUCache[dict] = LRUCache(row_cache_capacity)
        self.jobs: Dict[str, Job] = {}
        self._job_order: List[str] = []
        self.max_jobs_kept = max_jobs_kept
        #: engine key -> loop future resolving to (row, result_ok) once
        #: some job finishes computing that request.
        self.inflight: Dict[str, asyncio.Future] = {}
        self.counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_rejected": 0,
            "requests_resolved": 0,
            "computed": 0,
            "engine_cache_hits": 0,
            "lru_hits": 0,
            "coalesced": 0,
            "errors": 0,
            "rows_streamed": 0,
        }
        self.started_unix = time.time()
        self._started_mono = time.monotonic()
        self._seq = 0
        # Two single threads, deliberately separate: *prep* computes
        # content keys (pure, memoised module encodes) so identical
        # jobs can coalesce while a batch is still executing on the
        # *engine* thread.  All manager state stays loop-only.
        self._prep = ThreadPoolExecutor(1, thread_name_prefix="svc-prep")
        self._engine_exec = ThreadPoolExecutor(1, thread_name_prefix="svc-engine")
        self._active: Dict[str, asyncio.Task] = {}
        self._draining = False

    # -- submission ------------------------------------------------------

    def submit(self, spec: SweepSpec) -> Job:
        """Register a job and start resolving it; returns immediately."""
        if self._draining:
            raise RuntimeError("service is draining; not accepting jobs")
        validate_spec_names(spec)
        self._seq += 1
        job = Job(
            id=f"j{self._seq:08d}",
            spec=spec,
            digest=spec.digest(),
            created_unix=time.time(),
            _t0=time.monotonic(),
        )
        self.jobs[job.id] = job
        self._job_order.append(job.id)
        self._forget_old_jobs()
        self.counters["jobs_submitted"] += 1
        job.emit(JOB_ACCEPTED, job=job.id, digest=job.digest)
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._active[job.id] = task
        task.add_done_callback(lambda _t: self._active.pop(job.id, None))
        return job

    def _forget_old_jobs(self) -> None:
        while len(self._job_order) > self.max_jobs_kept:
            oldest = self._job_order[0]
            if oldest in self._active:  # never drop a running job
                break
            self._job_order.pop(0)
            self.jobs.pop(oldest, None)

    # -- the resolution ladder -------------------------------------------

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            requests, keys = await loop.run_in_executor(
                self._prep, self._prepare, job.spec
            )
        except Exception as exc:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.latency_s = time.monotonic() - job._t0
            self.counters["jobs_failed"] += 1
            job.emit(JOB_ERROR, job=job.id, kind=type(exc).__name__,
                     message=str(exc))
            job.tracer.stop()
            job.done.set()
            return

        job.total = len(requests)
        job.emit(JOB_PROGRESS, job=job.id, done=0, total=job.total)

        # Partition every request through the ladder.  Plan entries are
        # (kind, payload): an LRU hit carries its finished row, an owned
        # or coalesced request carries the future that will resolve it.
        owned: List[Tuple[MeasurementRequest, str]] = []
        plan: List[Tuple[str, object]] = []
        for request, key in zip(requests, keys):
            row = self.rows.get(key)
            if row is not None:
                self.counters["lru_hits"] += 1
                plan.append(
                    ("hit", dict(row, cache_hit=1, source=SOURCE_LRU))
                )
                continue
            fut = self.inflight.get(key)
            if fut is not None:
                self.counters["coalesced"] += 1
                plan.append(("coalesced", fut))
                continue
            fut = loop.create_future()
            self.inflight[key] = fut
            owned.append((request, key))
            plan.append(("owned", fut))

        if owned:
            self._dispatch(loop, owned)

        for index, (kind, payload) in enumerate(plan):
            if kind == "hit":
                row = payload
            else:
                row = dict(await payload)
                if kind == "coalesced":
                    # A subscriber did not execute anything: its copy
                    # reads as served-from-in-flight-work.
                    row["cache_hit"] = 1
                    row["source"] = SOURCE_COALESCED
            job.rows.append(row)
            job.sources[row["source"]] = job.sources.get(row["source"], 0) + 1
            self.counters["requests_resolved"] += 1
            self.counters["rows_streamed"] += 1
            job.emit(JOB_ROW, job=job.id, index=index, done=len(job.rows),
                     total=job.total, row=row)

        job.state = "done"
        job.latency_s = time.monotonic() - job._t0
        self.counters["jobs_completed"] += 1
        job.emit(
            JOB_DONE, job=job.id, rows=len(job.rows),
            errors=job.error_rows, latency_s=round(job.latency_s, 6),
            sources=dict(job.sources),
        )
        job.tracer.stop()
        job.done.set()

    def _prepare(self, spec: SweepSpec):
        """(requests, content keys) for a spec — runs on the prep thread."""
        requests = spec.requests()
        keys = [self.engine.key_for(request) for request in requests]
        return requests, keys

    def _dispatch(
        self, loop: asyncio.AbstractEventLoop,
        owned: List[Tuple[MeasurementRequest, str]],
    ) -> None:
        """Hand a batch of owned misses to the engine thread."""
        batch_requests = [request for request, _ in owned]
        batch_keys = {key for _, key in owned}

        def on_result(request, key, result) -> None:
            # Engine-thread context: bounce onto the loop.
            loop.call_soon_threadsafe(self._complete, key, request, result)

        def run_batch() -> None:
            self.engine.run(
                batch_requests, return_errors=True, on_result=on_result
            )

        def batch_finished(fut: asyncio.Future) -> None:
            if fut.cancelled():
                exc: BaseException = RuntimeError("engine batch cancelled")
            else:
                exc = fut.exception()
            if exc is None:
                return
            # The engine itself failed (not one request): fail every
            # still-unresolved future of this batch.
            for key in batch_keys:
                pending = self.inflight.pop(key, None)
                if pending is not None and not pending.done():
                    row = {
                        "error": str(exc),
                        "error_kind": type(exc).__name__,
                        "cache_hit": 0,
                        "elapsed_s": 0.0,
                        "source": SOURCE_ERROR,
                    }
                    self.counters["errors"] += 1
                    pending.set_result(row)

        future = loop.run_in_executor(self._engine_exec, run_batch)
        future.add_done_callback(batch_finished)

    def _complete(
        self, key: str, request: MeasurementRequest, result: MeasurementResult
    ) -> None:
        """One engine request resolved (loop context via threadsafe call)."""
        if result.error is not None:
            row = error_row(request, result)
            self.counters["errors"] += 1
            # Not cached: a poisoned config is retried by the next job.
        else:
            row = row_from(result)
            row["source"] = (
                SOURCE_ENGINE_CACHE if result.cache_hit else SOURCE_COMPUTED
            )
            if result.cache_hit:
                self.counters["engine_cache_hits"] += 1
            else:
                self.counters["computed"] += 1
            self.rows.put(key, row)
        pending = self.inflight.pop(key, None)
        if pending is not None and not pending.done():
            pending.set_result(row)

    # -- introspection ---------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def job_summaries(self, limit: int = 100) -> List[dict]:
        recent = self._job_order[-limit:]
        return [self.jobs[jid].summary() for jid in reversed(recent)]

    def metrics(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "started_unix": self.started_unix,
            "jobs": {
                "submitted": self.counters["jobs_submitted"],
                "completed": self.counters["jobs_completed"],
                "failed": self.counters["jobs_failed"],
                "rejected": self.counters["jobs_rejected"],
                "active": len(self._active),
                "kept": len(self.jobs),
            },
            "requests": {
                "resolved": self.counters["requests_resolved"],
                "computed": self.counters["computed"],
                "engine_cache_hits": self.counters["engine_cache_hits"],
                "lru_hits": self.counters["lru_hits"],
                "coalesced": self.counters["coalesced"],
                "in_flight": len(self.inflight),
                "errors": self.counters["errors"],
            },
            "rows_streamed": self.counters["rows_streamed"],
            "row_cache": self.rows.stats(),
            "engine": {
                "jobs": self.engine.jobs,
                "jobs_requested": str(self.engine.jobs_requested),
                "cache_enabled": self.engine.cache_enabled,
                "memory_cache": self.engine.memory_stats(),
            },
        }

    # -- event streaming --------------------------------------------------

    def subscribe(self, job: Job) -> Tuple[asyncio.Queue, object]:
        """An asyncio queue fed the job's event history + live events.

        Returns (queue, sink); detach the sink via :meth:`unsubscribe`
        when the client goes away.  All emits happen on the loop
        thread, so feeding the queue needs no locking.
        """
        queue: asyncio.Queue = asyncio.Queue()

        class _QueueSink:
            @staticmethod
            def append(event) -> None:
                queue.put_nowait(event_to_json(event))

        sink = _QueueSink()
        job.events.attach(sink, replay=True)
        return queue, sink

    def unsubscribe(self, job: Job, sink: object) -> None:
        job.events.detach(sink)

    # -- shutdown ---------------------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs, let active ones finish, release pools."""
        self._draining = True
        pending = [task for task in self._active.values() if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._engine_exec, self.engine.drain)
        self._prep.shutdown(wait=False)
        self._engine_exec.shutdown(wait=True)
