"""A stdlib synchronous client for the sweep service.

Used by tests, the CI smoke job, and anyone who prefers Python over
``curl``.  One :class:`ServiceClient` wraps one keep-alive
``http.client`` connection; it is not thread-safe (use one per
thread).  The asyncio load generator (:mod:`repro.service.loadgen`)
has its own connection handling for high fan-out.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional, Union

from repro.api import SweepSpec


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: object) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing --------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # A dead keep-alive connection (daemon restarted, idle
                # timeout): reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        decoded = json.loads(data) if data else None
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def jobs(self, limit: int = 100) -> List[dict]:
        return self._request("GET", f"/jobs?limit={limit}")["jobs"]

    def submit(
        self, spec: Union[SweepSpec, dict], wait: bool = False
    ) -> dict:
        """Submit a job; with ``wait`` the full result, else the 202 ack."""
        raw = spec.to_json() if isinstance(spec, SweepSpec) else spec
        suffix = "?wait=1" if wait else ""
        return self._request("POST", f"/jobs{suffix}", body={"spec": raw})

    def result(self, job_id: str, wait: bool = True) -> dict:
        verb = "/wait" if wait else ""
        return self._request("GET", f"/jobs/{job_id}{verb}")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def stream_events(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Yield the job's NDJSON events as dicts (blocks until done).

        Streams over a dedicated connection so the client's keep-alive
        connection stays usable for other calls mid-stream.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(
                    response.status, json.loads(response.read() or b"null")
                )
            # http.client undoes the chunked framing; read line-wise.
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()
