"""Asyncio load generator for the sweep service (``leaps-bench loadgen``).

Opens ``concurrency`` keep-alive connections and drives one
submit-and-wait job per connection at a time, so the *service-side*
in-flight job count equals the concurrency level — "10k concurrent
requests" means ten thousand jobs genuinely open at once, not a
sequential loop.  Per-job latency is measured client-side from the
first request byte to the parsed response; the report carries
p50/p99/mean latency, jobs/s and rows/s, which is what
``benchmarks/service_bench.py`` records into ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional

from repro.api import SweepSpec


class LoadgenError(RuntimeError):
    pass


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


async def _read_response(reader: asyncio.StreamReader) -> dict:
    """Parse one Content-Length JSON response off a keep-alive stream."""
    status_line = await reader.readline()
    if not status_line:
        raise LoadgenError("connection closed mid-response")
    parts = status_line.decode("latin-1").split()
    status = int(parts[1])
    length = None
    while True:
        line = await reader.readline()
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, _, value = text.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    if length is None:
        raise LoadgenError("response without Content-Length")
    body = await reader.readexactly(length)
    payload = json.loads(body)
    if status >= 400:
        raise LoadgenError(f"HTTP {status}: {payload}")
    return payload


async def _connect(host: str, port: int, attempts: int = 20):
    """Open a connection, backing off briefly when the burst outruns
    the daemon's accept loop."""
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(0.05 * (attempt + 1))


async def run_load(
    host: str,
    port: int,
    spec: SweepSpec,
    concurrency: int = 100,
    total_jobs: Optional[int] = None,
    duration: Optional[float] = None,
) -> Dict[str, object]:
    """Drive the service; returns the latency/throughput report.

    Exactly one of ``total_jobs``/``duration`` bounds the run (both
    set: whichever stops first; neither: one job per connection).
    """
    if total_jobs is None and duration is None:
        total_jobs = concurrency
    body = json.dumps({"spec": spec.to_json()}).encode()
    head = (
        f"POST /jobs?wait=1 HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1")
    request_bytes = head + body

    issued = 0
    deadline: Optional[float] = None
    latencies: List[float] = []
    rows = 0
    errors = 0
    failures: List[str] = []

    def want_more() -> bool:
        nonlocal issued
        if deadline is not None and time.monotonic() >= deadline:
            return False
        if total_jobs is not None and issued >= total_jobs:
            return False
        issued += 1
        return True

    async def worker() -> None:
        nonlocal rows, errors
        reader, writer = await _connect(host, port)
        try:
            while want_more():
                started = time.monotonic()
                writer.write(request_bytes)
                await writer.drain()
                try:
                    result = await _read_response(reader)
                except LoadgenError as exc:
                    errors += 1
                    if len(failures) < 5:
                        failures.append(str(exc))
                    continue
                latencies.append(time.monotonic() - started)
                rows += result.get("rows", 0)
                errors += result.get("errors", 0)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    wall_started = time.monotonic()
    if duration is not None:
        deadline = wall_started + duration
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    wall = time.monotonic() - wall_started

    latencies.sort()
    return {
        "host": f"{host}:{port}",
        "spec_digest": spec.digest(),
        "concurrency": concurrency,
        "jobs": len(latencies),
        "rows": rows,
        "errors": errors,
        "failures": failures,
        "wall_s": round(wall, 4),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p90_ms": round(percentile(latencies, 0.90) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "max_ms": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        "mean_ms": round(
            (sum(latencies) / len(latencies) * 1e3) if latencies else 0.0, 3
        ),
        "jobs_per_s": round(len(latencies) / wall, 2) if wall else 0.0,
        "rows_per_s": round(rows / wall, 2) if wall else 0.0,
    }
