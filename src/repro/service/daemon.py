"""The sweep daemon: HTTP routes over the job manager.

Endpoints (all JSON; streams are NDJSON):

========================  ==================================================
``GET  /healthz``          liveness + uptime
``GET  /metrics``          job/request/cache counters (LRU hit/miss/evict,
                           in-flight coalescing, engine memory-cache stats)
``POST /jobs``             submit a SweepSpec job; body is either the spec
                           itself or ``{"spec": {...}}``.  Returns 202 with
                           the job id; ``?wait=1`` blocks and returns the
                           full result; ``?stream=1`` streams the job's
                           row/progress events as NDJSON instead.
``GET  /jobs``             recent job summaries
``GET  /jobs/<id>``        one job (rows included once done)
``GET  /jobs/<id>/wait``   block until done, return the full result
``GET  /jobs/<id>/events`` NDJSON event stream (history + live)
``POST /shutdown``         begin graceful shutdown (drain, then exit)
========================  ==================================================

The server is a single asyncio loop; measurement work happens on the
job manager's executor threads and the engine's process pool, so the
loop only ever parses small JSON bodies and shuffles rows — which is
what lets one daemon hold thousands of concurrent connections.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.api import SweepSpec
from repro.core.engine import MeasurementEngine
from repro.service.httpd import (
    HTTPRequest,
    NDJSONStream,
    ProtocolError,
    read_request,
    send_error,
    send_json,
)
from repro.service.jobs import Job, JobManager

#: Listen backlog: the load generator opens its whole connection pool
#: at once, so the default of ~100 would refuse bursts.
_BACKLOG = 4096


class SweepService:
    """One daemon instance: a listener plus a :class:`JobManager`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        engine: Optional[MeasurementEngine] = None,
        row_cache_capacity: int = 65536,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(
            engine=engine, row_cache_capacity=row_cache_capacity
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=_BACKLOG
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown` (or a signal handler) fires,
        then drain gracefully."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self, drain_timeout: Optional[float] = 60.0) -> None:
        """Stop accepting, finish in-flight jobs, release the pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.drain(timeout=drain_timeout)

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    await send_error(writer, exc.status, str(exc), False)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                keep_alive = await self._route(request, writer)
                if not keep_alive or not request.keep_alive:
                    break
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(
        self, request: HTTPRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch one request; returns whether to keep the connection."""
        method, path = request.method, request.path.rstrip("/") or "/"

        if path == "/healthz" and method == "GET":
            await send_json(writer, 200, {
                "status": "ok",
                "uptime_s": self.manager.metrics()["uptime_s"],
            })
            return True

        if path == "/metrics" and method == "GET":
            await send_json(writer, 200, self.manager.metrics())
            return True

        if path == "/jobs" and method == "POST":
            return await self._submit(request, writer)

        if path == "/jobs" and method == "GET":
            limit = int(request.query.get("limit", "100"))
            await send_json(
                writer, 200, {"jobs": self.manager.job_summaries(limit)}
            )
            return True

        if path.startswith("/jobs/"):
            return await self._job_route(request, writer, path)

        if path == "/shutdown" and method == "POST":
            await send_json(writer, 200, {"status": "shutting down"}, False)
            self.request_shutdown()
            return False

        await send_error(writer, 404, f"no route for {method} {path}")
        return True

    # -- job endpoints ---------------------------------------------------

    def _parse_spec(self, request: HTTPRequest) -> SweepSpec:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
        raw = payload.get("spec", payload)
        if not isinstance(raw, dict):
            raise ValueError("'spec' must be a JSON object")
        return SweepSpec.from_json(raw)

    async def _submit(
        self, request: HTTPRequest, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            spec = self._parse_spec(request)
            job = self.manager.submit(spec)
        except (TypeError, ValueError, ProtocolError, RuntimeError) as exc:
            self.manager.counters["jobs_rejected"] += 1
            status = exc.status if isinstance(exc, ProtocolError) else 400
            await send_error(writer, status, str(exc))
            return True

        if request.flag("stream"):
            return await self._stream_events(job, writer)
        if request.flag("wait"):
            await job.done.wait()
            await send_json(writer, 200, job.result())
            return True
        await send_json(writer, 202, {
            "job": job.id,
            "digest": job.digest,
            "state": job.state,
            "links": {
                "self": f"/jobs/{job.id}",
                "wait": f"/jobs/{job.id}/wait",
                "events": f"/jobs/{job.id}/events",
            },
        })
        return True

    async def _job_route(
        self, request: HTTPRequest, writer: asyncio.StreamWriter, path: str
    ) -> bool:
        parts = path.split("/")  # ['', 'jobs', '<id>', maybe-verb]
        job = self.manager.get(parts[2])
        if job is None:
            await send_error(writer, 404, f"unknown job {parts[2]!r}")
            return True
        verb = parts[3] if len(parts) > 3 else ""

        if request.method != "GET":
            await send_error(writer, 405, "job endpoints are GET-only")
            return True
        if verb == "":
            payload = job.result() if job.state != "running" else job.summary()
            await send_json(writer, 200, payload)
            return True
        if verb == "wait":
            await job.done.wait()
            await send_json(writer, 200, job.result())
            return True
        if verb == "events":
            return await self._stream_events(job, writer)
        await send_error(writer, 404, f"unknown job endpoint {verb!r}")
        return True

    async def _stream_events(
        self, job: Job, writer: asyncio.StreamWriter
    ) -> bool:
        """NDJSON: replayed history, then live events until the job ends."""
        queue, sink = self.manager.subscribe(job)
        stream = NDJSONStream(writer)
        await stream.start()
        try:
            while True:
                # The done-event is always emitted before job.done is
                # set, so draining until we see a terminal event never
                # hangs; the extra timeout covers a job that terminated
                # between replay and attach.
                if job.done.is_set() and queue.empty():
                    break
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=1.0)
                except asyncio.TimeoutError:
                    continue
                await stream.send(event)
                if event.get("name") in ("job.done", "job.error"):
                    break
            await stream.end()
        finally:
            self.manager.unsubscribe(job, sink)
        return True


async def run_service(
    host: str,
    port: int,
    engine: Optional[MeasurementEngine] = None,
    row_cache_capacity: int = 65536,
    ready=None,
    install_signal_handlers: bool = True,
) -> None:
    """Start a service and serve until shutdown; the CLI entry point.

    ``ready`` is called with the bound (host, port) once listening —
    the CLI prints the address, tests capture the ephemeral port.
    """
    import signal

    service = SweepService(
        host=host, port=port, engine=engine,
        row_cache_capacity=row_cache_capacity,
    )
    bound = await service.start()
    if ready is not None:
        ready(bound)
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platform without signal support
    await service.serve_until_shutdown()
