"""A minimal HTTP/1.1 layer over ``asyncio`` streams (stdlib only).

The service deliberately does not depend on any web framework: the
container bakes in numpy + pytest and nothing else, and the protocol
surface the daemon needs is tiny — JSON request bodies, JSON
responses, keep-alive, and chunked NDJSON event streams.  This module
is that surface and nothing more.

Limits are deliberate: request bodies are capped (a SweepSpec is a few
hundred bytes; a 1 MiB body is a client bug), as are header count and
line length, so a misbehaving client cannot balloon the daemon.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Protocol limits (defense against malformed/hostile clients).
MAX_LINE = 8192
MAX_HEADERS = 64
MAX_BODY = 1 << 20


class ProtocolError(ValueError):
    """The peer sent something that is not acceptable HTTP/1.1."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    #: Path without the query string (e.g. ``/jobs/j00000001``).
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> object:
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(400, f"request body is not JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def flag(self, name: str) -> bool:
        """Truthiness of a query parameter (``?wait=1``)."""
        return self.query.get(name, "").lower() in ("1", "true", "yes", "on")


async def read_request(reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise ProtocolError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request line too long")
    if len(line) > MAX_LINE:
        raise ProtocolError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readuntil(b"\n")
        if len(line) > MAX_LINE:
            raise ProtocolError(431, "header line too long")
        text = line.decode("latin-1").strip()
        if not text:
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(431, "too many headers")
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length: {length!r}")
        if size < 0 or size > MAX_BODY:
            raise ProtocolError(413, f"body of {size} bytes exceeds cap")
        body = await reader.readexactly(size)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError(411, "chunked request bodies are not supported")

    url = urlsplit(target)
    query = dict(parse_qsl(url.query, keep_blank_values=True))
    return HTTPRequest(
        method=method.upper(), path=url.path or "/", query=query,
        headers=headers, body=body,
    )


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _head(
    status: int, content_type: str, extra: Dict[str, str], keep_alive: bool
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines += [f"{name}: {value}" for name, value in extra.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool = True,
) -> None:
    """One complete JSON response (Content-Length framing)."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(
        _head(
            status, "application/json",
            {"Content-Length": str(len(body))}, keep_alive,
        )
    )
    writer.write(body)
    await writer.drain()


class NDJSONStream:
    """A chunked ``application/x-ndjson`` response, one JSON per line.

    Chunked framing keeps the connection reusable after the stream
    ends — the load generator holds one connection per worker and
    must not reconnect per job.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.lines = 0

    async def start(self, status: int = 200, keep_alive: bool = True) -> None:
        self._writer.write(
            _head(
                status, "application/x-ndjson",
                {"Transfer-Encoding": "chunked"}, keep_alive,
            )
        )
        await self._writer.drain()

    async def send(self, payload: object) -> None:
        line = (json.dumps(payload) + "\n").encode("utf-8")
        self._writer.write(f"{len(line):x}\r\n".encode("latin-1"))
        self._writer.write(line + b"\r\n")
        self.lines += 1
        await self._writer.drain()

    async def end(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


@dataclass
class ErrorBody:
    """Uniform error payload shape (``{"error": ..., "status": ...}``)."""

    status: int
    error: str
    detail: Dict[str, object] = field(default_factory=dict)

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {"status": self.status, "error": self.error}
        out.update(self.detail)
        return out


async def send_error(
    writer: asyncio.StreamWriter,
    status: int,
    message: str,
    keep_alive: bool = True,
) -> None:
    await send_json(
        writer, status, ErrorBody(status, message).payload(), keep_alive
    )
