"""Virtual ISA cost models for the three platforms the paper tests.

Each model prices the abstract machine operations the instruction
selector emits (:mod:`repro.compiler.isel`) in *effective cycles* —
reciprocal throughput blended with typical dependency stalls for
loop-heavy numeric code.  Only relative magnitudes matter: every
experiment reports ratios against the native-Clang baseline compiled
with the same model.
"""

from repro.isa.model import IsaModel, OPK
from repro.isa.x86_64 import X86_64
from repro.isa.armv8 import ARMV8
from repro.isa.riscv64 import RISCV64

ISAS: dict[str, IsaModel] = {
    "x86_64": X86_64,
    "armv8": ARMV8,
    "riscv64": RISCV64,
}


def isa_named(name: str) -> IsaModel:
    try:
        return ISAS[name]
    except KeyError:
        raise ValueError(f"unknown ISA {name!r}; choose from {sorted(ISAS)}") from None


__all__ = ["IsaModel", "OPK", "X86_64", "ARMV8", "RISCV64", "ISAS", "isa_named"]
