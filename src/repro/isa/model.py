"""The machine-op vocabulary and ISA cost-model schema."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class OPK:
    """Machine-op kinds emitted by instruction selection.

    A deliberately small vocabulary: enough to distinguish the code
    shapes the bounds-checking strategies produce without simulating a
    pipeline.
    """

    ALU = "alu"              # int add/sub/logic/compare-into-reg
    MUL = "mul"              # int multiply
    DIV = "div"              # int divide (blended latency)
    SHIFT = "shift"
    FADD = "fadd"            # float add/sub (dependency-blended)
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FCMP = "fcmp"
    CONST = "const"          # materialise an immediate
    LOAD = "load"            # L1-blended load
    STORE = "store"
    CMP = "cmp"              # compare feeding a branch
    BRANCH = "branch"        # well-predicted conditional branch
    CMP_BRANCH = "cmp_branch"  # fused compare+branch (x86 macro-fusion)
    CMOV = "cmov"            # conditional select
    CALL = "call"            # call+ret pair overhead
    CALL_IND = "call_ind"    # indirect call via function table
    CONVERT = "convert"      # int<->float moves/conversions
    MOVE = "move"            # register move (spill-free shuffle)
    SPILL = "spill"          # one stack spill or reload
    NOP = "nop"              # folded away entirely
    TAGCHECK = "tagcheck"    # hardware tag compare riding a load/store
                             # (Arm MTE synchronous check)


@dataclass(frozen=True)
class IsaModel:
    """Cost model for one CPU."""

    name: str
    #: effective cycles per op kind.
    costs: Dict[str, float]
    #: Can loads/stores fold `base + index*scale + disp` addressing?
    addressing_fusion: bool
    #: Does the ISA have a conditional-select instruction (cmov/csel)?
    has_select: bool
    #: General-purpose registers available to the allocator.
    int_regs: int
    float_regs: int
    #: Interpreter dispatch cost (cycles per bytecode op) for the
    #: threaded-interpreter (Wasm3) model on this CPU.
    interp_dispatch: float
    #: Does the CPU implement a memory-tagging extension (Arm MTE)?
    #: Strategies with a tag granule are only runnable where this is
    #: True; everywhere else they must be rejected up-front.
    memory_tagging: bool = False
    #: Kernel-crossing cost in cycles: user→kernel transition, register
    #: save/restore, and return, beyond the kernel-side work itself.
    #: Wide out-of-order cores pipeline the transition better than
    #: simple in-order ones, so the WASI scenario family's syscall tax
    #: is ISA-dependent the same way check cost is.
    syscall_entry_cycles: float = 180.0

    def cost(self, kind: str) -> float:
        try:
            return self.costs[kind]
        except KeyError:
            raise KeyError(f"ISA {self.name} has no cost for op kind {kind!r}") from None

    def supports_strategy(self, strategy) -> bool:
        """Whether this CPU can run ``strategy`` at all.

        The only hardware-gated axis today is memory tagging: an MTE
        strategy needs the tagging extension; everything else is pure
        software and runs anywhere.
        """
        return self.memory_tagging or not strategy.requires_memory_tagging
