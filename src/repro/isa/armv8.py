"""Cost model for the Cavium ThunderX2 CN9980 (§3.4 platform 2).

A wide but older out-of-order Armv8 core: slightly weaker per-cycle
ALU/FP throughput than Cascade Lake, no compare/branch macro-fusion,
``csel`` available for clamps.  Relative bounds-check costs stay within
a couple of points of x86-64, matching the paper's key result that the
strategy ranking is ISA-independent.
"""

from repro.isa.model import IsaModel, OPK

ARMV8 = IsaModel(
    name="armv8",
    costs={
        OPK.ALU: 0.35,
        OPK.MUL: 1.1,
        OPK.DIV: 18.0,
        OPK.SHIFT: 0.35,
        OPK.FADD: 1.3,
        OPK.FMUL: 1.3,
        OPK.FDIV: 12.0,
        OPK.FSQRT: 14.0,
        OPK.FCMP: 0.9,
        OPK.CONST: 0.12,
        OPK.LOAD: 1.15,
        OPK.STORE: 1.0,
        OPK.CMP: 0.35,
        OPK.BRANCH: 0.5,
        # No macro-fusion: cmp+b.cc are two issued ops.
        OPK.CMP_BRANCH: 0.85,
        OPK.CMOV: 1.45,  # csel, same dependency-chain position as cmov
        # MTE synchronous tag check: the compare happens in the
        # load/store pipe against the allocation tag, so the marginal
        # cost is a fraction of a cycle — cheaper than any software
        # check, dearer than no check at all (CAGE §5).
        OPK.TAGCHECK: 0.25,
        OPK.CALL: 4.5,
        OPK.CALL_IND: 8.0,
        OPK.CONVERT: 1.4,
        OPK.MOVE: 0.18,
        OPK.SPILL: 1.6,
        OPK.NOP: 0.0,
    },
    addressing_fusion=True,  # reg + reg<<scale addressing exists
    has_select=True,
    int_regs=28,
    float_regs=32,
    interp_dispatch=2.1,
    # The one ISA in the matrix with a memory-tagging extension; the
    # 'mte' strategy is Arm-only and must be rejected elsewhere.
    memory_tagging=True,
    # svc + eret on the older ThunderX2 core: a bit dearer than x86's
    # syscall/sysret fast path.
    syscall_entry_cycles=260.0,
)
