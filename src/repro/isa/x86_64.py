"""Cost model for the Xeon Gold 6230R (Cascade Lake, §3.4 platform 1).

Effective cycles blend reciprocal throughput with the dependency
stalls typical of PolyBench-style loop nests on a wide out-of-order
core.  Macro-fusion makes a compare+branch bounds check nearly free
when well predicted, while a clamp (cmp+cmov) inserts itself into the
address dependency chain — this asymmetry is what makes ``trap``
cheaper than ``clamp`` in Figure 2.
"""

from repro.isa.model import IsaModel, OPK

X86_64 = IsaModel(
    name="x86_64",
    costs={
        OPK.ALU: 0.30,
        OPK.MUL: 0.9,
        OPK.DIV: 16.0,
        OPK.SHIFT: 0.35,
        OPK.FADD: 1.1,
        OPK.FMUL: 1.1,
        OPK.FDIV: 10.0,
        OPK.FSQRT: 11.0,
        OPK.FCMP: 0.8,
        OPK.CONST: 0.1,
        OPK.LOAD: 1.0,
        OPK.STORE: 0.9,
        OPK.CMP: 0.30,
        OPK.BRANCH: 0.45,
        # Macro-fused cmp+jcc: one µop, predicted not-taken.
        OPK.CMP_BRANCH: 0.55,
        # cmov adds ~1 cycle of latency on the address dependency chain.
        OPK.CMOV: 1.35,
        OPK.CALL: 4.0,
        OPK.CALL_IND: 7.0,
        OPK.CONVERT: 1.2,
        OPK.MOVE: 0.15,
        OPK.SPILL: 1.4,
        OPK.NOP: 0.0,
    },
    addressing_fusion=True,
    has_select=True,
    int_regs=14,   # 16 minus stack/frame pointers
    float_regs=16,
    # Threaded interpreter: indirect-branch dispatch plus operand
    # shuffling per bytecode op (per *naive* op — see timing.py).
    interp_dispatch=1.8,
    # syscall/sysret with mitigations off on a wide OoO core.
    syscall_entry_cycles=180.0,
)
