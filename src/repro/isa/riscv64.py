"""Cost model for the XuanTie C906 (Nezha D1, §3.4 platform 3).

A single-issue in-order RV64GC core: every instruction costs at least
a cycle, loads see real latency, and there is no conditional-move
instruction — a clamp lowers to a short branch-free sequence of three
ALU ops (sltu/neg/and), keeping the *relative* strategy ranking close
to the other ISAs (the paper's cross-ISA finding) while the absolute
cycle counts are much higher.
"""

from repro.isa.model import IsaModel, OPK

RISCV64 = IsaModel(
    name="riscv64",
    costs={
        OPK.ALU: 1.0,
        OPK.MUL: 3.0,
        OPK.DIV: 35.0,
        OPK.SHIFT: 1.0,
        OPK.FADD: 4.0,
        OPK.FMUL: 4.5,
        OPK.FDIV: 30.0,
        OPK.FSQRT: 35.0,
        OPK.FCMP: 2.0,
        OPK.CONST: 0.6,
        OPK.LOAD: 3.0,
        OPK.STORE: 2.0,
        OPK.CMP: 1.0,
        OPK.BRANCH: 1.8,
        OPK.CMP_BRANCH: 2.2,
        # No cmov: sltu + neg + and (branch-free clamp idiom).
        OPK.CMOV: 3.0,
        OPK.CALL: 8.0,
        OPK.CALL_IND: 14.0,
        OPK.CONVERT: 4.0,
        OPK.MOVE: 1.0,
        OPK.SPILL: 4.0,
        OPK.NOP: 0.0,
    },
    addressing_fusion=False,  # only reg+imm12 addressing: index adds cost
    has_select=False,
    int_regs=27,
    float_regs=32,
    interp_dispatch=9.0,
    # ecall/sret on a single-issue in-order core: full pipeline drain.
    syscall_entry_cycles=320.0,
)
