"""Discrete-event simulation engine.

This package provides the simulation substrate used by the reproduction:
a deterministic event loop (:mod:`repro.sim.engine`), generator-based
processes, and synchronisation primitives (:mod:`repro.sim.resources`)
modelled on the Linux kernel primitives that matter for the paper —
most importantly a writer-preferring read/write semaphore that behaves
like ``mmap_lock``.

The engine is deliberately small and fully deterministic: given the same
inputs it produces identical event orderings, which keeps every
experiment in the benchmark harness reproducible bit-for-bit.
"""

from repro.sim.engine import Engine, Event, Delay, Process, SimError
from repro.sim.resources import Mutex, RWLock, Semaphore, Gate
from repro.sim.rng import RngStreams

__all__ = [
    "Engine",
    "Event",
    "Delay",
    "Process",
    "SimError",
    "Mutex",
    "RWLock",
    "Semaphore",
    "Gate",
    "RngStreams",
]
