"""Deterministic discrete-event simulation core.

The engine keeps a priority queue of timestamped callbacks and advances a
simulated clock.  Concurrency is expressed with *processes*: plain Python
generators that ``yield`` either

* a :class:`Delay` — suspend the process for a simulated duration, or
* an :class:`Event` — suspend until the event is triggered, receiving the
  event's value as the result of the ``yield`` expression, or
* another :class:`Process` — suspend until that process terminates.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so runs
are reproducible regardless of hash seeds or dict ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.trace.events import SIM_EXIT, SIM_SPAWN
from repro.trace.tracer import TRACE


class SimError(RuntimeError):
    """Raised for misuse of the simulation engine."""


@dataclass(frozen=True)
class Delay:
    """A request to suspend the yielding process for ``duration`` time."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimError(f"negative delay: {self.duration}")


class Event:
    """A one-shot waitable value.

    Processes yield an event to suspend until :meth:`succeed` (or
    :meth:`fail`) is called.  Multiple processes may wait on the same
    event; they are resumed in the order they started waiting.
    """

    __slots__ = ("engine", "_value", "_error", "triggered", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Deliver on the next tick to preserve run-to-completion
            # semantics for the caller.
            self.engine.call_at(self.engine.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.call_at(self.engine.now, lambda cb=callback: cb(self))
        return self

    def fail(self, error: BaseException) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.call_at(self.engine.now, lambda cb=callback: cb(self))
        return self

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A generator-based simulated process.

    The generator may yield :class:`Delay`, :class:`Event` or another
    :class:`Process`.  When the generator returns, :attr:`done_event`
    triggers with the return value, so processes compose: a parent can
    ``yield child`` to join on it.
    """

    __slots__ = ("engine", "body", "name", "done_event", "_alive")

    def __init__(self, engine: "Engine", body: ProcessBody, name: str = "") -> None:
        if not hasattr(body, "send"):
            raise SimError(f"process body must be a generator, got {type(body)!r}")
        self.engine = engine
        self.body = body
        self.name = name or getattr(body, "__name__", "process")
        self.done_event = Event(engine, name=f"{self.name}.done")
        self._alive = True
        if TRACE.enabled:
            TRACE.emit(engine.now, SIM_SPAWN, thread=self.name)
        engine.call_at(engine.now, lambda: self._step(None, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def _step(self, value: Any, error: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if error is not None:
                yielded = self.body.throw(error)
            else:
                yielded = self.body.send(value)
        except StopIteration as stop:
            self._alive = False
            if TRACE.enabled:
                TRACE.emit(self.engine.now, SIM_EXIT, thread=self.name)
            self.done_event.succeed(stop.value)
            return
        except BaseException as exc:  # surface process crashes loudly
            self._alive = False
            self.done_event.fail(exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            self.engine.call_at(self.engine.now + yielded.duration, lambda: self._step(None, None))
        elif isinstance(yielded, Event):
            yielded.add_callback(self._on_event)
        elif isinstance(yielded, Process):
            yielded.done_event.add_callback(self._on_event)
        else:
            self._step(
                None,
                SimError(f"process {self.name!r} yielded unsupported value {yielded!r}"),
            )

    def _on_event(self, event: Event) -> None:
        if event._error is not None:
            self._step(None, event._error)
        else:
            self._step(event.value, None)

    def interrupt(self, error: Optional[BaseException] = None) -> None:
        """Kill the process without running it further."""
        self._alive = False
        if not self.done_event.triggered:
            self.done_event.fail(error or SimError(f"process {self.name!r} interrupted"))


class Engine:
    """The simulation event loop."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self.now:
            raise SimError(f"cannot schedule in the past: {when} < {self.now}")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self.now + delay, callback)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` time units from now."""
        event = Event(self, name=f"timeout({delay})")
        self.call_after(delay, lambda: event.succeed(value))
        return event

    def process(self, body: ProcessBody, name: str = "") -> Process:
        return Process(self, body, name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered."""
        events = list(events)
        gather = Event(self, name="all_of")
        remaining = len(events)
        if remaining == 0:
            gather.succeed([])
            return gather
        results: list[Any] = [None] * remaining
        state = {"left": remaining}

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(event: Event) -> None:
                results[index] = event.result()
                state["left"] -= 1
                if state["left"] == 0:
                    gather.succeed(results)

            return cb

        for index, event in enumerate(events):
            event.add_callback(make_cb(index))
        return gather

    def run(self, until: Optional[float] = None) -> float:
        """Run queued events; returns the final simulated time.

        With ``until`` set, stops once the next event lies beyond it and
        fast-forwards the clock to ``until``.
        """
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = when
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(self, body: ProcessBody, name: str = "") -> Any:
        """Convenience: run a single process to completion and return its value."""
        process = self.process(body, name)
        self.run()
        if not process.done_event.triggered:
            raise SimError(f"process {process.name!r} deadlocked (no more events)")
        return process.done_event.result()
