"""Deterministic named random-number streams.

Experiments need small amounts of randomness (e.g. jitter on V8 garbage
collection intervals) without sacrificing reproducibility.  Each consumer
asks for a stream by name; streams are independent and derived only from
the root seed and the stream name, so adding a new consumer never
perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]
