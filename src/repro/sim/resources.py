"""Synchronisation primitives for simulated processes.

The primitive that matters most for this reproduction is :class:`RWLock`,
modelled on the Linux ``mmap_lock`` (a writer-preferring read/write
semaphore, ``down_read``/``down_write``).  The paper's multithreaded
scaling collapse under the ``mprotect`` bounds-checking strategy comes
from writers on this lock serialising all other memory-management
activity in a process; reproducing the *queueing discipline* is therefore
load-bearing:

* many readers may hold the lock simultaneously;
* a waiting writer blocks **new** readers from entering (writer
  preference, as implemented by the kernel's rwsem handoff logic), which
  is exactly what makes frequent small ``mprotect`` calls so damaging.

All primitives record wait/hold statistics so experiments can report
contention directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generator, Optional

from repro.sim.engine import Delay, Engine, Event, SimError
from repro.trace.events import LOCK_ACQUIRE, LOCK_RELEASE
from repro.trace.tracer import TRACE


@dataclass
class LockStats:
    """Contention statistics accumulated by a primitive."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_time: float = 0.0
    total_hold_time: float = 0.0
    max_wait_time: float = 0.0
    _hold_started: dict = field(default_factory=dict, repr=False)

    def note_wait(self, waited: float) -> None:
        self.acquisitions += 1
        if waited > 0:
            self.contended_acquisitions += 1
            self.total_wait_time += waited
            if waited > self.max_wait_time:
                self.max_wait_time = waited


class Mutex:
    """A simple FIFO mutual-exclusion lock."""

    def __init__(self, engine: Engine, name: str = "mutex") -> None:
        self.engine = engine
        self.name = name
        self.locked = False
        self._waiters: Deque[Event] = deque()
        self.stats = LockStats()
        self._acquired_at: float = 0.0

    def acquire(self) -> Generator:
        """Process-style acquire; use as ``yield from mutex.acquire()``."""
        start = self.engine.now
        if self.locked:
            event = self.engine.event(f"{self.name}.wait")
            self._waiters.append(event)
            yield event
            # Ownership was handed off in release(): ``locked`` never
            # dropped, so no same-timestamp acquirer could slip in.
        else:
            self.locked = True
        self._acquired_at = self.engine.now
        waited = self.engine.now - start
        self.stats.note_wait(waited)
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_ACQUIRE,
                lock=self.name, mode="mutex", wait=waited, contended=waited > 0,
            )

    def release(self) -> None:
        if not self.locked:
            raise SimError(f"release of unlocked mutex {self.name!r}")
        hold = self.engine.now - self._acquired_at
        self.stats.total_hold_time += hold
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_RELEASE,
                lock=self.name, mode="mutex", hold=hold,
            )
        if self._waiters:
            # Hand off: the lock stays logically held; the next waiter
            # resumes and immediately owns it.
            self._waiters.popleft().succeed()
        else:
            self.locked = False


class RWLock:
    """Writer-preferring read/write semaphore (``mmap_lock`` model).

    Fairness discipline: requests queue in FIFO order, but once any
    writer is waiting, newly arriving readers queue behind it instead of
    joining the current reader group.  Consecutive readers at the head of
    the queue are granted as a batch.
    """

    READ = "read"
    WRITE = "write"

    def __init__(self, engine: Engine, name: str = "rwlock") -> None:
        self.engine = engine
        self.name = name
        self.active_readers = 0
        self.active_writer = False
        self._queue: Deque[tuple[str, Event]] = deque()
        self.read_stats = LockStats()
        self.write_stats = LockStats()
        self._writer_acquired_at = 0.0
        self._reader_acquired_at: dict[int, float] = {}
        self._next_reader_token = 0

    # -- acquisition ---------------------------------------------------
    def acquire_read(self) -> Generator:
        """``yield from`` style; returns a token to pass to release_read."""
        start = self.engine.now
        if self.active_writer or self._writer_waiting():
            event = self.engine.event(f"{self.name}.rd.wait")
            self._queue.append((self.READ, event))
            yield event
            # _wake_next counted this reader as active at wake time
            # (hand-off), so a same-timestamp writer cannot slip in
            # between the wake and this resumption.
        else:
            self.active_readers += 1
        waited = self.engine.now - start
        self.read_stats.note_wait(waited)
        self._next_reader_token += 1
        token = self._next_reader_token
        self._reader_acquired_at[token] = self.engine.now
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_ACQUIRE,
                lock=self.name, mode="read", wait=waited, contended=waited > 0,
            )
        return token

    def acquire_write(self) -> Generator:
        start = self.engine.now
        if self.active_writer or self.active_readers or self._queue:
            event = self.engine.event(f"{self.name}.wr.wait")
            self._queue.append((self.WRITE, event))
            yield event
            # Ownership was assigned in _wake_next (hand-off), so no
            # same-timestamp reader or writer can sneak past the queue.
        else:
            self.active_writer = True
        waited = self.engine.now - start
        self.write_stats.note_wait(waited)
        self._writer_acquired_at = self.engine.now
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_ACQUIRE,
                lock=self.name, mode="write", wait=waited, contended=waited > 0,
            )

    # -- release -------------------------------------------------------
    def release_read(self, token: int) -> None:
        if self.active_readers <= 0:
            raise SimError(f"release_read on {self.name!r} with no active readers")
        self.active_readers -= 1
        acquired_at = self._reader_acquired_at.pop(token, self.engine.now)
        hold = self.engine.now - acquired_at
        self.read_stats.total_hold_time += hold
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_RELEASE,
                lock=self.name, mode="read", hold=hold,
            )
        if self.active_readers == 0:
            self._wake_next()

    def release_write(self) -> None:
        if not self.active_writer:
            raise SimError(f"release_write on {self.name!r} with no active writer")
        self.active_writer = False
        hold = self.engine.now - self._writer_acquired_at
        self.write_stats.total_hold_time += hold
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, LOCK_RELEASE,
                lock=self.name, mode="write", hold=hold,
            )
        self._wake_next()

    # -- internals -----------------------------------------------------
    def _writer_waiting(self) -> bool:
        return any(kind == self.WRITE for kind, _ in self._queue)

    def _wake_next(self) -> None:
        if not self._queue or self.active_writer or self.active_readers:
            return
        # Grants transfer ownership *now*, before the woken process
        # resumes: otherwise a same-timestamp fast-path acquirer could
        # observe the lock free and overlap the woken owner (a race the
        # trace property suite caught).
        kind, _ = self._queue[0]
        if kind == self.WRITE:
            _, event = self._queue.popleft()
            self.active_writer = True
            event.succeed()
        else:
            # Grant the whole run of readers at the head of the queue.
            while self._queue and self._queue[0][0] == self.READ:
                _, event = self._queue.popleft()
                self.active_readers += 1
                event.succeed()


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, engine: Engine, permits: int, name: str = "semaphore") -> None:
        if permits < 0:
            raise SimError("semaphore permits must be non-negative")
        self.engine = engine
        self.name = name
        self.permits = permits
        self._waiters: Deque[Event] = deque()
        self.stats = LockStats()

    def acquire(self) -> Generator:
        start = self.engine.now
        if self.permits == 0:
            event = self.engine.event(f"{self.name}.wait")
            self._waiters.append(event)
            yield event
        else:
            self.permits -= 1
        self.stats.note_wait(self.engine.now - start)

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.permits += 1


class Gate:
    """A broadcast barrier: processes wait until the gate opens.

    Used by the benchmark harness to model its warm-up phase: worker
    threads spin through warm-up iterations and the timed region starts
    for everyone only when the coordinator opens the gate.
    """

    def __init__(self, engine: Engine, name: str = "gate") -> None:
        self.engine = engine
        self.name = name
        self.open = False
        self._waiters: list[Event] = []

    def wait(self) -> Generator:
        if not self.open:
            event = self.engine.event(f"{self.name}.wait")
            self._waiters.append(event)
            yield event
        else:
            yield Delay(0.0)

    def open_gate(self) -> None:
        self.open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
