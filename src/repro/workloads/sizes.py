"""Size presets.

The paper runs PolyBench in its MEDIUM configuration and SPEC in
Train.  A functional run in our Python interpreter must stay tractable
(the profile is computed once per workload × size and cached), so the
presets scale each kernel's dimensions down while preserving its
compute/memory character:

* ``mini``   — seconds-long full-suite test runs (CI, pytest);
* ``small``  — the default for experiments (≈10⁵–10⁶ dynamic ops each);
* ``medium`` — closer to PolyBench LARGE ratios, for spot checks.

Relative runtime ratios between configurations are stable across these
presets because the timing model is linear in block execution counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: name -> preset -> dimension tuple (meaning documented per kernel).
SIZES: Dict[str, Dict[str, Tuple[int, ...]]] = {
    # -- BLAS-like (dims as in the PolyBench kernels) ------------------
    "gemm": {"mini": (6, 7, 8), "small": (16, 18, 20), "medium": (28, 32, 36)},
    "2mm": {"mini": (5, 6, 7, 8), "small": (14, 16, 18, 20), "medium": (24, 26, 28, 30)},
    "3mm": {"mini": (5, 6, 7, 8, 9), "small": (12, 14, 16, 18, 20), "medium": (20, 22, 24, 26, 28)},
    "atax": {"mini": (7, 9), "small": (24, 30), "medium": (48, 56)},
    "bicg": {"mini": (7, 9), "small": (24, 30), "medium": (48, 56)},
    "doitgen": {"mini": (5, 6, 7), "small": (10, 12, 14), "medium": (16, 18, 20)},
    "mvt": {"mini": (9,), "small": (28,), "medium": (52,)},
    "gemver": {"mini": (8,), "small": (24,), "medium": (44,)},
    "gesummv": {"mini": (8,), "small": (26,), "medium": (48,)},
    "symm": {"mini": (6, 8), "small": (14, 18), "medium": (24, 28)},
    "syrk": {"mini": (6, 8), "small": (14, 18), "medium": (24, 28)},
    "syr2k": {"mini": (6, 8), "small": (14, 18), "medium": (24, 28)},
    "trmm": {"mini": (6, 8), "small": (14, 18), "medium": (24, 28)},
    # -- solvers ---------------------------------------------------------
    "cholesky": {"mini": (8,), "small": (20,), "medium": (36,)},
    "durbin": {"mini": (10,), "small": (40,), "medium": (90,)},
    # (m rows, n cols) with m > n so the QR factorisation is full rank.
    "gramschmidt": {"mini": (8, 6), "small": (18, 14), "medium": (26, 22)},
    "lu": {"mini": (8,), "small": (20,), "medium": (34,)},
    "ludcmp": {"mini": (8,), "small": (20,), "medium": (34,)},
    "trisolv": {"mini": (10,), "small": (40,), "medium": (90,)},
    # -- data mining ---------------------------------------------------------
    "correlation": {"mini": (7, 8), "small": (16, 20), "medium": (26, 30)},
    "covariance": {"mini": (7, 8), "small": (16, 20), "medium": (26, 30)},
    # -- medley -----------------------------------------------------------------
    "deriche": {"mini": (8, 10), "small": (24, 28), "medium": (44, 52)},
    "floyd-warshall": {"mini": (9,), "small": (20,), "medium": (34,)},
    "nussinov": {"mini": (10,), "small": (24,), "medium": (44,)},
    # -- stencils: (tsteps, n...) -------------------------------------------------
    "adi": {"mini": (2, 8), "small": (4, 16), "medium": (6, 26)},
    "fdtd-2d": {"mini": (3, 7, 8), "small": (6, 16, 18), "medium": (10, 26, 30)},
    "heat-3d": {"mini": (2, 6), "small": (4, 10), "medium": (6, 14)},
    "jacobi-1d": {"mini": (4, 16), "small": (12, 80), "medium": (24, 200)},
    "jacobi-2d": {"mini": (3, 8), "small": (8, 18), "medium": (14, 30)},
    "seidel-2d": {"mini": (3, 8), "small": (8, 18), "medium": (14, 30)},
    # -- SPEC proxies ------------------------------------------------------------
    # mcf: (nodes, arcs_per_node, iterations)
    "505.mcf": {"mini": (24, 3, 4), "small": (80, 4, 8), "medium": (200, 4, 12)},
    # namd: (atoms, steps)
    "508.namd": {"mini": (12, 2), "small": (32, 3), "medium": (64, 4)},
    # lbm: (nx, ny, steps)
    "519.lbm": {"mini": (6, 6, 3), "small": (12, 12, 6), "medium": (20, 20, 10)},
    # x264: (frame_w, frame_h, blocks, search_range)
    "525.x264": {"mini": (32, 24, 4, 3), "small": (48, 32, 8, 5), "medium": (80, 48, 12, 7)},
    # deepsjeng: (depth, branching)
    "531.deepsjeng": {"mini": (4, 4), "small": (6, 5), "medium": (7, 6)},
    # nab: (atoms, steps)
    "544.nab": {"mini": (14, 2), "small": (36, 3), "medium": (70, 4)},
    # xz: (data_len, iterations)
    "557.xz": {"mini": (600, 2), "small": (3000, 3), "medium": (9000, 4)},
    # -- WASI (syscall-bound) ------------------------------------------------------
    # grep: (lines, read_chunk_bytes)
    "wasi-grep": {"mini": (24, 128), "small": (160, 512), "medium": (480, 1024)},
    # checksum: (file_bytes, read_chunk_bytes)
    "wasi-checksum": {"mini": (1024, 128), "small": (12288, 512), "medium": (49152, 1024)},
    # montecarlo: (samples, clock_every)
    "wasi-montecarlo": {"mini": (64, 16), "small": (512, 32), "medium": (2048, 64)},
    # logappend: (records, stat_every)
    "wasi-logappend": {"mini": (24, 8), "small": (160, 16), "medium": (480, 32)},
}

PRESETS = ("mini", "small", "medium")


def dims(name: str, preset: str) -> Tuple[int, ...]:
    try:
        per_kernel = SIZES[name]
    except KeyError:
        raise KeyError(f"no size table for workload {name!r}") from None
    try:
        return per_kernel[preset]
    except KeyError:
        raise KeyError(
            f"unknown preset {preset!r} (choose from {PRESETS})"
        ) from None
