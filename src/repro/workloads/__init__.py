"""Benchmark workloads (§3.3).

* :mod:`polybench` — all 30 PolyBench/C 4.2 kernels, authored in the
  Wasm DSL and verified element-wise against NumPy references;
* :mod:`spec` — proxies for the 7-benchmark SPEC CPU 2017 Rate subset
  the paper compiled to WASI (505.mcf, 508.namd, 519.lbm, 525.x264,
  531.deepsjeng, 544.nab, 557.xz), each reproducing the computational
  character of its original (pointer chasing, stencils, search, …);
* :mod:`wasi` — four WASI-family (syscall-bound) workloads that
  stream files, poll clocks and draw randomness through the simulated
  kernel, covering the scenario axis the compute suites miss;
* :mod:`registry` — the catalogue with size presets (the paper uses
  PolyBench MEDIUM and SPEC Train; we scale dimensions down so a
  Python-interpreted functional run stays tractable, see sizes.py).
"""

from repro.workloads.base import Built, Workload, read_array
from repro.workloads.registry import (
    WORKLOADS,
    POLYBENCH,
    SPEC,
    WASI,
    workload_named,
    suite_workloads,
)

__all__ = [
    "Built",
    "Workload",
    "read_array",
    "WORKLOADS",
    "POLYBENCH",
    "SPEC",
    "WASI",
    "workload_named",
    "suite_workloads",
]
