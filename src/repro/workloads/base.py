"""Workload plumbing: build results, the catalogue entry type, helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.runtime.interpreter import Interpreter
from repro.wasm.dsl import Array, DslModule
from repro.wasm.module import Module


@dataclass
class Built:
    """A workload compiled to a Wasm module, with its array layout."""

    module: Module
    arrays: Dict[str, Array]
    dm: DslModule
    #: WASI-family workloads supply a zero-arg factory producing a
    #: fresh, pre-seeded host environment (a
    #: :class:`repro.runtime.hostiface.HostInterface`) per
    #: instantiation; compute-family workloads leave it None and link
    #: against no imports.
    env_factory: Optional[Callable[[], object]] = None


def instantiate(built: Built, **interp_kwargs):
    """Interpreter + (optionally) bound host environment for a build.

    Returns ``(interp, env)``; ``env`` is None for import-free modules.
    Every call site that used to construct the Interpreter directly
    goes through here so WASI workloads link uniformly.
    """
    env = built.env_factory() if built.env_factory is not None else None
    interp = Interpreter(
        built.module,
        imports=env.imports() if env is not None else None,
        **interp_kwargs,
    )
    if env is not None:
        env.bind(interp)
    return interp, env


@dataclass(frozen=True)
class Workload:
    """One catalogue entry.

    ``build(size)`` produces the module; the module exports ``bench``
    (init + kernel, the profiled entry point) and usually ``init`` /
    ``kernel`` separately for tests.  ``reference(size)`` computes the
    expected contents of ``check_arrays`` with NumPy.
    """

    name: str
    suite: str  # 'polybench' | 'spec' | 'wasi'
    build: Callable[[str], Built]
    reference: Optional[Callable[[str], Dict[str, np.ndarray]]]
    check_arrays: Tuple[str, ...]
    #: Loose descriptors used in reporting (e.g. 'stencil', 'blas').
    tags: Tuple[str, ...] = ()


_DTYPES = {"f64": "<f8", "f32": "<f4", "i32": "<i4", "i64": "<i8"}


def read_array(interp: Interpreter, array: Array) -> np.ndarray:
    """Copy a DSL array out of an instance's linear memory."""
    memory = interp.memory
    raw = bytes(memory.data[array.base : array.base + array.nbytes])
    return np.frombuffer(raw, dtype=_DTYPES[array.elem]).reshape(array.shape).copy()


def run_and_extract(workload: Workload, size: str) -> Dict[str, np.ndarray]:
    """Execute a workload functionally and return its checked arrays."""
    built = workload.build(size)
    interp, _env = instantiate(built, collect_profile=False, track_pages=False)
    interp.invoke("bench")
    return {
        name: read_array(interp, built.arrays[name])
        for name in workload.check_arrays
    }
