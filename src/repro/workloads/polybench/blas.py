"""PolyBench BLAS-like kernels: gemm, 2mm, 3mm, atax, bicg, doitgen,
mvt, gemver, gesummv."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import frac, make_bench
from repro.workloads.sizes import dims

ALPHA, BETA = 1.5, 1.2


# ----------------------------------------------------------------------
# gemm: C = alpha*A*B + beta*C
# ----------------------------------------------------------------------
def build_gemm(preset: str) -> Built:
    ni, nj, nk = dims("gemm", preset)
    dm = DslModule("gemm")
    A = dm.matrix_f64("A", ni, nk)
    B = dm.matrix_f64("B", nk, nj)
    C = dm.matrix_f64("C", ni, nj)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, ni):
        with init.for_(j, 0, nj):
            init.store(C[i, j], frac(i * j + 1, ni))
    with init.for_(i, 0, ni):
        with init.for_(j, 0, nk):
            init.store(A[i, j], frac(i * (j + 1), nk))
    with init.for_(i, 0, nk):
        with init.for_(j, 0, nj):
            init.store(B[i, j], frac(i * (j + 2), nj))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, ni):
        with kernel.for_(j, 0, nj):
            kernel.store(C[i, j], C[i, j] * BETA)
        with kernel.for_(k, 0, nk):
            with kernel.for_(j, 0, nj):
                kernel.store(C[i, j], C[i, j] + ALPHA * A[i, k] * B[k, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A, "B": B, "C": C}, dm)


def ref_gemm(preset: str):
    ni, nj, nk = dims("gemm", preset)
    C = np.fromfunction(lambda i, j: ((i * j + 1) % ni) / ni, (ni, nj))
    A = np.fromfunction(lambda i, j: ((i * (j + 1)) % nk) / nk, (ni, nk))
    B = np.fromfunction(lambda i, j: ((i * (j + 2)) % nj) / nj, (nk, nj))
    C = BETA * C + ALPHA * (A @ B)
    return {"C": C}


# ----------------------------------------------------------------------
# 2mm: D = alpha*A*B*C + beta*D
# ----------------------------------------------------------------------
def build_2mm(preset: str) -> Built:
    ni, nj, nk, nl = dims("2mm", preset)
    dm = DslModule("2mm")
    A = dm.matrix_f64("A", ni, nk)
    B = dm.matrix_f64("B", nk, nj)
    C = dm.matrix_f64("C", nj, nl)
    D = dm.matrix_f64("D", ni, nl)
    tmp = dm.matrix_f64("tmp", ni, nj)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, ni):
        with init.for_(j, 0, nk):
            init.store(A[i, j], frac(i * j + 1, ni))
    with init.for_(i, 0, nk):
        with init.for_(j, 0, nj):
            init.store(B[i, j], frac(i * (j + 1), nj))
    with init.for_(i, 0, nj):
        with init.for_(j, 0, nl):
            init.store(C[i, j], frac(i * (j + 3) + 1, nl))
    with init.for_(i, 0, ni):
        with init.for_(j, 0, nl):
            init.store(D[i, j], frac(i * (j + 2), nk))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, ni):
        with kernel.for_(j, 0, nj):
            kernel.store(tmp[i, j], 0.0)
            with kernel.for_(k, 0, nk):
                kernel.store(tmp[i, j], tmp[i, j] + ALPHA * A[i, k] * B[k, j])
    with kernel.for_(i, 0, ni):
        with kernel.for_(j, 0, nl):
            kernel.store(D[i, j], D[i, j] * BETA)
            with kernel.for_(k, 0, nj):
                kernel.store(D[i, j], D[i, j] + tmp[i, k] * C[k, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"D": D, "tmp": tmp}, dm)


def ref_2mm(preset: str):
    ni, nj, nk, nl = dims("2mm", preset)
    A = np.fromfunction(lambda i, j: ((i * j + 1) % ni) / ni, (ni, nk))
    B = np.fromfunction(lambda i, j: ((i * (j + 1)) % nj) / nj, (nk, nj))
    C = np.fromfunction(lambda i, j: ((i * (j + 3) + 1) % nl) / nl, (nj, nl))
    D = np.fromfunction(lambda i, j: ((i * (j + 2)) % nk) / nk, (ni, nl))
    tmp = ALPHA * (A @ B)
    D = BETA * D + tmp @ C
    return {"D": D, "tmp": tmp}


# ----------------------------------------------------------------------
# 3mm: G = (A*B)*(C*D)
# ----------------------------------------------------------------------
def build_3mm(preset: str) -> Built:
    ni, nj, nk, nl, nm = dims("3mm", preset)
    dm = DslModule("3mm")
    A = dm.matrix_f64("A", ni, nk)
    B = dm.matrix_f64("B", nk, nj)
    C = dm.matrix_f64("C", nj, nm)
    D = dm.matrix_f64("D", nm, nl)
    E = dm.matrix_f64("E", ni, nj)
    F = dm.matrix_f64("F", nj, nl)
    G = dm.matrix_f64("G", ni, nl)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, ni):
        with init.for_(j, 0, nk):
            init.store(A[i, j], frac(i * j + 1, ni))
    with init.for_(i, 0, nk):
        with init.for_(j, 0, nj):
            init.store(B[i, j], frac(i * (j + 1) + 2, nj))
    with init.for_(i, 0, nj):
        with init.for_(j, 0, nm):
            init.store(C[i, j], frac(i * (j + 3), nl))
    with init.for_(i, 0, nm):
        with init.for_(j, 0, nl):
            init.store(D[i, j], frac(i * (j + 2) + 2, nk))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    for dest, lhs, rhs, rows, cols, inner in (
        (E, A, B, ni, nj, nk),
        (F, C, D, nj, nl, nm),
        (G, E, F, ni, nl, nj),
    ):
        with kernel.for_(i, 0, rows):
            with kernel.for_(j, 0, cols):
                kernel.store(dest[i, j], 0.0)
                with kernel.for_(k, 0, inner):
                    kernel.store(dest[i, j], dest[i, j] + lhs[i, k] * rhs[k, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"G": G}, dm)


def ref_3mm(preset: str):
    ni, nj, nk, nl, nm = dims("3mm", preset)
    A = np.fromfunction(lambda i, j: ((i * j + 1) % ni) / ni, (ni, nk))
    B = np.fromfunction(lambda i, j: ((i * (j + 1) + 2) % nj) / nj, (nk, nj))
    C = np.fromfunction(lambda i, j: ((i * (j + 3)) % nl) / nl, (nj, nm))
    D = np.fromfunction(lambda i, j: ((i * (j + 2) + 2) % nk) / nk, (nm, nl))
    return {"G": (A @ B) @ (C @ D)}


# ----------------------------------------------------------------------
# atax: y = A^T (A x)
# ----------------------------------------------------------------------
def build_atax(preset: str) -> Built:
    m, n = dims("atax", preset)
    dm = DslModule("atax")
    A = dm.matrix_f64("A", m, n)
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)
    tmp = dm.array_f64("tmp", m)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        init.store(x[i], 1.0 + i.to_f64() / n)
    with init.for_(i, 0, m):
        with init.for_(j, 0, n):
            init.store(A[i, j], ((i + j) % n).to_f64() / (5.0 * m))

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        kernel.store(y[i], 0.0)
    with kernel.for_(i, 0, m):
        kernel.store(tmp[i], 0.0)
        with kernel.for_(j, 0, n):
            kernel.store(tmp[i], tmp[i] + A[i, j] * x[j])
        with kernel.for_(j, 0, n):
            kernel.store(y[j], y[j] + A[i, j] * tmp[i])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"y": y}, dm)


def ref_atax(preset: str):
    m, n = dims("atax", preset)
    x = 1.0 + np.arange(n) / n
    A = np.fromfunction(lambda i, j: ((i + j) % n) / (5.0 * m), (m, n))
    return {"y": A.T @ (A @ x)}


# ----------------------------------------------------------------------
# bicg: s = A^T r ; q = A p
# ----------------------------------------------------------------------
def build_bicg(preset: str) -> Built:
    n, m = dims("bicg", preset)
    dm = DslModule("bicg")
    A = dm.matrix_f64("A", n, m)
    s = dm.array_f64("s", m)
    q = dm.array_f64("q", n)
    p = dm.array_f64("p", m)
    r = dm.array_f64("r", n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, m):
        init.store(p[i], frac(i, m))
    with init.for_(i, 0, n):
        init.store(r[i], frac(i, n))
        with init.for_(j, 0, m):
            init.store(A[i, j], frac(i * (j + 1), n))

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, m):
        kernel.store(s[i], 0.0)
    with kernel.for_(i, 0, n):
        kernel.store(q[i], 0.0)
        with kernel.for_(j, 0, m):
            kernel.store(s[j], s[j] + r[i] * A[i, j])
            kernel.store(q[i], q[i] + A[i, j] * p[j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"s": s, "q": q}, dm)


def ref_bicg(preset: str):
    n, m = dims("bicg", preset)
    p = np.arange(m) % m / m
    r = np.arange(n) % n / n
    A = np.fromfunction(lambda i, j: ((i * (j + 1)) % n) / n, (n, m))
    return {"s": A.T @ r, "q": A @ p}


# ----------------------------------------------------------------------
# doitgen: A[r,q,:] = A[r,q,:] @ C4
# ----------------------------------------------------------------------
def build_doitgen(preset: str) -> Built:
    nr, nq, np_ = dims("doitgen", preset)
    dm = DslModule("doitgen")
    A = dm.array_f64("A", nr, nq, np_)
    C4 = dm.matrix_f64("C4", np_, np_)
    summ = dm.array_f64("sum", np_)

    init = dm.func("init")
    i, j, k = init.i32(), init.i32(), init.i32()
    with init.for_(i, 0, nr):
        with init.for_(j, 0, nq):
            with init.for_(k, 0, np_):
                init.store(A[i, j, k], frac(i * j + k, np_))
    with init.for_(i, 0, np_):
        with init.for_(j, 0, np_):
            init.store(C4[i, j], frac(i * j, np_))

    kernel = dm.func("kernel")
    r, q, p, s = kernel.i32(), kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(r, 0, nr):
        with kernel.for_(q, 0, nq):
            with kernel.for_(p, 0, np_):
                kernel.store(summ[p], 0.0)
                with kernel.for_(s, 0, np_):
                    kernel.store(summ[p], summ[p] + A[r, q, s] * C4[s, p])
            with kernel.for_(p, 0, np_):
                kernel.store(A[r, q, p], summ[p])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_doitgen(preset: str):
    nr, nq, np_ = dims("doitgen", preset)
    A = np.fromfunction(lambda i, j, k: ((i * j + k) % np_) / np_, (nr, nq, np_))
    C4 = np.fromfunction(lambda i, j: ((i * j) % np_) / np_, (np_, np_))
    for r in range(nr):
        for q in range(nq):
            A[r, q, :] = A[r, q, :] @ C4
    return {"A": A}


# ----------------------------------------------------------------------
# mvt: x1 += A y1 ; x2 += A^T y2
# ----------------------------------------------------------------------
def build_mvt(preset: str) -> Built:
    (n,) = dims("mvt", preset)
    dm = DslModule("mvt")
    A = dm.matrix_f64("A", n, n)
    x1 = dm.array_f64("x1", n)
    x2 = dm.array_f64("x2", n)
    y1 = dm.array_f64("y1", n)
    y2 = dm.array_f64("y2", n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        init.store(x1[i], frac(i, n))
        init.store(x2[i], frac(i + 1, n))
        init.store(y1[i], frac(i + 3, n))
        init.store(y2[i], frac(i + 4, n))
        with init.for_(j, 0, n):
            init.store(A[i, j], frac(i * j, n))

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, n):
            kernel.store(x1[i], x1[i] + A[i, j] * y1[j])
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, n):
            kernel.store(x2[i], x2[i] + A[j, i] * y2[j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"x1": x1, "x2": x2}, dm)


def ref_mvt(preset: str):
    (n,) = dims("mvt", preset)
    idx = np.arange(n)
    x1 = idx % n / n
    x2 = (idx + 1) % n / n
    y1 = (idx + 3) % n / n
    y2 = (idx + 4) % n / n
    A = np.fromfunction(lambda i, j: (i * j % n) / n, (n, n))
    return {"x1": x1 + A @ y1, "x2": x2 + A.T @ y2}


# ----------------------------------------------------------------------
# gemver
# ----------------------------------------------------------------------
def build_gemver(preset: str) -> Built:
    (n,) = dims("gemver", preset)
    dm = DslModule("gemver")
    A = dm.matrix_f64("A", n, n)
    u1 = dm.array_f64("u1", n)
    v1 = dm.array_f64("v1", n)
    u2 = dm.array_f64("u2", n)
    v2 = dm.array_f64("v2", n)
    w = dm.array_f64("w", n)
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)
    z = dm.array_f64("z", n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        fi = i.to_f64()
        init.store(u1[i], fi)
        init.store(u2[i], (fi + 1.0) / n / 2.0)
        init.store(v1[i], (fi + 1.0) / n / 4.0)
        init.store(v2[i], (fi + 1.0) / n / 6.0)
        init.store(y[i], (fi + 1.0) / n / 8.0)
        init.store(z[i], (fi + 1.0) / n / 9.0)
        init.store(x[i], 0.0)
        init.store(w[i], 0.0)
        with init.for_(j, 0, n):
            init.store(A[i, j], frac(i * j, n))

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, n):
            kernel.store(A[i, j], A[i, j] + u1[i] * v1[j] + u2[i] * v2[j])
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, n):
            kernel.store(x[i], x[i] + BETA * A[j, i] * y[j])
    with kernel.for_(i, 0, n):
        kernel.store(x[i], x[i] + z[i])
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, n):
            kernel.store(w[i], w[i] + ALPHA * A[i, j] * x[j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"w": w, "x": x, "A": A}, dm)


def ref_gemver(preset: str):
    (n,) = dims("gemver", preset)
    idx = np.arange(n, dtype=float)
    u1 = idx
    u2 = (idx + 1.0) / n / 2.0
    v1 = (idx + 1.0) / n / 4.0
    v2 = (idx + 1.0) / n / 6.0
    y = (idx + 1.0) / n / 8.0
    z = (idx + 1.0) / n / 9.0
    A = np.fromfunction(lambda i, j: (i * j % n) / n, (n, n))
    A = A + np.outer(u1, v1) + np.outer(u2, v2)
    x = BETA * (A.T @ y) + z
    w = ALPHA * (A @ x)
    return {"w": w, "x": x, "A": A}


# ----------------------------------------------------------------------
# gesummv: y = alpha*A*x + beta*B*x
# ----------------------------------------------------------------------
def build_gesummv(preset: str) -> Built:
    (n,) = dims("gesummv", preset)
    dm = DslModule("gesummv")
    A = dm.matrix_f64("A", n, n)
    B = dm.matrix_f64("B", n, n)
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)
    tmp = dm.array_f64("tmp", n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        init.store(x[i], frac(i, n))
        with init.for_(j, 0, n):
            init.store(A[i, j], frac(i * j + 1, n))
            init.store(B[i, j], frac(i * j + 2, n))

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        kernel.store(tmp[i], 0.0)
        kernel.store(y[i], 0.0)
        with kernel.for_(j, 0, n):
            kernel.store(tmp[i], A[i, j] * x[j] + tmp[i])
            kernel.store(y[i], B[i, j] * x[j] + y[i])
        kernel.store(y[i], ALPHA * tmp[i] + BETA * y[i])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"y": y}, dm)


def ref_gesummv(preset: str):
    (n,) = dims("gesummv", preset)
    x = np.arange(n) % n / n
    A = np.fromfunction(lambda i, j: ((i * j + 1) % n) / n, (n, n))
    B = np.fromfunction(lambda i, j: ((i * j + 2) % n) / n, (n, n))
    return {"y": ALPHA * (A @ x) + BETA * (B @ x)}


WORKLOADS = [
    Workload("gemm", "polybench", build_gemm, ref_gemm, ("C",), ("blas",)),
    Workload("2mm", "polybench", build_2mm, ref_2mm, ("D", "tmp"), ("blas",)),
    Workload("3mm", "polybench", build_3mm, ref_3mm, ("G",), ("blas",)),
    Workload("atax", "polybench", build_atax, ref_atax, ("y",), ("blas",)),
    Workload("bicg", "polybench", build_bicg, ref_bicg, ("s", "q"), ("blas",)),
    Workload("doitgen", "polybench", build_doitgen, ref_doitgen, ("A",), ("blas",)),
    Workload("mvt", "polybench", build_mvt, ref_mvt, ("x1", "x2"), ("blas",)),
    Workload("gemver", "polybench", build_gemver, ref_gemver, ("w", "x", "A"), ("blas",)),
    Workload("gesummv", "polybench", build_gesummv, ref_gesummv, ("y",), ("blas",)),
]
