"""PolyBench triangular-update kernels: symm, syrk, syr2k, trmm."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import frac, make_bench
from repro.workloads.sizes import dims

ALPHA, BETA = 1.5, 1.2


# ----------------------------------------------------------------------
# symm: C = alpha*A*B + beta*C with symmetric A (lower stored)
# ----------------------------------------------------------------------
def build_symm(preset: str) -> Built:
    m, n = dims("symm", preset)
    dm = DslModule("symm")
    A = dm.matrix_f64("A", m, m)
    B = dm.matrix_f64("B", m, n)
    C = dm.matrix_f64("C", m, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, m):
        with init.for_(j, 0, n):
            init.store(C[i, j], frac(i + j, 100))
            init.store(B[i, j], frac(n + i - j, 100))
        with init.for_(j, 0, m):
            init.store(A[i, j], frac(i * j + 1, 100))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    temp2 = kernel.f64("temp2")
    with kernel.for_(i, 0, m):
        with kernel.for_(j, 0, n):
            kernel.set(temp2, 0.0)
            with kernel.for_(k, 0, i):
                kernel.store(C[k, j], C[k, j] + ALPHA * B[i, j] * A[i, k])
                kernel.set(temp2, temp2 + B[k, j] * A[i, k])
            kernel.store(
                C[i, j],
                BETA * C[i, j] + ALPHA * B[i, j] * A[i, i] + ALPHA * temp2,
            )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"C": C}, dm)


def ref_symm(preset: str):
    m, n = dims("symm", preset)
    C = np.fromfunction(lambda i, j: ((i + j) % 100) / 100, (m, n))
    B = np.fromfunction(lambda i, j: ((n + i - j) % 100) / 100, (m, n))
    A = np.fromfunction(lambda i, j: ((i * j + 1) % 100) / 100, (m, m))
    for i in range(m):
        for j in range(n):
            temp2 = 0.0
            for k in range(i):
                C[k, j] += ALPHA * B[i, j] * A[i, k]
                temp2 += B[k, j] * A[i, k]
            C[i, j] = BETA * C[i, j] + ALPHA * B[i, j] * A[i, i] + ALPHA * temp2
    return {"C": C}


# ----------------------------------------------------------------------
# syrk: C = alpha*A*A^T + beta*C (lower triangle)
# ----------------------------------------------------------------------
def build_syrk(preset: str) -> Built:
    n, m = dims("syrk", preset)
    dm = DslModule("syrk")
    A = dm.matrix_f64("A", n, m)
    C = dm.matrix_f64("C", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, m):
            init.store(A[i, j], frac(i * j + 1, n))
        with init.for_(j, 0, n):
            init.store(C[i, j], frac(i * j + 2, m))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, i + 1):
            kernel.store(C[i, j], C[i, j] * BETA)
        with kernel.for_(k, 0, m):
            with kernel.for_(j, 0, i + 1):
                kernel.store(C[i, j], C[i, j] + ALPHA * A[i, k] * A[j, k])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"C": C}, dm)


def ref_syrk(preset: str):
    n, m = dims("syrk", preset)
    A = np.fromfunction(lambda i, j: ((i * j + 1) % n) / n, (n, m))
    C = np.fromfunction(lambda i, j: ((i * j + 2) % m) / m, (n, n))
    for i in range(n):
        C[i, : i + 1] *= BETA
        for k in range(m):
            for j in range(i + 1):
                C[i, j] += ALPHA * A[i, k] * A[j, k]
    return {"C": C}


# ----------------------------------------------------------------------
# syr2k: C = alpha*(A*B^T + B*A^T) + beta*C (lower triangle)
# ----------------------------------------------------------------------
def build_syr2k(preset: str) -> Built:
    n, m = dims("syr2k", preset)
    dm = DslModule("syr2k")
    A = dm.matrix_f64("A", n, m)
    B = dm.matrix_f64("B", n, m)
    C = dm.matrix_f64("C", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, m):
            init.store(A[i, j], frac(i * j + 1, n))
            init.store(B[i, j], frac(i * j + 2, m))
        with init.for_(j, 0, n):
            init.store(C[i, j], frac(i * j + 3, n))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, i + 1):
            kernel.store(C[i, j], C[i, j] * BETA)
        with kernel.for_(k, 0, m):
            with kernel.for_(j, 0, i + 1):
                kernel.store(
                    C[i, j],
                    C[i, j] + A[j, k] * ALPHA * B[i, k] + B[j, k] * ALPHA * A[i, k],
                )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"C": C}, dm)


def ref_syr2k(preset: str):
    n, m = dims("syr2k", preset)
    A = np.fromfunction(lambda i, j: ((i * j + 1) % n) / n, (n, m))
    B = np.fromfunction(lambda i, j: ((i * j + 2) % m) / m, (n, m))
    C = np.fromfunction(lambda i, j: ((i * j + 3) % n) / n, (n, n))
    for i in range(n):
        C[i, : i + 1] *= BETA
        for k in range(m):
            for j in range(i + 1):
                C[i, j] += A[j, k] * ALPHA * B[i, k] + B[j, k] * ALPHA * A[i, k]
    return {"C": C}


# ----------------------------------------------------------------------
# trmm: B = alpha * A * B, A unit lower triangular
# ----------------------------------------------------------------------
def build_trmm(preset: str) -> Built:
    m, n = dims("trmm", preset)
    dm = DslModule("trmm")
    A = dm.matrix_f64("A", m, m)
    B = dm.matrix_f64("B", m, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, m):
        with init.for_(j, 0, m):
            init.store(A[i, j], frac(i * j + 1, m))
        init.store(A[i, i], 1.0)
        with init.for_(j, 0, n):
            init.store(B[i, j], frac(n + i - j, n))

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, m):
        with kernel.for_(j, 0, n):
            with kernel.for_(k, i + 1, m):
                kernel.store(B[i, j], B[i, j] + A[k, i] * B[k, j])
            kernel.store(B[i, j], ALPHA * B[i, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"B": B}, dm)


def ref_trmm(preset: str):
    m, n = dims("trmm", preset)
    A = np.fromfunction(lambda i, j: ((i * j + 1) % m) / m, (m, m))
    np.fill_diagonal(A, 1.0)
    B = np.fromfunction(lambda i, j: ((n + i - j) % n) / n, (m, n))
    for i in range(m):
        for j in range(n):
            for k in range(i + 1, m):
                B[i, j] += A[k, i] * B[k, j]
            B[i, j] *= ALPHA
    return {"B": B}


WORKLOADS = [
    Workload("symm", "polybench", build_symm, ref_symm, ("C",), ("blas", "triangular")),
    Workload("syrk", "polybench", build_syrk, ref_syrk, ("C",), ("blas", "triangular")),
    Workload("syr2k", "polybench", build_syr2k, ref_syr2k, ("C",), ("blas", "triangular")),
    Workload("trmm", "polybench", build_trmm, ref_trmm, ("B",), ("blas", "triangular")),
]
