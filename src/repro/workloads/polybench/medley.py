"""PolyBench medley kernels: deriche, floyd-warshall, nussinov."""

from __future__ import annotations

import math

import numpy as np

from repro.wasm.dsl import DslModule, Select
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import frac, make_bench
from repro.workloads.sizes import dims

_DERICHE_ALPHA = 0.25


def _deriche_coeffs():
    alpha = _DERICHE_ALPHA
    ea = math.exp(-alpha)
    e2a = math.exp(-2.0 * alpha)
    k = (1.0 - ea) ** 2 / (1.0 + 2.0 * alpha * ea - e2a)
    a1 = a5 = k
    a2 = a6 = k * ea * (alpha - 1.0)
    a3 = a7 = k * ea * (alpha + 1.0)
    a4 = a8 = -k * e2a
    b1 = 2.0 ** (-alpha)
    b2 = -e2a
    c1 = c2 = 1.0
    return a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2


# ----------------------------------------------------------------------
# deriche (recursive edge-detection filter, 4 IIR passes)
# ----------------------------------------------------------------------
def build_deriche(preset: str) -> Built:
    w, h = dims("deriche", preset)
    a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2 = _deriche_coeffs()
    dm = DslModule("deriche")
    img_in = dm.matrix_f64("imgIn", w, h)
    img_out = dm.matrix_f64("imgOut", w, h)
    y1 = dm.matrix_f64("y1", w, h)
    y2 = dm.matrix_f64("y2", w, h)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, w):
        with init.for_(j, 0, h):
            init.store(img_in[i, j], ((313 * i + 991 * j) % 65536).to_f64() / 65535.0)

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    ym1, ym2, xm1 = kernel.f64(), kernel.f64(), kernel.f64()
    yp1, yp2, xp1, xp2 = kernel.f64(), kernel.f64(), kernel.f64(), kernel.f64()
    tm1, tp1, tp2 = kernel.f64(), kernel.f64(), kernel.f64()
    # Horizontal forward.
    with kernel.for_(i, 0, w):
        kernel.set(ym1, 0.0)
        kernel.set(ym2, 0.0)
        kernel.set(xm1, 0.0)
        with kernel.for_(j, 0, h):
            kernel.store(y1[i, j], a1 * img_in[i, j] + a2 * xm1 + b1 * ym1 + b2 * ym2)
            kernel.set(xm1, img_in[i, j])
            kernel.set(ym2, ym1)
            kernel.set(ym1, y1[i, j])
    # Horizontal backward.
    with kernel.for_(i, 0, w):
        kernel.set(yp1, 0.0)
        kernel.set(yp2, 0.0)
        kernel.set(xp1, 0.0)
        kernel.set(xp2, 0.0)
        with kernel.for_(j, h - 1, -1, step=-1):
            kernel.store(y2[i, j], a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2)
            kernel.set(xp2, xp1)
            kernel.set(xp1, img_in[i, j])
            kernel.set(yp2, yp1)
            kernel.set(yp1, y2[i, j])
    with kernel.for_(i, 0, w):
        with kernel.for_(j, 0, h):
            kernel.store(img_out[i, j], c1 * (y1[i, j] + y2[i, j]))
    # Vertical forward.
    with kernel.for_(j, 0, h):
        kernel.set(tm1, 0.0)
        kernel.set(ym1, 0.0)
        kernel.set(ym2, 0.0)
        with kernel.for_(i, 0, w):
            kernel.store(y1[i, j], a5 * img_out[i, j] + a6 * tm1 + b1 * ym1 + b2 * ym2)
            kernel.set(tm1, img_out[i, j])
            kernel.set(ym2, ym1)
            kernel.set(ym1, y1[i, j])
    # Vertical backward.
    with kernel.for_(j, 0, h):
        kernel.set(tp1, 0.0)
        kernel.set(tp2, 0.0)
        kernel.set(yp1, 0.0)
        kernel.set(yp2, 0.0)
        with kernel.for_(i, w - 1, -1, step=-1):
            kernel.store(y2[i, j], a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2)
            kernel.set(tp2, tp1)
            kernel.set(tp1, img_out[i, j])
            kernel.set(yp2, yp1)
            kernel.set(yp1, y2[i, j])
    with kernel.for_(i, 0, w):
        with kernel.for_(j, 0, h):
            kernel.store(img_out[i, j], c2 * (y1[i, j] + y2[i, j]))

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"imgOut": img_out}, dm)


def ref_deriche(preset: str):
    w, h = dims("deriche", preset)
    a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2 = _deriche_coeffs()
    img_in = np.fromfunction(
        lambda i, j: ((313 * i + 991 * j) % 65536) / 65535.0, (w, h)
    )
    y1 = np.zeros((w, h))
    y2 = np.zeros((w, h))
    for i in range(w):
        ym1 = ym2 = xm1 = 0.0
        for j in range(h):
            y1[i, j] = a1 * img_in[i, j] + a2 * xm1 + b1 * ym1 + b2 * ym2
            xm1 = img_in[i, j]
            ym2, ym1 = ym1, y1[i, j]
    for i in range(w):
        yp1 = yp2 = xp1 = xp2 = 0.0
        for j in range(h - 1, -1, -1):
            y2[i, j] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2
            xp2, xp1 = xp1, img_in[i, j]
            yp2, yp1 = yp1, y2[i, j]
    img_out = c1 * (y1 + y2)
    for j in range(h):
        tm1 = ym1 = ym2 = 0.0
        for i in range(w):
            y1[i, j] = a5 * img_out[i, j] + a6 * tm1 + b1 * ym1 + b2 * ym2
            tm1 = img_out[i, j]
            ym2, ym1 = ym1, y1[i, j]
    for j in range(h):
        tp1 = tp2 = yp1 = yp2 = 0.0
        for i in range(w - 1, -1, -1):
            y2[i, j] = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2
            tp2, tp1 = tp1, img_out[i, j]
            yp2, yp1 = yp1, y2[i, j]
    img_out = c2 * (y1 + y2)
    return {"imgOut": img_out}


# ----------------------------------------------------------------------
# floyd-warshall (integer all-pairs shortest paths)
# ----------------------------------------------------------------------
def build_floyd_warshall(preset: str) -> Built:
    (n,) = dims("floyd-warshall", preset)
    dm = DslModule("floyd-warshall")
    path = dm.array_i32("path", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            init.store(path[i, j], i * j % 7 + 1)
            cond = ((i + j) % 13).eq(0) | ((i + j) % 7).eq(0) | ((i + j) % 11).eq(0)
            with init.if_(cond):
                init.store(path[i, j], 999)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(k, 0, n):
        with kernel.for_(i, 0, n):
            with kernel.for_(j, 0, n):
                through = path[i, k] + path[k, j]
                kernel.store(
                    path[i, j], Select(path[i, j] < through, path[i, j], through)
                )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"path": path}, dm)


def ref_floyd_warshall(preset: str):
    (n,) = dims("floyd-warshall", preset)
    path = np.zeros((n, n), dtype=np.int32)
    for i in range(n):
        for j in range(n):
            path[i, j] = i * j % 7 + 1
            if (i + j) % 13 == 0 or (i + j) % 7 == 0 or (i + j) % 11 == 0:
                path[i, j] = 999
    for k in range(n):
        for i in range(n):
            for j in range(n):
                through = path[i, k] + path[k, j]
                if through < path[i, j]:
                    path[i, j] = through
    return {"path": path}


# ----------------------------------------------------------------------
# nussinov (RNA secondary-structure DP)
# ----------------------------------------------------------------------
def build_nussinov(preset: str) -> Built:
    (n,) = dims("nussinov", preset)
    dm = DslModule("nussinov")
    seq = dm.array_i32("seq", n)
    table = dm.array_i32("table", n, n)

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, n):
        init.store(seq[i], (i + 1) % 4)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    w = kernel.i32("w")
    with kernel.for_(i, n - 1, -1, step=-1):
        with kernel.for_(j, i + 1, n):
            with kernel.if_(j - 1 >= 0):
                kernel.store(table[i, j], table[i, j].max_(table[i, j - 1]))
            with kernel.if_(i + 1 < n):
                kernel.store(table[i, j], table[i, j].max_(table[i + 1, j]))
            with kernel.if_(((j - 1) >= 0) & ((i + 1) < n)):
                with kernel.if_(i < j - 1) as branch:
                    match = Select((seq[i] + seq[j]).eq(3), 1, 0)
                    kernel.store(
                        table[i, j], table[i, j].max_(table[i + 1, j - 1] + match)
                    )
                    branch.otherwise()
                    kernel.store(table[i, j], table[i, j].max_(table[i + 1, j - 1]))
            with kernel.for_(k, i + 1, j):
                kernel.store(table[i, j], table[i, j].max_(table[i, k] + table[k + 1, j]))

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"table": table}, dm)


def ref_nussinov(preset: str):
    (n,) = dims("nussinov", preset)
    seq = [(i + 1) % 4 for i in range(n)]
    table = np.zeros((n, n), dtype=np.int32)
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            if j - 1 >= 0:
                table[i, j] = max(table[i, j], table[i, j - 1])
            if i + 1 < n:
                table[i, j] = max(table[i, j], table[i + 1, j])
            if j - 1 >= 0 and i + 1 < n:
                if i < j - 1:
                    match = 1 if seq[i] + seq[j] == 3 else 0
                    table[i, j] = max(table[i, j], table[i + 1, j - 1] + match)
                else:
                    table[i, j] = max(table[i, j], table[i + 1, j - 1])
            for k in range(i + 1, j):
                table[i, j] = max(table[i, j], table[i, k] + table[k + 1, j])
    return {"table": table}


WORKLOADS = [
    Workload("deriche", "polybench", build_deriche, ref_deriche, ("imgOut",), ("medley",)),
    Workload("floyd-warshall", "polybench", build_floyd_warshall, ref_floyd_warshall,
             ("path",), ("medley", "integer")),
    Workload("nussinov", "polybench", build_nussinov, ref_nussinov,
             ("table",), ("medley", "integer")),
]
