"""PolyBench data-mining kernels: correlation, covariance."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule, Select
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import make_bench
from repro.workloads.sizes import dims

_EPS = 0.1


def _data_init(init, data, n, m):
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, m):
            init.store(data[i, j], (i * j).to_f64() / m + i.to_f64())


def _data_ref(n, m):
    return np.fromfunction(lambda i, j: (i * j) / m + i, (n, m))


# ----------------------------------------------------------------------
# correlation
# ----------------------------------------------------------------------
def build_correlation(preset: str) -> Built:
    m, n = dims("correlation", preset)
    dm = DslModule("correlation")
    data = dm.matrix_f64("data", n, m)
    corr = dm.matrix_f64("corr", m, m)
    mean = dm.array_f64("mean", m)
    stddev = dm.array_f64("stddev", m)
    float_n = float(n)

    init = dm.func("init")
    _data_init(init, data, n, m)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(j, 0, m):
        kernel.store(mean[j], 0.0)
        with kernel.for_(i, 0, n):
            kernel.store(mean[j], mean[j] + data[i, j])
        kernel.store(mean[j], mean[j] / float_n)
    with kernel.for_(j, 0, m):
        kernel.store(stddev[j], 0.0)
        with kernel.for_(i, 0, n):
            diff = data[i, j] - mean[j]
            kernel.store(stddev[j], stddev[j] + diff * diff)
        kernel.store(stddev[j], (stddev[j] / float_n).sqrt())
        # Guard near-zero deviation (PolyBench's own trick).
        kernel.store(stddev[j], Select(stddev[j] <= _EPS, 1.0, stddev[j]))
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, m):
            kernel.store(data[i, j], data[i, j] - mean[j])
            kernel.store(data[i, j], data[i, j] / (float_n ** 0.5 * stddev[j]))
    with kernel.for_(i, 0, m - 1):
        kernel.store(corr[i, i], 1.0)
        with kernel.for_(j, i + 1, m):
            kernel.store(corr[i, j], 0.0)
            with kernel.for_(k, 0, n):
                kernel.store(corr[i, j], corr[i, j] + data[k, i] * data[k, j])
            kernel.store(corr[j, i], corr[i, j])
    kernel.store(corr[m - 1, m - 1], 1.0)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"corr": corr}, dm)


def ref_correlation(preset: str):
    m, n = dims("correlation", preset)
    data = _data_ref(n, m)
    mean = data.sum(axis=0) / n
    stddev = np.sqrt(((data - mean) ** 2).sum(axis=0) / n)
    stddev = np.where(stddev <= _EPS, 1.0, stddev)
    data = (data - mean) / (np.sqrt(n) * stddev)
    corr = np.zeros((m, m))
    for i in range(m - 1):
        corr[i, i] = 1.0
        for j in range(i + 1, m):
            corr[i, j] = float(np.dot(data[:, i], data[:, j]))
            corr[j, i] = corr[i, j]
    corr[m - 1, m - 1] = 1.0
    return {"corr": corr}


# ----------------------------------------------------------------------
# covariance
# ----------------------------------------------------------------------
def build_covariance(preset: str) -> Built:
    m, n = dims("covariance", preset)
    dm = DslModule("covariance")
    data = dm.matrix_f64("data", n, m)
    cov = dm.matrix_f64("cov", m, m)
    mean = dm.array_f64("mean", m)
    float_n = float(n)

    init = dm.func("init")
    _data_init(init, data, n, m)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(j, 0, m):
        kernel.store(mean[j], 0.0)
        with kernel.for_(i, 0, n):
            kernel.store(mean[j], mean[j] + data[i, j])
        kernel.store(mean[j], mean[j] / float_n)
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, m):
            kernel.store(data[i, j], data[i, j] - mean[j])
    with kernel.for_(i, 0, m):
        with kernel.for_(j, i, m):
            kernel.store(cov[i, j], 0.0)
            with kernel.for_(k, 0, n):
                kernel.store(cov[i, j], cov[i, j] + data[k, i] * data[k, j])
            kernel.store(cov[i, j], cov[i, j] / (float_n - 1.0))
            kernel.store(cov[j, i], cov[i, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"cov": cov}, dm)


def ref_covariance(preset: str):
    m, n = dims("covariance", preset)
    data = _data_ref(n, m)
    data = data - data.sum(axis=0) / n
    cov = np.zeros((m, m))
    for i in range(m):
        for j in range(i, m):
            cov[i, j] = float(np.dot(data[:, i], data[:, j])) / (n - 1.0)
            cov[j, i] = cov[i, j]
    return {"cov": cov}


WORKLOADS = [
    Workload("correlation", "polybench", build_correlation, ref_correlation,
             ("corr",), ("datamining",)),
    Workload("covariance", "polybench", build_covariance, ref_covariance,
             ("cov",), ("datamining",)),
]
