"""PolyBench stencil kernels: adi, fdtd-2d, heat-3d, jacobi-1d,
jacobi-2d, seidel-2d."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import make_bench
from repro.workloads.sizes import dims


# ----------------------------------------------------------------------
# jacobi-1d
# ----------------------------------------------------------------------
def build_jacobi_1d(preset: str) -> Built:
    tsteps, n = dims("jacobi-1d", preset)
    dm = DslModule("jacobi-1d")
    A = dm.array_f64("A", n)
    B = dm.array_f64("B", n)

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, n):
        init.store(A[i], (i + 2).to_f64() / n)
        init.store(B[i], (i + 3).to_f64() / n)

    kernel = dm.func("kernel")
    t, i = kernel.i32(), kernel.i32()
    with kernel.for_(t, 0, tsteps):
        with kernel.for_(i, 1, n - 1):
            kernel.store(B[i], 0.33333 * (A[i - 1] + A[i] + A[i + 1]))
        with kernel.for_(i, 1, n - 1):
            kernel.store(A[i], 0.33333 * (B[i - 1] + B[i] + B[i + 1]))

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_jacobi_1d(preset: str):
    tsteps, n = dims("jacobi-1d", preset)
    A = (np.arange(n) + 2.0) / n
    B = (np.arange(n) + 3.0) / n
    for _ in range(tsteps):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])
    return {"A": A}


# ----------------------------------------------------------------------
# jacobi-2d
# ----------------------------------------------------------------------
def build_jacobi_2d(preset: str) -> Built:
    tsteps, n = dims("jacobi-2d", preset)
    dm = DslModule("jacobi-2d")
    A = dm.matrix_f64("A", n, n)
    B = dm.matrix_f64("B", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            init.store(A[i, j], i.to_f64() * (j + 2).to_f64() / n)
            init.store(B[i, j], i.to_f64() * (j + 3).to_f64() / n)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(t, 0, tsteps):
        with kernel.for_(i, 1, n - 1):
            with kernel.for_(j, 1, n - 1):
                kernel.store(
                    B[i, j],
                    0.2 * (A[i, j] + A[i, j - 1] + A[i, j + 1] + A[i + 1, j] + A[i - 1, j]),
                )
        with kernel.for_(i, 1, n - 1):
            with kernel.for_(j, 1, n - 1):
                kernel.store(
                    A[i, j],
                    0.2 * (B[i, j] + B[i, j - 1] + B[i, j + 1] + B[i + 1, j] + B[i - 1, j]),
                )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_jacobi_2d(preset: str):
    tsteps, n = dims("jacobi-2d", preset)
    A = np.fromfunction(lambda i, j: i * (j + 2) / n, (n, n))
    B = np.fromfunction(lambda i, j: i * (j + 3) / n, (n, n))
    for _ in range(tsteps):
        B[1:-1, 1:-1] = 0.2 * (
            A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:] + A[2:, 1:-1] + A[:-2, 1:-1]
        )
        A[1:-1, 1:-1] = 0.2 * (
            B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:] + B[2:, 1:-1] + B[:-2, 1:-1]
        )
    return {"A": A}


# ----------------------------------------------------------------------
# seidel-2d (in-place Gauss-Seidel; order matters)
# ----------------------------------------------------------------------
def build_seidel_2d(preset: str) -> Built:
    tsteps, n = dims("seidel-2d", preset)
    dm = DslModule("seidel-2d")
    A = dm.matrix_f64("A", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            init.store(A[i, j], (i.to_f64() * (j + 2).to_f64() + 2.0) / n)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(t, 0, tsteps):
        with kernel.for_(i, 1, n - 1):
            with kernel.for_(j, 1, n - 1):
                kernel.store(
                    A[i, j],
                    (
                        A[i - 1, j - 1] + A[i - 1, j] + A[i - 1, j + 1]
                        + A[i, j - 1] + A[i, j] + A[i, j + 1]
                        + A[i + 1, j - 1] + A[i + 1, j] + A[i + 1, j + 1]
                    ) / 9.0,
                )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_seidel_2d(preset: str):
    tsteps, n = dims("seidel-2d", preset)
    A = np.fromfunction(lambda i, j: (i * (j + 2) + 2.0) / n, (n, n))
    for _ in range(tsteps):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                A[i, j] = (
                    A[i - 1, j - 1] + A[i - 1, j] + A[i - 1, j + 1]
                    + A[i, j - 1] + A[i, j] + A[i, j + 1]
                    + A[i + 1, j - 1] + A[i + 1, j] + A[i + 1, j + 1]
                ) / 9.0
    return {"A": A}


# ----------------------------------------------------------------------
# fdtd-2d
# ----------------------------------------------------------------------
def build_fdtd_2d(preset: str) -> Built:
    tmax, nx, ny = dims("fdtd-2d", preset)
    dm = DslModule("fdtd-2d")
    ex = dm.matrix_f64("ex", nx, ny)
    ey = dm.matrix_f64("ey", nx, ny)
    hz = dm.matrix_f64("hz", nx, ny)
    fict = dm.array_f64("fict", tmax)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, tmax):
        init.store(fict[i], i.to_f64())
    with init.for_(i, 0, nx):
        with init.for_(j, 0, ny):
            init.store(ex[i, j], i.to_f64() * (j + 1).to_f64() / nx)
            init.store(ey[i, j], i.to_f64() * (j + 2).to_f64() / ny)
            init.store(hz[i, j], i.to_f64() * (j + 3).to_f64() / nx)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(t, 0, tmax):
        with kernel.for_(j, 0, ny):
            kernel.store(ey[0, j], fict[t])
        with kernel.for_(i, 1, nx):
            with kernel.for_(j, 0, ny):
                kernel.store(ey[i, j], ey[i, j] - 0.5 * (hz[i, j] - hz[i - 1, j]))
        with kernel.for_(i, 0, nx):
            with kernel.for_(j, 1, ny):
                kernel.store(ex[i, j], ex[i, j] - 0.5 * (hz[i, j] - hz[i, j - 1]))
        with kernel.for_(i, 0, nx - 1):
            with kernel.for_(j, 0, ny - 1):
                kernel.store(
                    hz[i, j],
                    hz[i, j]
                    - 0.7 * (ex[i, j + 1] - ex[i, j] + ey[i + 1, j] - ey[i, j]),
                )

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"ex": ex, "ey": ey, "hz": hz}, dm)


def ref_fdtd_2d(preset: str):
    tmax, nx, ny = dims("fdtd-2d", preset)
    fict = np.arange(tmax, dtype=float)
    ex = np.fromfunction(lambda i, j: i * (j + 1) / nx, (nx, ny))
    ey = np.fromfunction(lambda i, j: i * (j + 2) / ny, (nx, ny))
    hz = np.fromfunction(lambda i, j: i * (j + 3) / nx, (nx, ny))
    for t in range(tmax):
        ey[0, :] = fict[t]
        ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] -= 0.7 * (
            ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
        )
    return {"ex": ex, "ey": ey, "hz": hz}


# ----------------------------------------------------------------------
# heat-3d
# ----------------------------------------------------------------------
def build_heat_3d(preset: str) -> Built:
    tsteps, n = dims("heat-3d", preset)
    dm = DslModule("heat-3d")
    A = dm.array_f64("A", n, n, n)
    B = dm.array_f64("B", n, n, n)

    init = dm.func("init")
    i, j, k = init.i32(), init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            with init.for_(k, 0, n):
                value = (i + j + (n - k)).to_f64() * 10.0 / n
                init.store(A[i, j, k], value)
                init.store(B[i, j, k], value)

    kernel = dm.func("kernel")
    t, i, j, k = kernel.i32(), kernel.i32(), kernel.i32(), kernel.i32()

    def sweep(dst, src):
        with kernel.for_(i, 1, n - 1):
            with kernel.for_(j, 1, n - 1):
                with kernel.for_(k, 1, n - 1):
                    kernel.store(
                        dst[i, j, k],
                        0.125 * (src[i + 1, j, k] - 2.0 * src[i, j, k] + src[i - 1, j, k])
                        + 0.125 * (src[i, j + 1, k] - 2.0 * src[i, j, k] + src[i, j - 1, k])
                        + 0.125 * (src[i, j, k + 1] - 2.0 * src[i, j, k] + src[i, j, k - 1])
                        + src[i, j, k],
                    )

    with kernel.for_(t, 1, tsteps + 1):
        sweep(B, A)
        sweep(A, B)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_heat_3d(preset: str):
    tsteps, n = dims("heat-3d", preset)
    A = np.fromfunction(lambda i, j, k: (i + j + (n - k)) * 10.0 / n, (n, n, n))
    B = A.copy()

    def sweep(dst, src):
        c = slice(1, -1)
        dst[c, c, c] = (
            0.125 * (src[2:, c, c] - 2.0 * src[c, c, c] + src[:-2, c, c])
            + 0.125 * (src[c, 2:, c] - 2.0 * src[c, c, c] + src[c, :-2, c])
            + 0.125 * (src[c, c, 2:] - 2.0 * src[c, c, c] + src[c, c, :-2])
            + src[c, c, c]
        )

    for _ in range(1, tsteps + 1):
        sweep(B, A)
        sweep(A, B)
    return {"A": A}


# ----------------------------------------------------------------------
# adi (alternating-direction implicit, tridiagonal sweeps)
# ----------------------------------------------------------------------
def build_adi(preset: str) -> Built:
    tsteps, n = dims("adi", preset)
    dx = 1.0 / n
    dy = 1.0 / n
    dt = 1.0 / tsteps
    b1, b2 = 2.0, 1.0
    mul1 = b1 * dt / (dx * dx)
    mul2 = b2 * dt / (dy * dy)
    a = -mul1 / 2.0
    b = 1.0 + mul1
    c = a
    d = -mul2 / 2.0
    e = 1.0 + mul2
    f = d

    dm = DslModule("adi")
    u = dm.matrix_f64("u", n, n)
    v = dm.matrix_f64("v", n, n)
    p = dm.matrix_f64("p", n, n)
    q = dm.matrix_f64("q", n, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            init.store(u[i, j], (i + n - j).to_f64() / n)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(t, 1, tsteps + 1):
        # Column sweep.
        with kernel.for_(i, 1, n - 1):
            kernel.store(v[0, i], 1.0)
            kernel.store(p[i, 0], 0.0)
            kernel.store(q[i, 0], v[0, i])
            with kernel.for_(j, 1, n - 1):
                kernel.store(p[i, j], -c / (a * p[i, j - 1] + b))
                kernel.store(
                    q[i, j],
                    (
                        -d * u[j, i - 1]
                        + (1.0 + 2.0 * d) * u[j, i]
                        - f * u[j, i + 1]
                        - a * q[i, j - 1]
                    )
                    / (a * p[i, j - 1] + b),
                )
            kernel.store(v[n - 1, i], 1.0)
            with kernel.for_(j, n - 2, 0, step=-1):
                kernel.store(v[j, i], p[i, j] * v[j + 1, i] + q[i, j])
        # Row sweep.
        with kernel.for_(i, 1, n - 1):
            kernel.store(u[i, 0], 1.0)
            kernel.store(p[i, 0], 0.0)
            kernel.store(q[i, 0], u[i, 0])
            with kernel.for_(j, 1, n - 1):
                kernel.store(p[i, j], -f / (d * p[i, j - 1] + e))
                kernel.store(
                    q[i, j],
                    (
                        -a * v[i - 1, j]
                        + (1.0 + 2.0 * a) * v[i, j]
                        - c * v[i + 1, j]
                        - d * q[i, j - 1]
                    )
                    / (d * p[i, j - 1] + e),
                )
            kernel.store(u[i, n - 1], 1.0)
            with kernel.for_(j, n - 2, 0, step=-1):
                kernel.store(u[i, j], p[i, j] * u[i, j + 1] + q[i, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"u": u}, dm)


def ref_adi(preset: str):
    tsteps, n = dims("adi", preset)
    dx = 1.0 / n
    dy = 1.0 / n
    dt = 1.0 / tsteps
    b1, b2 = 2.0, 1.0
    mul1 = b1 * dt / (dx * dx)
    mul2 = b2 * dt / (dy * dy)
    a = -mul1 / 2.0
    b = 1.0 + mul1
    c = a
    d = -mul2 / 2.0
    e = 1.0 + mul2
    f = d
    u = np.fromfunction(lambda i, j: (i + n - j) / n, (n, n))
    v = np.zeros((n, n))
    p = np.zeros((n, n))
    q = np.zeros((n, n))
    for _ in range(1, tsteps + 1):
        for i in range(1, n - 1):
            v[0, i] = 1.0
            p[i, 0] = 0.0
            q[i, 0] = v[0, i]
            for j in range(1, n - 1):
                p[i, j] = -c / (a * p[i, j - 1] + b)
                q[i, j] = (
                    -d * u[j, i - 1] + (1.0 + 2.0 * d) * u[j, i] - f * u[j, i + 1]
                    - a * q[i, j - 1]
                ) / (a * p[i, j - 1] + b)
            v[n - 1, i] = 1.0
            for j in range(n - 2, 0, -1):
                v[j, i] = p[i, j] * v[j + 1, i] + q[i, j]
        for i in range(1, n - 1):
            u[i, 0] = 1.0
            p[i, 0] = 0.0
            q[i, 0] = u[i, 0]
            for j in range(1, n - 1):
                p[i, j] = -f / (d * p[i, j - 1] + e)
                q[i, j] = (
                    -a * v[i - 1, j] + (1.0 + 2.0 * a) * v[i, j] - c * v[i + 1, j]
                    - d * q[i, j - 1]
                ) / (d * p[i, j - 1] + e)
            u[i, n - 1] = 1.0
            for j in range(n - 2, 0, -1):
                u[i, j] = p[i, j] * u[i, j + 1] + q[i, j]
    return {"u": u}


WORKLOADS = [
    Workload("adi", "polybench", build_adi, ref_adi, ("u",), ("stencil",)),
    Workload("fdtd-2d", "polybench", build_fdtd_2d, ref_fdtd_2d, ("ex", "ey", "hz"), ("stencil",)),
    Workload("heat-3d", "polybench", build_heat_3d, ref_heat_3d, ("A",), ("stencil",)),
    Workload("jacobi-1d", "polybench", build_jacobi_1d, ref_jacobi_1d, ("A",), ("stencil",)),
    Workload("jacobi-2d", "polybench", build_jacobi_2d, ref_jacobi_2d, ("A",), ("stencil",)),
    Workload("seidel-2d", "polybench", build_seidel_2d, ref_seidel_2d, ("A",), ("stencil",)),
]
