"""Shared helpers for PolyBench kernel definitions."""

from __future__ import annotations

from repro.wasm.dsl import DslFunc, DslModule, Expr


def frac(expr: Expr, modulus: int) -> Expr:
    """The ubiquitous PolyBench init pattern ``((e) % m) / m`` as f64."""
    return (expr % modulus).to_f64() / float(modulus)


def make_bench(dm: DslModule, init: DslFunc, kernel: DslFunc) -> None:
    """Add the exported ``bench`` entry point: init then kernel."""
    bench = dm.func("bench")
    bench.call(init)
    bench.call(kernel)
