"""PolyBench solver kernels: cholesky, durbin, gramschmidt, lu, ludcmp,
trisolv.

SPD inputs for cholesky/lu/ludcmp use a diagonally-dominant Hilbert-like
matrix (``1/(i+j+1) + n·[i==j]``) so the factorisations are
well-conditioned at every size preset.
"""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule, Select
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import frac, make_bench
from repro.workloads.sizes import dims


def _spd_init(init, A, n):
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        with init.for_(j, 0, n):
            diag = Select(i.eq(j), float(n), 0.0)
            init.store(A[i, j], 1.0 / (i + j + 1).to_f64() + diag)


def _spd_ref(n):
    A = np.fromfunction(lambda i, j: 1.0 / (i + j + 1), (n, n))
    A += n * np.eye(n)
    return A


# ----------------------------------------------------------------------
# cholesky (in place, lower triangle)
# ----------------------------------------------------------------------
def build_cholesky(preset: str) -> Built:
    (n,) = dims("cholesky", preset)
    dm = DslModule("cholesky")
    A = dm.matrix_f64("A", n, n)

    init = dm.func("init")
    _spd_init(init, A, n)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, i):
            with kernel.for_(k, 0, j):
                kernel.store(A[i, j], A[i, j] - A[i, k] * A[j, k])
            kernel.store(A[i, j], A[i, j] / A[j, j])
        with kernel.for_(k, 0, i):
            kernel.store(A[i, i], A[i, i] - A[i, k] * A[i, k])
        kernel.store(A[i, i], A[i, i].sqrt())

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_cholesky(preset: str):
    (n,) = dims("cholesky", preset)
    A = _spd_ref(n)
    for i in range(n):
        for j in range(i):
            for k in range(j):
                A[i, j] -= A[i, k] * A[j, k]
            A[i, j] /= A[j, j]
        for k in range(i):
            A[i, i] -= A[i, k] * A[i, k]
        A[i, i] = np.sqrt(A[i, i])
    # The kernel never touches the strict upper triangle, which keeps
    # its initial values — mirror that exactly.
    return {"A": A}


# ----------------------------------------------------------------------
# durbin (Levinson-Durbin recursion)
# ----------------------------------------------------------------------
def build_durbin(preset: str) -> Built:
    (n,) = dims("durbin", preset)
    dm = DslModule("durbin")
    r = dm.array_f64("r", n)
    y = dm.array_f64("y", n)
    z = dm.array_f64("z", n)

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, n):
        init.store(r[i], (n + 1 - i).to_f64())

    kernel = dm.func("kernel")
    k, i = kernel.i32(), kernel.i32()
    alpha, beta, summ = kernel.f64(), kernel.f64(), kernel.f64()
    kernel.store(y[0], -r[0])
    kernel.set(beta, 1.0)
    kernel.set(alpha, -r[0])
    with kernel.for_(k, 1, n):
        kernel.set(beta, (1.0 - alpha * alpha) * beta)
        kernel.set(summ, 0.0)
        with kernel.for_(i, 0, k):
            kernel.set(summ, summ + r[k - i - 1] * y[i])
        kernel.set(alpha, -(r[k] + summ) / beta)
        with kernel.for_(i, 0, k):
            kernel.store(z[i], y[i] + alpha * y[k - i - 1])
        with kernel.for_(i, 0, k):
            kernel.store(y[i], z[i])
        kernel.store(y[k], alpha)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"y": y}, dm)


def ref_durbin(preset: str):
    (n,) = dims("durbin", preset)
    r = np.array([float(n + 1 - i) for i in range(n)])
    y = np.zeros(n)
    z = np.zeros(n)
    y[0] = -r[0]
    beta, alpha = 1.0, -r[0]
    for k in range(1, n):
        beta = (1.0 - alpha * alpha) * beta
        summ = sum(r[k - i - 1] * y[i] for i in range(k))
        alpha = -(r[k] + summ) / beta
        for i in range(k):
            z[i] = y[i] + alpha * y[k - i - 1]
        y[:k] = z[:k]
        y[k] = alpha
    return {"y": y}


# ----------------------------------------------------------------------
# gramschmidt (modified Gram-Schmidt QR)
# ----------------------------------------------------------------------
def build_gramschmidt(preset: str) -> Built:
    m, n = dims("gramschmidt", preset)
    dm = DslModule("gramschmidt")
    A = dm.matrix_f64("A", m, n)
    R = dm.matrix_f64("R", n, n)
    Q = dm.matrix_f64("Q", m, n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, m):
        with init.for_(j, 0, n):
            # Diagonal boost keeps the columns linearly independent.
            bump = Select(i.eq(j), float(m), 0.0)
            init.store(A[i, j], frac(i * j + i + 1, m) * 100.0 + 10.0 + bump)

    kernel = dm.func("kernel")
    k, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    nrm = kernel.f64()
    with kernel.for_(k, 0, n):
        kernel.set(nrm, 0.0)
        with kernel.for_(i, 0, m):
            kernel.set(nrm, nrm + A[i, k] * A[i, k])
        kernel.store(R[k, k], nrm.sqrt())
        with kernel.for_(i, 0, m):
            kernel.store(Q[i, k], A[i, k] / R[k, k])
        with kernel.for_(j, k + 1, n):
            kernel.store(R[k, j], 0.0)
            with kernel.for_(i, 0, m):
                kernel.store(R[k, j], R[k, j] + Q[i, k] * A[i, j])
            with kernel.for_(i, 0, m):
                kernel.store(A[i, j], A[i, j] - Q[i, k] * R[k, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"Q": Q, "R": R}, dm)


def ref_gramschmidt(preset: str):
    m, n = dims("gramschmidt", preset)
    A = np.fromfunction(
        lambda i, j: ((i * j + i + 1) % m) / m * 100.0 + 10.0, (m, n)
    )
    for d in range(min(m, n)):
        A[d, d] += m
    R = np.zeros((n, n))
    Q = np.zeros((m, n))
    for k in range(n):
        nrm = float(np.dot(A[:, k], A[:, k]))
        R[k, k] = np.sqrt(nrm)
        Q[:, k] = A[:, k] / R[k, k]
        for j in range(k + 1, n):
            R[k, j] = float(np.dot(Q[:, k], A[:, j]))
            A[:, j] -= Q[:, k] * R[k, j]
    return {"Q": Q, "R": R}


# ----------------------------------------------------------------------
# lu (in place)
# ----------------------------------------------------------------------
def build_lu(preset: str) -> Built:
    (n,) = dims("lu", preset)
    dm = DslModule("lu")
    A = dm.matrix_f64("A", n, n)

    init = dm.func("init")
    _spd_init(init, A, n)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, i):
            with kernel.for_(k, 0, j):
                kernel.store(A[i, j], A[i, j] - A[i, k] * A[k, j])
            kernel.store(A[i, j], A[i, j] / A[j, j])
        with kernel.for_(j, i, n):
            with kernel.for_(k, 0, i):
                kernel.store(A[i, j], A[i, j] - A[i, k] * A[k, j])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"A": A}, dm)


def ref_lu(preset: str):
    (n,) = dims("lu", preset)
    A = _spd_ref(n)
    for i in range(n):
        for j in range(i):
            for k in range(j):
                A[i, j] -= A[i, k] * A[k, j]
            A[i, j] /= A[j, j]
        for j in range(i, n):
            for k in range(i):
                A[i, j] -= A[i, k] * A[k, j]
    return {"A": A}


# ----------------------------------------------------------------------
# ludcmp (LU factorisation + triangular solves)
# ----------------------------------------------------------------------
def build_ludcmp(preset: str) -> Built:
    (n,) = dims("ludcmp", preset)
    dm = DslModule("ludcmp")
    A = dm.matrix_f64("A", n, n)
    b = dm.array_f64("b", n)
    x = dm.array_f64("x", n)
    y = dm.array_f64("y", n)

    init = dm.func("init")
    _spd_init(init, A, n)
    i = init.i32()
    with init.for_(i, 0, n):
        init.store(b[i], (i + 1).to_f64() / n / 2.0 + 4.0)

    kernel = dm.func("kernel")
    i, j, k = kernel.i32(), kernel.i32(), kernel.i32()
    w = kernel.f64()
    with kernel.for_(i, 0, n):
        with kernel.for_(j, 0, i):
            kernel.set(w, A[i, j])
            with kernel.for_(k, 0, j):
                kernel.set(w, w - A[i, k] * A[k, j])
            kernel.store(A[i, j], w / A[j, j])
        with kernel.for_(j, i, n):
            kernel.set(w, A[i, j])
            with kernel.for_(k, 0, i):
                kernel.set(w, w - A[i, k] * A[k, j])
            kernel.store(A[i, j], w)
    with kernel.for_(i, 0, n):
        kernel.set(w, b[i])
        with kernel.for_(j, 0, i):
            kernel.set(w, w - A[i, j] * y[j])
        kernel.store(y[i], w)
    with kernel.for_(i, n - 1, -1, step=-1):
        kernel.set(w, y[i])
        with kernel.for_(j, i + 1, n):
            kernel.set(w, w - A[i, j] * x[j])
        kernel.store(x[i], w / A[i, i])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"x": x}, dm)


def ref_ludcmp(preset: str):
    (n,) = dims("ludcmp", preset)
    A = _spd_ref(n)
    b = (np.arange(n) + 1.0) / n / 2.0 + 4.0
    x = np.zeros(n)
    y = np.zeros(n)
    for i in range(n):
        for j in range(i):
            w = A[i, j]
            for k in range(j):
                w -= A[i, k] * A[k, j]
            A[i, j] = w / A[j, j]
        for j in range(i, n):
            w = A[i, j]
            for k in range(i):
                w -= A[i, k] * A[k, j]
            A[i, j] = w
    for i in range(n):
        w = b[i]
        for j in range(i):
            w -= A[i, j] * y[j]
        y[i] = w
    for i in range(n - 1, -1, -1):
        w = y[i]
        for j in range(i + 1, n):
            w -= A[i, j] * x[j]
        x[i] = w / A[i, i]
    return {"x": x}


# ----------------------------------------------------------------------
# trisolv (forward substitution)
# ----------------------------------------------------------------------
def build_trisolv(preset: str) -> Built:
    (n,) = dims("trisolv", preset)
    dm = DslModule("trisolv")
    L = dm.matrix_f64("L", n, n)
    x = dm.array_f64("x", n)
    b = dm.array_f64("b", n)

    init = dm.func("init")
    i, j = init.i32(), init.i32()
    with init.for_(i, 0, n):
        init.store(b[i], -(i.to_f64()) / n - 10.0)
        with init.for_(j, 0, i + 1):
            init.store(L[i, j], (i + n - j + 1).to_f64() * 2.0 / n)

    kernel = dm.func("kernel")
    i, j = kernel.i32(), kernel.i32()
    with kernel.for_(i, 0, n):
        kernel.store(x[i], b[i])
        with kernel.for_(j, 0, i):
            kernel.store(x[i], x[i] - L[i, j] * x[j])
        kernel.store(x[i], x[i] / L[i, i])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"x": x}, dm)


def ref_trisolv(preset: str):
    (n,) = dims("trisolv", preset)
    L = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1):
            L[i, j] = (i + n - j + 1) * 2.0 / n
    b = -(np.arange(n, dtype=float)) / n - 10.0
    x = np.zeros(n)
    for i in range(n):
        x[i] = b[i]
        for j in range(i):
            x[i] -= L[i, j] * x[j]
        x[i] /= L[i, i]
    return {"x": x}


WORKLOADS = [
    Workload("cholesky", "polybench", build_cholesky, ref_cholesky, ("A",), ("solver",)),
    Workload("durbin", "polybench", build_durbin, ref_durbin, ("y",), ("solver",)),
    Workload("gramschmidt", "polybench", build_gramschmidt, ref_gramschmidt, ("Q", "R"), ("solver",)),
    Workload("lu", "polybench", build_lu, ref_lu, ("A",), ("solver",)),
    Workload("ludcmp", "polybench", build_ludcmp, ref_ludcmp, ("x",), ("solver",)),
    Workload("trisolv", "polybench", build_trisolv, ref_trisolv, ("x",), ("solver",)),
]
