"""PolyBench/C 4.2: all 30 kernels, authored in the Wasm DSL.

Kernels follow the upstream algorithms (loop structure, update order,
triangular iteration spaces) with deterministic initialisation; the
NumPy references in each module mirror the exact same recurrences, so
every kernel is verified element-wise in the test suite.
"""

from repro.workloads.polybench import (
    blas,
    datamining,
    medley,
    solvers,
    stencils,
    triangular,
)

ALL = (
    blas.WORKLOADS
    + triangular.WORKLOADS
    + solvers.WORKLOADS
    + datamining.WORKLOADS
    + medley.WORKLOADS
    + stencils.WORKLOADS
)
