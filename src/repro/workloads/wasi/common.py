"""Shared helpers for the WASI (syscall-bound) workload family.

Compute-family workloads are closed Wasm modules; WASI-family ones
import preview-1 syscalls and run against a
:class:`repro.runtime.wasi.WasiEnvironment` seeded with deterministic
virtual files.  Everything observable — file bytes, the xorshift
random stream, the virtual clock — is replicated here in plain Python
so NumPy references can predict every checked value exactly, and runs
are bit-identical across interpreter tiers.

DSL side: modules talk to WASI through pointers into their own linear
memory (iovecs, out-params, path strings).  The helpers below write
constant strings into i32 scratch arrays at build time (no data
segments needed) and extract bytes from little-endian i32 words with
shift/mask — the DSL has no 8-bit loads by design.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.wasm.dsl import DslFunc, DslModule, ImportedFunc

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Virtual clock step, mirrored from repro.runtime.wasi.
CLOCK_STEP_NS = 1_000


# ----------------------------------------------------------------------
# Deterministic content generation (shared with references)
# ----------------------------------------------------------------------

def _lcg(seed_text: str) -> Iterator[int]:
    """Deterministic byte stream seeded by a name (LCG, full period)."""
    state = 0
    for ch in seed_text.encode():
        state = (state * 131 + ch) & _MASK64
    state = state or 1
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) & _MASK64
        yield (state >> 33) & 0xFF


def binary_bytes(name: str, size: int) -> bytes:
    """``size`` pseudo-random bytes, a pure function of ``name``."""
    stream = _lcg(name)
    return bytes(next(stream) for _ in range(size))


def text_bytes(name: str, lines: int) -> bytes:
    """Line-oriented pseudo-text: lowercase words, variable lengths."""
    stream = _lcg(name)
    out = bytearray()
    for _ in range(lines):
        length = 24 + next(stream) % 40
        for index in range(length):
            byte = next(stream)
            out.append(0x20 if byte % 7 == 0 else 0x61 + byte % 26)
        out.append(0x0A)
    return bytes(out)


class WasiRandomRef:
    """Reference replica of WasiEnvironment's random_get stream."""

    def __init__(self, seed: int = 0) -> None:
        self.state = (seed * 2654435761 + 0x9E3779B9) & _MASK64 or 1

    def get(self, nbytes: int) -> bytes:
        out = bytearray()
        state = self.state
        while len(out) < nbytes:
            state ^= (state << 13) & _MASK64
            state ^= state >> 7
            state ^= (state << 17) & _MASK64
            out += state.to_bytes(8, "little")
        self.state = state
        return bytes(out[:nbytes])


# ----------------------------------------------------------------------
# DSL-side ABI helpers
# ----------------------------------------------------------------------

def str_words(text: str) -> List[int]:
    """A string as little-endian i32 words, zero-padded to 4 bytes."""
    raw = text.encode()
    raw += b"\x00" * (-len(raw) % 4)
    return [
        int.from_bytes(raw[k:k + 4], "little") for k in range(0, len(raw), 4)
    ]


def emit_str(f: DslFunc, array, word_offset: int, text: str) -> int:
    """Store ``text`` into an i32 array at a word offset; returns its
    byte address inside linear memory."""
    for index, word in enumerate(str_words(text)):
        f.store(array[word_offset + index], word)
    return array.base + 4 * word_offset


def byte_at(buf, index):
    """Byte ``index`` of a packed little-endian i32 buffer array."""
    return (buf[index >> 2] >> ((index & 3) << 3)) & 0xFF


def import_wasi(dm: DslModule, *names: str) -> dict[str, ImportedFunc]:
    """Declare the named preview-1 imports (before any ``dm.func``)."""
    signatures = {
        "args_sizes_get": (("i32", "i32"), ("i32",)),
        "args_get": (("i32", "i32"), ("i32",)),
        "environ_sizes_get": (("i32", "i32"), ("i32",)),
        "environ_get": (("i32", "i32"), ("i32",)),
        "clock_time_get": (("i32", "i64", "i32"), ("i32",)),
        "random_get": (("i32", "i32"), ("i32",)),
        "poll_oneoff": (("i32", "i32", "i32", "i32"), ("i32",)),
        "fd_write": (("i32", "i32", "i32", "i32"), ("i32",)),
        "fd_read": (("i32", "i32", "i32", "i32"), ("i32",)),
        "fd_seek": (("i32", "i64", "i32", "i32"), ("i32",)),
        "fd_close": (("i32",), ("i32",)),
        "fd_fdstat_get": (("i32", "i32"), ("i32",)),
        "path_open": (
            ("i32", "i32", "i32", "i32", "i32", "i64", "i64", "i32", "i32"),
            ("i32",),
        ),
        "proc_exit": (("i32",), ()),
    }
    table = {}
    for name in names:
        params, results = signatures[name]
        table[name] = dm.import_func(
            "wasi_snapshot_preview1", name, params, results
        )
    return table
