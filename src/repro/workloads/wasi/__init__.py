"""The WASI (syscall-bound) workload family.

Four kernels whose cost is split between bounds-checked userspace work
and preview-1 syscalls crossing the simulated kernel — the scenario
axis the compute suites (PolyBench, SPEC proxies) cannot cover:

* ``wasi-grep``       — line filter streaming a text file via fd_read;
* ``wasi-checksum``   — two-pass rolling checksum over a direct-I/O file;
* ``wasi-montecarlo`` — random_get/clock_time_get-bound π estimate;
* ``wasi-logappend``  — append-mode log writer with stat/env calls.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload
from repro.workloads.wasi.filters import (
    build_wasi_checksum,
    build_wasi_grep,
    ref_wasi_checksum,
    ref_wasi_grep,
)
from repro.workloads.wasi.hostload import (
    build_wasi_logappend,
    build_wasi_montecarlo,
    ref_wasi_logappend,
    ref_wasi_montecarlo,
)

ALL: List[Workload] = [
    Workload(
        name="wasi-grep",
        suite="wasi",
        build=build_wasi_grep,
        reference=ref_wasi_grep,
        check_arrays=("counts",),
        tags=("wasi", "stream", "read-heavy"),
    ),
    Workload(
        name="wasi-checksum",
        suite="wasi",
        build=build_wasi_checksum,
        reference=ref_wasi_checksum,
        check_arrays=("sums",),
        tags=("wasi", "stream", "direct-io"),
    ),
    Workload(
        name="wasi-montecarlo",
        suite="wasi",
        build=build_wasi_montecarlo,
        reference=ref_wasi_montecarlo,
        check_arrays=("hits", "ticks"),
        tags=("wasi", "random", "clock"),
    ),
    Workload(
        name="wasi-logappend",
        suite="wasi",
        build=build_wasi_logappend,
        reference=ref_wasi_logappend,
        check_arrays=("sizes",),
        tags=("wasi", "write-heavy", "append"),
    ),
]
