"""WASI stream-processing workloads: wasi-grep and wasi-checksum.

Both are the eWAPA-style shape the compute suite lacks: a tight
userspace scan (every byte access bounds-checked) interleaved with a
steady stream of kernel crossings (``fd_read`` chunks, seeks, the
final summary write), so total cost is check cost *plus* syscall tax.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.wasi import WasiEnvironment
from repro.workloads.base import Built, Workload
from repro.workloads.sizes import dims
from repro.workloads.wasi.common import (
    binary_bytes,
    byte_at,
    emit_str,
    import_wasi,
    text_bytes,
)
from repro.wasm.dsl import DslModule

# WASI ABI constants used by the builders (match repro.runtime.wasi).
_RIGHT_READ = 1 << 1
_RIGHT_SEEK = 1 << 2
_PREOPEN = 3
_WHENCE_SET = 0
_WHENCE_END = 2

_NEWLINE = 0x0A
_TARGET = ord("e")


# ----------------------------------------------------------------------
# wasi-grep: line-oriented file filter
# ----------------------------------------------------------------------
def build_wasi_grep(preset: str) -> Built:
    lines, chunk = dims("wasi-grep", preset)
    dm = DslModule("wasi-grep")
    w = import_wasi(
        dm, "path_open", "fd_read", "fd_write", "fd_close", "proc_exit"
    )
    io = dm.array_i32("io", 8)
    buf = dm.array_i32("buf", chunk // 4)
    counts = dm.array_i32("counts", 3)

    f = dm.func("bench")
    fd, nread, going = f.i32("fd"), f.i32("nread"), f.i32("going")
    b, byte, linehit = f.i32("b"), f.i32("byte"), f.i32("linehit")
    path = emit_str(f, io, 0, "in.txt")
    err = f.i32("err")
    f.set(err, f.call_import(
        w["path_open"], _PREOPEN, 0, path, 6, 0,
        _RIGHT_READ | _RIGHT_SEEK, 0, 0, io.base + 8,
    ))
    with f.if_(err.ne(0)):
        f.call_import(w["proc_exit"], 1)
    f.set(fd, io[2])
    f.set(going, 1)
    f.set(linehit, 0)
    with f.while_(lambda: going):
        f.store(io[3], buf.base)    # iovec.base
        f.store(io[4], chunk)       # iovec.len
        f.eval_drop(f.call_import(
            w["fd_read"], fd, io.base + 12, 1, io.base + 20
        ))
        f.set(nread, io[5])
        with f.if_(nread.eq(0)) as branch:
            f.set(going, 0)
            branch.otherwise()
            with f.for_(b, 0, nread):
                f.set(byte, byte_at(buf, b))
                with f.if_(byte.eq(_NEWLINE)) as inner:
                    f.store(counts[0], counts[0] + 1)
                    f.store(counts[1], counts[1] + linehit)
                    f.set(linehit, 0)
                    inner.otherwise()
                    with f.if_(byte.eq(_TARGET)):
                        f.set(linehit, 1)
            f.store(counts[2], counts[2] + nread)
            with f.if_(nread < chunk):
                f.set(going, 0)
    f.eval_drop(f.call_import(w["fd_close"], fd))
    # Summary: the three counters, raw little-endian, to stdout.
    f.store(io[3], counts.base)
    f.store(io[4], 12)
    f.eval_drop(f.call_import(w["fd_write"], 1, io.base + 12, 1, io.base + 20))

    module = dm.build()
    return Built(
        module=module,
        arrays={"io": io, "buf": buf, "counts": counts},
        dm=dm,
        env_factory=lambda: WasiEnvironment(
            argv=["wasi-grep"], seed=1,
            files={"in.txt": grep_input(preset)},
        ),
    )


def grep_input(preset: str) -> bytes:
    lines, _chunk = dims("wasi-grep", preset)
    return text_bytes("in.txt", lines)


def ref_wasi_grep(preset: str) -> dict:
    text = grep_input(preset)
    newlines = text.count(b"\n")
    hits = sum(1 for line in text.split(b"\n")[:-1] if b"e" in line)
    counts = np.array([newlines, hits, len(text)], dtype=np.uint32)
    return {"counts": counts.view(np.int32)}


def grep_expected_stdout(preset: str) -> bytes:
    ref = ref_wasi_grep(preset)["counts"].view(np.uint32)
    return b"".join(int(v).to_bytes(4, "little") for v in ref)


# ----------------------------------------------------------------------
# wasi-checksum: two-pass streaming checksum over a direct-I/O file
# ----------------------------------------------------------------------
def build_wasi_checksum(preset: str) -> Built:
    nbytes, chunk = dims("wasi-checksum", preset)
    dm = DslModule("wasi-checksum")
    w = import_wasi(
        dm, "path_open", "fd_read", "fd_seek", "fd_write", "fd_close",
        "proc_exit",
    )
    io = dm.array_i32("io", 8)
    buf = dm.array_i32("buf", chunk // 4)
    sums = dm.array_i32("sums", 4)
    off = dm.array_i64("off", 1)

    f = dm.func("bench")
    fd, nread, going = f.i32("fd"), f.i32("nread"), f.i32("going")
    b, acc = f.i32("b"), f.i32("acc")
    path = emit_str(f, io, 0, "data.bin")
    err = f.i32("err")
    f.set(err, f.call_import(
        w["path_open"], _PREOPEN, 0, path, 8, 0,
        _RIGHT_READ | _RIGHT_SEEK, 0, 0, io.base + 8,
    ))
    with f.if_(err.ne(0)):
        f.call_import(w["proc_exit"], 1)
    f.set(fd, io[2])

    for pass_index, multiplier in ((0, 31), (1, 131)):
        f.set(acc, 0)
        f.set(going, 1)
        with f.while_(lambda: going):
            f.store(io[3], buf.base)
            f.store(io[4], chunk)
            f.eval_drop(f.call_import(
                w["fd_read"], fd, io.base + 12, 1, io.base + 20
            ))
            f.set(nread, io[5])
            with f.if_(nread.eq(0)) as branch:
                f.set(going, 0)
                branch.otherwise()
                with f.for_(b, 0, nread):
                    f.set(acc, acc * multiplier + byte_at(buf, b))
                f.store(sums[3], sums[3] + 1)
                with f.if_(nread < chunk):
                    f.set(going, 0)
        f.store(sums[pass_index], acc)
        f.eval_drop(f.call_import(
            w["fd_seek"], fd, 0, _WHENCE_SET, off.base
        ))
    f.eval_drop(f.call_import(w["fd_seek"], fd, 0, _WHENCE_END, off.base))
    f.store(sums[2], off[0].to_i32())
    f.eval_drop(f.call_import(w["fd_close"], fd))
    f.store(io[3], sums.base)
    f.store(io[4], 16)
    f.eval_drop(f.call_import(w["fd_write"], 1, io.base + 12, 1, io.base + 20))

    module = dm.build()
    return Built(
        module=module,
        arrays={"io": io, "buf": buf, "sums": sums, "off": off},
        dm=dm,
        env_factory=lambda: WasiEnvironment(
            argv=["wasi-checksum"], seed=2,
            files={"data.bin": checksum_input(preset)},
            direct=("data.bin",),
        ),
    )


def checksum_input(preset: str) -> bytes:
    nbytes, _chunk = dims("wasi-checksum", preset)
    return binary_bytes("data.bin", nbytes)


def ref_wasi_checksum(preset: str) -> dict:
    nbytes, chunk = dims("wasi-checksum", preset)
    data = checksum_input(preset)
    mask = 0xFFFFFFFF
    passes = []
    for multiplier in (31, 131):
        acc = 0
        for value in data:
            acc = (acc * multiplier + value) & mask
        passes.append(acc)
    # Per pass the module counts one read per non-empty chunk; an even
    # division costs an extra (uncounted) empty read to observe EOF.
    full, rem = divmod(len(data), chunk)
    per_pass = full + 1 if rem else full
    sums = np.array(
        [passes[0], passes[1], len(data), 2 * per_pass], dtype=np.uint32
    )
    return {"sums": sums.view(np.int32)}
