"""WASI host-call-heavy workloads: wasi-montecarlo and wasi-logappend.

wasi-montecarlo is the clock/random-bound shape (every sample costs a
``random_get``, periodic ``clock_time_get`` ticks, a ``poll_oneoff``
epilogue); wasi-logappend is the write-amplified server loop (append
records through ``fd_write``, periodic ``fd_fdstat_get``, environment
introspection, reopen-and-measure).  Between them they exercise every
syscall the redesigned surface declares.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.wasi import WasiEnvironment
from repro.workloads.base import Built, Workload
from repro.workloads.sizes import dims
from repro.workloads.wasi.common import (
    CLOCK_STEP_NS,
    WasiRandomRef,
    emit_str,
    import_wasi,
)
from repro.wasm.dsl import DslModule

_RIGHT_READ = 1 << 1
_RIGHT_SEEK = 1 << 2
_RIGHT_WRITE = 1 << 6
_PREOPEN = 3
_WHENCE_END = 2
_OFLAGS_CREAT = 1
_FDFLAGS_APPEND = 1

_SCALE = float(1 << 31)

#: Environment the logappend factory installs (insertion order matters:
#: the reference replays the same block layout byte for byte).
_LOG_ENVIRON = {"SUITE": "wasi", "RUN": "logappend"}


# ----------------------------------------------------------------------
# wasi-montecarlo: clock/random-heavy Monte Carlo π estimate
# ----------------------------------------------------------------------
def build_wasi_montecarlo(preset: str) -> Built:
    samples, every = dims("wasi-montecarlo", preset)
    dm = DslModule("wasi-montecarlo")
    w = import_wasi(dm, "random_get", "clock_time_get", "poll_oneoff")
    io = dm.array_i32("io", 4)
    subs = dm.array_i32("subs", 24)    # two 48-byte subscriptions
    events = dm.array_i32("events", 16)  # two 32-byte events
    hits = dm.array_i32("hits", 2)
    ticks = dm.array_i64("ticks", 2)

    f = dm.func("bench")
    i, x, y = f.i32("i"), f.i32("x"), f.i32("y")
    fx, fy = f.f64("fx"), f.f64("fy")
    with f.for_(i, 0, samples):
        f.eval_drop(f.call_import(w["random_get"], io.base, 8))
        f.set(x, io[0] & 0x7FFFFFFF)
        f.set(y, io[1] & 0x7FFFFFFF)
        f.set(fx, x.to_f64() / _SCALE)
        f.set(fy, y.to_f64() / _SCALE)
        with f.if_((fx * fx + fy * fy) <= 1.0):
            f.store(hits[0], hits[0] + 1)
        with f.if_((i % every).eq(0)):
            f.eval_drop(f.call_import(
                w["clock_time_get"], 1, 0, ticks.base
            ))
    f.store(hits[1], samples)
    # Epilogue: a two-subscription poll (one clock, one fd) and a final
    # clock read into ticks[1].
    f.store(subs[0], 7)    # userdata lo (clock subscription)
    f.store(subs[1], 0)
    f.store(subs[2], 0)    # tag 0 = clock
    f.store(subs[12], 9)   # userdata lo (fd_read subscription)
    f.store(subs[13], 0)
    f.store(subs[14], 1)   # tag 1 = fd_read
    f.eval_drop(f.call_import(
        w["poll_oneoff"], subs.base, events.base, 2, io.base + 8
    ))
    f.eval_drop(f.call_import(w["clock_time_get"], 1, 0, ticks.base + 8))

    module = dm.build()
    return Built(
        module=module,
        arrays={
            "io": io, "subs": subs, "events": events,
            "hits": hits, "ticks": ticks,
        },
        dm=dm,
        env_factory=lambda: WasiEnvironment(argv=["wasi-montecarlo"], seed=3),
    )


def ref_wasi_montecarlo(preset: str) -> dict:
    samples, every = dims("wasi-montecarlo", preset)
    rng = WasiRandomRef(seed=3)
    hits = 0
    clock_calls = 0
    for index in range(samples):
        raw = rng.get(8)
        x = int.from_bytes(raw[0:4], "little") & 0x7FFFFFFF
        y = int.from_bytes(raw[4:8], "little") & 0x7FFFFFFF
        fx, fy = x / _SCALE, y / _SCALE
        if fx * fx + fy * fy <= 1.0:
            hits += 1
        if index % every == 0:
            clock_calls += 1
    last_loop_tick = CLOCK_STEP_NS * clock_calls
    # poll_oneoff advances one step per subscription (2), then the
    # final clock read advances once more and lands in ticks[1].
    final_tick = CLOCK_STEP_NS * (clock_calls + 2 + 1)
    return {
        "hits": np.array([hits, samples], dtype=np.int32),
        "ticks": np.array([last_loop_tick, final_tick], dtype=np.int64),
    }


# ----------------------------------------------------------------------
# wasi-logappend: append-only log writer with stat/env introspection
# ----------------------------------------------------------------------
def build_wasi_logappend(preset: str) -> Built:
    records, every = dims("wasi-logappend", preset)
    dm = DslModule("wasi-logappend")
    w = import_wasi(
        dm, "environ_sizes_get", "environ_get", "path_open", "fd_write",
        "fd_fdstat_get", "fd_seek", "fd_close", "proc_exit",
    )
    io = dm.array_i32("io", 8)
    rec = dm.array_i32("rec", 4)       # one 16-byte log record
    stat = dm.array_i32("stat", 6)     # 24-byte fdstat block
    envp = dm.array_i32("envp", 4)
    envbuf = dm.array_i32("envbuf", 16)
    sizes = dm.array_i32("sizes", 4)
    off = dm.array_i64("off", 1)

    f = dm.func("bench")
    fd, i, err = f.i32("fd"), f.i32("i"), f.i32("err")
    ck = f.i32("ck")
    f.eval_drop(f.call_import(
        w["environ_sizes_get"], sizes.base + 8, sizes.base + 4
    ))
    f.eval_drop(f.call_import(w["environ_get"], envp.base, envbuf.base))
    path = emit_str(f, io, 0, "app.log")
    f.set(err, f.call_import(
        w["path_open"], _PREOPEN, 0, path, 7, _OFLAGS_CREAT,
        _RIGHT_WRITE, 0, _FDFLAGS_APPEND, io.base + 8,
    ))
    with f.if_(err.ne(0)):
        f.call_import(w["proc_exit"], 1)
    f.set(fd, io[2])
    f.set(ck, 0)
    with f.for_(i, 0, records):
        f.set(ck, ck * 33 + i)
        f.store(rec[0], i)
        f.store(rec[1], i * i)
        f.store(rec[2], ck)
        f.store(rec[3], 0x5EED)
        f.store(io[3], rec.base)
        f.store(io[4], 16)
        f.eval_drop(f.call_import(
            w["fd_write"], fd, io.base + 12, 1, io.base + 20
        ))
        with f.if_((i % every).eq(0)):
            f.eval_drop(f.call_import(w["fd_fdstat_get"], fd, stat.base))
            f.store(sizes[3], sizes[3] + 1)
    f.eval_drop(f.call_import(w["fd_close"], fd))
    # Reopen read-only and measure the log we just wrote.
    f.set(err, f.call_import(
        w["path_open"], _PREOPEN, 0, path, 7, 0,
        _RIGHT_READ | _RIGHT_SEEK, 0, 0, io.base + 8,
    ))
    with f.if_(err.ne(0)):
        f.call_import(w["proc_exit"], 2)
    f.set(fd, io[2])
    f.eval_drop(f.call_import(w["fd_seek"], fd, 0, _WHENCE_END, off.base))
    f.store(sizes[0], off[0].to_i32())
    f.eval_drop(f.call_import(w["fd_close"], fd))

    module = dm.build()
    return Built(
        module=module,
        arrays={
            "io": io, "rec": rec, "stat": stat, "envp": envp,
            "envbuf": envbuf, "sizes": sizes, "off": off,
        },
        dm=dm,
        env_factory=lambda: WasiEnvironment(
            argv=["wasi-logappend"], seed=4, environ=dict(_LOG_ENVIRON)
        ),
    )


def ref_wasi_logappend(preset: str) -> dict:
    records, every = dims("wasi-logappend", preset)
    env_block = [
        f"{key}={value}\x00".encode() for key, value in _LOG_ENVIRON.items()
    ]
    stats = sum(1 for index in range(records) if index % every == 0)
    sizes = np.array(
        [
            16 * records,
            sum(len(entry) for entry in env_block),
            len(env_block),
            stats,
        ],
        dtype=np.int32,
    )
    return {"sizes": sizes}


WORKLOADS = []
