"""Floating-point SPEC proxies: 508.namd, 519.lbm, 544.nab."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import DslModule
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import make_bench
from repro.workloads.sizes import dims

_CUTOFF2 = 6.25  # namd/nab pair cutoff squared


# ----------------------------------------------------------------------
# 508.namd — Lennard-Jones pair forces + integration
# ----------------------------------------------------------------------
def build_namd(preset: str) -> Built:
    atoms, steps = dims("508.namd", preset)
    dm = DslModule("508.namd")
    px = dm.array_f64("px", atoms)
    py = dm.array_f64("py", atoms)
    pz = dm.array_f64("pz", atoms)
    fx = dm.array_f64("fx", atoms)
    fy = dm.array_f64("fy", atoms)
    fz = dm.array_f64("fz", atoms)

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, atoms):
        init.store(px[i], (i % 7).to_f64() * 0.73 + (i % 3).to_f64() * 0.21)
        init.store(py[i], (i % 5).to_f64() * 0.61 + (i % 4).to_f64() * 0.17)
        init.store(pz[i], (i % 6).to_f64() * 0.53 + (i % 2).to_f64() * 0.29)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    dx, dy, dz = kernel.f64(), kernel.f64(), kernel.f64()
    r2, inv6, force = kernel.f64(), kernel.f64(), kernel.f64()
    with kernel.for_(t, 0, steps):
        with kernel.for_(i, 0, atoms):
            kernel.store(fx[i], 0.0)
            kernel.store(fy[i], 0.0)
            kernel.store(fz[i], 0.0)
        with kernel.for_(i, 0, atoms):
            with kernel.for_(j, i + 1, atoms):
                kernel.set(dx, px[i] - px[j])
                kernel.set(dy, py[i] - py[j])
                kernel.set(dz, pz[i] - pz[j])
                kernel.set(r2, dx * dx + dy * dy + dz * dz + 0.01)
                with kernel.if_(r2 < _CUTOFF2):
                    kernel.set(inv6, 1.0 / (r2 * r2 * r2))
                    kernel.set(force, inv6 * (inv6 - 0.5) / r2)
                    kernel.store(fx[i], fx[i] + force * dx)
                    kernel.store(fy[i], fy[i] + force * dy)
                    kernel.store(fz[i], fz[i] + force * dz)
                    kernel.store(fx[j], fx[j] - force * dx)
                    kernel.store(fy[j], fy[j] - force * dy)
                    kernel.store(fz[j], fz[j] - force * dz)
        with kernel.for_(i, 0, atoms):
            kernel.store(px[i], px[i] + fx[i] * 1e-4)
            kernel.store(py[i], py[i] + fy[i] * 1e-4)
            kernel.store(pz[i], pz[i] + fz[i] * 1e-4)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"px": px, "py": py, "pz": pz}, dm)


def ref_namd(preset: str):
    atoms, steps = dims("508.namd", preset)
    idx = np.arange(atoms)
    px = (idx % 7) * 0.73 + (idx % 3) * 0.21
    py = (idx % 5) * 0.61 + (idx % 4) * 0.17
    pz = (idx % 6) * 0.53 + (idx % 2) * 0.29
    for _ in range(steps):
        fx = np.zeros(atoms)
        fy = np.zeros(atoms)
        fz = np.zeros(atoms)
        for i in range(atoms):
            for j in range(i + 1, atoms):
                dx, dy, dz = px[i] - px[j], py[i] - py[j], pz[i] - pz[j]
                r2 = dx * dx + dy * dy + dz * dz + 0.01
                if r2 < _CUTOFF2:
                    inv6 = 1.0 / (r2 * r2 * r2)
                    force = inv6 * (inv6 - 0.5) / r2
                    fx[i] += force * dx
                    fy[i] += force * dy
                    fz[i] += force * dz
                    fx[j] -= force * dx
                    fy[j] -= force * dy
                    fz[j] -= force * dz
        px += fx * 1e-4
        py += fy * 1e-4
        pz += fz * 1e-4
    return {"px": px, "py": py, "pz": pz}


# ----------------------------------------------------------------------
# 519.lbm — D2Q9 lattice-Boltzmann stream + collide (periodic)
# ----------------------------------------------------------------------
_D2Q9_CX = (0, 1, 0, -1, 0, 1, -1, -1, 1)
_D2Q9_CY = (0, 0, 1, 0, -1, 1, 1, -1, -1)
_D2Q9_W = (4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36)
_TAU = 0.8


def build_lbm(preset: str) -> Built:
    nx, ny, steps = dims("519.lbm", preset)
    dm = DslModule("519.lbm")
    f = dm.array_f64("f", 9, nx, ny)
    ftmp = dm.array_f64("ftmp", 9, nx, ny)

    init = dm.func("init")
    x, y = init.i32(), init.i32()
    with init.for_(x, 0, nx):
        with init.for_(y, 0, ny):
            for q in range(9):
                perturb = ((x * 3 + y * 5 + q) % 10).to_f64() * 0.001
                init.store(f[q, x, y], _D2Q9_W[q] + perturb)

    kernel = dm.func("kernel")
    t, x, y = kernel.i32(), kernel.i32(), kernel.i32()
    rho, ux, uy, usq = kernel.f64(), kernel.f64(), kernel.f64(), kernel.f64()
    cu = kernel.f64()
    with kernel.for_(t, 0, steps):
        # Collide into ftmp.
        with kernel.for_(x, 0, nx):
            with kernel.for_(y, 0, ny):
                kernel.set(rho, 0.0)
                kernel.set(ux, 0.0)
                kernel.set(uy, 0.0)
                for q in range(9):
                    kernel.set(rho, rho + f[q, x, y])
                    if _D2Q9_CX[q]:
                        kernel.set(ux, ux + float(_D2Q9_CX[q]) * f[q, x, y])
                    if _D2Q9_CY[q]:
                        kernel.set(uy, uy + float(_D2Q9_CY[q]) * f[q, x, y])
                kernel.set(ux, ux / rho)
                kernel.set(uy, uy / rho)
                kernel.set(usq, ux * ux + uy * uy)
                for q in range(9):
                    kernel.set(cu, float(_D2Q9_CX[q]) * ux + float(_D2Q9_CY[q]) * uy)
                    feq = (
                        _D2Q9_W[q]
                        * rho
                        * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
                    )
                    kernel.store(
                        ftmp[q, x, y], f[q, x, y] - (f[q, x, y] - feq) / _TAU
                    )
        # Stream back into f (periodic wrap).
        with kernel.for_(x, 0, nx):
            with kernel.for_(y, 0, ny):
                for q in range(9):
                    sx = (x + _D2Q9_CX[q] + nx) % nx
                    sy = (y + _D2Q9_CY[q] + ny) % ny
                    kernel.store(f[q, sx, sy], ftmp[q, x, y])

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"f": f}, dm)


def ref_lbm(preset: str):
    nx, ny, steps = dims("519.lbm", preset)
    f = np.zeros((9, nx, ny))
    for x in range(nx):
        for y in range(ny):
            for q in range(9):
                f[q, x, y] = _D2Q9_W[q] + ((x * 3 + y * 5 + q) % 10) * 0.001
    for _ in range(steps):
        rho = f.sum(axis=0)
        ux = sum(_D2Q9_CX[q] * f[q] for q in range(9)) / rho
        uy = sum(_D2Q9_CY[q] * f[q] for q in range(9)) / rho
        usq = ux * ux + uy * uy
        ftmp = np.zeros_like(f)
        for q in range(9):
            cu = _D2Q9_CX[q] * ux + _D2Q9_CY[q] * uy
            feq = _D2Q9_W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
            ftmp[q] = f[q] - (f[q] - feq) / _TAU
        for q in range(9):
            f[q] = np.roll(ftmp[q], (_D2Q9_CX[q], _D2Q9_CY[q]), axis=(0, 1))
    return {"f": f}


# ----------------------------------------------------------------------
# 544.nab — non-bonded energy with exclusions
# ----------------------------------------------------------------------
def build_nab(preset: str) -> Built:
    atoms, steps = dims("544.nab", preset)
    dm = DslModule("544.nab")
    px = dm.array_f64("px", atoms)
    py = dm.array_f64("py", atoms)
    pz = dm.array_f64("pz", atoms)
    charge = dm.array_f64("charge", atoms)
    energy = dm.array_f64("energy", 2)  # [vdw, electrostatic]

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, atoms):
        init.store(px[i], (i % 9).to_f64() * 0.47)
        init.store(py[i], (i % 8).to_f64() * 0.43)
        init.store(pz[i], (i % 7).to_f64() * 0.39)
        init.store(charge[i], ((i % 3).to_f64() - 1.0) * 0.4)

    kernel = dm.func("kernel")
    t, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    dx, dy, dz = kernel.f64(), kernel.f64(), kernel.f64()
    r2, r, inv6 = kernel.f64(), kernel.f64(), kernel.f64()
    with kernel.for_(t, 0, steps):
        kernel.store(energy[0], 0.0)
        kernel.store(energy[1], 0.0)
        with kernel.for_(i, 0, atoms):
            with kernel.for_(j, i + 1, atoms):
                # 1-4 exclusion pattern.
                with kernel.if_(((i + j) % 5).ne(0)):
                    kernel.set(dx, px[i] - px[j])
                    kernel.set(dy, py[i] - py[j])
                    kernel.set(dz, pz[i] - pz[j])
                    kernel.set(r2, dx * dx + dy * dy + dz * dz + 0.02)
                    with kernel.if_(r2 < _CUTOFF2):
                        kernel.set(r, r2.sqrt())
                        kernel.set(inv6, 1.0 / (r2 * r2 * r2))
                        kernel.store(
                            energy[0], energy[0] + inv6 * inv6 - inv6
                        )
                        kernel.store(
                            energy[1], energy[1] + charge[i] * charge[j] / r
                        )
        # Tiny perturbation so steps differ.
        with kernel.for_(i, 0, atoms):
            kernel.store(px[i], px[i] + energy[1] * 1e-7)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"energy": energy}, dm)


def ref_nab(preset: str):
    atoms, steps = dims("544.nab", preset)
    idx = np.arange(atoms)
    px = (idx % 9) * 0.47
    py = (idx % 8) * 0.43
    pz = (idx % 7) * 0.39
    charge = ((idx % 3) - 1.0) * 0.4
    energy = np.zeros(2)
    for _ in range(steps):
        energy[:] = 0.0
        for i in range(atoms):
            for j in range(i + 1, atoms):
                if (i + j) % 5 == 0:
                    continue
                dx, dy, dz = px[i] - px[j], py[i] - py[j], pz[i] - pz[j]
                r2 = dx * dx + dy * dy + dz * dz + 0.02
                if r2 < _CUTOFF2:
                    r = np.sqrt(r2)
                    inv6 = 1.0 / (r2 * r2 * r2)
                    energy[0] += inv6 * inv6 - inv6
                    energy[1] += charge[i] * charge[j] / r
        px = px + energy[1] * 1e-7
    return {"energy": energy}


WORKLOADS = [
    Workload("508.namd", "spec", build_namd, ref_namd, ("px", "py", "pz"), ("float",)),
    Workload("519.lbm", "spec", build_lbm, ref_lbm, ("f",), ("float", "stencil")),
    Workload("544.nab", "spec", build_nab, ref_nab, ("energy",), ("float",)),
]
