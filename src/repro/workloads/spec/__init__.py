"""SPEC CPU 2017 Rate subset proxies (§3.3, footnote 3).

The paper runs 505.mcf_r, 508.namd_r, 519.lbm_r, 525.x264_r,
531.deepsjeng_r, 544.nab_r and 557.xz_r — the subset that compiles to
wasm32-wasi.  SPEC sources and inputs are proprietary, so each proxy
reimplements the benchmark's *computational character* on synthetic
inputs (DESIGN.md §2):

==================  ==================================================
505.mcf             network-flow arc relaxation: integer, branchy,
                    irregular pointer-chasing over CSR arrays
508.namd            Lennard-Jones pair forces: float, sqrt/div heavy
519.lbm             D2Q9 lattice-Boltzmann stream+collide: float
                    stencil with very high memory traffic
525.x264            SAD block motion search: integer abs-diff loops
531.deepsjeng       alpha-beta game-tree search: deep recursion,
                    integer mixing, indirect control flow
544.nab             non-bonded energy with exclusions: float with
                    heavier divide/sqrt mix than namd
557.xz              LZ77 match finder over hash chains: integer,
                    data-dependent loops, memory chasing
==================  ==================================================
"""

from repro.workloads.spec import float_proxies, int_proxies

ALL = int_proxies.WORKLOADS + float_proxies.WORKLOADS
