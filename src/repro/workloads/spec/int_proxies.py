"""Integer SPEC proxies: 505.mcf, 525.x264, 531.deepsjeng, 557.xz."""

from __future__ import annotations

import numpy as np

from repro.wasm.dsl import Const, DslModule, Select
from repro.workloads.base import Built, Workload
from repro.workloads.polybench.common import make_bench
from repro.workloads.sizes import dims

_INF = 1_000_000_000


# ----------------------------------------------------------------------
# 505.mcf — arc relaxation over a CSR network (Bellman-Ford rounds)
# ----------------------------------------------------------------------
def build_mcf(preset: str) -> Built:
    nodes, deg, iterations = dims("505.mcf", preset)
    narcs = nodes * deg
    dm = DslModule("505.mcf")
    target = dm.array_i32("target", narcs)
    cost = dm.array_i32("cost", narcs)
    dist = dm.array_i32("dist", nodes)

    init = dm.func("init")
    u, e, a = init.i32(), init.i32(), init.i32()
    with init.for_(u, 0, nodes):
        with init.for_(e, 0, deg):
            init.set(a, u * deg + e)
            init.store(target[a], (u * 37 + e * 11 + 3) % nodes)
            init.store(cost[a], (u * 7 + e * 13) % 50 + 1)
        init.store(dist[u], _INF)
    init.store(dist[0], 0)

    kernel = dm.func("kernel")
    it, u, e, a = kernel.i32(), kernel.i32(), kernel.i32(), kernel.i32()
    du, cand, v = kernel.i32(), kernel.i32(), kernel.i32()
    with kernel.for_(it, 0, iterations):
        with kernel.for_(u, 0, nodes):
            kernel.set(du, dist[u])
            with kernel.if_(du < _INF):
                with kernel.for_(e, 0, deg):
                    kernel.set(a, u * deg + e)
                    kernel.set(v, target[a])
                    kernel.set(cand, du + cost[a])
                    with kernel.if_(cand < dist[v]):
                        kernel.store(dist[v], cand)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"dist": dist}, dm)


def ref_mcf(preset: str):
    nodes, deg, iterations = dims("505.mcf", preset)
    target = np.zeros(nodes * deg, dtype=np.int32)
    cost = np.zeros(nodes * deg, dtype=np.int32)
    for u in range(nodes):
        for e in range(deg):
            a = u * deg + e
            target[a] = (u * 37 + e * 11 + 3) % nodes
            cost[a] = (u * 7 + e * 13) % 50 + 1
    dist = np.full(nodes, _INF, dtype=np.int32)
    dist[0] = 0
    for _ in range(iterations):
        for u in range(nodes):
            du = dist[u]
            if du < _INF:
                for e in range(deg):
                    a = u * deg + e
                    v = target[a]
                    cand = du + cost[a]
                    if cand < dist[v]:
                        dist[v] = cand
    return {"dist": dist}


# ----------------------------------------------------------------------
# 525.x264 — SAD block motion search
# ----------------------------------------------------------------------
_BLOCK = 8


def build_x264(preset: str) -> Built:
    w, h, nblocks, srange = dims("525.x264", preset)
    dm = DslModule("525.x264")
    cur = dm.array_i32("cur", h, w)
    ref = dm.array_i32("ref", h, w)
    best_sad = dm.array_i32("best_sad", nblocks)
    best_mv = dm.array_i32("best_mv", nblocks, 2)

    init = dm.func("init")
    x, y = init.i32(), init.i32()
    with init.for_(y, 0, h):
        with init.for_(x, 0, w):
            init.store(ref[y, x], (x * 13 + y * 29) % 256)
            # The "current" frame is the reference shifted by (1, 2)
            # plus noise, so the search has a real optimum to find.
            init.store(
                cur[y, x],
                ((x + 1) * 13 + (y + 2) * 29 + (x * y) % 3) % 256,
            )

    kernel = dm.func("kernel")
    b, dy, dx = kernel.i32(), kernel.i32(), kernel.i32()
    by, bx = kernel.i32(), kernel.i32()
    py, px = kernel.i32(), kernel.i32()
    sad, diff = kernel.i32(), kernel.i32()
    ry, rx = kernel.i32(), kernel.i32()
    blocks_per_row = (w - 2 * srange) // _BLOCK
    if nblocks > blocks_per_row * ((h - 2 * srange) // _BLOCK):
        raise ValueError("x264 proxy: blocks do not fit in the frame")
    with kernel.for_(b, 0, nblocks):
        kernel.set(by, (b // blocks_per_row) * _BLOCK + srange)
        kernel.set(bx, (b % blocks_per_row) * _BLOCK + srange)
        kernel.store(best_sad[b], _INF)
        with kernel.for_(dy, -srange, srange + 1):
            with kernel.for_(dx, -srange, srange + 1):
                kernel.set(sad, 0)
                with kernel.for_(py, 0, _BLOCK):
                    with kernel.for_(px, 0, _BLOCK):
                        kernel.set(ry, by + py + dy)
                        kernel.set(rx, bx + px + dx)
                        kernel.set(
                            diff, cur[by + py, bx + px] - ref[ry, rx]
                        )
                        kernel.set(sad, sad + Select(diff < 0, -diff, diff))
                with kernel.if_(sad < best_sad[b]):
                    kernel.store(best_sad[b], sad)
                    kernel.store(best_mv[b, 0], dy)
                    kernel.store(best_mv[b, 1], dx)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"best_sad": best_sad, "best_mv": best_mv}, dm)


def ref_x264(preset: str):
    w, h, nblocks, srange = dims("525.x264", preset)
    ref_frame = np.fromfunction(
        lambda y, x: (x * 13 + y * 29) % 256, (h, w)
    ).astype(np.int64)
    cur = np.fromfunction(
        lambda y, x: ((x + 1) * 13 + (y + 2) * 29 + (x * y) % 3) % 256, (h, w)
    ).astype(np.int64)
    blocks_per_row = (w - 2 * srange) // _BLOCK
    best_sad = np.zeros(nblocks, dtype=np.int32)
    best_mv = np.zeros((nblocks, 2), dtype=np.int32)
    for b in range(nblocks):
        by = (b // blocks_per_row) * _BLOCK + srange
        bx = (b % blocks_per_row) * _BLOCK + srange
        best = _INF
        for dy in range(-srange, srange + 1):
            for dx in range(-srange, srange + 1):
                block = cur[by : by + _BLOCK, bx : bx + _BLOCK]
                shifted = ref_frame[
                    by + dy : by + dy + _BLOCK, bx + dx : bx + dx + _BLOCK
                ]
                sad = int(np.abs(block - shifted).sum())
                if sad < best:
                    best = sad
                    best_mv[b] = (dy, dx)
        best_sad[b] = best
    return {"best_sad": best_sad, "best_mv": best_mv}


# ----------------------------------------------------------------------
# 531.deepsjeng — recursive alpha-beta search over a synthetic tree
# ----------------------------------------------------------------------
_MIX = 2654435761  # Knuth multiplicative hash constant


def build_deepsjeng(preset: str) -> Built:
    depth, branching = dims("531.deepsjeng", preset)
    dm = DslModule("531.deepsjeng")
    result = dm.array_i32("result", 4)

    # negamax(state, depth, alpha, beta) -> score
    search = dm.func(
        "search",
        params=[("state", "i32"), ("d", "i32"), ("alpha", "i32"), ("beta", "i32")],
        results=["i32"],
        export=False,
    )
    state, d, alpha, beta = search.params
    with search.if_(d.eq(0)):
        # Leaf evaluation: multiplicative hash of the position.
        search.ret(((state * _MIX).shr_u(17) & 0xFF) - 128)
    move, score, best = search.i32(), search.i32(), search.i32()
    a = search.i32()
    search.set(best, -_INF)
    search.set(a, alpha)
    with search.for_(move, 0, branching):
        child = (state * 31 + move * 7 + 1) & 0x7FFFFFFF
        search.set(score, -search.call(search, child, d - 1, -beta, -a))
        with search.if_(score > best):
            search.set(best, score)
        with search.if_(best > a):
            search.set(a, best)
        with search.if_(a >= beta):
            search.ret(best)  # beta cutoff
    search.ret(best)

    init = dm.func("init")
    init.store(result[0], 0)

    kernel = dm.func("kernel")
    kernel.store(result[0], kernel.call(search, 12345, depth, -_INF, _INF))

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"result": result}, dm)


def _mix_leaf(state: int) -> int:
    return (((state * _MIX) & 0xFFFFFFFF) >> 17 & 0xFF) - 128


def _negamax(state: int, depth: int, alpha: int, beta: int, branching: int) -> int:
    if depth == 0:
        return _mix_leaf(state)
    best = -_INF
    a = alpha
    for move in range(branching):
        child = (state * 31 + move * 7 + 1) & 0x7FFFFFFF
        score = -_negamax(child, depth - 1, -beta, -a, branching)
        if score > best:
            best = score
        if best > a:
            a = best
        if a >= beta:
            return best
    return best


def ref_deepsjeng(preset: str):
    depth, branching = dims("531.deepsjeng", preset)
    result = np.zeros(4, dtype=np.int32)
    result[0] = _negamax(12345, depth, -_INF, _INF, branching)
    return {"result": result}


# ----------------------------------------------------------------------
# 557.xz — LZ77 match finder over hash chains
# ----------------------------------------------------------------------
_HASH_BITS = 12
_HASH_SIZE = 1 << _HASH_BITS
_MAX_CHAIN = 16
_MAX_MATCH = 64


def build_xz(preset: str) -> Built:
    data_len, iterations = dims("557.xz", preset)
    dm = DslModule("557.xz")
    data = dm.array_i32("data", data_len)
    head = dm.array_i32("head", _HASH_SIZE)
    prev = dm.array_i32("prev", data_len)
    match_len = dm.array_i32("match_len", data_len)
    total = dm.array_i32("total", 2)

    init = dm.func("init")
    i = init.i32()
    with init.for_(i, 0, data_len):
        # Repetitive synthetic byte stream: period-67 pattern with
        # occasional substitutions, so real matches exist.
        base = (i % 67) * 3 % 251
        noisy = Select((i % 113).eq(0), (i * 31) % 251, base)
        init.store(data[i], noisy)

    kernel = dm.func("kernel")
    it, i, j = kernel.i32(), kernel.i32(), kernel.i32()
    h, cand, chain = kernel.i32(), kernel.i32(), kernel.i32()
    length, best = kernel.i32(), kernel.i32()
    with kernel.for_(it, 0, iterations):
        with kernel.for_(i, 0, _HASH_SIZE):
            kernel.store(head[i], -1)
        kernel.store(total[0], 0)
        with kernel.for_(i, 0, data_len - 3):
            kernel.set(
                h,
                (data[i] * 413 + data[i + 1] * 31 + data[i + 2]) % _HASH_SIZE,
            )
            kernel.set(cand, head[h])
            kernel.set(best, 0)
            kernel.set(chain, 0)
            with kernel.while_(lambda: (cand >= 0) & (chain < _MAX_CHAIN)):
                kernel.set(length, 0)
                limit = (data_len - i).min_(_MAX_MATCH)
                with kernel.while_(
                    lambda: (length < limit)
                    & data[cand + length].eq(data[i + length])
                ):
                    kernel.set(length, length + 1)
                with kernel.if_(length > best):
                    kernel.set(best, length)
                kernel.set(cand, prev[cand])
                kernel.set(chain, chain + 1)
            kernel.store(match_len[i], best)
            kernel.store(total[0], total[0] + best)
            kernel.store(prev[i], head[h])
            kernel.store(head[h], i)

    make_bench(dm, init, kernel)
    return Built(dm.build(), {"match_len": match_len, "total": total}, dm)


def ref_xz(preset: str):
    data_len, iterations = dims("557.xz", preset)
    data = np.zeros(data_len, dtype=np.int64)
    for i in range(data_len):
        base = (i % 67) * 3 % 251
        data[i] = (i * 31) % 251 if i % 113 == 0 else base
    match_len = np.zeros(data_len, dtype=np.int32)
    total = np.zeros(2, dtype=np.int32)
    for _ in range(iterations):
        head = [-1] * _HASH_SIZE
        prev = [0] * data_len
        total[0] = 0
        for i in range(data_len - 3):
            h = int(data[i] * 413 + data[i + 1] * 31 + data[i + 2]) % _HASH_SIZE
            cand = head[h]
            best = 0
            chain = 0
            while cand >= 0 and chain < _MAX_CHAIN:
                length = 0
                limit = min(data_len - i, _MAX_MATCH)
                while length < limit and data[cand + length] == data[i + length]:
                    length += 1
                if length > best:
                    best = length
                cand = prev[cand]
                chain += 1
            match_len[i] = best
            total[0] += best
            prev[i] = head[h]
            head[h] = i
    return {"match_len": match_len, "total": total}


WORKLOADS = [
    Workload("505.mcf", "spec", build_mcf, ref_mcf, ("dist",), ("integer", "graph")),
    Workload("525.x264", "spec", build_x264, ref_x264, ("best_sad", "best_mv"), ("integer",)),
    Workload("531.deepsjeng", "spec", build_deepsjeng, ref_deepsjeng, ("result",), ("integer", "search")),
    Workload("557.xz", "spec", build_xz, ref_xz, ("match_len", "total"), ("integer", "compression")),
]
