"""The workload catalogue."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import polybench, spec, wasi
from repro.workloads.base import Workload

POLYBENCH: List[Workload] = list(polybench.ALL)
SPEC: List[Workload] = list(spec.ALL)
WASI: List[Workload] = list(wasi.ALL)

WORKLOADS: Dict[str, Workload] = {w.name: w for w in POLYBENCH + SPEC + WASI}

if len(WORKLOADS) != len(POLYBENCH) + len(SPEC) + len(WASI):  # pragma: no cover
    raise AssertionError("duplicate workload names")


def workload_named(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def suite_workloads(suite: str) -> List[Workload]:
    if suite == "polybench":
        return list(POLYBENCH)
    if suite == "spec":
        return list(SPEC)
    if suite == "wasi":
        return list(WASI)
    if suite == "all":
        return POLYBENCH + SPEC + WASI
    raise ValueError(
        f"unknown suite {suite!r} (polybench | spec | wasi | all)"
    )
