"""Instruction selection: IR → machine-op kind lists per block.

This is where bounds-checking strategies become code (§3.1):

* ``clamp`` — compare + conditional-select on the *address register*,
  inserting latency into every access's dependency chain (cmp+cmov on
  x86, cmp+csel on Armv8, a 3-op branch-free idiom on the C906);
* ``trap`` — compare + branch-to-ud2, macro-fused on x86 and well
  predicted everywhere, which is why it beats ``clamp``;
* ``mte`` — a hardware tag compare riding the access itself: it is in
  the load/store pipe, consumes no address register and does not block
  addressing-mode fusion, so it undercuts every software check;
* ``none`` / ``mprotect`` / ``uffd`` — no inline code at all (the
  guard region does the work).

Runtimes may additionally pay a fixed number of bookkeeping ops per
*access* under any checking strategy (V8's trap-handler metadata and
dynamic memory base — ``extra_access_ops``).  The charge rides on the
load/store, not the check, so eliding a check never removes it.

Addressing-mode fusion folds single-use ``base + (index << scale) +
disp`` chains into the access itself on ISAs that support it, which is
why the same kernel costs more on the C906 (reg+imm12 only) even
before its per-op costs are applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.compiler.ir import IRFunction, IRInstr
from repro.isa.model import IsaModel, OPK


#: Inline checks realised as *software* compare sequences on the raw
#: index register.  Only these pin the address chain; the MTE tag check
#: lives in the access's pipe and touches no integer register.
_SOFTWARE_CHECKS = ("clamp", "trap")


@dataclass(frozen=True)
class SelectionConfig:
    """The knobs a runtime model hands to instruction selection."""

    #: '' | 'clamp' | 'trap' | 'mte' — from the bounds strategy.
    inline_check: str
    #: Extra ALU ops per memory access (runtime bookkeeping).
    extra_access_ops: int
    #: Whether the runtime's isel exploits complex addressing modes.
    addressing_fusion: bool


def select_function(
    irf: IRFunction, isa: IsaModel, config: SelectionConfig
) -> Dict[int, List[str]]:
    """Lower each block to machine-op kinds; returns block_id -> kinds."""
    use_counts: Dict[int, int] = {}
    defs: Dict[int, IRInstr] = {}
    for ins in irf.instructions():
        if ins.op == "boundscheck" and config.inline_check not in _SOFTWARE_CHECKS:
            # The check compiles to nothing (or, for mte, to a tag
            # compare inside the access), so its address use does not
            # pin the value in a register.
            continue
        for src in ins.srcs:
            use_counts[src] = use_counts.get(src, 0) + 1
        if ins.dest is not None and ins.dest not in defs:
            defs[ins.dest] = ins
    for ins in irf.instructions():
        if ins.dest is not None and ins.dest not in defs:
            defs[ins.dest] = ins

    folded: Set[int] = set()  # id(instr) folded into an addressing mode
    # Inline software checks consume the raw index value, so the
    # address chain cannot be folded into the access — one reason
    # clamp/trap cost so much more than their op counts suggest
    # (up to 650 % in the paper's worst case, §1).  The MTE tag check
    # is not a software check: fusion stays available.
    fusion = (
        config.addressing_fusion
        and isa.addressing_fusion
        and config.inline_check not in _SOFTWARE_CHECKS
    )
    if fusion:
        for ins in irf.instructions():
            if ins.op in ("load", "store"):
                _fold_address(ins.srcs[0], defs, use_counts, folded)

    result: Dict[int, List[str]] = {}
    for block in irf.blocks:
        kinds: List[str] = []
        for ins in block.instrs:
            if id(ins) in folded:
                continue
            kinds.extend(_kinds_for(ins, isa, config))
        result[block.id] = kinds
    return result


def _fold_address(
    addr: int, defs: Dict[int, IRInstr], use_counts: Dict[int, int],
    folded: Set[int], depth: int = 0,
) -> None:
    """Fold a single-use `iadd`/`ishl` chain into the access (depth ≤ 2)."""
    if depth >= 2:
        return
    ins = defs.get(addr)
    if ins is None or use_counts.get(addr, 0) != 1:
        return
    if ins.op == "iadd":
        # base + offset folds into a displacement / index.
        folded.add(id(ins))
        for src in ins.srcs:
            src_def = defs.get(src)
            if src_def is not None and src_def.op in ("ishl", "const"):
                _fold_address(src, defs, use_counts, folded, depth + 1)
    elif ins.op == "ishl" and isinstance(ins.imm, int) and 0 <= ins.imm <= 3:
        folded.add(id(ins))


def _kinds_for(ins: IRInstr, isa: IsaModel, config: SelectionConfig) -> List[str]:
    op = ins.op
    if op == "boundscheck":
        if config.inline_check == "clamp":
            if isa.has_select:
                return [OPK.CMP, OPK.CMOV]
            return [OPK.CMP, OPK.ALU, OPK.ALU, OPK.ALU]
        if config.inline_check == "trap":
            return [OPK.CMP_BRANCH]
        if config.inline_check == "mte":
            return [OPK.TAGCHECK]
        return []
    if op == "const":
        return [OPK.CONST]
    if op in ("iadd", "isub", "iand", "ior", "ixor", "ibit"):
        return [OPK.ALU]
    if op == "imul":
        return [OPK.MUL]
    if op in ("idiv", "irem"):
        return [OPK.DIV]
    if op in ("ishl", "ishr", "irot"):
        return [OPK.SHIFT]
    if op == "icmp":
        return [OPK.CMP]
    if op in ("fadd", "fsub"):
        return [OPK.FADD]
    if op == "fmul":
        return [OPK.FMUL]
    if op == "fdiv":
        return [OPK.FDIV]
    if op == "fsqrt":
        return [OPK.FSQRT]
    if op in ("fmin", "fmax", "fcmp"):
        return [OPK.FCMP]
    if op in ("fneg", "fabs", "fcopysign"):
        return [OPK.MOVE]
    if op == "fround":
        return [OPK.CONVERT]
    if op == "convert":
        return [OPK.CONVERT]
    if op == "select":
        if isa.has_select:
            return [OPK.CMOV]
        return [OPK.ALU, OPK.ALU, OPK.ALU]
    if op == "load":
        return [OPK.LOAD] + [OPK.ALU] * config.extra_access_ops
    if op == "store":
        return [OPK.STORE] + [OPK.ALU] * config.extra_access_ops
    if op == "gload":
        return [OPK.LOAD]
    if op == "gstore":
        return [OPK.STORE]
    if op == "call":
        return [OPK.CALL]
    if op == "call_indirect":
        # Table bounds check + signature check + indirect call (§2.1's
        # function-table sandboxing).
        return [OPK.CMP_BRANCH, OPK.LOAD, OPK.CMP_BRANCH, OPK.CALL_IND]
    if op in ("memsize",):
        return [OPK.LOAD]
    if op == "growmem":
        return [OPK.CALL]
    if op == "phi":
        return []  # coalesced by the allocator
    if op == "move":
        return [OPK.MOVE]
    if op == "br":
        return [OPK.BRANCH]
    if op == "brif":
        return [OPK.BRANCH]
    if op == "brtable":
        return [OPK.CMP, OPK.LOAD, OPK.BRANCH]
    if op == "ret":
        return [OPK.BRANCH]
    if op == "trap":
        return [OPK.BRANCH]
    raise KeyError(f"no machine lowering for IR op {op!r}")
