"""Linear-scan spill estimation.

A real allocator assigns physical registers; for costing we only need
to know *how many spill/reload operations land in which block*.  The
estimator linearises the function, computes live intervals per virtual
register, and runs a linear scan with the ISA's register counts scaled
by the runtime's allocator quality (LLVM ≈ 1.0; simpler allocators
waste some registers on suboptimal splits).

Victim selection mirrors what production allocators achieve:

* constants are never allocated across ranges — they rematerialise;
* on overflow, the active interval whose uses sit at the *shallowest*
  loop depth is spilled (spill cost is weighted by use frequency), so
  loop-carried and hoisted-invariant values stay in registers as long
  as anything colder is available;
* a spill charges one store at the definition and one reload per
  remaining use, attributed to the blocks where they would be emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.compiler.ir import IRFunction
from repro.isa.model import IsaModel

_FLOAT_TYPES = ("f32", "f64")


@dataclass(frozen=True)
class SpillReport:
    """Spill ops charged per block, plus totals for reporting."""

    per_block: Dict[int, int]
    spilled_regs: int

    @property
    def total_ops(self) -> int:
        return sum(self.per_block.values())


def estimate_spills(irf: IRFunction, isa: IsaModel, quality: float) -> SpillReport:
    def_pos: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    is_float: Dict[int, bool] = {}
    is_const: Dict[int, bool] = {}
    uses: Dict[int, List[int]] = {}
    use_depth: Dict[int, int] = {}
    pos_block: Dict[int, int] = {}
    pos_depth: Dict[int, int] = {}

    pos = 0
    for block in irf.blocks:
        for ins in block.instrs:
            pos_block[pos] = block.id
            pos_depth[pos] = block.loop_depth
            for src in ins.srcs:
                last_use[src] = pos
                uses.setdefault(src, []).append(pos)
                use_depth[src] = max(use_depth.get(src, 0), block.loop_depth)
            if ins.dest is not None and ins.dest not in def_pos:
                def_pos[ins.dest] = pos
                is_float[ins.dest] = ins.valtype in _FLOAT_TYPES
                is_const[ins.dest] = ins.op == "const"
            pos += 1

    for param in range(irf.num_params):
        def_pos.setdefault(param, 0)
        is_float.setdefault(param, False)

    per_block: Dict[int, int] = {}
    spilled = 0
    for float_class in (False, True):
        budget = isa.float_regs if float_class else isa.int_regs
        budget = max(2, round(budget * quality))
        intervals = sorted(
            (def_pos[reg], last_use[reg], reg)
            for reg in def_pos
            if is_float.get(reg, False) == float_class
            and not is_const.get(reg, False)  # constants rematerialise
            and reg in last_use
            and last_use[reg] > def_pos[reg]
        )
        active: List[Tuple[int, int]] = []  # (end, reg)
        for start, end, reg in intervals:
            active = [item for item in active if item[0] > start]
            active.append((end, reg))
            if len(active) <= budget:
                continue
            # Spill the coldest interval: shallowest max use depth,
            # tie-break on the furthest end.
            victim_index = min(
                range(len(active)),
                key=lambda idx: (use_depth.get(active[idx][1], 0), -active[idx][0]),
            )
            _, victim = active.pop(victim_index)
            spilled += 1
            victim_def = def_pos[victim]
            store_block = pos_block.get(victim_def, 0)
            per_block[store_block] = per_block.get(store_block, 0) + 1
            for use in uses.get(victim, []):
                if use > start:
                    block_id = pos_block.get(use, 0)
                    per_block[block_id] = per_block.get(block_id, 0) + 1
    return SpillReport(per_block=per_block, spilled_regs=spilled)
