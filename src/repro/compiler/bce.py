"""Global bounds-check elimination (BCE).

Real engines claw back much of the software bounds-check penalty with
compiler elimination: WAVM inherits LLVM's range analysis, TurboFan
types induction variables, Cranelift deduplicates dominated checks.
This pass models those three mechanisms on the costing IR so the
clamp/trap strategies stop paying for checks a production compiler
would never emit.  It runs after LICM and only when the active bounds
strategy inlines check code (``clamp``/``trap``); the virtual-memory
strategies never see it, which is what keeps their figures
byte-identical with BCE on or off.

Two cooperating phases, controlled by two pass names:

``bceloop`` (loop phase, innermost loops first)
    *Affine accesses* — a ``boundscheck`` whose address is an affine
    expression over the loop's induction variables (phi defs updated by
    a loop-invariant stride) with loop-invariant coefficients is
    provably in-bounds for the whole trip once the extremal iteration
    is checked.  All such checks in blocks that run every iteration are
    deleted and replaced by one pooled, max-widened guard in the loop
    preheader (``srcs=()`` — the guard checks a derived bound, not a
    live register, so register pressure is untouched).

    *Invariant accesses* — a check whose address register has no
    definition inside the loop is hoisted to the preheader, one guard
    per address register, widened to the maximum access size seen.
    Because inner preheaders are ordinary body blocks of the enclosing
    loop, hoisted guards cascade outward across loop nests.

``bce`` (dominance phase)
    A linear sweep over the structural scope paths (:class:`IRBlock.
    scope_path`): a ``boundscheck`` of base register *r* for *n* bytes
    is deleted when a previous check of *r* for >= *n* bytes dominates
    it — same register, established in a block whose scope path is a
    prefix of the current block's.  This is the cross-block
    generalisation of the per-block ``checkelim`` CSE flag.

Legality mirrors ``passes.py``: ``growmem`` kills every range fact
(and disables the loop phase for loops containing one), redefining a
register kills its fact, facts established outside a loop are dropped
inside it when the loop redefines the register (multi-def registers),
and hoisting only draws from blocks guaranteed to execute every
iteration (the same filter LICM uses).  Stores and calls do *not* kill
check facts — wasm memory never shrinks — matching ``checkelim``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.compiler.ir import IRFunction, IRInstr

#: Ops through which an address expression stays affine in the
#: induction variables (with invariant operands where required).
_AFFINE_OPS = {"iadd", "isub", "imul", "ishl", "move"}

_AFFINE_DEPTH_LIMIT = 8


@dataclass
class BCEStats:
    """Per-function static elimination counters.

    ``elided_by_block`` maps IR block id -> number of checks deleted
    from that block; multiplied by the block's dynamic execution count
    it yields the number of *dynamic* checks the pass removed (see
    :func:`repro.compiler.timing.check_counts_for_profile`).
    """

    eliminated_dominated: int = 0
    eliminated_affine: int = 0
    eliminated_invariant: int = 0
    guards_added: int = 0
    elided_by_block: Dict[int, int] = field(default_factory=dict)

    @property
    def eliminated_total(self) -> int:
        return (
            self.eliminated_dominated
            + self.eliminated_affine
            + self.eliminated_invariant
        )


def bounds_check_elimination(
    irf: IRFunction, loops_enabled: bool, stats: BCEStats,
    affine_guard_ok: bool = True,
) -> None:
    """Run BCE on ``irf`` in place, accumulating into ``stats``.

    ``loops_enabled`` turns on the ``bceloop`` phase (affine analysis +
    invariant hoisting); the dominance sweep always runs.  Loops first,
    so the dominance phase deduplicates any guards the loop phase
    stacked up in shared preheaders.

    ``affine_guard_ok`` gates the affine *pooled-guard* elimination: it
    replaces every per-access check with one extremal check whose
    soundness rests on the 8 GiB guard region absorbing the worst-case
    address of any iteration.  A 64-bit (wasm64) memory has no guard
    region, so that rewrite is illegal there and callers pass False;
    invariant hoisting and the dominance sweep re-check the exact same
    addresses the deleted checks covered, so they stay legal.
    """
    if loops_enabled:
        _loop_phase(irf, stats, affine_guard_ok)
    _dominance_phase(irf, stats)


def _record_elision(stats: BCEStats, block_id: int) -> None:
    stats.elided_by_block[block_id] = stats.elided_by_block.get(block_id, 0) + 1


def _check_bytes(ins: IRInstr) -> int:
    return ins.imm if isinstance(ins.imm, int) else 0


# ----------------------------------------------------------------------
# Loop phase: affine elimination + invariant guard hoisting
# ----------------------------------------------------------------------
def _loop_phase(
    irf: IRFunction, stats: BCEStats, affine_guard_ok: bool = True
) -> None:
    def_counts: Dict[int, int] = {}
    defs: Dict[int, IRInstr] = {}
    for ins in irf.instructions():
        if ins.dest is not None:
            def_counts[ins.dest] = def_counts.get(ins.dest, 0) + 1
            defs[ins.dest] = ins

    # Same loop discovery as LICM: id -> (header index, path).
    loops: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for index, block in enumerate(irf.blocks):
        if block.loop_path and block.loop_path[-1] not in loops:
            loops[block.loop_path[-1]] = (index, block.loop_path)

    # Innermost first so hoisted guards cascade outward through nests.
    for loop_id, (header_index, path) in sorted(
        loops.items(), key=lambda item: -len(item[1][1])
    ):
        if header_index == 0:
            continue  # no preheader to guard from
        preheader = irf.blocks[header_index - 1]
        if loop_id in preheader.loop_path:
            continue  # defensive: preheader must sit outside the loop
        header = irf.blocks[header_index]
        member_blocks = [b for b in irf.blocks if loop_id in b.loop_path]
        if any(
            ins.op == "growmem" for b in member_blocks for ins in b.instrs
        ):
            continue  # memory size changes mid-loop: ranges unprovable
        defs_in_loop: Set[int] = set()
        for block in member_blocks:
            for ins in block.instrs:
                if ins.dest is not None:
                    defs_in_loop.add(ins.dest)
        # Induction variables: header phis advanced by an invariant
        # stride somewhere in the loop.
        induction: Set[int] = set()
        phi_dests = {
            ins.dest for ins in header.instrs if ins.op == "phi"
        }
        for block in member_blocks:
            for ins in block.instrs:
                if ins.op not in ("iadd", "isub") or len(ins.srcs) != 2:
                    continue
                for position in (0, 1):
                    base = ins.srcs[position]
                    step = ins.srcs[1 - position]
                    if base in phi_dests and (
                        step not in defs_in_loop
                        or defs.get(step) is not None
                        and defs[step].op == "const"
                    ):
                        induction.add(base)

        memo: Dict[int, Tuple[bool, bool]] = {}

        def affine(reg: int, depth: int = 0) -> Tuple[bool, bool]:
            """(is affine in this loop, mentions an induction var)."""
            if reg in memo:
                return memo[reg]
            if reg in induction:
                result = (True, True)
            elif reg not in defs_in_loop:
                result = (True, False)  # invariant operand
            elif depth >= _AFFINE_DEPTH_LIMIT or def_counts.get(reg, 0) != 1:
                result = (False, False)
            else:
                ins = defs[reg]
                if ins.op == "const":
                    result = (True, False)
                elif ins.op in _AFFINE_OPS:
                    parts = [affine(s, depth + 1) for s in ins.srcs]
                    result = (
                        all(p[0] for p in parts),
                        any(p[1] for p in parts),
                    )
                else:
                    result = (False, False)
            memo[reg] = result
            return result

        # Only blocks guaranteed to run every iteration (LICM's filter).
        body_blocks = [
            b for b in member_blocks
            if b.loop_path == path and b.if_depth == header.if_depth
        ]
        invariant_guards: Dict[int, List[int]] = {}  # addr -> [bytes, pc]
        affine_bytes = -1
        affine_pc = -1
        for block in body_blocks:
            kept: List[IRInstr] = []
            for ins in block.instrs:
                if ins.op == "boundscheck" and ins.srcs:
                    addr = ins.srcs[0]
                    nbytes = _check_bytes(ins)
                    if addr not in defs_in_loop:
                        entry = invariant_guards.get(addr)
                        if entry is None:
                            invariant_guards[addr] = [nbytes, ins.wasm_pc]
                        else:
                            entry[0] = max(entry[0], nbytes)
                        stats.eliminated_invariant += 1
                        _record_elision(stats, block.id)
                        continue
                    is_affine, uses_induction = affine(addr)
                    if affine_guard_ok and is_affine and uses_induction:
                        affine_bytes = max(affine_bytes, nbytes)
                        if affine_pc < 0:
                            affine_pc = ins.wasm_pc
                        stats.eliminated_affine += 1
                        _record_elision(stats, block.id)
                        continue
                kept.append(ins)
            block.instrs = kept

        for addr, (nbytes, wasm_pc) in invariant_guards.items():
            _append_before_terminator(
                preheader,
                IRInstr("boundscheck", None, (addr,), nbytes, "i32", wasm_pc),
            )
            stats.guards_added += 1
        if affine_bytes >= 0:
            # One pooled guard for every affine access in the loop: the
            # compiler checks the extremal address once per entry.  No
            # source register — the bound is derived from trip counts,
            # so the guard must not perturb liveness.
            _append_before_terminator(
                preheader,
                IRInstr("boundscheck", None, (), affine_bytes, "i32", affine_pc),
            )
            stats.guards_added += 1


def _append_before_terminator(block, ins: IRInstr) -> None:
    from repro.compiler.ir import TERMINATORS

    if block.instrs and block.instrs[-1].op in TERMINATORS:
        block.instrs.insert(len(block.instrs) - 1, ins)
    else:
        block.instrs.append(ins)


# ----------------------------------------------------------------------
# Dominance phase: scope-path-prefix redundant-check elimination
# ----------------------------------------------------------------------
def _dominance_phase(irf: IRFunction, stats: BCEStats) -> None:
    # Registers defined inside each loop: facts established *outside* a
    # loop about a register the loop redefines must not survive into it
    # (the redefinition on iteration k would invalidate the fact for
    # the early blocks of iteration k+1, which a linear sweep cannot
    # see).  Facts established inside the loop are fine — the in-sweep
    # dest kill handles the within-iteration ordering.
    loop_defs: Dict[int, Set[int]] = {}
    for block in irf.blocks:
        for loop_id in block.loop_path:
            bucket = loop_defs.setdefault(loop_id, set())
            for ins in block.instrs:
                if ins.dest is not None:
                    bucket.add(ins.dest)

    facts: Dict[int, List[List]] = {}  # reg -> [[bytes, scope], ...]
    for block in irf.blocks:
        scope = block.scope_path
        if facts:
            for reg in list(facts):
                entries = []
                for fact in facts[reg]:
                    fact_scope = fact[1]
                    if scope[: len(fact_scope)] != fact_scope:
                        continue  # does not dominate this block
                    if any(
                        reg in loop_defs.get(loop_id, ())
                        and ("loop", loop_id) not in fact_scope
                        for loop_id in block.loop_path
                    ):
                        continue  # crossed into a loop that redefines reg
                    entries.append(fact)
                if entries:
                    facts[reg] = entries
                else:
                    del facts[reg]
        kept: List[IRInstr] = []
        for ins in block.instrs:
            if ins.op == "growmem":
                facts.clear()
            if ins.dest is not None:
                facts.pop(ins.dest, None)
            if ins.op == "boundscheck" and ins.srcs:
                reg = ins.srcs[0]
                nbytes = _check_bytes(ins)
                entries = facts.get(reg)
                if entries and max(e[0] for e in entries) >= nbytes:
                    stats.eliminated_dominated += 1
                    _record_elision(stats, block.id)
                    continue
                if entries is None:
                    entries = facts[reg] = []
                for fact in entries:
                    if fact[1] == scope:
                        fact[0] = max(fact[0], nbytes)
                        break
                else:
                    entries.append([nbytes, scope])
            kept.append(ins)
        block.instrs = kept
