"""Optimisation passes.

Each runtime model enables a subset (``CompilerConfig.passes``), which
is how WAVM (LLVM-class optimisation), Wasmtime (Cranelift-class) and
V8 TurboFan produce different code shapes from the same IR:

``constfold``   fold constant integer arithmetic
``cse``         local (per-block) common-subexpression elimination —
                unifies the duplicated address arithmetic the Wasm
                stack machine produces
``checkelim``   treat ``boundscheck`` as CSE-able: a second check of
                the same address register in a block is redundant
``licm``        loop-invariant code motion (address components that
                do not change in the inner loop move to the preheader)
``bce``         global dominance-based redundant bounds-check
                elimination across blocks (see ``bce.py``)
``bceloop``     BCE's loop phase: affine induction-variable analysis
                and loop-invariant guard hoisting with max-offset
                widening (requires ``bce``)
``strength``    multiply-by-power-of-two → shift
``dce``         dead code elimination

All passes operate on the costing IR; they never need to preserve
execution semantics beyond what the cost model observes, but they do
respect the same legality rules a real compiler would (loads are
killed by stores, potentially-trapping ops are not hoisted, multi-def
registers are not treated as invariant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.ir import IRBlock, IRFunction, IRInstr, PURE_OPS, TERMINATORS

#: Ops that invalidate memory-dependent CSE entries.
_MEMORY_CLOBBERS = {"store", "gstore", "call", "call_indirect", "growmem"}

#: Integer ops we constant-fold (value kept mod 2**64; exactness of the
#: fold result does not matter for costing, only that the op vanishes).
_FOLDABLE = {
    "iadd": lambda a, b: a + b,
    "isub": lambda a, b: a - b,
    "imul": lambda a, b: a * b,
    "iand": lambda a, b: a & b,
    "ior": lambda a, b: a | b,
    "ixor": lambda a, b: a ^ b,
    "ishl": lambda a, b: a << (b & 63),
}


def run_passes(
    irf: IRFunction, enabled: Set[str], bce_stats=None,
    affine_guard_ok: bool = True,
) -> Dict[int, int]:
    """Run the enabled passes in canonical order.

    Returns the constant-value map (reg -> value) for use by
    instruction selection (immediate folding, strength heuristics).
    When ``bce``/``bceloop`` are enabled, static elimination counters
    accumulate into ``bce_stats`` (a :class:`repro.compiler.bce.
    BCEStats`) if one is given.  ``affine_guard_ok=False`` disables
    BCE's guard-region-backed affine pooling (64-bit memories; see
    :func:`repro.compiler.bce.bounds_check_elimination`).
    """
    const_map: Dict[int, int] = {}
    if "constfold" in enabled:
        const_map = constant_fold(irf)
    else:
        const_map = _collect_consts(irf)
    if "cse" in enabled:
        local_cse(irf, check_elim="checkelim" in enabled)
    if "licm" in enabled:
        loop_invariant_code_motion(irf)
    if "bce" in enabled:
        from repro.compiler.bce import BCEStats, bounds_check_elimination

        bounds_check_elimination(
            irf,
            loops_enabled="bceloop" in enabled,
            stats=bce_stats if bce_stats is not None else BCEStats(),
            affine_guard_ok=affine_guard_ok,
        )
    if "strength" in enabled:
        strength_reduce(irf, const_map)
    if "dce" in enabled:
        dead_code_elim(irf)
    return const_map


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------
def _collect_consts(irf: IRFunction) -> Dict[int, int]:
    consts: Dict[int, int] = {}
    for ins in irf.instructions():
        if ins.op == "const" and ins.dest is not None and isinstance(ins.imm, int):
            consts[ins.dest] = ins.imm
    return consts


def constant_fold(irf: IRFunction) -> Dict[int, int]:
    consts: Dict[int, int] = {}
    for block in irf.blocks:
        for ins in block.instrs:
            if ins.op == "const" and isinstance(ins.imm, int):
                consts[ins.dest] = ins.imm
                continue
            fold = _FOLDABLE.get(ins.op)
            if fold is None or ins.dest is None:
                continue
            if len(ins.srcs) == 2 and all(s in consts for s in ins.srcs):
                value = fold(consts[ins.srcs[0]], consts[ins.srcs[1]]) & (2**64 - 1)
                ins.op = "const"
                ins.imm = value
                ins.srcs = ()
                consts[ins.dest] = value
    return consts


# ----------------------------------------------------------------------
# Local CSE
# ----------------------------------------------------------------------
def local_cse(irf: IRFunction, check_elim: bool) -> None:
    rename: Dict[int, int] = {}

    def resolve(reg: int) -> int:
        while reg in rename:
            reg = rename[reg]
        return reg

    for block in irf.blocks:
        table: Dict[Tuple, int] = {}
        checked: Set[Tuple[int, int]] = set()
        kept: List[IRInstr] = []
        for ins in block.instrs:
            if rename:
                ins.srcs = tuple(resolve(s) for s in ins.srcs)
            if ins.op in _MEMORY_CLOBBERS:
                table = {
                    key: value for key, value in table.items() if key[0] != "load"
                }
                if ins.op == "growmem":
                    checked.clear()
                kept.append(ins)
                continue
            if ins.op == "boundscheck":
                if check_elim:
                    key = (ins.srcs[0], ins.imm)
                    if key in checked:
                        continue  # redundant check eliminated
                    checked.add(key)
                kept.append(ins)
                continue
            if ins.op in PURE_OPS and ins.op not in ("move",) and ins.dest is not None:
                key = (ins.op, ins.srcs, ins.imm, ins.valtype)
                existing = table.get(key)
                if existing is not None:
                    rename[ins.dest] = existing
                    continue
                table[key] = ins.dest
                kept.append(ins)
                continue
            if ins.op == "load" and ins.dest is not None:
                key = ("load", ins.srcs, ins.imm, ins.valtype)
                existing = table.get(key)
                if existing is not None:
                    rename[ins.dest] = existing
                    continue
                table[key] = ins.dest
                kept.append(ins)
                continue
            kept.append(ins)
        block.instrs = kept
    if rename:
        for ins in irf.instructions():
            ins.srcs = tuple(resolve(s) for s in ins.srcs)


# ----------------------------------------------------------------------
# LICM
# ----------------------------------------------------------------------
_HOISTABLE = PURE_OPS - {"move"}


def loop_invariant_code_motion(irf: IRFunction) -> int:
    """Hoist invariant pure ops to loop preheaders; returns hoist count."""
    def_counts: Dict[int, int] = {}
    for ins in irf.instructions():
        if ins.dest is not None:
            def_counts[ins.dest] = def_counts.get(ins.dest, 0) + 1

    # Collect loops: id -> (header index, path).
    loops: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for index, block in enumerate(irf.blocks):
        if block.loop_path and block.loop_path[-1] not in loops:
            loops[block.loop_path[-1]] = (index, block.loop_path)
    hoisted_total = 0
    # Innermost loops first so hoists can cascade outward.
    for loop_id, (header_index, path) in sorted(
        loops.items(), key=lambda item: -len(item[1][1])
    ):
        if header_index == 0:
            continue  # no preheader to hoist into
        preheader = irf.blocks[header_index - 1]
        if loop_id in preheader.loop_path:
            continue  # defensive: preheader must sit outside the loop
        header = irf.blocks[header_index]
        member_blocks = [b for b in irf.blocks if loop_id in b.loop_path]
        defs_in_loop: Set[int] = set()
        for block in member_blocks:
            for ins in block.instrs:
                if ins.dest is not None:
                    defs_in_loop.add(ins.dest)
        # Hoist only from blocks guaranteed to run every iteration:
        # directly in this loop (not in a nested loop) and not under an
        # if inside the loop.
        body_blocks = [
            b for b in member_blocks
            if b.loop_path == path and b.if_depth == header.if_depth
        ]
        invariant: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for block in body_blocks:
                kept: List[IRInstr] = []
                for ins in block.instrs:
                    can_hoist = (
                        ins.op in _HOISTABLE
                        and ins.dest is not None
                        and def_counts.get(ins.dest, 0) == 1
                        and all(
                            s not in defs_in_loop or s in invariant
                            for s in ins.srcs
                        )
                    )
                    if can_hoist:
                        _append_before_terminator(preheader, ins)
                        invariant.add(ins.dest)
                        hoisted_total += 1
                        changed = True
                    else:
                        kept.append(ins)
                block.instrs = kept
    return hoisted_total


def _append_before_terminator(block: IRBlock, ins: IRInstr) -> None:
    if block.instrs and block.instrs[-1].op in TERMINATORS:
        block.instrs.insert(len(block.instrs) - 1, ins)
    else:
        block.instrs.append(ins)


# ----------------------------------------------------------------------
# Strength reduction
# ----------------------------------------------------------------------
def strength_reduce(irf: IRFunction, const_map: Dict[int, int]) -> int:
    reduced = 0
    for ins in irf.instructions():
        if ins.op != "imul" or len(ins.srcs) != 2:
            continue
        for position in (0, 1):
            value = const_map.get(ins.srcs[position])
            if value is not None and value > 0 and value & (value - 1) == 0:
                other = ins.srcs[1 - position]
                const_reg = ins.srcs[position]
                ins.op = "ishl"
                ins.srcs = (other, const_reg)
                ins.imm = value.bit_length() - 1
                reduced += 1
                break
    return reduced


# ----------------------------------------------------------------------
# DCE
# ----------------------------------------------------------------------
_REMOVABLE = PURE_OPS | {"phi", "gload", "memsize"}


def dead_code_elim(irf: IRFunction) -> int:
    removed_total = 0
    while True:
        used: Set[int] = set()
        for ins in irf.instructions():
            used.update(ins.srcs)
        removed = 0
        for block in irf.blocks:
            kept = []
            for ins in block.instrs:
                if (
                    ins.op in _REMOVABLE
                    and ins.dest is not None
                    and ins.dest not in used
                ):
                    removed += 1
                    continue
                kept.append(ins)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total
