"""The shared optimising compiler behind the AOT/JIT runtime models.

Pipeline (DESIGN.md §5, step 2):

1. :mod:`frontend` — translate a validated Wasm function's stack code
   into a register IR of basic blocks, inserting a ``boundscheck``
   pseudo-op before every memory access and loop-header phis for
   loop-carried locals;
2. :mod:`passes` — the optimisation passes the runtime model enables
   (constant folding, local CSE, loop-invariant code motion, strength
   reduction, dead-code elimination);
3. :mod:`regalloc` — a linear-scan spill estimator;
4. :mod:`isel` — lower IR to machine-op kind lists per block, applying
   ISA addressing-mode fusion and expanding each bounds-checking
   strategy to its real code shape;
5. :mod:`timing` — price the result with an ISA cost model against a
   dynamic :class:`~repro.runtime.profile.ExecutionProfile`.
"""

from repro.compiler.ir import IRBlock, IRFunction, IRInstr
from repro.compiler.frontend import lower_function, lower_module
from repro.compiler.pipeline import CompilerConfig, compile_module, CompiledModule
from repro.compiler.timing import cycles_for_profile

__all__ = [
    "IRBlock",
    "IRFunction",
    "IRInstr",
    "lower_function",
    "lower_module",
    "CompilerConfig",
    "compile_module",
    "CompiledModule",
    "cycles_for_profile",
]
