"""The compiler driver: configuration → compiled, costed module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.compiler.bce import BCEStats
from repro.compiler.frontend import lower_module
from repro.compiler.ir import IRFunction
from repro.compiler.isel import SelectionConfig, select_function
from repro.compiler.passes import run_passes
from repro.compiler.regalloc import estimate_spills
from repro.isa.model import IsaModel, OPK
from repro.runtime.strategies import BoundsStrategy
from repro.wasm.module import Module

#: Every pass the pipeline knows about, in run order.
ALL_PASSES = frozenset({
    "constfold", "cse", "checkelim", "licm", "bce", "bceloop", "strength",
    "dce",
})


@dataclass(frozen=True)
class CompilerConfig:
    """How one runtime model configures the shared compiler."""

    name: str
    passes: FrozenSet[str]
    #: Allocator quality: fraction of architectural registers the
    #: allocator uses effectively (LLVM ≈ 1.0).
    regalloc_quality: float
    addressing_fusion: bool
    #: Extra bookkeeping ALU ops per memory access whenever bounds
    #: checking is on in any form — signal-based *or* inline (V8's
    #: trap-handler metadata + dynamic memory base; 0 elsewhere).
    #: Charged on the access itself, not the check, so bounds-check
    #: elimination cannot remove it: the sandbox keeps its base/size
    #: bookkeeping even for accesses whose check was proved redundant.
    signal_strategy_access_ops: int = 0
    #: Extra bookkeeping ops per access regardless of strategy.
    baseline_access_ops: int = 0
    #: Multiplier applied to loop-block cost (GCC's PolyBench edge).
    loop_bonus: float = 1.0
    #: Emit a stack-overflow check at every function entry — one of the
    #: Wasm safety costs Jangda et al. [12] identify alongside bounds
    #: and indirect-call checks.  Native code has no such check.
    stack_checks: bool = False

    def __post_init__(self) -> None:
        unknown = self.passes - ALL_PASSES
        if unknown:
            raise ValueError(f"unknown passes {sorted(unknown)}")
        if "bceloop" in self.passes and "bce" not in self.passes:
            raise ValueError("'bceloop' requires 'bce'")


@dataclass
class CompiledFunction:
    irf: IRFunction
    #: block id -> machine op kinds (including spill ops).
    machine_ops: Dict[int, List[str]]
    #: block id -> cycles per execution.
    block_cycles: Dict[int, float]
    #: Static bounds-check elimination counters for this function.
    bce: BCEStats = field(default_factory=BCEStats)


@dataclass
class CompiledModule:
    """The costed result of compiling a module for one configuration."""

    module: Module
    isa: IsaModel
    config: CompilerConfig
    strategy: BoundsStrategy
    functions: Dict[int, CompiledFunction] = field(default_factory=dict)

    @property
    def total_static_ops(self) -> int:
        return sum(
            len(ops)
            for func in self.functions.values()
            for ops in func.machine_ops.values()
        )

    @property
    def checks_emitted_static(self) -> int:
        """``boundscheck`` instructions remaining after all passes."""
        return sum(
            1
            for func in self.functions.values()
            for ins in func.irf.instructions()
            if ins.op == "boundscheck"
        )

    @property
    def checks_elided_static(self) -> int:
        """Checks deleted by the BCE pass across all functions."""
        return sum(
            func.bce.eliminated_total for func in self.functions.values()
        )


def _affine_guard_allowed(strategy: BoundsStrategy) -> bool:
    """BCE's affine pooled guard needs the 32-bit guard region.

    The pooled guard checks one extremal address per loop entry and
    lets the 8 GiB guard mapping absorb everything in between; with a
    64-bit (wasm64) memory no guard region exists, so every surviving
    access must carry its own explicit check.
    """
    return strategy.addr_bits == 32


def compile_module(
    module: Module,
    isa: IsaModel,
    config: CompilerConfig,
    strategy: BoundsStrategy,
) -> CompiledModule:
    """Run the full pipeline for every defined function."""
    compiled = CompiledModule(module, isa, config, strategy)
    extra_access_ops = config.baseline_access_ops
    if strategy.signal_on_oob or strategy.inline_check:
        extra_access_ops += config.signal_strategy_access_ops
    selection = SelectionConfig(
        inline_check=strategy.inline_check,
        extra_access_ops=extra_access_ops,
        addressing_fusion=config.addressing_fusion,
    )
    enabled = set(config.passes)
    if not strategy.inline_check:
        # BCE only pays off (and only shows up in cost) when check code
        # is inlined; skipping it entirely for none/mprotect/uffd keeps
        # their code shape — and therefore their figures — bit-for-bit
        # independent of whether BCE is enabled.
        enabled -= {"bce", "bceloop"}
    for func_index, irf in lower_module(module).items():
        bce_stats = BCEStats()
        run_passes(
            irf, enabled, bce_stats=bce_stats,
            affine_guard_ok=_affine_guard_allowed(strategy),
        )
        machine_ops = select_function(irf, isa, selection)
        if config.stack_checks and irf.blocks:
            # Stack-limit compare+branch in the prologue (entry block).
            entry = irf.blocks[0].id
            machine_ops.setdefault(entry, []).insert(0, OPK.CMP_BRANCH)
        spills = estimate_spills(irf, isa, config.regalloc_quality)
        for block_id, count in spills.per_block.items():
            machine_ops.setdefault(block_id, []).extend([OPK.SPILL] * count)
        block_cycles = {}
        for block in irf.blocks:
            cycles = sum(isa.cost(kind) for kind in machine_ops.get(block.id, ()))
            if block.loop_depth > 0:
                cycles *= config.loop_bonus
            block_cycles[block.id] = cycles
        compiled.functions[func_index] = CompiledFunction(
            irf=irf, machine_ops=machine_ops, block_cycles=block_cycles,
            bce=bce_stats,
        )
    return compiled
