"""Wasm stack code → register IR.

The translation simulates the operand stack with virtual registers:
``local.get``/``local.set`` become register renames (free, like a real
compiler after SSA construction), loop-carried locals get ``phi``
pseudo-defs in the loop header so loop-invariant analysis sees true
data flow, and every memory access is preceded by a ``boundscheck``
pseudo-op that instruction selection later expands according to the
active bounds-checking strategy.

Block-splitting rules give each IR block a *leader*: the first Wasm pc
translated into it (excluding ``end``/``else``, which branches can skip
in ways that would skew counts).  The dynamic execution count of the
leader — recorded by the profiling interpreter — is exactly the block's
execution count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.ir import IRBlock, IRFunction, IRInstr
from repro.wasm.instructions import Instr
from repro.wasm.module import Function, Module

#: wasm binop suffix -> IR op for integers.
_INT_BINOPS = {
    "add": "iadd", "sub": "isub", "mul": "imul",
    "div_s": "idiv", "div_u": "idiv", "rem_s": "irem", "rem_u": "irem",
    "and": "iand", "or": "ior", "xor": "ixor",
    "shl": "ishl", "shr_s": "ishr", "shr_u": "ishr",
    "rotl": "irot", "rotr": "irot",
}
_FLOAT_BINOPS = {
    "add": "fadd", "sub": "fsub", "mul": "fmul", "div": "fdiv",
    "min": "fmin", "max": "fmax", "copysign": "fcopysign",
}
_CMP_SUFFIXES = {
    "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u",
    "le_s", "le_u", "ge_s", "ge_u", "lt", "gt", "le", "ge",
}
_FLOAT_UNOPS = {
    "neg": "fneg", "abs": "fabs", "sqrt": "fsqrt",
    "ceil": "fround", "floor": "fround", "trunc": "fround", "nearest": "fround",
}
_BIT_UNOPS = {"clz", "ctz", "popcnt"}


class _Ctrl:
    """One entry of the frontend's control stack."""

    __slots__ = (
        "kind", "arity", "result_regs", "stack_base", "header",
        "loop_pc", "entry_if_depth",
    )

    def __init__(self, kind, arity, result_regs, stack_base,
                 header=None, loop_pc=-1, entry_if_depth=0):
        self.kind = kind
        self.arity = arity
        self.result_regs = result_regs
        self.stack_base = stack_base
        self.header = header
        self.loop_pc = loop_pc
        self.entry_if_depth = entry_if_depth


def _loop_write_sets(body: List[Instr]) -> Dict[int, Set[int]]:
    """For each ``loop`` pc, the set of local indices written inside it."""
    writes: Dict[int, Set[int]] = {}
    open_loops: List[int] = []
    open_kinds: List[str] = []
    for pc, ins in enumerate(body):
        op = ins.op
        if op == "loop":
            writes[pc] = set()
            open_loops.append(pc)
            open_kinds.append("loop")
        elif op in ("block", "if"):
            open_kinds.append(op)
        elif op == "end":
            kind = open_kinds.pop()
            if kind == "loop":
                open_loops.pop()
        elif op in ("local.set", "local.tee"):
            for loop_pc in open_loops:
                writes[loop_pc].add(ins.args[0])
    return writes


def lower_function(module: Module, func_index: int, func: Function) -> IRFunction:
    return _Lowering(module, func_index, func).run()


def lower_module(module: Module) -> Dict[int, IRFunction]:
    """Lower every defined function, keyed by absolute index."""
    result = {}
    for local_index, func in enumerate(module.funcs):
        func_index = module.num_imported_funcs + local_index
        result[func_index] = lower_function(module, func_index, func)
    return result


class _Lowering:
    def __init__(self, module: Module, func_index: int, func: Function) -> None:
        self.module = module
        self.func = func
        ftype = module.type_at(func.type_index)
        self.ftype = ftype
        self.irf = IRFunction(func_index, func.name, num_params=len(ftype.params))
        self.loop_writes = _loop_write_sets(func.body)
        self.vstack: List[int] = []
        self.ctrls: List[_Ctrl] = []
        self.loop_path: Tuple[int, ...] = ()
        self.if_depth = 0
        self.scope_path: Tuple[Tuple, ...] = ()
        self.unreachable = False
        self.cur: Optional[IRBlock] = None
        self.local_regs: List[int] = []

    # -- small helpers ---------------------------------------------------
    def emit(self, op, dest=None, srcs=(), imm=None, valtype="i32", pc=-1) -> IRInstr:
        ins = IRInstr(op, dest, tuple(srcs), imm, valtype, pc)
        self.cur.instrs.append(ins)
        return ins

    def push(self, reg: int) -> None:
        self.vstack.append(reg)

    def pop(self) -> int:
        base = self.ctrls[-1].stack_base if self.ctrls else 0
        if len(self.vstack) <= base:
            if self.unreachable:
                return self.irf.new_reg()  # dummy in dead code
            raise AssertionError("frontend stack underflow (module not validated?)")
        return self.vstack.pop()

    def fresh_block(self) -> IRBlock:
        block = self.irf.new_block(self.loop_path, self.if_depth, self.scope_path)
        self.cur = block
        return block

    # -- main ------------------------------------------------------------
    def run(self) -> IRFunction:
        irf = self.irf
        for _ in self.ftype.params:
            irf.new_reg()
        self.local_regs = list(range(len(self.ftype.params)))
        self.fresh_block()
        for valtype in self.func.locals:
            reg = irf.new_reg()
            self.emit("const", reg, imm=0, valtype=valtype.value)
            self.local_regs.append(reg)
        for pc, ins in enumerate(self.func.body):
            self.translate(pc, ins)
        # Implicit function end.
        if not self.unreachable:
            self.emit("ret", srcs=tuple(self.vstack[-len(self.ftype.results):])
                      if self.ftype.results else ())
        return irf

    # -- translation ------------------------------------------------------
    def translate(self, pc: int, ins: Instr) -> None:
        op = ins.op
        if op not in ("end", "else"):
            self.cur.set_leader(pc)

        if op == "nop":
            return
        if op in ("block", "loop", "if"):
            self._enter_block(pc, ins)
            return
        if op == "else":
            self._else(pc)
            return
        if op == "end":
            self._end(pc)
            return
        if op in ("br", "br_if", "br_table", "return"):
            self._branch_like(pc, ins)
            return
        if op == "unreachable":
            self.emit("trap", pc=pc)
            self._go_unreachable()
            return
        if op in ("call", "call_indirect"):
            self._call(pc, ins)
            return
        if self.unreachable:
            return  # dead straight-line code: skip entirely
        self._straightline(pc, ins)

    # -- control ------------------------------------------------------------
    def _enter_block(self, pc: int, ins: Instr) -> None:
        arity = 0 if ins.args[0] is None else 1
        result_type = ins.args[0].value if arity else "i32"
        result_regs = [self.irf.new_reg() for _ in range(arity)]
        if ins.op == "if":
            cond = self.pop()
            ctrl = _Ctrl("if", arity, result_regs, len(self.vstack))
            self.ctrls.append(ctrl)
            self.emit("brif", srcs=(cond,), pc=pc)
            self.if_depth += 1
            self.scope_path = self.scope_path + (("if", pc, 0),)
            self.fresh_block()
            return
        if ins.op == "block":
            # No block split: code up to the first branch inside a wasm
            # `block` keeps the enclosing IR block (and its outer scope
            # path), which is sound — nothing can skip it.  Blocks
            # created after any split inside carry the "blk" entry and
            # therefore stop dominating once the construct ends.
            self.scope_path = self.scope_path + (("blk", pc),)
            self.ctrls.append(_Ctrl("block", arity, result_regs, len(self.vstack)))
            return
        # loop
        self.loop_path = self.loop_path + (pc,)
        self.scope_path = self.scope_path + (("loop", pc),)
        header = self.irf.new_block(self.loop_path, self.if_depth, self.scope_path)
        header.set_leader(pc)  # executions of the 'loop' opcode == iterations
        self.cur = header
        ctrl = _Ctrl(
            "loop", arity, result_regs, len(self.vstack),
            header=header, loop_pc=pc, entry_if_depth=self.if_depth,
        )
        self.ctrls.append(ctrl)
        # Loop-carried locals become phi defs in the header.
        for local_index in sorted(self.loop_writes.get(pc, ())):
            old_reg = self.local_regs[local_index]
            phi = self.irf.new_reg()
            self.emit("phi", phi, srcs=(old_reg,), pc=pc,
                      valtype=self._local_type(local_index))
            self.local_regs[local_index] = phi

    def _local_type(self, local_index: int) -> str:
        params = self.ftype.params
        if local_index < len(params):
            return params[local_index].value
        return self.func.locals[local_index - len(params)].value

    def _else(self, pc: int) -> None:
        ctrl = self.ctrls[-1]
        if not self.unreachable:
            self._move_results(ctrl, pc)
            self.emit("br", pc=pc)  # jump over the else arm
        del self.vstack[ctrl.stack_base:]
        self.unreachable = False
        # Flip the scope entry to the else arm: facts from the then arm
        # must not dominate into it.
        entry = self.scope_path[-1]
        self.scope_path = self.scope_path[:-1] + (("if", entry[1], 1),)
        self.fresh_block()

    def _end(self, pc: int) -> None:
        if not self.ctrls:
            return  # function-level end handled by run()
        ctrl = self.ctrls.pop()
        if not self.unreachable:
            self._move_results(ctrl, pc)
        del self.vstack[ctrl.stack_base:]
        self.unreachable = False
        if ctrl.kind == "loop":
            self.loop_path = self.loop_path[:-1]
        elif ctrl.kind == "if":
            self.if_depth -= 1
        self.scope_path = self.scope_path[:-1]
        self.fresh_block()
        self.vstack.extend(ctrl.result_regs)

    def _move_results(self, ctrl: _Ctrl, pc: int) -> None:
        if ctrl.arity == 0:
            return
        values = self.vstack[-ctrl.arity:]
        for value, dest in zip(values, ctrl.result_regs):
            self.emit("move", dest, srcs=(value,), pc=pc)

    def _branch_target(self, depth: int) -> Optional[_Ctrl]:
        if depth >= len(self.ctrls):
            return None  # function level: a return
        return self.ctrls[len(self.ctrls) - 1 - depth]

    def _branch_like(self, pc: int, ins: Instr) -> None:
        op = ins.op
        if self.unreachable:
            return
        if op == "return":
            nres = len(self.ftype.results)
            srcs = tuple(self.vstack[-nres:]) if nres else ()
            self.emit("ret", srcs=srcs, pc=pc)
            self._go_unreachable()
            return
        if op == "br":
            self._emit_branch(self._branch_target(ins.args[0]), pc)
            self._go_unreachable()
            return
        if op == "br_if":
            cond = self.pop()
            target = self._branch_target(ins.args[0])
            if target is not None and target.kind != "loop" and target.arity:
                # Values carried on a conditional exit edge: the real
                # compiler places the moves on the split edge.
                values = self.vstack[-target.arity:]
                for value, dest in zip(values, target.result_regs):
                    self.emit("move", dest, srcs=(value,), pc=pc)
            self.emit("brif", srcs=(cond,), pc=pc)
            # Fallthrough continues in a new block (branch splits flow).
            self.fresh_block()
            return
        # br_table
        index = self.pop()
        labels, default = ins.args
        self.emit("brtable", srcs=(index,), imm=len(labels) + 1, pc=pc)
        self._go_unreachable()

    def _emit_branch(self, target: Optional[_Ctrl], pc: int) -> None:
        if target is None:  # branch to function level == return
            nres = len(self.ftype.results)
            srcs = tuple(self.vstack[-nres:]) if nres else ()
            self.emit("ret", srcs=srcs, pc=pc)
            return
        if target.kind != "loop" and target.arity:
            self._move_results(target, pc)
        self.emit("br", pc=pc)

    def _go_unreachable(self) -> None:
        self.unreachable = True
        base = self.ctrls[-1].stack_base if self.ctrls else 0
        del self.vstack[base:]
        self.fresh_block()

    # -- calls ------------------------------------------------------------------
    def _call(self, pc: int, ins: Instr) -> None:
        if self.unreachable:
            return
        if ins.op == "call":
            callee = ins.args[0]
            ftype = self.module.func_type(callee)
            args = [self.pop() for _ in ftype.params][::-1]
            dest = self.irf.new_reg() if ftype.results else None
            self.emit("call", dest, srcs=tuple(args), imm=callee, pc=pc,
                      valtype=ftype.results[0].value if ftype.results else "i32")
            if ftype.results:
                self.push(dest)
            return
        type_index, _ = ins.args
        ftype = self.module.type_at(type_index)
        index = self.pop()
        args = [self.pop() for _ in ftype.params][::-1]
        dest = self.irf.new_reg() if ftype.results else None
        self.emit("call_indirect", dest, srcs=(index, *args), imm=type_index, pc=pc,
                  valtype=ftype.results[0].value if ftype.results else "i32")
        if ftype.results:
            self.push(dest)

    # -- straight-line ---------------------------------------------------------------
    def _straightline(self, pc: int, ins: Instr) -> None:
        op = ins.op
        info = ins.info

        if info.category == "const":
            dest = self.irf.new_reg()
            self.emit("const", dest, imm=ins.args[0], valtype=op[:3], pc=pc)
            self.push(dest)
            return
        if op == "drop":
            self.pop()
            return
        if op == "select":
            cond = self.pop()
            second = self.pop()
            first = self.pop()
            dest = self.irf.new_reg()
            self.emit("select", dest, srcs=(first, second, cond), pc=pc)
            self.push(dest)
            return
        if op == "local.get":
            self.push(self.local_regs[ins.args[0]])
            return
        if op == "local.set":
            self.local_regs[ins.args[0]] = self.pop()
            return
        if op == "local.tee":
            self.local_regs[ins.args[0]] = self.vstack[-1]
            return
        if op == "global.get":
            dest = self.irf.new_reg()
            self.emit("gload", dest, imm=ins.args[0], pc=pc)
            self.push(dest)
            return
        if op == "global.set":
            self.emit("gstore", srcs=(self.pop(),), imm=ins.args[0], pc=pc)
            return
        if info.category == "load":
            addr = self.pop()
            align, offset = ins.args
            self.emit("boundscheck", srcs=(addr,), imm=info.access_bytes, pc=pc)
            dest = self.irf.new_reg()
            self.emit("load", dest, srcs=(addr,), imm=(offset, info.access_bytes),
                      valtype=info.results[0], pc=pc)
            self.push(dest)
            return
        if info.category == "store":
            value = self.pop()
            addr = self.pop()
            self.emit("boundscheck", srcs=(addr,), imm=info.access_bytes, pc=pc)
            self.emit("store", srcs=(addr, value), imm=(ins.args[1], info.access_bytes),
                      valtype=info.params[1], pc=pc)
            return
        if op == "memory.size":
            dest = self.irf.new_reg()
            self.emit("memsize", dest, pc=pc)
            self.push(dest)
            return
        if op == "memory.grow":
            delta = self.pop()
            dest = self.irf.new_reg()
            self.emit("growmem", dest, srcs=(delta,), pc=pc)
            self.push(dest)
            return
        # Numeric ops, by name structure: "<type>.<suffix>".
        prefix, _, suffix = op.partition(".")
        is_float = prefix in ("f32", "f64")
        if info.category == "compare":
            if suffix == "eqz":
                src = self.pop()
                dest = self.irf.new_reg()
                self.emit("icmp", dest, srcs=(src,), imm="eqz", pc=pc, valtype=prefix)
            else:
                b = self.pop()
                a = self.pop()
                dest = self.irf.new_reg()
                self.emit("fcmp" if is_float else "icmp", dest, srcs=(a, b),
                          imm=suffix, pc=pc, valtype=prefix)
            self.push(dest)
            return
        if info.category == "convert":
            src = self.pop()
            dest = self.irf.new_reg()
            self.emit("convert", dest, srcs=(src,), imm=op,
                      valtype=info.results[0], pc=pc)
            self.push(dest)
            return
        # arith
        if len(info.params) == 1:
            src = self.pop()
            dest = self.irf.new_reg()
            if is_float:
                self.emit(_FLOAT_UNOPS[suffix], dest, srcs=(src,),
                          valtype=prefix, pc=pc)
            else:
                assert suffix in _BIT_UNOPS, op
                self.emit("ibit", dest, srcs=(src,), imm=suffix, valtype=prefix, pc=pc)
            self.push(dest)
            return
        b = self.pop()
        a = self.pop()
        dest = self.irf.new_reg()
        ir_op = _FLOAT_BINOPS[suffix] if is_float else _INT_BINOPS[suffix]
        self.emit(ir_op, dest, srcs=(a, b), imm=suffix, valtype=prefix, pc=pc)
        self.push(dest)
