"""Timing composition: compiled code × dynamic profile → cycles.

``cycles = Σ_blocks count(block) × cycles(block)`` where a block's
dynamic count is the profiled execution count of its leader Wasm
instruction (DESIGN.md §5).  The same profile prices every
runtime × strategy × ISA configuration, so configuration differences
come *only* from code shape and cost model — never from re-measuring.
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.pipeline import CompiledModule
from repro.isa.model import IsaModel
from repro.runtime.profile import ExecutionProfile


def cycles_for_profile(compiled: CompiledModule, profile: ExecutionProfile) -> float:
    """Single-thread execution cycles for one run of the profiled workload."""
    total = 0.0
    for func_index, func in compiled.functions.items():
        counts = profile.instr_counts.get(func_index)
        if not counts:
            continue  # function never executed
        body_len = len(counts)
        for block in func.irf.blocks:
            leader = block.leader_pc
            if leader < 0 or leader >= body_len:
                continue
            count = counts[leader]
            if count:
                total += count * func.block_cycles[block.id]
    return total


def check_counts_for_profile(
    compiled: CompiledModule, profile: ExecutionProfile
) -> Dict[str, int]:
    """Dynamic bounds-check counts for one run of the profiled workload.

    ``emitted`` counts executions of ``boundscheck`` instructions that
    survived compilation (including widened guards BCE hoisted into
    preheaders); ``elided`` counts executions the BCE pass removed,
    reconstructed from its per-block static elision counters times the
    blocks' dynamic counts.  Blocks without a countable leader follow
    the same rule as :func:`cycles_for_profile`: they contribute
    nothing.
    """
    emitted = 0
    elided = 0
    for func_index, func in compiled.functions.items():
        counts = profile.instr_counts.get(func_index)
        if not counts:
            continue
        body_len = len(counts)
        elided_by_block = func.bce.elided_by_block
        for block in func.irf.blocks:
            leader = block.leader_pc
            if leader < 0 or leader >= body_len:
                continue
            count = counts[leader]
            if not count:
                continue
            static_checks = sum(
                1 for ins in block.instrs if ins.op == "boundscheck"
            )
            if static_checks:
                emitted += count * static_checks
            removed = elided_by_block.get(block.id)
            if removed:
                elided += count * removed
    return {"emitted": emitted, "elided": elided}


#: Per-op overhead charged by the interpreter model on top of dispatch.
#:
#: These are calibrated jointly with `IsaModel.interp_dispatch` so that
#: the Wasm3/V8-TurboFan ratio lands in the 6-11x range the paper
#: replicates from Titzer [29] (§4.4).  They are *per naive Wasm op*:
#: our DSL emits unoptimised address arithmetic that clang would have
#: cleaned up before emitting wasm, so the dynamic op count runs high
#: and the per-op constant correspondingly low.
_INTERP_OP_WORK: Dict[str, float] = {
    "load": 2.2,     # bounds check + address math + memory touch
    "store": 2.2,
    "const": 0.3,
    "compare": 0.8,
    "arith": 0.8,
    "convert": 1.0,
    "control": 1.2,
    "variable": 0.5,
    "parametric": 0.5,
    "memory": 3.0,
}

#: Divisions and calls cost extra even interpreted.
_INTERP_EXPENSIVE: Dict[str, float] = {
    "i32.div_s": 8.0, "i32.div_u": 8.0, "i32.rem_s": 8.0, "i32.rem_u": 8.0,
    "i64.div_s": 10.0, "i64.div_u": 10.0, "i64.rem_s": 10.0, "i64.rem_u": 10.0,
    "f32.div": 6.0, "f64.div": 6.0, "f32.sqrt": 7.0, "f64.sqrt": 7.0,
    "call": 10.0, "call_indirect": 16.0, "memory.grow": 200.0,
}


def interpreter_cycles(profile: ExecutionProfile, isa: IsaModel) -> float:
    """Wasm3-model cycles: dispatch + per-op work for every dynamic op.

    Wasm3 is a threaded interpreter (§2.2); its cost per op is the
    indirect-branch dispatch (ISA-dependent) plus operand handling.
    The model lands in the 6–11× range versus V8-TurboFan that both
    the paper (§4.4) and Titzer [29] report.
    """
    from repro.wasm import opcodes

    total = 0.0
    dispatch = isa.interp_dispatch
    for op_name, count in profile.op_totals.items():
        info = opcodes.BY_NAME[op_name]
        work = _INTERP_EXPENSIVE.get(op_name)
        if work is None:
            work = _INTERP_OP_WORK.get(info.category, 2.0)
        total += count * (dispatch + work)
    return total
