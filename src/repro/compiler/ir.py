"""The register IR.

A function is a list of basic blocks; each block is a list of
:class:`IRInstr` over an infinite virtual register file.  The IR is a
*costing* IR: it is never executed (the interpreter provides semantics),
so control-flow edges carry no values — loop-carried and merged values
appear as ``phi`` pseudo-defs.  Every instruction remembers the Wasm
program counter it came from, which is how dynamic profile counts are
mapped onto compiled code.

Op vocabulary
-------------

==============  ==========================================================
``const``       imm = literal value
``iadd isub imul idiv irem iand ior ixor ishl ishr irot``  integer ALU
``icmp``        imm = condition (eq/ne/lt_s/…); produces an i32 bool
``fadd fsub fmul fdiv fmin fmax fcopysign``  float ALU
``fneg fabs fsqrt fround``  float unary (fround = floor/ceil/trunc/nearest)
``fcmp``        imm = condition
``convert``     imm = source wasm op name
``select``      srcs = (a, b, cond)
``boundscheck`` srcs = (addr,), imm = access bytes — expanded at isel
``load store``  imm = (offset, access_bytes); loads define a value
``gload gstore`` globals (instance slots)
``call``        imm = callee func index
``call_indirect`` imm = type index
``memsize growmem``  runtime calls
``phi``         merge/loop-carried def (free)
``move``        register copy
``br brif brtable ret trap``  terminators (brif srcs = (cond,))
==============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: Pure ops that can be folded, CSE'd and hoisted.
PURE_OPS = {
    "const", "iadd", "isub", "imul", "iand", "ior", "ixor", "ishl", "ishr",
    "irot", "ibit", "icmp", "fadd", "fsub", "fmul", "fmin", "fmax",
    "fcopysign", "fneg", "fabs", "fcmp", "convert", "select", "move",
}

#: Ops that terminate a block.
TERMINATORS = {"br", "brif", "brtable", "ret", "trap"}


@dataclass
class IRInstr:
    op: str
    dest: Optional[int]
    srcs: Tuple[int, ...] = ()
    imm: Any = None
    valtype: str = "i32"
    wasm_pc: int = -1

    def __str__(self) -> str:
        dest = f"r{self.dest} = " if self.dest is not None else ""
        srcs = ", ".join(f"r{s}" for s in self.srcs)
        imm = f" [{self.imm}]" if self.imm is not None else ""
        return f"{dest}{self.op}({srcs}){imm}:{self.valtype}"


@dataclass
class IRBlock:
    id: int
    instrs: List[IRInstr] = field(default_factory=list)
    #: Wasm pc whose dynamic execution count equals this block's count
    #: (-1 when the block holds no countable instruction).
    leader_pc: int = -1
    #: Stack of enclosing loop ids (innermost last).
    loop_path: Tuple[int, ...] = ()
    #: if-nesting depth at creation (used to restrict LICM hoisting).
    if_depth: int = 0
    #: Structural control context at creation: one entry per enclosing
    #: wasm construct — ``("loop", pc)``, ``("blk", pc)`` or
    #: ``("if", pc, arm)`` with arm 0/1 for then/else.  For structured
    #: control flow, a block A laid out before a block B dominates B
    #: exactly when A's scope path is a prefix of B's: if-arms never
    #: dominate their join or the other arm, loop bodies never dominate
    #: post-loop code, while preheaders dominate their loops.  This is
    #: what the global bounds-check elimination pass keys its
    #: cross-block facts on.
    scope_path: Tuple[Tuple, ...] = ()

    @property
    def loop_depth(self) -> int:
        return len(self.loop_path)

    def set_leader(self, pc: int) -> None:
        if self.leader_pc < 0:
            self.leader_pc = pc

    def __str__(self) -> str:  # pragma: no cover - debug aid
        header = f"b{self.id} (leader={self.leader_pc}, loops={self.loop_path}):"
        return "\n  ".join([header] + [str(i) for i in self.instrs])


@dataclass
class IRFunction:
    func_index: int
    name: str
    blocks: List[IRBlock] = field(default_factory=list)
    num_regs: int = 0
    num_params: int = 0

    def new_block(
        self,
        loop_path: Tuple[int, ...] = (),
        if_depth: int = 0,
        scope_path: Tuple[Tuple, ...] = (),
    ) -> IRBlock:
        block = IRBlock(
            id=len(self.blocks), loop_path=loop_path, if_depth=if_depth,
            scope_path=scope_path,
        )
        self.blocks.append(block)
        return block

    def new_reg(self) -> int:
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def instructions(self):
        for block in self.blocks:
            yield from block.instrs

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"func {self.name or self.func_index}:\n" + "\n".join(
            str(b) for b in self.blocks
        )
