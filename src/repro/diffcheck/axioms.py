"""Executable axioms for the substrate layers under the harness.

The cross-strategy checks in :mod:`repro.diffcheck.reference` compare
configurations against *each other*, so a bug shared by every strategy
— all five run the same :class:`LinearMemory` code — is invisible to
them.  These axioms instead pin each layer against independently
computed expectations: touched-page sets against a Python page-range,
spec no-ops against event-log emptiness, the Fleming-Wallace summary
against its coverage contract.  A regression in any of the latent bugs
fixed alongside this harness (interior-page touch tracking, zero-delta
``memory.grow`` events, silent geomean intersection) fails diffcheck
itself, not only the unit suite.
"""

from __future__ import annotations

from repro.diffcheck.report import DiffReport
from repro.oskernel.layout import PAGE_SIZE
from repro.runtime.interpreter import Interpreter
from repro.runtime.memory import LinearMemory
from repro.stats import summary as summary_stats
from repro.wasm.builder import ModuleBuilder
from repro.wasm.types import Limits, ValType

AXIOM_TOUCH = "axiom.memory.touch-coverage"
AXIOM_SEGMENT = "axiom.memory.data-segment-touch"
AXIOM_GROW0 = "axiom.memory.grow-zero-noop"
AXIOM_GEOMEAN = "axiom.stats.geomean-coverage"

#: (address, size) ranged accesses, chosen to cover aligned spans,
#: boundary straddles, and >2-page interiors.
_TOUCH_PROBES = (
    (0, 4),
    (PAGE_SIZE - 2, 4),
    (2 * PAGE_SIZE, 2 * PAGE_SIZE),
    (100, 3 * PAGE_SIZE + 500),
    (4093, PAGE_SIZE + 7),
    (5 * PAGE_SIZE + 17, 4 * PAGE_SIZE),
)


def _expected_pages(address: int, size: int) -> set:
    """The first-touch page set, computed independently of LinearMemory."""
    return set(range(address // PAGE_SIZE, (address + size - 1) // PAGE_SIZE + 1))


def check_touch_coverage(report: DiffReport) -> None:
    """Every page under a ranged access is recorded, endpoints included."""
    for address, size in _TOUCH_PROBES:
        expected = _expected_pages(address, size)
        for op in ("store", "load"):
            mem = LinearMemory(Limits(16))
            if op == "store":
                mem.store_bytes(address, bytes(size))
            else:
                mem.load_bytes(address, size)
            report.check(
                AXIOM_TOUCH,
                mem.touched_pages == expected,
                subject={"op": op, "address": address, "size": size},
                detail="touched-page set differs from the page-range expectation",
                expected=expected,
                actual=mem.touched_pages,
            )


def check_data_segment_touch(report: DiffReport) -> None:
    """Instantiation-time data-segment writes first-touch their pages."""
    offset, payload = 100, bytes(range(256)) * 36  # 9216 B: pages 0..2
    mb = ModuleBuilder("axiom-segment")
    mb.add_memory(1)
    mb.add_data(0, offset, payload)
    interp = Interpreter(mb.build(), collect_profile=False, track_pages=True)
    expected = _expected_pages(offset, len(payload))
    actual = interp.memory.touched_pages
    report.check(
        AXIOM_SEGMENT,
        expected <= actual,
        subject={"offset": offset, "size": len(payload)},
        detail="data-segment initialisation did not touch every covered page",
        expected=expected,
        actual=actual,
    )


def check_grow_zero_noop(report: DiffReport) -> None:
    """``memory.grow 0`` is a size query: no event, no state change."""
    mem = LinearMemory(Limits(2, 8))
    returned = mem.grow(0)
    report.check(
        AXIOM_GROW0,
        returned == 2 and mem.events == [] and mem.pages == 2,
        subject={"layer": "memory", "delta": 0},
        detail="zero-delta grow must return the old size and record no event",
        expected={"returned": 2, "events": 0},
        actual={"returned": returned, "events": len(mem.events)},
    )
    mem.grow(1)
    mem.grow(0)
    report.check(
        AXIOM_GROW0,
        [(e.pages_before, e.pages_after) for e in mem.events] == [(2, 3)],
        subject={"layer": "memory", "delta": 1},
        detail="non-zero grows must still record exactly one event each",
        expected=[(2, 3)],
        actual=[(e.pages_before, e.pages_after) for e in mem.events],
    )

    # Through the interpreter: a bench that issues grow 0 then grow 1
    # must profile exactly one grow event.
    mb = ModuleBuilder("axiom-grow")
    mb.add_memory(1, 4)
    fb = mb.func("bench", results=[ValType.I32], export=True)
    fb.emit("i32.const", 0)
    fb.emit("memory.grow", 0)
    fb.emit("drop")
    fb.emit("i32.const", 1)
    fb.emit("memory.grow", 0)
    interp = Interpreter(mb.build(), collect_profile=True, track_pages=True)
    interp.invoke("bench")
    profile = interp.take_profile("axiom-grow", "mini")
    report.check(
        AXIOM_GROW0,
        profile.grow_events == [(1, 2)],
        subject={"layer": "interpreter"},
        detail="profiled grow events must exclude the zero-delta grow",
        expected=[(1, 2)],
        actual=profile.grow_events,
    )


def check_geomean_coverage(report: DiffReport) -> None:
    """Suite geomeans must not silently drop partially covered benchmarks."""
    # Late-bound module attribute so a regressed implementation (or a
    # test monkeypatching the old behaviour back in) is what runs here.
    fn = summary_stats.geomean_of_ratios
    try:
        fn({"a": 2.0, "b": 8.0}, {"a": 1.0})
        raised = False
    except ValueError:
        raised = True
    report.check(
        AXIOM_GEOMEAN,
        raised,
        subject={"case": "partial-overlap"},
        detail="partial benchmark overlap must raise instead of silently intersecting",
        expected="ValueError",
        actual="no error" if not raised else "ValueError",
    )
    try:
        value = fn({"a": 2.0, "b": 8.0}, {"a": 1.0}, allow_missing=True)
        escape_ok = abs(value - 2.0) < 1e-12
        actual = value
    except (TypeError, ValueError) as exc:
        escape_ok, actual = False, repr(exc)
    report.check(
        AXIOM_GEOMEAN,
        escape_ok,
        subject={"case": "allow-missing"},
        detail="the allow_missing escape hatch must summarise the intersection",
        expected=2.0,
        actual=actual,
    )
    full = fn({"a": 2.0, "b": 8.0}, {"a": 1.0, "b": 2.0})
    report.check(
        AXIOM_GEOMEAN,
        abs(full - 8.0 ** 0.5) < 1e-12,
        subject={"case": "full-overlap"},
        detail="identical coverage must reproduce the hand-computed geomean",
        expected=8.0 ** 0.5,
        actual=full,
    )


def check_axioms(report: DiffReport) -> None:
    """Run the whole axiom catalogue into ``report``."""
    check_touch_coverage(report)
    check_data_segment_touch(report)
    check_grow_zero_noop(report)
    check_geomean_coverage(report)
