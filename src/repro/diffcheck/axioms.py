"""Executable axioms for the substrate layers under the harness.

The cross-strategy checks in :mod:`repro.diffcheck.reference` compare
configurations against *each other*, so a bug shared by every strategy
— all five run the same :class:`LinearMemory` code — is invisible to
them.  These axioms instead pin each layer against independently
computed expectations: touched-page sets against a Python page-range,
spec no-ops against event-log emptiness, the Fleming-Wallace summary
against its coverage contract.  A regression in any of the latent bugs
fixed alongside this harness (interior-page touch tracking, zero-delta
``memory.grow`` events, silent geomean intersection) fails diffcheck
itself, not only the unit suite.
"""

from __future__ import annotations

from repro.diffcheck.report import DiffReport
from repro.oskernel.layout import PAGE_SIZE, WASM_PAGE_SIZE
from repro.runtime.interpreter import Interpreter
from repro.runtime.memory import LinearMemory
from repro.runtime.strategies import strategy_named
from repro.stats import summary as summary_stats
from repro.wasm.builder import ModuleBuilder
from repro.wasm.errors import Trap
from repro.wasm.types import Limits, ValType

AXIOM_TOUCH = "axiom.memory.touch-coverage"
AXIOM_SEGMENT = "axiom.memory.data-segment-touch"
AXIOM_GROW0 = "axiom.memory.grow-zero-noop"
AXIOM_GEOMEAN = "axiom.stats.geomean-coverage"
AXIOM_MTE_RETAG = "axiom.memory.mte-retag-granule"
AXIOM_W64_GUARD = "axiom.memory.wasm64-no-guard"
AXIOM_W64_BCE = "axiom.compiler.wasm64-no-affine-guard"

#: Arm MTE's architectural tag granule, restated independently of the
#: strategy table so a mis-registered granule cannot agree with itself.
_MTE_GRANULE_BYTES = 16

#: (address, size) ranged accesses, chosen to cover aligned spans,
#: boundary straddles, and >2-page interiors.
_TOUCH_PROBES = (
    (0, 4),
    (PAGE_SIZE - 2, 4),
    (2 * PAGE_SIZE, 2 * PAGE_SIZE),
    (100, 3 * PAGE_SIZE + 500),
    (4093, PAGE_SIZE + 7),
    (5 * PAGE_SIZE + 17, 4 * PAGE_SIZE),
)


def _expected_pages(address: int, size: int) -> set:
    """The first-touch page set, computed independently of LinearMemory."""
    return set(range(address // PAGE_SIZE, (address + size - 1) // PAGE_SIZE + 1))


def check_touch_coverage(report: DiffReport) -> None:
    """Every page under a ranged access is recorded, endpoints included."""
    for address, size in _TOUCH_PROBES:
        expected = _expected_pages(address, size)
        for op in ("store", "load"):
            mem = LinearMemory(Limits(16))
            if op == "store":
                mem.store_bytes(address, bytes(size))
            else:
                mem.load_bytes(address, size)
            report.check(
                AXIOM_TOUCH,
                mem.touched_pages == expected,
                subject={"op": op, "address": address, "size": size},
                detail="touched-page set differs from the page-range expectation",
                expected=expected,
                actual=mem.touched_pages,
            )


def check_data_segment_touch(report: DiffReport) -> None:
    """Instantiation-time data-segment writes first-touch their pages."""
    offset, payload = 100, bytes(range(256)) * 36  # 9216 B: pages 0..2
    mb = ModuleBuilder("axiom-segment")
    mb.add_memory(1)
    mb.add_data(0, offset, payload)
    interp = Interpreter(mb.build(), collect_profile=False, track_pages=True)
    expected = _expected_pages(offset, len(payload))
    actual = interp.memory.touched_pages
    report.check(
        AXIOM_SEGMENT,
        expected <= actual,
        subject={"offset": offset, "size": len(payload)},
        detail="data-segment initialisation did not touch every covered page",
        expected=expected,
        actual=actual,
    )


def check_grow_zero_noop(report: DiffReport) -> None:
    """``memory.grow 0`` is a size query: no event, no state change."""
    mem = LinearMemory(Limits(2, 8))
    returned = mem.grow(0)
    report.check(
        AXIOM_GROW0,
        returned == 2 and mem.events == [] and mem.pages == 2,
        subject={"layer": "memory", "delta": 0},
        detail="zero-delta grow must return the old size and record no event",
        expected={"returned": 2, "events": 0},
        actual={"returned": returned, "events": len(mem.events)},
    )
    mem.grow(1)
    mem.grow(0)
    report.check(
        AXIOM_GROW0,
        [(e.pages_before, e.pages_after) for e in mem.events] == [(2, 3)],
        subject={"layer": "memory", "delta": 1},
        detail="non-zero grows must still record exactly one event each",
        expected=[(2, 3)],
        actual=[(e.pages_before, e.pages_after) for e in mem.events],
    )

    # Through the interpreter: a bench that issues grow 0 then grow 1
    # must profile exactly one grow event.
    mb = ModuleBuilder("axiom-grow")
    mb.add_memory(1, 4)
    fb = mb.func("bench", results=[ValType.I32], export=True)
    fb.emit("i32.const", 0)
    fb.emit("memory.grow", 0)
    fb.emit("drop")
    fb.emit("i32.const", 1)
    fb.emit("memory.grow", 0)
    interp = Interpreter(mb.build(), collect_profile=True, track_pages=True)
    interp.invoke("bench")
    profile = interp.take_profile("axiom-grow", "mini")
    report.check(
        AXIOM_GROW0,
        profile.grow_events == [(1, 2)],
        subject={"layer": "interpreter"},
        detail="profiled grow events must exclude the zero-delta grow",
        expected=[(1, 2)],
        actual=profile.grow_events,
    )


def check_geomean_coverage(report: DiffReport) -> None:
    """Suite geomeans must not silently drop partially covered benchmarks."""
    # Late-bound module attribute so a regressed implementation (or a
    # test monkeypatching the old behaviour back in) is what runs here.
    fn = summary_stats.geomean_of_ratios
    try:
        fn({"a": 2.0, "b": 8.0}, {"a": 1.0})
        raised = False
    except ValueError:
        raised = True
    report.check(
        AXIOM_GEOMEAN,
        raised,
        subject={"case": "partial-overlap"},
        detail="partial benchmark overlap must raise instead of silently intersecting",
        expected="ValueError",
        actual="no error" if not raised else "ValueError",
    )
    try:
        value = fn({"a": 2.0, "b": 8.0}, {"a": 1.0}, allow_missing=True)
        escape_ok = abs(value - 2.0) < 1e-12
        actual = value
    except (TypeError, ValueError) as exc:
        escape_ok, actual = False, repr(exc)
    report.check(
        AXIOM_GEOMEAN,
        escape_ok,
        subject={"case": "allow-missing"},
        detail="the allow_missing escape hatch must summarise the intersection",
        expected=2.0,
        actual=actual,
    )
    full = fn({"a": 2.0, "b": 8.0}, {"a": 1.0, "b": 2.0})
    report.check(
        AXIOM_GEOMEAN,
        abs(full - 8.0 ** 0.5) < 1e-12,
        subject={"case": "full-overlap"},
        detail="identical coverage must reproduce the hand-computed geomean",
        expected=8.0 ** 0.5,
        actual=full,
    )


def check_mte_retag_granule(report: DiffReport) -> None:
    """Grow under MTE retags exactly one 16-byte granule per 16 bytes.

    The expectation is computed from the architectural constant, not
    from the strategy table, so a wrong-granule registration (or a
    regression that stops recording retag work) diverges here.
    """
    mem = LinearMemory(Limits(2, 16), strategy_named("mte"))
    mem.grow(3)
    expected = 3 * WASM_PAGE_SIZE // _MTE_GRANULE_BYTES
    actual = [event.granules for event in mem.events]
    report.check(
        AXIOM_MTE_RETAG,
        actual == [expected],
        subject={"strategy": "mte", "delta_pages": 3},
        detail="grow event granule count differs from bytes/16",
        expected=[expected],
        actual=actual,
    )
    for name in ("trap", "mprotect"):
        mem = LinearMemory(Limits(1, 8), strategy_named(name))
        mem.grow(2)
        granules = [event.granules for event in mem.events]
        report.check(
            AXIOM_MTE_RETAG,
            granules == [0],
            subject={"strategy": name, "delta_pages": 2},
            detail="untagged strategy recorded retag work",
            expected=[0],
            actual=granules,
        )


def check_wasm64_no_guard(report: DiffReport) -> None:
    """A 64-bit memory has no guard region: far accesses must trap and
    guard-dependent strategies must be rejected at construction."""
    mem = LinearMemory(Limits(1), strategy_named("wasm64"))
    try:
        mem.load_bytes((1 << 32) + 8, 4)
        outcome = "no trap"
    except Trap as exc:
        outcome = exc.kind
    report.check(
        AXIOM_W64_GUARD,
        outcome == "out-of-bounds-memory",
        subject={"case": "beyond-4GiB-access"},
        detail="wasm64 access beyond 4 GiB did not trap out-of-bounds",
        expected="out-of-bounds-memory",
        actual=outcome,
    )
    for name in ("none", "mprotect", "uffd"):
        try:
            LinearMemory(Limits(1), strategy_named(name), memory64=True)
            rejected = False
        except ValueError:
            rejected = True
        report.check(
            AXIOM_W64_GUARD,
            rejected,
            subject={"case": "guard-strategy-rejection", "strategy": name},
            detail="guard-region strategy accepted for a 64-bit memory",
            expected="ValueError",
            actual="accepted" if not rejected else "ValueError",
        )


def _loop_module():
    """A module whose inner loop produces affine bounds checks."""
    from repro.wasm.dsl import DslModule

    dm = DslModule("axiom-w64-bce")
    arr = dm.array_i32("a", 64)
    f = dm.func("run", params=[("seed", "i32")], results=["i32"])
    i = f.i32("i")
    acc = f.i32("acc")
    with f.for_(i, 0, 64):
        f.store(arr[i], arr[i] + i)
    with f.for_(i, 0, 64):
        f.set(acc, acc + arr[i])
    f.ret(acc)
    return dm.build()


def check_wasm64_bce_legality(report: DiffReport) -> None:
    """BCE must not pool affine guards for a 64-bit memory.

    The pooled extremal guard is sound only because the 8 GiB guard
    region absorbs every intermediate address; with wasm64 each access
    keeps its own check.  Compiled through the live pipeline (late
    bound), so a regression — or a monkeypatch re-enabling the elision
    — is what actually runs here.
    """
    from repro.compiler import pipeline as pipeline_mod
    from repro.isa import isa_named

    module = _loop_module()
    config = pipeline_mod.CompilerConfig(
        name="axiom-w64-bce",
        passes=frozenset(
            {"constfold", "cse", "checkelim", "licm", "bce", "bceloop",
             "strength", "dce"}
        ),
        regalloc_quality=1.0,
        addressing_fusion=True,
    )
    isa = isa_named("x86_64")
    affine = {}
    emitted = {}
    for name in ("trap", "wasm64"):
        compiled = pipeline_mod.compile_module(
            module, isa, config, strategy_named(name)
        )
        affine[name] = sum(
            func.bce.eliminated_affine for func in compiled.functions.values()
        )
        emitted[name] = compiled.checks_emitted_static
    report.check(
        AXIOM_W64_BCE,
        affine["trap"] > 0,
        subject={"strategy": "trap"},
        detail="loop module produced no affine eliminations under trap "
               "(axiom module no longer exercises the loop phase)",
        expected="> 0",
        actual=affine["trap"],
    )
    report.check(
        AXIOM_W64_BCE,
        affine["wasm64"] == 0,
        subject={"strategy": "wasm64"},
        detail="BCE pooled affine guards for a 64-bit memory",
        expected=0,
        actual=affine["wasm64"],
    )
    report.check(
        AXIOM_W64_BCE,
        emitted["wasm64"] >= emitted["trap"],
        subject={"comparison": "emitted-checks"},
        detail="wasm64 emitted fewer static checks than trap",
        expected=f">= {emitted['trap']}",
        actual=emitted["wasm64"],
    )


def check_axioms(report: DiffReport) -> None:
    """Run the whole axiom catalogue into ``report``."""
    check_touch_coverage(report)
    check_data_segment_touch(report)
    check_grow_zero_noop(report)
    check_geomean_coverage(report)
    check_mte_retag_granule(report)
    check_wasm64_no_guard(report)
    check_wasm64_bce_legality(report)
