"""Structural invariants over sweep measurements.

The paper's comparative claims impose cross-configuration structure
that any correct sweep must exhibit.  This module checks a catalogue
of such invariants over :class:`~repro.core.harness.RunMeasurement`
rows and records machine-readable violations:

* **inline-check cost ordering** — per (workload, runtime, ISA, size),
  the modelled single-thread compute time obeys
  ``clamp ≥ trap ≥ {mprotect, uffd} ≥ none``: clamp pays two inline
  ops per access, trap one, the virtual-memory strategies none (only
  fault/VMA costs, which cannot make them cheaper than ``none``).
  Checked on ``compute_seconds``, where the chain is deterministic.
  On *measured* medians system noise can legitimately reorder
  trap/uffd (uffd's fault costs are one-off, trap's inline checks
  recur), so the measured chain asserts only the structurally
  guaranteed pairs at one thread.
* **strategy-independent memory usage** — bounds checking must not
  change how many pages a workload populates: ``pages_populated`` is
  bit-equal across strategies; the sampled ``mem_avg_bytes`` agrees
  loosely whenever the run is long enough for the 10 ms sampler.
* **monotone CPU accounting** — aggregate busy time cannot decrease
  when worker threads are added to the same configuration, and the
  modelled compute time per iteration is thread-independent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.harness import RunMeasurement
from repro.diffcheck.report import DiffReport

CHECK_COMPUTE_ORDER = "sweep.inline-cost-order"
CHECK_MEDIAN_ORDER = "sweep.measured-cost-order"
CHECK_PAGES_EQUAL = "sweep.memory-pages-agreement"
CHECK_MEM_SAMPLED = "sweep.memory-sampled-agreement"
CHECK_CPU_MONOTONE = "sweep.cpu-monotone-threads"
CHECK_COMPUTE_CONST = "sweep.compute-thread-independent"
CHECK_MTE_SCALING = "sweep.mte-scaling-flatness"
CHECK_MTE_NO_VMA = "sweep.mte-no-vma-traffic"

#: Relative slack for comparisons between deterministic model outputs.
REL_TOL = 1e-9
#: The sampled memory average uses a 10 ms period; runs shorter than a
#: few periods alias badly, so the loose check needs this much wall
#: time (and all-positive samples) before it may judge.
MEM_MIN_WALL_SECONDS = 0.05
#: Sampling phase can shift the average by tens of percent on short
#: runs; the sharp invariant is CHECK_PAGES_EQUAL, this one only has
#: to catch a strategy allocating a different footprint outright.
MEM_RATIO_TOL = 1.5

#: compute_seconds pairs: (costlier, cheaper) strategy.  The mte rows
#: encode the ISSUE's one-thread cost ordering: the hardware tag check
#: (a fraction of a cycle, riding the access pipe, fusion preserved)
#: sits strictly between the software checks and the check-free
#: virtual-memory strategies.  wasm64 emits trap-shaped checks but
#: cannot pool affine guards, so it can never model cheaper than trap.
_COMPUTE_PAIRS = (
    ("clamp", "trap"),
    ("trap", "mprotect"),
    ("trap", "uffd"),
    ("mprotect", "none"),
    ("uffd", "none"),
    ("clamp", "mte"),
    ("trap", "mte"),
    ("mte", "mprotect"),
    ("mte", "uffd"),
    ("mte", "none"),
    ("wasm64", "trap"),
    ("wasm64", "none"),
)
#: Measured-median pairs that hold regardless of fault amortisation.
_MEDIAN_PAIRS = (
    ("clamp", "trap"),
    ("trap", "none"),
    ("mprotect", "none"),
    ("uffd", "none"),
    ("mte", "none"),
    ("wasm64", "none"),
)

#: Headroom for the mte thread-scaling comparison: the simulation is
#: deterministic, but fault batching quantises the read-lock traffic,
#: so allow a few percent before calling the flatness claim violated.
MTE_SCALING_TOL = 1.05

#: id -> human description, for documentation and report consumers.
INVARIANTS: Dict[str, str] = {
    CHECK_COMPUTE_ORDER: (
        "modelled compute time per iteration obeys "
        "clamp >= trap >= {mprotect, uffd} >= none"
    ),
    CHECK_MEDIAN_ORDER: (
        "measured median iteration time at one thread obeys "
        "clamp >= trap >= none and {mprotect, uffd} >= none"
    ),
    CHECK_PAGES_EQUAL: (
        "kernel pages_populated is identical across bounds strategies"
    ),
    CHECK_MEM_SAMPLED: (
        "sampled average memory usage agrees across strategies "
        "(loose; skipped for undersampled runs)"
    ),
    CHECK_CPU_MONOTONE: (
        "aggregate busy CPU time never decreases when threads are added"
    ),
    CHECK_COMPUTE_CONST: (
        "modelled compute time per iteration is thread-independent"
    ),
    CHECK_MTE_SCALING: (
        "mte's median-iteration slowdown under thread scaling never "
        "exceeds mprotect's (no mmap_lock collapse without VMA traffic)"
    ),
    CHECK_MTE_NO_VMA: (
        "mte runs perform exactly one mprotect per worker (arena setup) "
        "— grow retags in userspace, so no per-iteration VMA mutations"
    ),
}


def _grouped(
    measurements: Sequence[RunMeasurement], fields: Tuple[str, ...]
) -> Dict[tuple, List[RunMeasurement]]:
    groups: Dict[tuple, List[RunMeasurement]] = {}
    for m in measurements:
        groups.setdefault(tuple(getattr(m, f) for f in fields), []).append(m)
    return groups


def _subject(fields: Tuple[str, ...], key: tuple, **extra) -> dict:
    subject = dict(zip(fields, key))
    subject.update(extra)
    return subject


_CONFIG = ("workload", "runtime", "isa", "size")


def _check_order(
    report: DiffReport,
    check: str,
    by_strategy: Dict[str, float],
    pairs: Sequence[Tuple[str, str]],
    subject: dict,
    quantity: str,
) -> None:
    for costlier, cheaper in pairs:
        if costlier not in by_strategy or cheaper not in by_strategy:
            continue
        high, low = by_strategy[costlier], by_strategy[cheaper]
        report.check(
            check,
            high >= low * (1.0 - REL_TOL),
            subject=dict(subject, pair=f"{costlier}>={cheaper}"),
            detail=f"{quantity} ordering violated",
            expected=f"{costlier} >= {cheaper}",
            actual={costlier: high, cheaper: low},
        )


def check_cost_ordering(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    for key, rows in _grouped(measurements, _CONFIG).items():
        compute = {}
        for m in rows:
            compute.setdefault(m.strategy, m.compute_seconds)
        if len(compute) >= 2:
            _check_order(
                report, CHECK_COMPUTE_ORDER, compute, _COMPUTE_PAIRS,
                _subject(_CONFIG, key), "compute_seconds",
            )
        medians = {
            m.strategy: m.median_iteration for m in rows if m.threads == 1
        }
        if len(medians) >= 2:
            _check_order(
                report, CHECK_MEDIAN_ORDER, medians, _MEDIAN_PAIRS,
                _subject(_CONFIG, key, threads=1), "median iteration time",
            )


_MEM_GROUP = ("workload", "runtime", "isa", "threads", "size")


def check_memory_agreement(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    for key, rows in _grouped(measurements, _MEM_GROUP).items():
        if len({m.strategy for m in rows}) < 2:
            continue
        pages = {m.strategy: m.kernel_stats.get("pages_populated") for m in rows}
        distinct = set(pages.values())
        report.check(
            CHECK_PAGES_EQUAL,
            len(distinct) == 1,
            subject=_subject(_MEM_GROUP, key),
            detail="populated page counts differ between strategies",
            expected="one value across strategies",
            actual=pages,
        )
        sampled = {m.strategy: m.mem_avg_bytes for m in rows}
        undersampled = any(m.wall_seconds < MEM_MIN_WALL_SECONDS for m in rows)
        if undersampled or any(v <= 0 for v in sampled.values()):
            report.skip(CHECK_MEM_SAMPLED)
            continue
        low, high = min(sampled.values()), max(sampled.values())
        report.check(
            CHECK_MEM_SAMPLED,
            high <= low * MEM_RATIO_TOL,
            subject=_subject(_MEM_GROUP, key),
            detail="sampled memory averages spread beyond tolerance",
            expected=f"max/min <= {MEM_RATIO_TOL}",
            actual=sampled,
        )


_THREAD_GROUP = ("workload", "runtime", "strategy", "isa", "size")


def check_cpu_accounting(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    for key, rows in _grouped(measurements, _THREAD_GROUP).items():
        by_threads: Dict[int, RunMeasurement] = {}
        for m in rows:
            by_threads.setdefault(m.threads, m)
        if len(by_threads) >= 2:
            ordered = sorted(by_threads)
            for lo, hi in zip(ordered, ordered[1:]):
                busy_lo = by_threads[lo].utilisation.busy_time
                busy_hi = by_threads[hi].utilisation.busy_time
                report.check(
                    CHECK_CPU_MONOTONE,
                    busy_hi >= busy_lo * (1.0 - REL_TOL),
                    subject=_subject(_THREAD_GROUP, key, threads=f"{lo}->{hi}"),
                    detail="busy CPU time decreased as threads were added",
                    expected=f"busy({hi}) >= busy({lo})",
                    actual={lo: busy_lo, hi: busy_hi},
                )
        computes = {m.threads: m.compute_seconds for m in rows}
        if len(computes) >= 2:
            low, high = min(computes.values()), max(computes.values())
            report.check(
                CHECK_COMPUTE_CONST,
                high <= low * (1.0 + REL_TOL),
                subject=_subject(_THREAD_GROUP, key),
                detail="modelled compute time varies with thread count",
                expected="equal across thread counts",
                actual=computes,
            )


def check_mte_scaling(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    """MTE must dodge the mmap_lock collapse mprotect suffers.

    Per configuration group, compare the median-iteration slowdown
    between the lowest and highest thread counts both strategies were
    measured at: mte grows its memory with userspace retag stores, so
    adding workers cannot serialise it on the exclusive mmap_lock the
    way per-iteration ``mprotect`` calls do.
    """
    for key, rows in _grouped(measurements, _CONFIG).items():
        medians: Dict[str, Dict[int, float]] = {}
        for m in rows:
            medians.setdefault(m.strategy, {}).setdefault(
                m.threads, m.median_iteration
            )
        mte = medians.get("mte", {})
        mprotect = medians.get("mprotect", {})
        common = sorted(set(mte) & set(mprotect))
        if len(common) < 2:
            continue
        lo, hi = common[0], common[-1]
        mte_slowdown = mte[hi] / mte[lo]
        mprotect_slowdown = mprotect[hi] / mprotect[lo]
        report.check(
            CHECK_MTE_SCALING,
            mte_slowdown <= mprotect_slowdown * MTE_SCALING_TOL,
            subject=_subject(_CONFIG, key, threads=f"{lo}->{hi}"),
            detail="mte degraded under thread scaling at least as "
                   "badly as mprotect",
            expected=f"slowdown(mte) <= slowdown(mprotect) * {MTE_SCALING_TOL}",
            actual={"mte": mte_slowdown, "mprotect": mprotect_slowdown},
        )


def check_mte_vma_quiescence(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    """An mte run's only mprotect calls are the per-worker arena setups.

    Iteration count and memory size must not move the number: grow is
    a userspace retag, reset is madvise — neither mutates VMAs, so any
    extra call means the strategy leaked kernel memory-management
    traffic it is defined not to have.
    """
    for m in measurements:
        if m.strategy != "mte":
            continue
        calls = m.kernel_stats.get("mprotect_calls", 0)
        report.check(
            CHECK_MTE_NO_VMA,
            calls == m.threads,
            subject={
                "workload": m.workload, "runtime": m.runtime,
                "isa": m.isa, "threads": m.threads, "size": m.size,
            },
            detail="mte run performed VMA mutations beyond arena setup",
            expected=m.threads,
            actual=calls,
        )


def check_invariants(
    measurements: Sequence[RunMeasurement], report: DiffReport
) -> None:
    """Run the whole sweep-invariant catalogue into ``report``."""
    check_cost_ordering(measurements, report)
    check_memory_agreement(measurements, report)
    check_cpu_accounting(measurements, report)
    check_mte_scaling(measurements, report)
    check_mte_vma_quiescence(measurements, report)
