"""Differential check: bounds-check elimination is *cost-only*.

The BCE pass (:mod:`repro.compiler.bce`) may only remove work, never
change what a program computes or touches.  This phase re-runs the
selected workloads with the pass force-disabled and compares against
the default (pass enabled) run:

* **identical off the inline path** — for strategies with no inline
  check sequence (``none``/``mprotect``/``uffd``) the pass is stripped
  before compilation, so the entire serialised measurement must be
  byte-identical with BCE on and off;
* **monotone on the inline path** — for the strategies that emit
  per-access check code (``clamp``/``trap``/``mte``/``wasm64``) the
  modelled compute time with BCE on is less than or equal to the time
  with it off (eliding checks cannot add cycles);
* **footprint preserved** — eliding a check never changes which pages
  a run populates;
* **counter conservation** — every dynamic check is accounted for:
  with BCE off nothing is elided, and the checks executed with BCE off
  are covered by (executed + elided) with it on.  The right-hand side
  may exceed the left because widened loop guards *add* a handful of
  preheader executions while eliding per-iteration checks.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.engine import measurement_to_json
from repro.core.harness import RunMeasurement, run_benchmark
from repro.diffcheck.report import DiffReport
from repro.isa import isa_named
from repro.runtime.strategies import STRATEGY_ORDER, strategy_named
from repro.runtimes import bce_enabled, runtime_named, set_bce_enabled

CHECK_IDENTICAL = "bce.cost-only-identical"
CHECK_MONOTONE = "bce.inline-cost-monotone"
CHECK_PAGES = "bce.memory-pages-preserved"
CHECK_COUNTERS = "bce.counter-conservation"

#: Runtimes whose compilers run the pass (wasm3 interprets; the native
#: baselines have no bounds checks to elide).
_RUNTIMES = ("wavm", "wasmtime", "v8")

#: Slack for comparing deterministic modelled compute times.
_REL_TOL = 1e-9


def _measure(
    workload: str, runtime: str, strategy: str, isa: str, size: str
) -> RunMeasurement:
    return run_benchmark(
        workload, runtime, strategy, isa, threads=1, size=size, iterations=2
    )


def check_bce(
    workloads: Sequence[str],
    size: str,
    isa: str,
    report: DiffReport,
) -> None:
    """Compare every configuration with BCE enabled vs disabled."""
    was_enabled = bce_enabled()
    try:
        for workload in workloads:
            for runtime in _RUNTIMES:
                model = runtime_named(runtime)
                if not model.supports(isa):
                    continue
                for strategy in STRATEGY_ORDER:
                    if strategy not in model.strategies:
                        continue
                    if not isa_named(isa).supports_strategy(
                        strategy_named(strategy)
                    ):
                        continue  # mte needs the tagging extension
                    set_bce_enabled(True)
                    on = _measure(workload, runtime, strategy, isa, size)
                    set_bce_enabled(False)
                    off = _measure(workload, runtime, strategy, isa, size)
                    _compare(workload, runtime, strategy, isa, on, off, report)
    finally:
        set_bce_enabled(was_enabled)


def _compare(
    workload: str,
    runtime: str,
    strategy: str,
    isa: str,
    on: RunMeasurement,
    off: RunMeasurement,
    report: DiffReport,
) -> None:
    subject = {
        "workload": workload, "runtime": runtime,
        "strategy": strategy, "isa": isa,
    }
    # Classify by the strategy's declared code shape, not a name list:
    # mte and wasm64 also emit per-access checks BCE can elide.
    inline = bool(strategy_named(strategy).inline_check)

    if not inline:
        on_blob = measurement_to_json(on)
        off_blob = measurement_to_json(off)
        report.check(
            CHECK_IDENTICAL,
            on_blob == off_blob,
            subject,
            "measurement changed despite no inline checks to elide",
            expected=off_blob if on_blob != off_blob else None,
            actual=on_blob if on_blob != off_blob else None,
        )
    else:
        report.check(
            CHECK_MONOTONE,
            on.compute_seconds <= off.compute_seconds * (1 + _REL_TOL),
            subject,
            "BCE increased modelled compute time",
            expected=f"<= {off.compute_seconds!r}",
            actual=on.compute_seconds,
        )

    report.check(
        CHECK_PAGES,
        on.kernel_stats.get("pages_populated")
        == off.kernel_stats.get("pages_populated"),
        subject,
        "BCE changed the populated-page count",
        expected=off.kernel_stats.get("pages_populated"),
        actual=on.kernel_stats.get("pages_populated"),
    )

    emitted_on = on.bounds_checks.get("emitted", 0)
    elided_on = on.bounds_checks.get("elided", 0)
    emitted_off = off.bounds_checks.get("emitted", 0)
    elided_off = off.bounds_checks.get("elided", 0)
    report.check(
        CHECK_COUNTERS,
        elided_off == 0 and emitted_off <= emitted_on + elided_on,
        subject,
        "dynamic check counters do not conserve across the toggle",
        expected=f"elided(off)=0 and emitted(off) <= {emitted_on + elided_on}",
        actual={"emitted_off": emitted_off, "elided_off": elided_off},
    )
