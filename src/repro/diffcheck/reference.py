"""Cross-strategy equivalence through the reference interpreter.

Bounds strategies may only change *cost*: for a workload that never
goes out of bounds, every strategy must compute bit-identical outputs,
issue the same number of loads and stores, and first-touch the same
4 KiB pages.  This module runs every registered workload under each
strategy and compares the observations pairwise against the first
strategy, plus one independent anchor: the first strategy's outputs
against the workload's NumPy reference (same tolerance as the tier-1
suite, so a drifting interpreter cannot hide behind strategies that
all drift together).

Functional interpreter runs are deliberately *not* cached: the point
of the phase is to re-execute the semantics, and a mini-size pass over
the whole catalogue costs seconds.  Fan-out across workloads honours
the engine's ``--jobs`` knob via a fork-preferring process pool.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import _pool_context
from repro.diffcheck.report import DiffReport
from repro.runtime.strategies import STRATEGY_ORDER
from repro.wasm.errors import Trap
from repro.workloads import workload_named
from repro.workloads.base import instantiate, read_array

CHECK_OUTPUT = "ref.output-equivalence"
CHECK_COUNTS = "ref.loadstore-equivalence"
CHECK_PAGES = "ref.touched-pages-equivalence"
CHECK_TRAP = "ref.trap-equivalence"
CHECK_NUMPY = "ref.numpy-agreement"


@dataclass(frozen=True)
class StrategyObservation:
    """What one (workload, size, strategy) functional run observed."""

    workload: str
    size: str
    strategy: str
    #: (array name, sha256 of the raw little-endian bytes) pairs.
    outputs: Tuple[Tuple[str, str], ...]
    loads: int
    stores: int
    pages: int
    pages_digest: str
    trap: Optional[str] = None  # trap kind, if the run trapped


def observe(workload_name: str, size: str, strategy: str) -> StrategyObservation:
    """Run one workload functionally under one strategy."""
    workload = workload_named(workload_name)
    built = workload.build(size)
    # instantiate() links host imports, so WASI-family workloads run
    # through the same cross-strategy gauntlet as closed modules.
    interp, _env = instantiate(
        built, strategy=strategy, collect_profile=False, track_pages=True
    )
    trap: Optional[str] = None
    try:
        interp.invoke("bench")
    except Trap as exc:
        trap = exc.kind
    memory = interp.memory
    outputs = []
    if trap is None:
        for name in workload.check_arrays:
            array = built.arrays[name]
            raw = bytes(memory.data[array.base : array.base + array.nbytes])
            outputs.append((name, hashlib.sha256(raw).hexdigest()))
    pages = sorted(memory.touched_pages)
    pages_digest = hashlib.sha256(
        ",".join(map(str, pages)).encode()
    ).hexdigest()
    return StrategyObservation(
        workload=workload_name,
        size=size,
        strategy=strategy,
        outputs=tuple(outputs),
        loads=memory.load_count,
        stores=memory.store_count,
        pages=len(pages),
        pages_digest=pages_digest,
        trap=trap,
    )


def _numpy_anchor(workload_name: str, size: str, report: DiffReport) -> None:
    """The trap-strategy outputs must match the NumPy reference."""
    workload = workload_named(workload_name)
    if workload.reference is None:
        report.skip(CHECK_NUMPY)
        return
    built = workload.build(size)
    interp, _env = instantiate(built, collect_profile=False, track_pages=False)
    interp.invoke("bench")
    expected = workload.reference(size)
    for name in workload.check_arrays:
        got = read_array(interp, built.arrays[name])
        report.check(
            CHECK_NUMPY,
            bool(np.allclose(got, expected[name], rtol=1e-9, atol=1e-12)),
            subject={"workload": workload_name, "size": size, "array": name},
            detail="interpreter output diverges from the NumPy reference",
        )


def check_workload(
    workload_name: str,
    size: str,
    strategies: Sequence[str] = tuple(STRATEGY_ORDER),
    report: Optional[DiffReport] = None,
) -> DiffReport:
    """Compare one workload's observations across strategies."""
    report = report if report is not None else DiffReport()
    observations = [observe(workload_name, size, s) for s in strategies]
    base = observations[0]
    subject_base = {"workload": workload_name, "size": size}
    for other in observations[1:]:
        subject = dict(
            subject_base, baseline=base.strategy, strategy=other.strategy
        )
        report.check(
            CHECK_TRAP,
            base.trap == other.trap,
            subject=subject,
            detail="strategies disagree on whether the run traps",
            expected=base.trap,
            actual=other.trap,
        )
        if base.trap is None and other.trap is None:
            report.check(
                CHECK_OUTPUT,
                base.outputs == other.outputs,
                subject=subject,
                detail="computed output arrays are not bit-identical",
                expected=dict(base.outputs),
                actual=dict(other.outputs),
            )
        report.check(
            CHECK_COUNTS,
            (base.loads, base.stores) == (other.loads, other.stores),
            subject=subject,
            detail="load/store counts differ between strategies",
            expected={"loads": base.loads, "stores": base.stores},
            actual={"loads": other.loads, "stores": other.stores},
        )
        report.check(
            CHECK_PAGES,
            (base.pages, base.pages_digest) == (other.pages, other.pages_digest),
            subject=subject,
            detail="first-touched page sets differ between strategies",
            expected={"pages": base.pages, "digest": base.pages_digest[:16]},
            actual={"pages": other.pages, "digest": other.pages_digest[:16]},
        )
    _numpy_anchor(workload_name, size, report)
    return report


def _check_workload_json(payload: Tuple[str, str, Tuple[str, ...]]) -> dict:
    """Worker entry point: one workload's partial report, serialised."""
    workload_name, size, strategies = payload
    return check_workload(workload_name, size, strategies).to_json()


def check_reference(
    workloads: Sequence[str],
    size: str,
    strategies: Sequence[str],
    report: DiffReport,
    jobs: int = 1,
    progress=None,
) -> None:
    """Run the cross-strategy phase over many workloads into ``report``."""
    payloads = [(name, size, tuple(strategies)) for name in workloads]
    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            report.merge_json(_check_workload_json(payload))
            if progress is not None:
                progress(payload[0])
        return
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context()
    ) as pool:
        for payload, partial in zip(
            payloads, pool.map(_check_workload_json, payloads, chunksize=1)
        ):
            report.merge_json(partial)
            if progress is not None:
                progress(payload[0])
