"""Machine-readable violation reports.

Every diffcheck phase records its comparisons into a
:class:`DiffReport`: per-check pass/fail/skip tallies plus a
:class:`Violation` entry for each broken equivalence, carrying the
configuration coordinates and the expected/actual values.  Reports
serialise to JSON (``leaps-bench diffcheck --json``) so CI and later
analysis can consume divergences without scraping log output, and
merge associatively so worker processes can each build a partial
report that the parent folds together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: Bump when the JSON report layout changes.
REPORT_VERSION = 1


def _jsonable(value: object) -> object:
    """Coerce expected/actual payloads to JSON-stable plain data."""
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class Violation:
    """One broken equivalence or structural invariant."""

    #: Catalogue identifier, e.g. ``'sweep.inline-cost-order'``.
    check: str
    #: Configuration coordinates (workload, strategy, threads, …).
    subject: Mapping[str, object]
    detail: str
    expected: object = None
    actual: object = None

    def to_json(self) -> dict:
        return {
            "check": self.check,
            "subject": _jsonable(dict(self.subject)),
            "detail": self.detail,
            "expected": _jsonable(self.expected),
            "actual": _jsonable(self.actual),
        }

    def render(self) -> str:
        coords = " ".join(f"{k}={v}" for k, v in self.subject.items())
        line = f"[{self.check}] {coords}: {self.detail}" if coords else f"[{self.check}] {self.detail}"
        if self.expected is not None or self.actual is not None:
            line += f" (expected {_jsonable(self.expected)!r}, got {_jsonable(self.actual)!r})"
        return line


def violation_from_json(raw: Mapping) -> Violation:
    return Violation(
        check=str(raw["check"]),
        subject=dict(raw.get("subject", {})),
        detail=str(raw.get("detail", "")),
        expected=raw.get("expected"),
        actual=raw.get("actual"),
    )


@dataclass
class CheckCounts:
    passed: int = 0
    failed: int = 0
    skipped: int = 0


class DiffReport:
    """Accumulates check outcomes across all diffcheck phases."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.counts: Dict[str, CheckCounts] = {}

    def _counts(self, check: str) -> CheckCounts:
        return self.counts.setdefault(check, CheckCounts())

    # -- recording -------------------------------------------------------

    def check(
        self,
        check: str,
        ok: bool,
        subject: Optional[Mapping[str, object]] = None,
        detail: str = "",
        expected: object = None,
        actual: object = None,
    ) -> bool:
        """Record one comparison; returns ``ok`` for chaining."""
        counts = self._counts(check)
        if ok:
            counts.passed += 1
        else:
            counts.failed += 1
            self.violations.append(
                Violation(check, dict(subject or {}), detail, expected, actual)
            )
        return ok

    def skip(self, check: str, count: int = 1) -> None:
        """Record comparisons that could not run (e.g. undersampled)."""
        self._counts(check).skipped += count

    # -- aggregation -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def checks_run(self) -> int:
        return sum(c.passed + c.failed for c in self.counts.values())

    def merge(self, other: "DiffReport") -> None:
        for check, counts in other.counts.items():
            mine = self._counts(check)
            mine.passed += counts.passed
            mine.failed += counts.failed
            mine.skipped += counts.skipped
        self.violations.extend(other.violations)

    def merge_json(self, raw: Mapping) -> None:
        """Fold a worker's serialised partial report into this one."""
        for check, counts in raw.get("counts", {}).items():
            mine = self._counts(str(check))
            mine.passed += int(counts.get("passed", 0))
            mine.failed += int(counts.get("failed", 0))
            mine.skipped += int(counts.get("skipped", 0))
        for violation in raw.get("violations", []):
            self.violations.append(violation_from_json(violation))

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "counts": {
                check: {
                    "passed": c.passed,
                    "failed": c.failed,
                    "skipped": c.skipped,
                }
                for check, c in sorted(self.counts.items())
            },
            "violations": [v.to_json() for v in self.violations],
        }

    def summary_lines(self) -> List[str]:
        lines = []
        for check, counts in sorted(self.counts.items()):
            status = "FAIL" if counts.failed else "ok"
            line = f"  {check:<40s} {status:>4s}  {counts.passed} passed"
            if counts.failed:
                line += f", {counts.failed} FAILED"
            if counts.skipped:
                line += f", {counts.skipped} skipped"
            lines.append(line)
        return lines
