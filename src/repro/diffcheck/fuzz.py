"""Seeded round-trip fuzzing over the wasm module layer.

Each case derives a random structured program (loops, branches, array
traffic, plus deliberately trap-prone arithmetic and out-of-bounds
accesses) from a :class:`random.Random` seed via the typed DSL, then
drives it through the whole substrate:

    dsl/builder → encoder → decoder → validator → interpreter

asserting that (a) encoding is idempotent across a decode round trip,
(b) the validator accepts both the built and the decoded module,
(c) the interpreter observes identical outcomes — returned value or
trap kind — before and after the round trip, and (d) the bounds
strategies agree wherever they must: bit-identical results, load/store
counts and touched pages when no trap occurs; consistent trap
behaviour when one does (the trapping strategies report the same trap,
``clamp``/``none`` complete instead of trapping on out-of-bounds).

Unlike the hypothesis suite (tests/test_differential_fuzz.py) this
runs from explicit integer seeds, so a CI failure is reproducible with
``leaps-bench diffcheck --seed N`` and cases fan out across worker
processes deterministically.

Determinism contract (``check_fuzz``): for a fixed ``(cases,
base_seed)`` the case list is always the seeds ``base_seed ..
base_seed + cases - 1`` in ascending order, partitioned into
fixed-size batches of :data:`_CHUNK` seeds.  The batch list, the
per-batch ``progress`` callbacks, and the merged report (check
counts *and* violation order) are identical for every ``jobs`` value —
worker processes only change *who* executes a batch, never what the
batches are or the order their results fold into the report.  The
batch size is a module constant precisely so it can never be derived
from the worker count.

The per-module oracle lives in :func:`check_module_case` so other
harnesses — notably the coverage-guided campaign in :mod:`repro.fuzz`
— can run arbitrary (module, arg) pairs through the exact same checks
and report types.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.engine import _pool_context
from repro.diffcheck.report import DiffReport
from repro.runtime.interpreter import Interpreter
from repro.runtime.strategies import STRATEGY_ORDER
from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.dsl import DslModule, Select
from repro.wasm.errors import Trap, ValidationError, WasmError

CHECK_ENCODE = "fuzz.encode-idempotence"
CHECK_VALIDATE = "fuzz.validator-acceptance"
CHECK_ROUNDTRIP = "fuzz.roundtrip-behaviour"
CHECK_STRATEGY = "fuzz.strategy-equivalence"
CHECK_TRAPS = "fuzz.trap-strategy-agreement"
CHECK_HARNESS = "fuzz.harness-error"

#: Strategies whose out-of-bounds behaviour is a trap.
_TRAPPING = ("trap", "mprotect", "uffd", "mte", "wasm64")
_ARRAY_LEN = 16


def build_program(rng: random.Random):
    """One random program writing into an i32 array, returning a checksum."""
    dm = DslModule("difffuzz")
    arr = dm.array_i32("a", _ARRAY_LEN)
    f = dm.func("run", params=[("seed", "i32")], results=["i32"])
    seed = f.params[0]
    i, j = f.i32("i"), f.i32("j")
    acc = f.i32("acc")

    for _ in range(rng.randint(1, 5)):
        kind = rng.choice(
            ["loop", "if", "nested", "while", "store", "oob", "div", "trunc"]
        )
        const_a = rng.randint(0, 1000)
        const_b = rng.randint(1, 7)
        if kind == "loop":
            with f.for_(i, 0, rng.randint(1, _ARRAY_LEN)):
                f.store(arr[i], arr[i] + i * const_b + seed)
        elif kind == "if":
            with f.if_((seed & 1).eq(rng.randint(0, 1))) as branch:
                f.set(acc, acc + const_a)
                branch.otherwise()
                f.set(acc, acc - const_a)
        elif kind == "nested":
            with f.for_(i, 0, rng.randint(1, 5)):
                with f.for_(j, 0, rng.randint(1, 5)):
                    with f.if_(((i + j) % const_b).eq(0)):
                        f.store(arr[(i + j) % _ARRAY_LEN],
                                arr[(i + j) % _ARRAY_LEN] ^ const_a)
        elif kind == "while":
            f.set(j, const_b)
            with f.while_(lambda: j < const_a % 50 + 1):
                f.set(j, j * 2 + 1)
            f.set(acc, acc + j)
        elif kind == "store":
            index = rng.randint(0, _ARRAY_LEN - 1)
            f.store(arr[index], Select(seed > const_a, acc, i) + const_b)
        elif kind == "oob":
            # Reads/writes far beyond the one data page: traps under
            # the trapping strategies, completes under clamp/none.
            index = rng.randint(10_000_000, 20_000_000)
            if rng.random() < 0.5:
                f.set(acc, acc + arr[index])
            else:
                f.store(arr[index], acc + const_a)
        elif kind == "div":
            # Traps (integer-divide-by-zero) iff seed % b == c.
            const_c = rng.randint(0, const_b - 1)
            f.set(acc, acc + seed // ((seed % const_b) - const_c + 1) % 97)
            with f.if_((seed % const_b).eq(const_c)):
                f.set(acc, acc // (seed % const_b - const_c))
        else:  # trunc: i32.trunc_f64_s traps on out-of-range values
            f.set(acc, (acc.to_f64() * float(const_a + 2) + 0.5).to_i32())

    with f.for_(i, 0, _ARRAY_LEN):
        f.set(acc, acc * 31 + arr[i])
    f.ret(acc)
    return dm.build()


def outcome_of(module, arg: int, strategy: str):
    """('value', v, loads, stores, pages) or ('trap', kind) for one run."""
    interp = Interpreter(
        module, strategy=strategy, validate=False,
        collect_profile=False, track_pages=True,
    )
    try:
        value = interp.invoke("run", arg)
    except Trap as exc:
        return ("trap", exc.kind)
    memory = interp.memory
    return (
        "value", value, memory.load_count, memory.store_count,
        tuple(sorted(memory.touched_pages)),
    )


def check_case(
    seed: int, report: Optional[DiffReport] = None
) -> DiffReport:
    """Run every layer comparison for one seeded case."""
    report = report if report is not None else DiffReport()
    rng = random.Random(seed)
    try:
        module = build_program(rng)
        arg = rng.randrange(0, 2**31)
    except WasmError as exc:
        report.check(
            CHECK_HARNESS, False, subject={"seed": seed},
            detail="substrate raised outside the trap protocol",
            actual=repr(exc),
        )
        return report
    return check_module_case(
        module, arg, report, subject={"seed": seed, "arg": arg}
    )


def check_module_case(
    module,
    arg: int,
    report: Optional[DiffReport] = None,
    subject: Optional[dict] = None,
) -> DiffReport:
    """Run every layer comparison for one (module, arg) pair.

    The module must export ``run (param i32) (result i32)``.  Checks:
    encode idempotence across a decode round trip, validator
    acceptance of both built and decoded module, behavioural round-trip
    identity, and the strategy-agreement contracts described in the
    module docstring.
    """
    report = report if report is not None else DiffReport()
    subject = dict(subject or {})
    try:
        encoded = encode_module(module)
        decoded = decode_module(encoded)
        re_encoded = encode_module(decoded)
        report.check(
            CHECK_ENCODE,
            encoded == re_encoded,
            subject=subject,
            detail="encode(decode(encode(m))) differs from encode(m)",
            expected=len(encoded),
            actual=len(re_encoded),
        )

        for label, candidate in (("built", module), ("decoded", decoded)):
            try:
                validate_module(candidate)
                report.check(CHECK_VALIDATE, True)
            except ValidationError as exc:
                report.check(
                    CHECK_VALIDATE, False,
                    subject=dict(subject, module=label),
                    detail="validator rejected a well-formed generated module",
                    actual=repr(exc),
                )

        direct = outcome_of(module, arg, "trap")
        roundtrip = outcome_of(decoded, arg, "trap")
        report.check(
            CHECK_ROUNDTRIP,
            direct == roundtrip,
            subject=subject,
            detail="behaviour changed across the binary round trip",
            expected=direct,
            actual=roundtrip,
        )

        if direct[0] == "value":
            # No trap under 'trap': no access was out of bounds, so
            # every strategy must observe exactly the same execution.
            for strategy in STRATEGY_ORDER:
                if strategy == "trap":
                    continue
                other = outcome_of(decoded, arg, strategy)
                report.check(
                    CHECK_STRATEGY,
                    other == direct,
                    subject=dict(subject, strategy=strategy),
                    detail="strategies diverge on an in-bounds execution",
                    expected=direct,
                    actual=other,
                )
        elif direct[1] == "out-of-bounds-memory":
            for strategy in _TRAPPING[1:]:
                other = outcome_of(decoded, arg, strategy)
                report.check(
                    CHECK_TRAPS,
                    other == direct,
                    subject=dict(subject, strategy=strategy),
                    detail="trapping strategies disagree on the trap",
                    expected=direct,
                    actual=other,
                )
            for strategy in ("clamp", "none"):
                # clamp/none continue past the OOB access, so later
                # arithmetic traps are legal; an *out-of-bounds* trap
                # is not.
                other = outcome_of(decoded, arg, strategy)
                report.check(
                    CHECK_TRAPS,
                    not (other[0] == "trap" and other[1] == "out-of-bounds-memory"),
                    subject=dict(subject, strategy=strategy),
                    detail="non-trapping strategy trapped out-of-bounds",
                    expected="value or arithmetic trap",
                    actual=other,
                )
        else:
            # Arithmetic traps are strategy-independent.
            for strategy in STRATEGY_ORDER:
                if strategy == "trap":
                    continue
                other = outcome_of(decoded, arg, strategy)
                report.check(
                    CHECK_TRAPS,
                    other == direct,
                    subject=dict(subject, strategy=strategy),
                    detail="strategies disagree on an arithmetic trap",
                    expected=direct,
                    actual=other,
                )
    except WasmError as exc:
        report.check(
            CHECK_HARNESS, False, subject=subject,
            detail="substrate raised outside the trap protocol",
            actual=repr(exc),
        )
    return report


def _check_chunk_json(payload: Tuple[int, ...]) -> dict:
    report = DiffReport()
    for seed in payload:
        check_case(seed, report)
    return report.to_json()


#: Seeds per worker batch.  A fixed constant — never derived from the
#: worker count — so ``--jobs 1`` and ``--jobs N`` enumerate the exact
#: same batch list in the same order (see the module docstring's
#: determinism contract; the old ``len(seeds) // (jobs * 4)`` sizing
#: made batching, and therefore progress output, depend on ``jobs``).
_CHUNK = 16


def check_fuzz(
    cases: int,
    base_seed: int,
    report: DiffReport,
    jobs: int = 1,
    progress=None,
) -> None:
    """Run ``cases`` seeded cases (seeds base_seed..base_seed+cases-1).

    Deterministic for any ``jobs``: identical batches, identical batch
    order, identical merged report (serial runs fold each batch through
    the same serialised-report path the pool uses).
    """
    seeds = list(range(base_seed, base_seed + cases))
    chunks = [
        tuple(seeds[i : i + _CHUNK]) for i in range(0, len(seeds), _CHUNK)
    ]
    if jobs <= 1 or len(chunks) <= 1:
        for batch in chunks:
            report.merge_json(_check_chunk_json(batch))
            if progress is not None:
                progress(f"seeds {batch[0]}..{batch[-1]}")
        return
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context()
    ) as pool:
        for batch, partial in zip(
            chunks, pool.map(_check_chunk_json, chunks, chunksize=1)
        ):
            report.merge_json(partial)
            if progress is not None:
                progress(f"seeds {batch[0]}..{batch[-1]}")
