"""Differential-correctness harness.

The paper's claims are comparative: the same benchmark must compute
the same result under every (runtime, strategy, ISA, threads)
configuration, differing only in cost.  This package asserts that
systematically, in four layers:

* :mod:`repro.diffcheck.axioms` — executable axioms pinning substrate
  layers against independently computed expectations (page-touch
  coverage, spec no-ops, statistics contracts);
* :mod:`repro.diffcheck.reference` — every registered workload through
  the reference interpreter under all bounds strategies, asserting
  bit-identical outputs, load/store counts and touched-page sets;
* :mod:`repro.diffcheck.invariants` — structural invariants over sweep
  rows (inline-check cost ordering, strategy-independent memory usage,
  monotone CPU accounting) with machine-readable violation reports;
* :mod:`repro.diffcheck.fuzz` — a seeded round-trip fuzzer over the
  wasm module layer (dsl/builder → encoder → decoder → validator →
  interpreter).

``leaps-bench diffcheck`` drives all four (:mod:`repro.diffcheck.cli`).
"""

from repro.diffcheck.report import DiffReport, Violation

__all__ = ["DiffReport", "Violation"]
