"""``leaps-bench diffcheck`` — the differential-correctness harness.

Usage::

    leaps-bench diffcheck                         # everything, mini size
    leaps-bench diffcheck --jobs 4                # fan phases out
    leaps-bench diffcheck --phases axioms,fuzz    # subset of phases
    leaps-bench diffcheck --workload gemm --workload trisolv
    leaps-bench diffcheck --json report.json      # machine-readable report

Phases (all on by default):

* ``axioms``    — executable axioms over the substrate layers;
* ``reference`` — every selected workload through the reference
  interpreter under all seven bounds strategies (the paper's five plus
  mte/wasm64), asserting bit-identical outputs, load/store counts and
  touched-page sets;
* ``sweep``     — measured sweep rows checked against the structural
  invariant catalogue (cost ordering, strategy-independent memory,
  monotone CPU accounting); reuses the measurement engine's cache and
  ``--jobs`` fan-out;
* ``bce``       — the bounds-check elimination pass re-measured with
  the pass disabled, asserting it is *cost-only*: bit-identical
  outputs/pages for every strategy, clamp/trap compute time monotone
  non-increasing with BCE on, and counter conservation;
* ``fuzz``      — seeded round-trip fuzzing over the wasm module layer.

Exit status is non-zero when any check reports a divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _build_parser() -> argparse.ArgumentParser:
    from repro.core import cliopts

    parser = argparse.ArgumentParser(
        prog="leaps-bench diffcheck",
        description="differential-correctness harness",
        parents=[cliopts.sweep_parent()],
    )
    parser.add_argument(
        "--phases", default="axioms,reference,sweep,bce,fuzz", metavar="LIST",
        help="comma list of phases to run (default: all)",
    )
    parser.add_argument(
        "--suite", default="all", choices=["all", "polybench", "spec", "wasi"],
        help="workload suite for reference/sweep phases (default: all)",
    )
    parser.add_argument(
        "--workload", action="append", default=None, metavar="NAME",
        help="restrict to specific workload(s); repeatable",
    )
    parser.add_argument(
        "--size", default="mini",
        help="workload size preset (default: mini)",
    )
    parser.add_argument(
        "--runtimes", default="wavm", metavar="LIST",
        help="comma list of runtimes for the sweep phase (default: wavm)",
    )
    parser.add_argument(
        "--isa", default="x86_64",
        help="ISA for the sweep phase (default: x86_64)",
    )
    parser.add_argument(
        "--threads", default="1,4", metavar="LIST",
        help="comma list of worker counts for the sweep phase (default: 1,4)",
    )
    parser.add_argument(
        "--iterations", type=int, default=2,
        help="measured iterations per sweep configuration (default: 2)",
    )
    parser.add_argument(
        "--fuzz-cases", type=int, default=200, metavar="N",
        help="seeded fuzz cases (default: 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the fuzz phase (default: 0)",
    )
    parser.add_argument(
        "--no-fuse", action="store_true",
        help="run interpreters without superinstruction fusion "
        "(bisection aid: a divergence that disappears here is a "
        "fused-codegen bug)",
    )
    parser.add_argument(
        "--tier", default=None, choices=["legacy", "fused", "opt"],
        help="pin the interpreter execution tier for every phase "
        "(bisection aid: a divergence that appears only at --tier opt "
        "is a tier-2 vectorizer bug)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable violation report to PATH",
    )
    parser.add_argument(
        "--max-violations", type=int, default=20, metavar="N",
        help="violation lines to print (the JSON report holds all)",
    )
    return parser


def _selected_workloads(args) -> list:
    from repro.workloads import workload_named
    from repro.workloads.registry import suite_workloads

    if args.workload:
        return [workload_named(name).name for name in args.workload]
    return [w.name for w in suite_workloads(args.suite)]


def _sweep_spec(args, workloads):
    """The diffcheck grid as a facade spec (invalid combos skipped)."""
    from repro import api
    from repro.runtime.strategies import STRATEGY_ORDER
    from repro.workloads import workload_named

    # The facade's scenario axis filters cross-family workloads, so an
    # all-WASI selection must sweep under the wasi scenario or measure
    # nothing at all.  Mixed selections stay on the compute default
    # (the families are disjoint sweeps by design).
    suites = {workload_named(name).suite for name in workloads}
    scenario = "wasi" if suites == {"wasi"} else "compute"
    return api.SweepSpec(
        workloads=tuple(workloads),
        runtimes=tuple(v for v in args.runtimes.split(",") if v),
        strategies=tuple(STRATEGY_ORDER),
        isas=(args.isa,),
        threads=tuple(int(v) for v in args.threads.split(",") if v),
        size=args.size,
        iterations=args.iterations,
        scenario=scenario,
    )


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    from repro import api
    from repro.core import cliopts
    from repro.diffcheck.axioms import check_axioms
    from repro.diffcheck.bce import check_bce
    from repro.diffcheck.fuzz import check_fuzz
    from repro.diffcheck.invariants import check_invariants
    from repro.diffcheck.reference import check_reference
    from repro.diffcheck.report import DiffReport
    from repro.runtime.predecode import interpreter_build_digest
    from repro.runtime.strategies import STRATEGY_ORDER

    if args.no_fuse:
        # Via the environment so ProcessPool workers inherit it too.
        os.environ["REPRO_DISPATCH"] = "nofuse"
    if args.tier:
        os.environ["REPRO_TIER"] = args.tier

    phases = [p.strip() for p in args.phases.split(",") if p.strip()]
    unknown = set(phases) - {"axioms", "reference", "sweep", "bce", "fuzz"}
    if unknown:
        print(f"unknown phases: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    engine = cliopts.configure_sweep(args)
    workloads = _selected_workloads(args)
    report = DiffReport()

    if "axioms" in phases:
        print("== axioms: substrate-layer contracts")
        check_axioms(report)

    if "reference" in phases:
        print(
            f"== reference: {len(workloads)} workloads x "
            f"{len(STRATEGY_ORDER)} strategies ({args.size})"
        )
        check_reference(
            workloads, args.size, STRATEGY_ORDER, report, jobs=engine.jobs
        )

    if "sweep" in phases:
        measurements = api.measure(
            _sweep_spec(args, workloads), engine=engine
        ).measurements
        print(f"== sweep: {len(measurements)} measurements under invariants")
        check_invariants(measurements, report)

    if "bce" in phases:
        print(
            f"== bce: {len(workloads)} workloads re-measured with "
            "bounds-check elimination disabled"
        )
        check_bce(workloads, args.size, args.isa, report)

    if "fuzz" in phases:
        print(
            f"== fuzz: {args.fuzz_cases} cases from seed {args.seed}"
        )
        check_fuzz(args.fuzz_cases, args.seed, report, jobs=engine.jobs)

    print()
    for line in report.summary_lines():
        print(line)
    print(
        f"\n{report.checks_run} checks, "
        f"{len(report.violations)} divergence(s)"
    )
    for violation in report.violations[: args.max_violations]:
        print("  " + violation.render())
    if len(report.violations) > args.max_violations:
        print(f"  ... and {len(report.violations) - args.max_violations} more")

    if args.json:
        # Header first so a report is attributable to the exact
        # interpreter/pre-decode build (and dispatch mode) that ran it.
        payload = {
            "interpreter_build": interpreter_build_digest(),
            "dispatch": os.environ.get("REPRO_DISPATCH", "fused"),
            "tier": os.environ.get("REPRO_TIER", "opt"),
            **report.to_json(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {args.json}")

    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
