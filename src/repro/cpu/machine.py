"""Machine configurations mirroring the paper's three test platforms.

The paper (§3.4) evaluates on:

1. **x86_64** — Intel Xeon Gold 6230R, 16 hardware threads enabled,
   768 GiB RAM (nominal 2.1 GHz base clock);
2. **AArch64** — Cavium ThunderX2 CN9980, configured to 16 hardware
   threads, 256 GiB RAM (2.2 GHz);
3. **RISC-V** — Allwinner Nezha D1 with the XuanTie C906, a single
   in-order core, 1 GiB RAM (1.0 GHz).

Only *relative* performance matters for reproducing the figures, but the
core counts and memory sizes are load-bearing: the thread-scaling
experiments use 1/4/16 pinned copies, and the RISC-V platform is
restricted to single-threaded PolyBench because of its 1 GiB of RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import Core
from repro.sim.engine import Engine


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a test platform."""

    name: str
    isa: str
    cores: int
    frequency_hz: float
    memory_bytes: int
    #: Scheduler quantum for round-robin on an oversubscribed core.
    quantum: float = 3e-3
    #: Kernel time consumed by one context switch.
    switch_cost: float = 3e-6


#: The three platforms from §3.4, keyed by ISA name.
MACHINE_SPECS: dict[str, MachineSpec] = {
    "x86_64": MachineSpec(
        name="xeon-gold-6230r",
        isa="x86_64",
        cores=16,
        frequency_hz=2.1e9,
        memory_bytes=768 << 30,
    ),
    "armv8": MachineSpec(
        name="thunderx2-cn9980",
        isa="armv8",
        cores=16,
        frequency_hz=2.2e9,
        memory_bytes=256 << 30,
    ),
    "riscv64": MachineSpec(
        name="nezha-d1-c906",
        isa="riscv64",
        cores=1,
        frequency_hz=1.0e9,
        memory_bytes=1 << 30,
        # A slow in-order core context-switches more expensively.
        switch_cost=12e-6,
    ),
}


class Machine:
    """A running machine: an engine plus its set of cores."""

    def __init__(self, engine: Engine, spec: MachineSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.cores = [
            Core(engine, index, quantum=spec.quantum, switch_cost=spec.switch_cost)
            for index in range(spec.cores)
        ]
        self._placement_cursor = 0

    def core(self, index: int) -> Core:
        return self.cores[index]

    def place(self) -> Core:
        """Round-robin placement for unpinned (helper) threads."""
        core = self.cores[self._placement_cursor % len(self.cores)]
        self._placement_cursor += 1
        return core

    @property
    def context_switches(self) -> int:
        return sum(core.context_switches for core in self.cores)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.spec.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.spec.frequency_hz
