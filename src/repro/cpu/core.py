"""A simulated CPU core with a run queue and preemptive timeslices.

Threads execute *work segments* on a core via :meth:`Core.exec`.  A
segment is charged to one of the Linux ``/proc/stat`` accounting buckets
(``user``, ``sys``, ``irq``, ``softirq``); idle time is whatever remains.
When several threads are runnable on the same core they round-robin with
a configurable quantum, and every install of a different thread counts as
a context switch (this mirrors ``/proc/stat``'s ``ctxt`` counter closely
enough for the paper's Figure 5).

Interrupt injection: :meth:`Core.post_irq` models an IPI such as a TLB
shootdown.  The interrupt's service time is charged to the ``irq`` bucket
and, if a thread is currently running a segment, that segment's
completion is pushed back by the service time (the thread loses the
time, exactly as a real core would steal cycles from the running task).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Generator, Optional

from repro.sim.engine import Engine, Event, SimError
from repro.trace.events import CPU_ACCT, SCHED_IRQ, SCHED_SWITCH
from repro.trace.tracer import TRACE

if TYPE_CHECKING:
    from repro.cpu.thread import SimThread

#: Accounting buckets mirroring the fields of ``/proc/stat`` the paper
#: uses in its CPU-utilisation equation (us, sys, hi, si).
USER = "user"
SYS = "sys"
IRQ = "irq"
SOFTIRQ = "softirq"
_BUCKETS = (USER, SYS, IRQ, SOFTIRQ)


@dataclass
class CpuAccounting:
    """Cumulative busy time per bucket for one core."""

    user: float = 0.0
    sys: float = 0.0
    irq: float = 0.0
    softirq: float = 0.0

    def add(self, bucket: str, amount: float) -> None:
        if bucket not in _BUCKETS:
            raise SimError(f"unknown accounting bucket {bucket!r}")
        setattr(self, bucket, getattr(self, bucket) + amount)

    @property
    def busy(self) -> float:
        return self.user + self.sys + self.irq + self.softirq

    def snapshot(self) -> dict[str, float]:
        return {
            USER: self.user,
            SYS: self.sys,
            IRQ: self.irq,
            SOFTIRQ: self.softirq,
        }


@dataclass
class _Slice:
    """Bookkeeping for the segment currently executing on a core."""

    thread: "SimThread"
    kind: str
    work: float
    started_at: float
    end_event: Event
    epoch: int
    extra_irq_time: float = 0.0


class Core:
    """One CPU core: run queue, current thread, accounting."""

    def __init__(
        self,
        engine: Engine,
        index: int,
        quantum: float,
        switch_cost: float,
    ) -> None:
        self.engine = engine
        self.index = index
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.acct = CpuAccounting()
        self.context_switches = 0
        self.ready: Deque[tuple["SimThread", Event]] = deque()
        self.current: Optional["SimThread"] = None
        self._last_installed: Optional["SimThread"] = None
        self._slice: Optional[_Slice] = None
        self._epoch = 0

    # ------------------------------------------------------------------
    # Thread-facing API (all generator-based, used with ``yield from``)
    # ------------------------------------------------------------------
    def exec(self, thread: "SimThread", duration: float, kind: str = USER) -> Generator:
        """Run ``duration`` time units of ``kind`` work on this core.

        The calling process is the thread itself.  Handles dispatch,
        preemption and interrupt-stolen time transparently.
        """
        if duration < 0:
            raise SimError(f"negative execution duration {duration}")
        remaining = duration
        while True:
            if self.current is not thread:
                yield from self._enqueue_and_wait(thread)
            if remaining <= 0:
                return
            contended = bool(self.ready)
            slice_len = min(self.quantum, remaining) if contended else remaining
            end_event = self.engine.event(f"core{self.index}.slice")
            self._epoch += 1
            self._slice = _Slice(
                thread=thread,
                kind=kind,
                work=slice_len,
                started_at=self.engine.now,
                end_event=end_event,
                epoch=self._epoch,
            )
            self._schedule_slice_end(self._slice)
            yield end_event
            self._charge(kind, slice_len)
            self._slice = None
            remaining -= slice_len
            if remaining <= 0:
                return
            if self.ready:
                # Involuntary yield: step off the CPU; the loop re-enters
                # _enqueue_and_wait which puts us at the back of the queue.
                self.current = None
                self._dispatch_next()

    def release(self, thread: "SimThread") -> None:
        """The thread leaves the CPU (blocking or exiting)."""
        if self.current is not thread:
            raise SimError(
                f"thread {thread.name!r} releasing core {self.index} it does not hold"
            )
        if self._slice is not None and self._slice.thread is thread:
            raise SimError("cannot release core mid-slice")
        self.current = None
        if not self.ready:
            # Switch to the idle task (counted by /proc/stat's ctxt).
            self.context_switches += 1
            if TRACE.enabled:
                TRACE.emit(
                    self.engine.now, SCHED_SWITCH, core=self.index,
                    prev=thread.name, next="idle",
                )
            self._last_installed = None
        self._dispatch_next()

    def acquire(self, thread: "SimThread") -> Generator:
        """(Re)acquire the CPU after blocking; generator style."""
        if self.current is not thread:
            yield from self._enqueue_and_wait(thread)

    # ------------------------------------------------------------------
    # Interrupts (TLB shootdown IPIs etc.)
    # ------------------------------------------------------------------
    def post_irq(self, service_time: float) -> None:
        """Deliver an interrupt costing ``service_time`` to this core.

        Charged to the ``irq`` bucket immediately; if a segment is in
        flight its completion is delayed by the service time.
        """
        self._charge(IRQ, service_time)
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, SCHED_IRQ, core=self.index, service=service_time
            )
        if self._slice is not None:
            self._slice.extra_irq_time += service_time
            self._epoch += 1
            self._slice.epoch = self._epoch
            self._schedule_slice_end(self._slice)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _charge(self, bucket: str, amount: float) -> None:
        """Add to an accounting bucket, mirrored into the trace.

        Emitting one ``cpu.acct`` event per addition — in the same order
        the additions happen — lets the trace summarizer rebuild every
        ``/proc/stat`` snapshot with bit-identical float arithmetic.
        """
        self.acct.add(bucket, amount)
        if TRACE.enabled:
            TRACE.emit(
                self.engine.now, CPU_ACCT, core=self.index,
                bucket=bucket, amount=amount,
            )

    def _schedule_slice_end(self, sl: _Slice) -> None:
        end_time = sl.started_at + sl.work + sl.extra_irq_time
        epoch = sl.epoch

        def fire() -> None:
            if self._slice is sl and sl.epoch == epoch:
                sl.end_event.succeed(sl.work)

        self.engine.call_at(end_time, fire)

    def _enqueue_and_wait(self, thread: "SimThread") -> Generator:
        event = self.engine.event(f"core{self.index}.ready.{thread.name}")
        self.ready.append((thread, event))
        if self.current is None:
            self._dispatch_next()
        yield event
        if self.current is not thread:
            raise SimError("woken thread is not current on its core")

    def _dispatch_next(self) -> None:
        if self.current is not None or not self.ready:
            return
        thread, event = self.ready.popleft()
        self.current = thread
        if self._last_installed is not thread:
            self.context_switches += 1
            if TRACE.enabled:
                TRACE.emit(
                    self.engine.now, SCHED_SWITCH, core=self.index,
                    thread=thread.name,
                    prev=self._last_installed.name if self._last_installed else "idle",
                    next=thread.name,
                )
            if self._last_installed is not None and self.switch_cost > 0:
                self._charge(SYS, self.switch_cost)
        self._last_installed = thread
        event.succeed()
