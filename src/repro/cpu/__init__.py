"""Multicore machine model.

Models CPU cores with run queues, timeslice preemption, context-switch
accounting and interrupt (IPI) injection — enough fidelity to reproduce
the paper's CPU-utilisation (Fig. 4) and context-switch (Fig. 5)
characterisations, where the interesting effects are queueing effects:
threads blocked on the simulated ``mmap_lock``, TLB-shootdown interrupts,
and V8's helper threads oversubscribing a fully pinned machine.
"""

from repro.cpu.core import Core, CpuAccounting
from repro.cpu.thread import SimThread
from repro.cpu.machine import Machine, MachineSpec, MACHINE_SPECS

__all__ = [
    "Core",
    "CpuAccounting",
    "SimThread",
    "Machine",
    "MachineSpec",
    "MACHINE_SPECS",
]
