"""Simulated threads.

A :class:`SimThread` is the unit of scheduling: it binds an identity (and
a thread-group id, so the kernel model knows which threads share an
address space) to a core.  The benchmark harness pins worker threads to
distinct cores exactly as the paper's C++ harness does; V8's helper
threads are placed round-robin and *share* cores with workers, which is
what produces the context-switch blow-up in Figure 5b.

Thread bodies are simulation processes (generators).  The discipline is:

* ``yield from thread.startup()`` — first statement of every body;
* ``yield from thread.run(duration, kind)`` — burn CPU time;
* ``yield from thread.block_on(waitable)`` — leave the CPU while waiting
  on an event or a lock-acquire generator, then get back on;
* ``yield from thread.sleep(duration)`` — timed sleep off the CPU;
* ``thread.finish()`` — final statement, releases the core.
"""

from __future__ import annotations

from typing import Any, Generator, Union

from repro.cpu.core import Core, USER
from repro.sim.engine import Delay, Engine, Event


Waitable = Union[Event, Generator]


class SimThread:
    """A schedulable thread pinned (or placed) on one core."""

    def __init__(self, engine: Engine, name: str, core: Core, tgid: int = 0) -> None:
        self.engine = engine
        self.name = name
        self.core = core
        self.tgid = tgid
        #: Set while the thread is on-CPU or runnable; cleared when blocked.
        self.runnable = False

    # -- lifecycle -------------------------------------------------------
    def startup(self) -> Generator:
        """Get on the CPU for the first time."""
        self.runnable = True
        yield from self.core.acquire(self)

    def finish(self) -> None:
        """Leave the CPU permanently (thread exit)."""
        self.runnable = False
        self.core.release(self)

    # -- execution -------------------------------------------------------
    def run(self, duration: float, kind: str = USER) -> Generator:
        """Execute ``duration`` seconds of work of the given kind."""
        yield from self.core.exec(self, duration, kind)

    def block_on(self, waitable: Waitable) -> Generator:
        """Block off-CPU until ``waitable`` completes, then reschedule.

        ``waitable`` is either a triggered-later :class:`Event` or a
        generator such as ``lock.acquire()``.  Returns the waitable's
        result.
        """
        self.runnable = False
        self.core.release(self)
        if isinstance(waitable, Event):
            result = yield waitable
        else:
            result = yield from waitable
        self.runnable = True
        yield from self.core.acquire(self)
        return result

    def sleep(self, duration: float) -> Generator:
        """Sleep off-CPU for a fixed simulated duration."""
        yield from self.block_on(self.engine.timeout(duration))

    def migrate(self, core: Core) -> Generator:
        """Move to another core (models the load balancer migrating
        an unpinned thread); must be called while running."""
        if core is self.core:
            return
        self.core.release(self)
        self.core = core
        yield from self.core.acquire(self)

    # -- convenience -------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimThread({self.name!r}, core={self.core.index})"
