"""Terminal rendering for experiment output."""

from repro.reporting.tables import render_table, render_bars

__all__ = ["render_table", "render_bars"]
