"""ASCII tables and bar charts for the figure harness.

Every experiment prints the same rows/series the paper's figures plot;
these helpers render them readably in a terminal and in the committed
EXPERIMENTS.md transcripts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A padded, pipe-separated table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bars, scaled to the maximum value.

    ``reference`` draws a marker (│) at a reference value — the
    figures use it for the native = 1.0 line.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines)
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    ref_pos = None
    if reference is not None and reference <= peak:
        ref_pos = int(round(reference / peak * width))
    for label, value in zip(labels, values):
        filled = int(round(value / peak * width))
        bar = list("█" * filled + " " * (width - filled))
        if ref_pos is not None and 0 <= ref_pos < width and bar[ref_pos] == " ":
            bar[ref_pos] = "│"
        lines.append(
            f"{label.ljust(label_width)} {''.join(bar)} {_fmt(value)}{unit}"
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
