"""The measurement engine: parallel sweeps + content-addressed caching.

Regenerating the paper's figures walks a grid of
(37 workloads × 6 runtimes × 5 strategies × 3 ISAs × {1,4,16} threads);
the figure experiments also overlap heavily (fig3–fig6 all need the
same thread-scaling measurements).  This module is the execution layer
under ``run_sweep``/``measure``:

* **fan-out** — grids run across a ``ProcessPoolExecutor`` with a
  ``--jobs N`` knob.  Every simulation RNG stream is seeded, so results
  are bit-identical to a serial run regardless of worker count or
  scheduling order.
* **measurement cache** — each finished :class:`RunMeasurement` is
  stored on disk under a content-addressed key:
  SHA-256 over (module digest, runtime, strategy, isa, threads, size,
  iterations, warmup, calibration-constants hash).  Any change to a
  workload's encoded Wasm or to the calibration tables changes the key
  and silently invalidates the entry; corrupt files fall back to
  recompute.  The cache lives beside the profile cache
  (``.cache/measurements/`` next to ``.cache/profiles/``).
* **warm workers** — workers recompute their own profile/compile/
  costing caches from the shared on-disk profile cache instead of
  shipping modules over pickle, so the pool never serialises on the
  parent.  Within one process the per-runtime compile and block-costing
  caches (:mod:`repro.runtimes.base`) make repeated configurations
  near-free.

Serial (``jobs=1``) execution never touches the pool, so library users
and tests pay nothing for the machinery.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.harness import RunMeasurement, run_benchmark
from repro.core.lru import LRUCache
from repro.core.profiles import module_digest
from repro.runtime.predecode import interpreter_build_digest
from repro.oskernel.procstat import UtilisationSample
from repro.trace.events import MEASURE_REQUEST
from repro.trace.tracer import TRACE

#: Bump when the cache entry format (not the measured values) changes.
_CACHE_VERSION = 3  # v3: syscall_seconds/syscall_stats on each measurement


@dataclass(frozen=True)
class MeasurementRequest:
    """One cell of a sweep grid."""

    workload: str
    runtime: str
    strategy: str
    isa: str
    threads: int = 1
    size: str = "small"
    iterations: int = 3
    warmup: int = 1

    def label(self) -> str:
        return (
            f"{self.workload} {self.runtime}/{self.strategy}/"
            f"{self.isa}/t{self.threads}"
        )


@dataclass(frozen=True)
class MeasurementError:
    """A structured per-request failure (the request did not measure)."""

    request: MeasurementRequest
    #: Exception class name of the underlying failure.
    kind: str
    message: str

    def label(self) -> str:
        return f"{self.request.label()}: {self.kind}: {self.message}"


@dataclass(frozen=True)
class MeasurementResult:
    """A measurement plus how the engine produced it.

    ``measurement`` is None exactly when ``error`` is set: the request
    failed and the engine was asked (``return_errors=True``) to report
    the failure per-row instead of raising.
    """

    measurement: Optional[RunMeasurement]
    cache_hit: bool
    #: Wall-clock seconds spent producing this result (≈0 for hits).
    elapsed: float
    error: Optional[MeasurementError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepFailure(RuntimeError):
    """Raised by :meth:`MeasurementEngine.run` after the whole grid ran.

    One poisoned configuration no longer aborts the sweep: every other
    request still executes (and its result is cached) before this is
    raised, so a retry after fixing the bad config is all cache hits.
    ``errors`` lists each failed request; ``results`` is the full
    result list the caller would have received with
    ``return_errors=True``.
    """

    def __init__(
        self,
        errors: List[MeasurementError],
        results: List[MeasurementResult],
    ) -> None:
        self.errors = errors
        self.results = results
        lines = "; ".join(e.label() for e in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"{len(errors)} of {len(results)} sweep requests failed: "
            f"{lines}{more}"
        )


# --------------------------------------------------------------------------
# Calibration hash: every constant that feeds one measurement's values.

#: RuntimeModel fields that are presentation/availability metadata, not
#: cost calibration — excluded so registering an extra strategy (the
#: CHERI extension mutates ``model.strategies``) does not invalidate
#: unrelated cached measurements.
_NON_CALIBRATION_FIELDS = {"display", "strategies", "default_strategy"}


def _plain(value: object) -> object:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {}
        for f in dataclasses.fields(value):
            if f.name.startswith("_") or f.name in _NON_CALIBRATION_FIELDS:
                continue
            fields[f.name] = _plain(getattr(value, f.name))
        return fields
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (frozenset, set)):
        return sorted(str(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _calibration_payload(
    runtime: str, strategy: str, isa: str, workload: str
) -> object:
    """The model constants one measurement depends on, canonically.

    Every measurement is priced by: its runtime model (compiler config,
    scheduling overhead, helper/GC behaviour), its strategy, its ISA
    cost table and machine spec, the interpreter cost tables, and —
    through the paper-scale anchor in :func:`run_benchmark` — the
    native-Clang model on x86-64 plus the workload's paper target.
    """
    from repro.compiler import timing
    from repro.core.config import PAPER_TARGETS
    from repro.cpu.machine import MACHINE_SPECS
    from repro.isa import ISAS
    from repro.oskernel.syscalls import SyscallCosts
    from repro.runtime.strategies import STRATEGIES
    from repro.runtimes import runtime_named

    return {
        # The WASI service-latency table prices every syscall batch;
        # the ISA entry cost is covered by the "isa" entry below.
        "syscall_costs": _plain(SyscallCosts()),
        "runtime": _plain(runtime_named(runtime)),
        "strategy": _plain(STRATEGIES[strategy]),
        "isa": _plain(ISAS[isa]),
        "machine": _plain(MACHINE_SPECS[isa]),
        "anchor": {
            "runtime": _plain(runtime_named("native-clang")),
            "strategy": _plain(STRATEGIES["none"]),
            "isa": _plain(ISAS["x86_64"]),
            "machine": _plain(MACHINE_SPECS["x86_64"]),
            "target": _plain(PAPER_TARGETS[workload]),
        },
        "interp_op_work": _plain(timing._INTERP_OP_WORK),
        "interp_expensive": _plain(timing._INTERP_EXPENSIVE),
    }


_calibration_memo: Dict[tuple, str] = {}


def calibration_hash(
    runtime: str, strategy: str, isa: str, workload: str
) -> str:
    """SHA-256 over a measurement's calibration constants.

    Part of each cache key: editing a cost table, machine spec, runtime
    model or paper-scale target changes the hash and silently
    invalidates the affected cached measurements — the cache never
    needs manual flushing after model work.  Hashes are memoised per
    configuration at first use.
    """
    memo_key = (runtime, strategy, isa, workload)
    cached = _calibration_memo.get(memo_key)
    if cached is None:
        canonical = json.dumps(
            _calibration_payload(runtime, strategy, isa, workload),
            sort_keys=True,
            default=repr,
        )
        cached = hashlib.sha256(canonical.encode()).hexdigest()
        _calibration_memo[memo_key] = cached
    return cached


# --------------------------------------------------------------------------
# RunMeasurement (de)serialisation for the disk cache.

def measurement_to_json(m: RunMeasurement) -> dict:
    return {
        "workload": m.workload,
        "runtime": m.runtime,
        "strategy": m.strategy,
        "isa": m.isa,
        "threads": m.threads,
        "size": m.size,
        "iteration_seconds": m.iteration_seconds,
        "wall_seconds": m.wall_seconds,
        "utilisation": dataclasses.asdict(m.utilisation),
        "mem_avg_bytes": m.mem_avg_bytes,
        "kernel_stats": m.kernel_stats,
        "mmap_read_wait": m.mmap_read_wait,
        "mmap_write_wait": m.mmap_write_wait,
        "compute_seconds": m.compute_seconds,
        "bounds_checks": {str(k): int(v) for k, v in m.bounds_checks.items()},
        "syscall_seconds": m.syscall_seconds,
        "syscall_stats": {
            str(k): {"calls": int(v["calls"]), "seconds": float(v["seconds"])}
            for k, v in m.syscall_stats.items()
        },
    }


def measurement_from_json(raw: dict) -> RunMeasurement:
    return RunMeasurement(
        workload=raw["workload"],
        runtime=raw["runtime"],
        strategy=raw["strategy"],
        isa=raw["isa"],
        threads=raw["threads"],
        size=raw["size"],
        iteration_seconds=[float(v) for v in raw["iteration_seconds"]],
        wall_seconds=raw["wall_seconds"],
        utilisation=UtilisationSample(**raw["utilisation"]),
        mem_avg_bytes=raw["mem_avg_bytes"],
        kernel_stats={str(k): int(v) for k, v in raw["kernel_stats"].items()},
        mmap_read_wait=raw["mmap_read_wait"],
        mmap_write_wait=raw["mmap_write_wait"],
        compute_seconds=raw["compute_seconds"],
        bounds_checks={
            str(k): int(v) for k, v in raw.get("bounds_checks", {}).items()
        },
        syscall_seconds=raw.get("syscall_seconds", 0.0),
        syscall_stats={
            str(k): {"calls": int(v["calls"]), "seconds": float(v["seconds"])}
            for k, v in raw.get("syscall_stats", {}).items()
        },
    )


def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    executor.shutdown(wait=False, cancel_futures=True)


def _pool_context():
    """Prefer ``fork`` workers: they inherit the parent's in-memory
    profile/compile caches and any extension strategies registered at
    runtime (newer Pythons default to forkserver, which would not)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: workers rebuild state
        return multiprocessing.get_context()


# --------------------------------------------------------------------------
# Worker entry point (module-level so it pickles under 'spawn' too).

def _execute(payload: dict) -> dict:
    """Run one request in a (possibly worker) process."""
    started = time.perf_counter()
    measurement = run_benchmark(**payload)
    return {
        "measurement": measurement_to_json(measurement),
        "elapsed": time.perf_counter() - started,
    }


def _error_outcome(exc: BaseException, elapsed: float) -> dict:
    """The outcome shape :meth:`MeasurementEngine._finish` expects for a
    request whose execution raised instead of measuring."""
    return {
        "error": {"kind": type(exc).__name__, "message": str(exc)},
        "elapsed": elapsed,
    }


def resolve_jobs(jobs) -> int:
    """Worker count for a ``jobs`` request on *this* machine.

    ``"auto"`` sizes the pool to the host: serial on single-CPU
    machines (where BENCH_sweep.json showed ``--jobs 4`` cold running
    ~2x slower than serial — fork + pickle overhead with no parallelism
    to pay for it), otherwise one worker per CPU capped at 8 (the
    figure grids rarely have more independent misses than that).
    """
    if jobs == "auto":
        cpus = os.cpu_count() or 1
        return 1 if cpus < 2 else min(cpus, 8)
    return max(1, int(jobs))


#: With jobs="auto", grids with fewer misses than this run serially:
#: pool spin-up (fork + import) costs more than it saves.
_MIN_PARALLEL_MISSES = 4


def _memory_cap(explicit: Optional[int]) -> int:
    """In-process result cache bound: explicit arg, env, or default.

    A full figure grid is ~10k cells; the default keeps roughly half of
    one resident (a RunMeasurement is a few hundred bytes, so ~2 MiB)
    while guaranteeing a long-running daemon cannot grow without bound.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get("REPRO_MEMORY_CACHE_CAP")
    return int(raw) if raw else 4096


class MeasurementEngine:
    """Executes measurement requests with caching and optional fan-out."""

    def __init__(
        self,
        jobs=1,
        cache: bool = True,
        cache_dir: Optional[os.PathLike] = None,
        memory_cap: Optional[int] = None,
    ) -> None:
        #: As requested ("auto" or an int); ``jobs`` is the resolved count.
        self.jobs_requested = jobs
        self.jobs = resolve_jobs(jobs)
        self.cache_enabled = cache
        #: Bounded in-process result cache (disk entries are unbounded;
        #: this layer only avoids re-reading them).
        self._memory: LRUCache[RunMeasurement] = LRUCache(
            _memory_cap(memory_cap)
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        if cache_dir is not None:
            self.cache_dir = Path(cache_dir)
        else:
            root = os.environ.get("REPRO_MEASUREMENT_CACHE_DIR")
            self.cache_dir = (
                Path(root) if root else Path(".cache") / "measurements"
            )

    # -- keys ------------------------------------------------------------

    def key_for(self, request: MeasurementRequest) -> str:
        """Content-addressed cache key for one request."""
        payload = {
            "version": _CACHE_VERSION,
            "module": module_digest(request.workload, request.size),
            # Measurements derive from interpreter-produced profiles, so
            # the key pins the exact interpreter build that profiled.
            "interp": interpreter_build_digest()[:16],
            "runtime": request.runtime,
            "strategy": request.strategy,
            "isa": request.isa,
            "threads": request.threads,
            "size": request.size,
            "iterations": request.iterations,
            "warmup": request.warmup,
            "calibration": calibration_hash(
                request.runtime, request.strategy, request.isa, request.workload
            ),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path_for(self, request: MeasurementRequest, key: str) -> Path:
        stem = f"{request.workload.replace('/', '_')}-{request.size}-{key[:24]}"
        return self.cache_dir / f"{stem}.json"

    # -- cache I/O -------------------------------------------------------

    def memory_stats(self) -> Dict[str, int]:
        """Counter snapshot of the in-process LRU (``/metrics``)."""
        return self._memory.stats()

    def _load(self, request: MeasurementRequest, key: str) -> Optional[RunMeasurement]:
        if not self.cache_enabled:
            return None
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._path_for(request, key)
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text())
            if raw.get("key") != key:
                return None  # digest collision on the shortened filename
            measurement = measurement_from_json(raw["measurement"])
        except (ValueError, KeyError, TypeError):
            return None  # stale/corrupt/partial cache entry: recompute
        self._memory.put(key, measurement)
        return measurement

    def _store(
        self, request: MeasurementRequest, key: str, measurement: RunMeasurement
    ) -> None:
        if not self.cache_enabled:
            return
        self._memory.put(key, measurement)
        path = self._path_for(request, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(
                    {
                        "key": key,
                        "request": dataclasses.asdict(request),
                        "measurement": measurement_to_json(measurement),
                    }
                )
            )
            tmp.replace(path)
        except OSError:
            pass  # read-only filesystem: in-memory cache still works

    # -- execution -------------------------------------------------------

    def run(
        self,
        requests: Sequence[MeasurementRequest],
        progress=None,
        *,
        return_errors: bool = False,
        on_result: Optional[
            Callable[[MeasurementRequest, str, MeasurementResult], None]
        ] = None,
    ) -> List[MeasurementResult]:
        """Execute requests, returning results in request order.

        Duplicate requests are computed once.  Misses run serially
        in-process when ``jobs == 1`` and across the process pool
        otherwise; either way the values are identical.

        Fault isolation: a request whose execution raises does not
        abort the sweep — every other request still runs and every
        completed result is cached.  With ``return_errors=True``
        (the service's mode) failures come back as per-row
        :class:`MeasurementResult`\\ s carrying a
        :class:`MeasurementError`; otherwise (CLI paths) a
        :class:`SweepFailure` is raised once the whole grid has been
        attempted.

        ``on_result`` is invoked once per unique request as it
        resolves — hit, miss or failure, in completion order, from the
        calling thread — so a caller can stream rows while the grid is
        still running.
        """
        keys = [self.key_for(req) for req in requests]
        results: Dict[str, MeasurementResult] = {}
        misses: List[tuple] = []
        scheduled = set()
        for request, key in zip(requests, keys):
            if key in results or key in scheduled:
                continue
            started = time.perf_counter()
            cached = self._load(request, key)
            if cached is not None:
                result = MeasurementResult(
                    cached, True, time.perf_counter() - started
                )
                self._resolve(request, key, result, results, progress, on_result)
            else:
                scheduled.add(key)
                misses.append((request, key))

        # Workload-major order: consecutive requests for one workload
        # land in the same worker chunk (or run back-to-back serially),
        # so each process profiles/compiles a module once and re-prices
        # it from its in-memory caches for the rest of the group.
        misses.sort(key=lambda item: (item[0].workload, item[0].size))

        if misses:
            serial = self.jobs == 1 or len(misses) == 1
            if (
                not serial
                and self.jobs_requested == "auto"
                and len(misses) < _MIN_PARALLEL_MISSES
            ):
                serial = True  # auto: tiny grid, pool spin-up dominates
            if serial:
                for request, key in misses:
                    started = time.perf_counter()
                    try:
                        outcome = _execute(dataclasses.asdict(request))
                    except Exception as exc:
                        outcome = _error_outcome(
                            exc, time.perf_counter() - started
                        )
                    self._finish(request, key, outcome, results, progress,
                                 on_result)
            else:
                pool = self._pool()
                started = time.perf_counter()
                futures = {
                    pool.submit(_execute, dataclasses.asdict(request)):
                        (request, key)
                    for request, key in misses
                }
                for future in as_completed(futures):
                    request, key = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        # One worker exception no longer poisons the
                        # whole map(): the other futures keep running
                        # and their results are kept (and cached).
                        outcome = _error_outcome(
                            exc, time.perf_counter() - started
                        )
                    self._finish(request, key, outcome, results, progress,
                                 on_result)

        ordered = [results[key] for key in keys]
        if not return_errors:
            errors, seen = [], set()
            for key, result in zip(keys, ordered):
                if result.error is not None and key not in seen:
                    seen.add(key)
                    errors.append(result.error)
            if errors:
                raise SweepFailure(errors, ordered)
        return ordered

    def _pool(self) -> ProcessPoolExecutor:
        """The engine's worker pool, created once and reused.

        A figure pipeline issues dozens of small grids; keeping the
        workers alive across ``run()`` calls lets each accumulate warm
        profile/compile/costing caches instead of re-deriving them
        after every fork.
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_pool_context()
            )
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._executor
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (also runs when the engine is GC'd).

        Abandons in-flight work (``cancel_futures``); a long-running
        service that wants running measurements to complete first calls
        :meth:`drain` instead.
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._executor = None

    def drain(self) -> None:
        """Gracefully release the pool: wait for in-flight work first.

        The daemon's shutdown path — submitted measurements finish (and
        land in the cache) before the workers exit, so a restart does
        not re-pay for work that was already in progress.
        """
        executor = self._executor
        if executor is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._executor = None
        executor.shutdown(wait=True, cancel_futures=False)

    def _finish(
        self, request, key, outcome, results, progress, on_result=None
    ) -> None:
        if "error" in outcome:
            error = MeasurementError(
                request=request,
                kind=outcome["error"]["kind"],
                message=outcome["error"]["message"],
            )
            result = MeasurementResult(
                None, False, outcome["elapsed"], error=error
            )
        else:
            measurement = measurement_from_json(outcome["measurement"])
            self._store(request, key, measurement)
            result = MeasurementResult(measurement, False, outcome["elapsed"])
        self._resolve(request, key, result, results, progress, on_result)

    def _resolve(
        self, request, key, result, results, progress, on_result
    ) -> None:
        results[key] = result
        if TRACE.enabled:
            TRACE.emit(
                0.0, MEASURE_REQUEST, label=request.label(),
                cache_hit=result.cache_hit, error=result.error is not None,
            )
        if progress is not None:
            progress(request.label())
        if on_result is not None:
            on_result(request, key, result)

    def measure_one(self, request: MeasurementRequest) -> MeasurementResult:
        return self.run([request])[0]


# --------------------------------------------------------------------------
# Process-wide default engine + CLI plumbing shared by every experiment.

_default_engine: Optional[MeasurementEngine] = None

#: REPRO_CACHE_DIR value that preceded our first override (None = the
#: variable was unset), and whether an override is currently active.
#: ``configure(cache_dir=...)`` points the profile cache into the
#: requested base; reconfiguring *without* a cache_dir must restore the
#: pre-override value, or profile caches silently stay pinned to a
#: stale directory for the rest of the process.
_profile_env_prior: Optional[str] = None
_profile_env_overridden = False


def _apply_profile_cache_env(base: Optional[Path]) -> None:
    global _profile_env_prior, _profile_env_overridden
    if base is not None:
        if not _profile_env_overridden:
            _profile_env_prior = os.environ.get("REPRO_CACHE_DIR")
            _profile_env_overridden = True
        # One base directory for the whole cache family: profiles move
        # with the measurements so --cache-dir isolates everything.
        os.environ["REPRO_CACHE_DIR"] = str(base / "profiles")
    elif _profile_env_overridden:
        if _profile_env_prior is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = _profile_env_prior
        _profile_env_prior = None
        _profile_env_overridden = False


def default_engine() -> MeasurementEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = MeasurementEngine()
    return _default_engine


def configure(
    jobs=None,
    cache: Optional[bool] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> MeasurementEngine:
    """(Re)configure the process-wide engine; returns it.

    ``jobs`` is an int or ``"auto"`` (size to the machine, serial
    fallback for small grids); None keeps the current setting.
    """
    global _default_engine
    current = default_engine()
    base = Path(cache_dir) if cache_dir is not None else None
    _apply_profile_cache_env(base)
    replacement = MeasurementEngine(
        jobs=current.jobs_requested if jobs is None else jobs,
        cache=current.cache_enabled if cache is None else cache,
        cache_dir=base / "measurements" if base is not None else None,
    )
    settings = (
        replacement.jobs_requested,
        replacement.cache_enabled,
        replacement.cache_dir,
    )
    if settings == (
        current.jobs_requested,
        current.cache_enabled,
        current.cache_dir,
    ):
        # Same settings: keep the warm pool and in-memory results
        # (``leaps-bench all`` reconfigures before every figure).
        return current
    current.close()
    _default_engine = replacement
    return _default_engine


def reset_default_engine() -> None:
    """Drop the process-wide engine (tests); undoes any env override."""
    global _default_engine
    if _default_engine is not None:
        _default_engine.close()
    _default_engine = None
    _apply_profile_cache_env(None)


def add_engine_args(parser) -> None:
    """Deprecated: use :func:`repro.core.cliopts.add_sweep_args`."""
    import warnings

    warnings.warn(
        "repro.core.engine.add_engine_args is deprecated; use "
        "repro.core.cliopts.add_sweep_args (or the sweep_parent parser)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.cliopts import add_sweep_args

    add_sweep_args(parser)


def configure_from_args(args) -> MeasurementEngine:
    """Deprecated: use :func:`repro.core.cliopts.configure_sweep`."""
    import warnings

    warnings.warn(
        "repro.core.engine.configure_from_args is deprecated; use "
        "repro.core.cliopts.configure_sweep",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.cliopts import configure_sweep

    return configure_sweep(args)
