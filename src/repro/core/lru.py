"""A small instrumented LRU map shared by the engine and the service.

The measurement engine's in-process result cache (`MeasurementEngine._memory`)
used to be a plain dict: fine for one-shot CLI sweeps, unbounded growth
for a long-running daemon serving millions of requests.  Both that
cache and the sweep service's row cache now sit on this class — a
capacity-bounded ordered map with recency eviction and the counters a
``/metrics`` endpoint wants (hits, misses, evictions, peak size).

Deliberately not thread-safe by itself: the engine touches it from one
thread, and the service only touches it from the event loop.  Callers
that share one across threads (the service's executor bridge does not)
must lock around it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction and counters."""

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions", "peak")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[str, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def get(self, key: str) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None; counted."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but touches neither recency nor counters."""
        return self._data.get(key)

    def put(self, key: str, value: V) -> Optional[Tuple[str, V]]:
        """Insert/refresh ``key``; returns the evicted (key, value) if any."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return None
        self._data[key] = value
        evicted = None
        if len(self._data) > self.capacity:
            self.evictions += 1
            evicted = self._data.popitem(last=False)
        if len(self._data) > self.peak:
            self.peak = len(self._data)
        return evicted

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot in the shape ``/metrics`` serves."""
        return {
            "capacity": self.capacity,
            "size": len(self._data),
            "peak": self.peak,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
