"""``leaps-bench`` — the experiment command-line interface.

Usage::

    leaps-bench fig1 [--size small] [--full]
    leaps-bench fig2 [--isa x86_64|armv8|riscv64|all] ...
    leaps-bench fig3|fig4|fig5|fig6 [--isa x86_64|armv8] ...
    leaps-bench fig-bce      # bounds-check elimination effect
    leaps-bench fig-cage     # extension: mte/wasm64 vs the paper's five
    leaps-bench fig-wasi     # extension: syscall-bound WASI scenarios
    leaps-bench replication ...
    leaps-bench cheri        # extension: projected CHERI strategy
    leaps-bench tiers        # extension: compile-time/code-size/speed
    leaps-bench all          # every figure, quick subsets
    leaps-bench trace record|summarize|export ...   # event tracing
    leaps-bench diffcheck ...    # differential-correctness harness
    leaps-bench fuzz ...         # coverage-guided fuzzing campaign
    leaps-bench serve ...        # async sweep service daemon (HTTP/JSON)
    leaps-bench loadgen ...      # drive a running daemon, report latency

Every experiment additionally accepts the shared sweep knobs
(:mod:`repro.core.cliopts`)::

    --jobs N          # run the sweep across N worker processes
    --no-cache        # ignore and do not write the measurement cache
    --cache-dir DIR   # cache base directory (default: .cache/)
    --no-bce          # disable the compiler's bounds-check elimination

Measurements are cached content-addressed under ``.cache/measurements``
(keyed on module digest + calibration constants), so figures sharing a
grid — fig3's thread sweep feeds fig4/fig5/fig6 — and re-runs are
near-free.  ``--jobs N`` output is bit-identical to a serial run.

Results are printed as the figures' rows/series and saved under
``results/`` as JSON.
"""

from __future__ import annotations

import os
import sys

from repro.core.experiments import (
    extension_cheri,
    extension_tiers,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig_bce,
    fig_cage,
    fig_wasi,
    replication,
)
from repro.diffcheck import cli as diffcheck_cli
from repro.fuzz import cli as fuzz_cli
from repro.service import cli as service_cli
from repro.trace import cli as trace_cli

_EXPERIMENTS = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "fig3": fig3.main,
    "fig4": fig4.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig-bce": fig_bce.main,
    "fig-cage": fig_cage.main,
    "fig-wasi": fig_wasi.main,
    "replication": replication.main,
    "cheri": extension_cheri.main,
    "tiers": extension_tiers.main,
}

#: Non-experiment tools: dispatched like experiments but excluded from
#: ``all`` (they observe runs rather than produce figure data).
_TOOLS = {
    "trace": trace_cli.main,
    "diffcheck": diffcheck_cli.main,
    "fuzz": fuzz_cli.main,
    "serve": service_cli.serve_main,
    "loadgen": service_cli.loadgen_main,
}


def _run_entry(name, entry, rest) -> int:
    """Run one subcommand, mapping every failure to a non-zero exit.

    The experiment mains return row payloads (or an int for the
    tools); before this wrapper an exception escaped as a traceback
    whose exit status argparse/SystemExit conventions could mask, and
    ``all`` treated a crashed figure as success.  Set ``REPRO_DEBUG``
    to re-raise with the full traceback instead.
    """
    try:
        result = entry(rest)
    except SystemExit as exc:  # argparse errors carry their own code
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 1
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"{name}: error: {exc}", file=sys.stderr)
        return 1
    return result if isinstance(result, int) else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "all":
        worst = 0
        for name, entry in _EXPERIMENTS.items():
            print(f"\n=== {name} ===\n")
            worst = max(worst, _run_entry(name, entry, rest))
        return worst
    entry = _EXPERIMENTS.get(command) or _TOOLS.get(command)
    if entry is None:
        print(f"unknown experiment {command!r}; choose from "
              f"{', '.join(list(_EXPERIMENTS) + list(_TOOLS))} or 'all'",
              file=sys.stderr)
        return 2
    return _run_entry(command, entry, rest)


if __name__ == "__main__":
    raise SystemExit(main())
