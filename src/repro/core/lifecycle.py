"""Per-instance memory lifecycle: strategy → kernel events.

This module is where the five bounds-checking strategies become
different *system* behaviour (§3.1, §4.1.1).  Each worker owns one
linear-memory arena (an 8 GiB reservation).  Per benchmark iteration:

=========  =============================  ===============================
strategy   grow (iteration start)         reset (iteration end)
=========  =============================  ===============================
none       nothing (mapped RW at setup)   madvise(DONTNEED)  [read lock]
clamp      nothing                        madvise(DONTNEED)  [read lock]
trap       nothing                        madvise(DONTNEED)  [read lock]
mprotect   mprotect(range, RW) [WRITE]    mprotect(range, NONE) [WRITE,
                                          zap + TLB shootdown]
uffd       atomic size store (no kernel)  madvise(DONTNEED)  [read lock]
mte        userspace retag (no kernel)    madvise(DONTNEED)  [read lock]
wasm64     nothing (no guard region to    madvise(DONTNEED)  [read lock]
           manage; checks are explicit)
=========  =============================  ===============================

During the run, first-touch faults populate the working set: anonymous
demand-zero faults (read lock) for everything except ``uffd``, which
takes the SIGBUS + UFFDIO_ZEROPAGE path.  Faults are replayed in
batches spread across the first part of the compute phase
(DESIGN.md §5 approximation note).

Native baselines run one *process* per instance: a fresh mmap/munmap
pair brackets every iteration (the paper's vfork+fexecve runner), and
each process has its own ``mmap_lock``, which is exactly why native
code never sees the contention collapse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.cpu.core import USER
from repro.cpu.thread import SimThread
from repro.oskernel.kernel import Kernel, KernelProcess
from repro.oskernel.layout import GUARD_REGION_BYTES, PAGE_SIZE, WASM_PAGE_SIZE
from repro.oskernel.vma import Prot
from repro.runtime.strategies import BoundsStrategy
from repro.trace.events import (
    GC_PAUSE,
    ITER_BEGIN,
    ITER_END,
    STRATEGY_GROW_BEGIN,
    STRATEGY_GROW_END,
    STRATEGY_RESET_BEGIN,
    STRATEGY_RESET_END,
)
from repro.trace.tracer import TRACE

#: Cost of the vfork+fexecve process spawn per native iteration; the
#: paper measures it "on the order of a hundred microseconds" (§3.5).
NATIVE_SPAWN_SECONDS = 150e-6

#: Minimum pages per replayed fault batch (one THP mapping).
FAULT_BATCH_PAGES = 512

#: Fraction of the compute phase over which first-touch faults spread.
FAULT_PHASE_FRACTION = 0.4

#: Cost of the uffd strategy's atomic arena-size update.
ATOMIC_GROW_SECONDS = 40e-9

#: MTE retag throughput: seconds per 16-byte tag granule.  STG/DC GVA
#: tag at roughly one granule per cycle on current Arm cores (~2.2
#: GHz), so ~0.45 ns/granule.  Pure userspace work: no syscall, no
#: VMA mutation, no mmap_lock — which is the whole point of the
#: strategy under thread scaling.
MTE_RETAG_SECONDS_PER_GRANULE = 0.45e-9

#: The MTE tag granule in bytes (Arm MTE architectural constant).
MTE_TAG_GRANULE_BYTES = 16


@dataclass(frozen=True)
class SyscallBatch:
    """One group of same-named, similar-sized WASI calls per iteration.

    Batches are built per (syscall name, log2 payload bucket) so a
    workload mixing 4-byte and 4 KiB reads is priced per regime, and
    the per-syscall latency histograms in the trace layer keep the
    payload-driven spread.  ``name`` is the *cost* name — reads and
    writes on direct-I/O files carry an ``@direct`` suffix.
    """

    name: str
    calls: int
    nbytes: int
    seconds: float   # total simulated kernel time for the batch
    per_call: float  # seconds per individual call (latency sample)


@dataclass(frozen=True)
class IterationPlan:
    """Everything a worker needs to replay one benchmark iteration."""

    compute_seconds: float
    touched_pages: int  # 4 KiB pages populated per iteration
    memory_bytes: int   # accessible linear-memory range
    strategy: BoundsStrategy
    native: bool = False
    #: V8's stop-the-world GC: pauses of ``gc_duration`` every
    #: ``gc_interval`` of execution (0 = no GC).
    gc_interval: float = 0.0
    gc_duration: float = 0.0
    #: Kernel crossings replayed inside the timed region (WASI family;
    #: empty for compute-family workloads).
    syscalls: Tuple[SyscallBatch, ...] = ()

    @property
    def syscall_seconds(self) -> float:
        """Modelled kernel time per iteration (sum over batches)."""
        return sum(batch.seconds for batch in self.syscalls)


def make_plan(
    cycles: float,
    frequency_hz: float,
    strategy: BoundsStrategy,
    time_scale: float,
    memory_bytes: int,
    native: bool = False,
    gc_interval: float = 0.0,
    gc_duration: float = 0.0,
    syscalls: Optional[Dict[str, dict]] = None,
    syscall_model=None,
) -> IterationPlan:
    """Scale a functional profile up to paper-sized iterations.

    ``time_scale`` stretches the modelled compute cycles to the
    paper-scale iteration duration; ``memory_bytes`` is the paper-scale
    data footprint, all of which is touched (and hence faulted) each
    iteration.

    ``syscalls`` is the profile's host-call census
    (:meth:`repro.runtime.hostiface.SyscallRecorder.snapshot`); call
    counts scale by the same ``time_scale`` as compute so syscall
    *density* (crossings per second of work) survives the stretch to
    paper scale.  ``syscall_model`` (a
    :class:`repro.oskernel.syscalls.SyscallCostModel`) prices them.
    """
    compute_seconds = cycles / frequency_hz * time_scale
    memory_bytes = max(WASM_PAGE_SIZE, min(memory_bytes, GUARD_REGION_BYTES))
    touched_pages = max(1, memory_bytes // PAGE_SIZE)
    return IterationPlan(
        compute_seconds=compute_seconds,
        touched_pages=touched_pages,
        memory_bytes=memory_bytes,
        strategy=strategy,
        native=native,
        gc_interval=gc_interval,
        gc_duration=gc_duration,
        syscalls=plan_syscalls(syscalls, time_scale, syscall_model),
    )


def plan_syscalls(
    census: Optional[Dict[str, dict]],
    time_scale: float,
    syscall_model,
) -> Tuple[SyscallBatch, ...]:
    """Turn a profile's syscall census into priced per-iteration batches.

    One batch per (name, log2 payload bucket), in sorted order so the
    replay sequence — and therefore every downstream float accumulation
    — is deterministic.  Per-bucket average payload size is preserved
    under scaling (calls stretch, the per-call payload does not).
    """
    if not census or syscall_model is None:
        return ()
    batches = []
    for name in sorted(census):
        entry = census[name]
        base, _, modifier = name.partition("@")
        direct = modifier == "direct"
        for bucket in sorted(entry["buckets"], key=int):
            calls, nbytes = entry["buckets"][bucket]
            if calls <= 0:
                continue
            scaled_calls = max(1, round(calls * time_scale))
            scaled_bytes = round(scaled_calls * (nbytes / calls))
            seconds, per_call = syscall_model.batch(
                base, scaled_calls, scaled_bytes, direct=direct
            )
            batches.append(SyscallBatch(
                name=name,
                calls=scaled_calls,
                nbytes=scaled_bytes,
                seconds=seconds,
                per_call=per_call,
            ))
    return tuple(batches)


class InstanceLifecycle:
    """One worker's arena and its per-iteration kernel interaction."""

    def __init__(
        self,
        kernel: Kernel,
        proc: KernelProcess,
        thread: SimThread,
        plan: IterationPlan,
    ) -> None:
        self.kernel = kernel
        self.proc = proc
        self.thread = thread
        self.plan = plan
        self.area = None
        #: Executed time since the last stop-the-world GC pause.
        self._since_gc = 0.0
        #: Iterations started (warm-up + timed + cool-down), for tracing.
        self._iteration = 0

    def _trace(self, name: str, **args) -> None:
        TRACE.emit(
            self.thread.engine.now, name,
            thread=self.thread.name, core=self.thread.core.index,
            tgid=self.proc.tgid, **args,
        )

    # ------------------------------------------------------------------
    def _run_compute(self, seconds: float) -> Generator:
        """Burn compute time, pausing for GC at the configured cadence.

        GC pauses land *inside* the timed region — a safepoint stops
        the mutator mid-execution — which is what degrades V8's
        long-running iterations at high thread counts (§4.1.1).
        """
        plan = self.plan
        if plan.gc_interval <= 0:
            if seconds > 0:
                yield from self.thread.run(seconds, USER)
            return
        while seconds > 0:
            step = min(seconds, plan.gc_interval - self._since_gc)
            yield from self.thread.run(step, USER)
            self._since_gc += step
            seconds -= step
            if self._since_gc >= plan.gc_interval:
                if TRACE.enabled:
                    self._trace(GC_PAUSE, duration=plan.gc_duration)
                yield from self.thread.sleep(plan.gc_duration)
                self._since_gc = 0.0

    # ------------------------------------------------------------------
    def setup(self) -> Generator:
        """One-time arena creation (reused across iterations)."""
        if self.plan.native:
            return  # native maps per iteration (fresh process image)
        self.area = yield from self.kernel.sys_mmap_reserve(
            self.thread, self.proc, GUARD_REGION_BYTES, name="wasm-arena"
        )
        strategy = self.plan.strategy
        if strategy.grow_mechanism == "mprotect":
            return  # stays PROT_NONE; grows make it accessible
        # none/clamp/trap/uffd: map the whole reservation RW up front.
        yield from self.kernel.sys_mprotect(
            self.thread, self.proc, self.area, 0, self.area.length, Prot.RW
        )
        if strategy.fault_mechanism == "uffd":
            yield from self.kernel.sys_uffd_register(
                self.thread, self.proc, self.area
            )

    # ------------------------------------------------------------------
    def run_iteration(self) -> Generator:
        """One benchmark iteration; returns the *timed* duration.

        The paper's harness times module execution only: instance
        setup (grow) and teardown (reset) stay outside the reported
        time, but still happen on the machine and therefore show up in
        utilisation, context switches and lock contention.
        """
        index = self._iteration
        self._iteration += 1
        if TRACE.enabled:
            self._trace(ITER_BEGIN, index=index)
        if self.plan.native:
            timed = yield from self._native_iteration()
        else:
            timed = yield from self._wasm_iteration()
        if TRACE.enabled:
            self._trace(ITER_END, index=index, timed=timed)
        return timed

    # ------------------------------------------------------------------
    def _wasm_iteration(self) -> Generator:
        plan = self.plan
        strategy = plan.strategy
        # The timed region starts here: the benchmark program's own
        # allocation (malloc -> memory.grow) happens inside ``main``,
        # so the grow syscall — and any mmap_lock wait it suffers —
        # is part of the measured execution time.
        timed_start = self.thread.engine.now
        if TRACE.enabled:
            self._trace(STRATEGY_GROW_BEGIN, mechanism=strategy.grow_mechanism)
        if strategy.grow_mechanism == "mprotect":
            yield from self.kernel.sys_mprotect(
                self.thread, self.proc, self.area, 0, plan.memory_bytes,
                Prot.RW, thp=True,
            )
        elif strategy.grow_mechanism == "atomic":
            yield from self.thread.run(ATOMIC_GROW_SECONDS, USER)
        elif strategy.grow_mechanism == "retag":
            # MTE: every new granule gets its allocation tag set in
            # userspace (STG loop / DC GVA).  Costs CPU time linear in
            # the grown range but never touches the VMA tree or
            # mmap_lock, so it cannot collapse under thread scaling.
            granule = strategy.tag_granule or MTE_TAG_GRANULE_BYTES
            granules = plan.memory_bytes // granule
            yield from self.thread.run(
                granules * MTE_RETAG_SECONDS_PER_GRANULE, USER
            )
        if TRACE.enabled:
            self._trace(STRATEGY_GROW_END, mechanism=strategy.grow_mechanism)
        yield from self._compute_with_faults(self.area)
        yield from self._replay_syscalls()
        timed = self.thread.engine.now - timed_start
        # Reset (untimed): each iteration runs a *fresh* instance, so
        # the arena returns to demand-zero.  mprotect revokes access
        # under the exclusive lock (the paper's contended path);
        # everything else uses madvise(DONTNEED) under the shared lock.
        if TRACE.enabled:
            self._trace(STRATEGY_RESET_BEGIN, mechanism=strategy.reset_mechanism)
        if strategy.reset_mechanism == "mprotect":
            yield from self.kernel.sys_mprotect(
                self.thread, self.proc, self.area, 0, plan.memory_bytes,
                Prot.NONE, thp=True,
            )
        else:
            yield from self.kernel.sys_madvise_dontneed(
                self.thread, self.proc, self.area, 0, plan.memory_bytes,
                thp=True,
            )
        if TRACE.enabled:
            self._trace(STRATEGY_RESET_END, mechanism=strategy.reset_mechanism)
        return timed

    def _native_iteration(self) -> Generator:
        # Native timing covers the whole process run, spawn included —
        # the paper measures it at ~100 µs and accepts the noise (§3.5).
        plan = self.plan
        timed_start = self.thread.engine.now
        yield from self.thread.run(NATIVE_SPAWN_SECONDS, "sys")
        area = yield from self.kernel.sys_mmap_reserve(
            self.thread, self.proc, plan.memory_bytes, name="native-heap"
        )
        yield from self.kernel.sys_mprotect(
            self.thread, self.proc, area, 0, plan.memory_bytes, Prot.RW, thp=True
        )
        yield from self._compute_with_faults(area)
        yield from self._replay_syscalls()
        yield from self.kernel.sys_munmap(self.thread, self.proc, area)
        return self.thread.engine.now - timed_start

    def _replay_syscalls(self) -> Generator:
        """Replay the iteration's kernel crossings (timed region).

        The functional run interleaves host calls with compute, but the
        replay charges them back-to-back after the compute phase: WASI
        crossings never touch the VMA tree, so their *placement* inside
        the iteration cannot change lock contention — only their total
        time matters, and batching keeps the event count bounded.
        """
        for batch in self.plan.syscalls:
            yield from self.kernel.sys_wasi_batch(
                self.thread, self.proc, batch.name, batch.calls,
                batch.nbytes, batch.seconds, batch.per_call,
            )

    # ------------------------------------------------------------------
    def _compute_with_faults(self, area) -> Generator:
        plan = self.plan
        pages = plan.touched_pages - len(area.populated)
        if pages <= 0:  # nothing to fault (defensive; resets zap)
            yield from self._run_compute(plan.compute_seconds)
            return
        # Batches align to THP granularity (512 pages: one huge-page
        # fault each) and are capped in number: faults take the *read*
        # side of mmap_lock, so coarser batching does not change the
        # contention structure, only the event count.
        batch_pages = max(512, math.ceil(pages / 256))
        batches = math.ceil(pages / batch_pages)
        fault_span = plan.compute_seconds * FAULT_PHASE_FRACTION
        chunk = fault_span / batches if batches else 0.0
        uffd = (not plan.native) and plan.strategy.fault_mechanism == "uffd"
        offset = len(area.populated) * PAGE_SIZE
        for index in range(batches):
            count = min(batch_pages, pages - index * batch_pages)
            length = count * PAGE_SIZE
            if uffd:
                # The SIGBUS handler populates 2 MiB per fault (§2.3.1:
                # "the faulted page, or a larger range of pages").
                yield from self.kernel.fault_uffd_batch(
                    self.thread, self.proc, area, offset, length,
                    range_pages=512,
                )
            else:
                yield from self.kernel.fault_anon_batch(
                    self.thread, self.proc, area, offset, length, thp=True
                )
            offset += length
            yield from self._run_compute(chunk)
        yield from self._run_compute(
            plan.compute_seconds * (1.0 - FAULT_PHASE_FRACTION)
        )
