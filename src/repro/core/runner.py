"""Deprecated sweep runner — superseded by :mod:`repro.api`.

This module used to own the sweep grid machinery; everything moved to
the :mod:`repro.api` facade (``SweepSpec`` + ``run``/``measure``).
The names below re-export from there so existing imports keep working;
:func:`run_sweep` itself is a deprecated shim that forwards to
:func:`repro.api.run` (identical rows, byte for byte).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import (  # noqa: F401  (re-exports for legacy imports)
    FIELDS,
    ROW_SCHEMA,
    SweepSpec,
    row_from,
    to_csv,
)
from repro.core.engine import MeasurementEngine

__all__ = [
    "FIELDS", "ROW_SCHEMA", "SweepSpec", "row_from", "run_sweep", "to_csv",
]


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
    engine: Optional[MeasurementEngine] = None,
) -> List[Dict[str, object]]:
    """Deprecated: use :func:`repro.api.run`."""
    warnings.warn(
        "repro.core.runner.run_sweep is deprecated; use repro.api.run",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run(spec, progress=progress, engine=engine)
