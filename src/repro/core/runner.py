"""Sweep runner: drive grids of benchmark configurations.

The figure experiments hard-code the paper's grids; this module is the
general tool underneath for ad-hoc studies ("what does `trap` cost on
Armv8 at 4 threads across the stencils?").  It expands a
:class:`SweepSpec` into valid configurations (skipping the
backend/strategy combinations §3.2/§3.4 rule out), runs them through
the measurement engine (parallel and cached — see
:mod:`repro.core.engine`), and exports rows as dicts or CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.engine import (
    MeasurementEngine,
    MeasurementRequest,
    MeasurementResult,
    default_engine,
)
from repro.cpu.machine import MACHINE_SPECS
from repro.runtimes import runtime_named
from repro.trace.events import SWEEP_GRID
from repro.trace.tracer import TRACE

#: Row schema: column name → extractor over a MeasurementResult.  CSV
#: columns derive from this single table, so adding a column here is
#: the whole change.
ROW_SCHEMA: Dict[str, Callable[[MeasurementResult], object]] = {
    "workload": lambda r: r.measurement.workload,
    "runtime": lambda r: r.measurement.runtime,
    "strategy": lambda r: r.measurement.strategy,
    "isa": lambda r: r.measurement.isa,
    "threads": lambda r: r.measurement.threads,
    "median_ms": lambda r: r.measurement.median_iteration * 1e3,
    "utilisation_percent": lambda r: r.measurement.utilisation.utilisation_percent,
    "ctx_per_sec": lambda r: r.measurement.utilisation.context_switches_per_sec,
    "mem_avg_mib": lambda r: r.measurement.mem_avg_bytes / (1 << 20),
    "mmap_write_wait_ms": lambda r: r.measurement.mmap_write_wait * 1e3,
    "cache_hit": lambda r: int(r.cache_hit),
    "elapsed_s": lambda r: round(r.elapsed, 6),
}

#: The columns a sweep row always carries (derived, not hand-kept).
FIELDS = list(ROW_SCHEMA)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of configurations to run."""

    workloads: Sequence[str]
    runtimes: Sequence[str]
    strategies: Sequence[str]
    isas: Sequence[str] = ("x86_64",)
    threads: Sequence[int] = (1,)
    size: str = "small"
    iterations: int = 3

    def configurations(self) -> Iterator[tuple]:
        """Valid (runtime, strategy, isa, threads) combinations."""
        for isa in self.isas:
            cores = MACHINE_SPECS[isa].cores
            for runtime in self.runtimes:
                model = runtime_named(runtime)
                if not model.supports(isa):
                    continue
                for strategy in self.strategies:
                    if strategy not in model.strategies:
                        continue
                    for threads in self.threads:
                        if threads <= cores:
                            yield (runtime, strategy, isa, threads)

    def requests(self) -> List[MeasurementRequest]:
        """The full grid, workloads outermost.

        Workload-major order keeps every configuration of one module
        adjacent, so the engine's profile/compile caches are warmed
        once per workload instead of being cycled through the whole
        workload set per configuration.
        """
        return [
            MeasurementRequest(
                workload, runtime, strategy, isa,
                threads=threads, size=self.size, iterations=self.iterations,
            )
            for workload in self.workloads
            for runtime, strategy, isa, threads in self.configurations()
        ]


def row_from(result: MeasurementResult) -> Dict[str, object]:
    return {name: extract(result) for name, extract in ROW_SCHEMA.items()}


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
    engine: Optional[MeasurementEngine] = None,
) -> List[Dict[str, object]]:
    """Run every valid configuration × workload; returns result rows."""
    engine = engine if engine is not None else default_engine()
    requests = spec.requests()
    if TRACE.enabled:
        TRACE.emit(0.0, SWEEP_GRID, requests=len(requests))
    results = engine.run(requests, progress=progress)
    return [row_from(result) for result in results]


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render sweep rows as CSV text.

    Columns are the schema-derived :data:`FIELDS` plus, appended in
    sorted order, any extra keys present in the rows — nothing a row
    carries is silently dropped.
    """
    extras = sorted(
        {key for row in rows for key in row} - set(FIELDS)
    )
    fieldnames = FIELDS + extras
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in fieldnames})
    return buffer.getvalue()
