"""Sweep runner: drive grids of benchmark configurations.

The figure experiments hard-code the paper's grids; this module is the
general tool underneath for ad-hoc studies ("what does `trap` cost on
Armv8 at 4 threads across the stencils?").  It expands a
:class:`SweepSpec` into valid configurations (skipping the
backend/strategy combinations §3.2/§3.4 rule out), runs them through
the harness, and exports rows as dicts or CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.harness import RunMeasurement, run_benchmark
from repro.cpu.machine import MACHINE_SPECS
from repro.runtimes import runtime_named

#: The columns a sweep row always carries.
FIELDS = [
    "workload", "runtime", "strategy", "isa", "threads",
    "median_ms", "utilisation_percent", "ctx_per_sec",
    "mem_avg_mib", "mmap_write_wait_ms",
]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of configurations to run."""

    workloads: Sequence[str]
    runtimes: Sequence[str]
    strategies: Sequence[str]
    isas: Sequence[str] = ("x86_64",)
    threads: Sequence[int] = (1,)
    size: str = "small"
    iterations: int = 3

    def configurations(self) -> Iterator[tuple]:
        """Valid (runtime, strategy, isa, threads) combinations."""
        for isa in self.isas:
            cores = MACHINE_SPECS[isa].cores
            for runtime in self.runtimes:
                model = runtime_named(runtime)
                if not model.supports(isa):
                    continue
                for strategy in self.strategies:
                    if strategy not in model.strategies:
                        continue
                    for threads in self.threads:
                        if threads <= cores:
                            yield (runtime, strategy, isa, threads)


def row_from(measurement: RunMeasurement) -> Dict[str, object]:
    return {
        "workload": measurement.workload,
        "runtime": measurement.runtime,
        "strategy": measurement.strategy,
        "isa": measurement.isa,
        "threads": measurement.threads,
        "median_ms": measurement.median_iteration * 1e3,
        "utilisation_percent": measurement.utilisation.utilisation_percent,
        "ctx_per_sec": measurement.utilisation.context_switches_per_sec,
        "mem_avg_mib": measurement.mem_avg_bytes / (1 << 20),
        "mmap_write_wait_ms": measurement.mmap_write_wait * 1e3,
    }


def run_sweep(
    spec: SweepSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Run every valid configuration × workload; returns result rows."""
    rows: List[Dict[str, object]] = []
    for runtime, strategy, isa, threads in spec.configurations():
        for workload in spec.workloads:
            if progress is not None:
                progress(f"{workload} {runtime}/{strategy}/{isa}/t{threads}")
            measurement = run_benchmark(
                workload, runtime, strategy, isa,
                threads=threads, size=spec.size, iterations=spec.iterations,
            )
            rows.append(row_from(measurement))
    return rows


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render sweep rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in FIELDS})
    return buffer.getvalue()
