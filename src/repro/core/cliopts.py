"""Shared CLI flags for everything that runs measurement sweeps.

Every experiment, the diffcheck harness and ``trace record`` take the
same engine knobs (``--jobs/--no-cache/--cache-dir``) plus the global
``--no-bce`` toggle.  They used to re-declare the engine flags
individually (so defaults and help text could drift); now they all
attach this module's argparse *parent*::

    parser = argparse.ArgumentParser(parents=[cliopts.sweep_parent()])
    ...
    args = parser.parse_args(argv)
    engine = cliopts.configure_sweep(args)

:func:`configure_sweep` applies the parsed knobs to the process-wide
measurement engine (and the BCE toggle) and returns the engine.
"""

from __future__ import annotations

import argparse
from typing import Optional


def _jobs_arg(value: str):
    """``--jobs`` accepts an int or "auto" (argparse type callback)."""
    if value == "auto":
        return "auto"
    return int(value)


def add_sweep_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sweep flags to an existing parser."""
    group = parser.add_argument_group("measurement engine")
    group.add_argument(
        "--jobs", type=_jobs_arg, default="auto", metavar="N",
        help="worker processes for the sweep, or 'auto' to size to the "
        "machine with a serial fallback for single-CPU hosts and small "
        "grids (default: auto)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the measurement cache",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache base directory (default: .cache/)",
    )
    group.add_argument(
        "--no-bce", action="store_true",
        help="disable the compiler's bounds-check elimination pass "
        "(cost-only: outputs are identical, clamp/trap get slower)",
    )


def sweep_parent() -> argparse.ArgumentParser:
    """A fresh parent parser carrying the shared sweep flags.

    Built per call (argparse parents share action objects, so a module
    singleton would couple every consumer's parser state).
    """
    parent = argparse.ArgumentParser(add_help=False)
    add_sweep_args(parent)
    return parent


def configure_sweep(args: argparse.Namespace):
    """Apply parsed sweep flags process-wide; returns the engine.

    Order matters: the BCE toggle resets the default engine (stale
    calibration memo + warm pool), so it runs before the engine is
    (re)configured from the remaining flags.
    """
    from repro.core.engine import configure
    from repro.runtimes import set_bce_enabled

    set_bce_enabled(not getattr(args, "no_bce", False))
    return configure(
        jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir
    )
