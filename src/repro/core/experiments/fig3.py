"""Figure 3 — performance scaling with 1, 4 and 16 threads.

The paper runs multiple benchmark copies pinned to separate cores
(SPEC-Rate style) and plots how per-copy performance degrades as the
machine fills.  The headline effect: the ``mprotect`` strategy scales
poorly on short-running PolyBench benchmarks because every
resize/teardown serialises on the exclusive ``mmap_lock``; V8 also
struggles at 16 threads because its helper threads and GC compete with
the pinned workers.

Series: per (runtime, strategy), geomean over benchmarks of
``median_iteration(T) / median_iteration(1)`` for T in {1, 4, 16}.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    configs_for_isa,
    save_results,
    suite_names,
)
from repro.reporting import render_table
from repro.stats import geomean

THREAD_STEPS = (1, 4, 16)


def run(
    isa: str = "x86_64",
    size: str = "small",
    quick: bool = True,
    suites: tuple = ("polybench", "spec"),
    verbose: bool = False,
) -> List[dict]:
    rows: List[dict] = []
    for suite in suites:
        workloads = suite_names(suite, quick)
        for runtime, strategy in configs_for_isa(isa):
            base: Dict[str, float] = {}
            for threads in THREAD_STEPS:
                measured = api.measure(
                    api.SweepSpec(
                        workloads, runtimes=(runtime,), strategies=(strategy,),
                        isas=(isa,), threads=(threads,), size=size,
                    ),
                    strict=True, verbose=verbose,
                ).medians()
                if threads == 1:
                    base = measured
                slowdown = geomean(
                    measured[name] / base[name] for name in workloads
                )
                rows.append(
                    {
                        "isa": isa,
                        "suite": suite,
                        "runtime": runtime,
                        "strategy": strategy,
                        "threads": threads,
                        "slowdown_vs_1t": slowdown,
                    }
                )
    return rows


def render(rows: List[dict]) -> str:
    blocks = []
    for suite in sorted({r["suite"] for r in rows}):
        suite_rows = [r for r in rows if r["suite"] == suite]
        combos = sorted({(r["runtime"], r["strategy"]) for r in suite_rows})
        table_rows = []
        for runtime, strategy in combos:
            cells = [runtime, strategy]
            for threads in THREAD_STEPS:
                match = [
                    r for r in suite_rows
                    if r["runtime"] == runtime
                    and r["strategy"] == strategy
                    and r["threads"] == threads
                ]
                cells.append(match[0]["slowdown_vs_1t"] if match else "-")
            table_rows.append(cells)
        blocks.append(
            render_table(
                ["runtime", "strategy"] + [f"t={t}" for t in THREAD_STEPS],
                table_rows,
                title=f"Fig. 3 ({suite}) — per-copy slowdown vs 1 thread",
            )
        )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="x86_64", choices=["x86_64", "armv8"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results(f"fig3-{args.isa}", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
