"""Figure 6 — average memory usage.

The paper measures total-minus-MemAvailable and finds no significant
difference between runtimes or strategies, but notes the PolyBench
suite *appears* to use far more memory on x86-64 than Armv8 because
transparent huge pages back the Wasm reservations at much coarser
granularity there (§4.3).  The series below reproduce both shapes:
strategy-insensitivity within an ISA and the cross-ISA THP gap.
"""

from __future__ import annotations

import argparse
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    configs_for_isa,
    save_results,
    suite_names,
)
from repro.reporting import render_table


def run(
    isa: str = "x86_64",
    size: str = "small",
    quick: bool = True,
    suites: tuple = ("polybench", "spec"),
    threads: int = 16,
    verbose: bool = False,
) -> List[dict]:
    rows: List[dict] = []
    for suite in suites:
        workloads = suite_names(suite, quick)
        for runtime, strategy in configs_for_isa(isa):
            measurements = api.measure(
                api.SweepSpec(
                    workloads, runtimes=(runtime,), strategies=(strategy,),
                    isas=(isa,), threads=(threads,), size=size,
                ),
                strict=True, verbose=verbose,
            ).per_workload()
            average = sum(m.mem_avg_bytes for m in measurements.values()) / len(
                measurements
            )
            rows.append(
                {
                    "isa": isa,
                    "suite": suite,
                    "runtime": runtime,
                    "strategy": strategy,
                    "threads": threads,
                    "mem_avg_mib": average / (1 << 20),
                }
            )
    return rows


def render(rows: List[dict]) -> str:
    blocks = []
    for suite in sorted({r["suite"] for r in rows}):
        subset = [r for r in rows if r["suite"] == suite]
        blocks.append(
            render_table(
                ["runtime", "strategy", "avg MiB"],
                [(r["runtime"], r["strategy"], r["mem_avg_mib"]) for r in subset],
                title=f"Fig. 6 ({subset[0]['isa']}, {suite}) — average memory usage",
            )
        )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="x86_64", choices=["x86_64", "armv8"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results(f"fig6-{args.isa}", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
