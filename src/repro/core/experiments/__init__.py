"""Experiment harness: one module per figure of the paper's evaluation.

=========================  ==========================================
module                     paper artefact
=========================  ==========================================
``fig1``                   Fig. 1 — per-benchmark cost of bounds
                           checking in V8 on x86-64
``fig2``                   Fig. 2a/b/c — geomean vs native Clang for
                           every runtime × strategy, per ISA
``fig3``                   Fig. 3a/b — scaling at 1/4/16 threads
``fig4``                   Fig. 4a-d — average CPU utilisation
``fig5``                   Fig. 5a/b — context switches per second
``fig6``                   Fig. 6a/b — average memory usage
``fig_bce``                extension — bounds-check elimination
                           effect on the inline-check strategies
``replication``            §4.4 — replication of prior results
=========================  ==========================================

Each module exposes ``run(...) -> rows`` and a ``main()`` that prints
the figure's series and writes ``results/<figN>.json``.
"""
