"""fig-wasi — the syscall-bound scenario axis across bounds strategies.

The paper's evaluation (and fig1–fig6 here) is compute-bound: every
byte the benchmark touches sits in its own linear memory, so the
bounds-check strategy is the whole story.  WASI-family workloads add
the second axis real deployments live on: a steady stream of kernel
crossings (fd reads/writes, clock, randomness, polls) whose cost is
*strategy-independent* — a syscall's user→kernel transition prices the
same whether loads are clamped, trapped or tag-checked.

Two observables per cell:

* the familiar strategy deltas, now diluted by the syscall tax — the
  ``syscall_share`` column makes the dilution explicit (share of the
  median iteration spent crossing the kernel);
* per-syscall log2 latency histograms from one traced run per
  workload (:mod:`repro.trace.histogram`, eBPF style), committed with
  the rows so the latency distribution is inspectable without rerunning.

Strategy rows cover all seven (paper's five + mte/wasm64), which is
why the default ISA is armv8 — the only modelled core with MTE.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import save_results
from repro.core.harness import run_benchmark
from repro.reporting import render_table
from repro.runtime.strategies import STRATEGY_ORDER
from repro.trace.histogram import (
    histograms_to_json,
    latency_histograms,
    render_histograms,
)
from repro.trace.tracer import tracing

WORKLOADS = ("wasi-grep", "wasi-checksum", "wasi-montecarlo", "wasi-logappend")

RUNTIME = "wavm"

THREAD_STEPS = (1, 4)

#: Strategy used for the traced histogram runs; the per-call latency
#: model has no strategy term, so any one works — "none" keeps the
#: trace free of mprotect noise.
_TRACE_STRATEGY = "none"


def run(
    isa: str = "armv8",
    size: str = "small",
    thread_steps: tuple = THREAD_STEPS,
    verbose: bool = False,
) -> dict:
    swept = api.measure(
        api.SweepSpec(
            WORKLOADS,
            runtimes=(RUNTIME,),
            strategies=tuple(STRATEGY_ORDER),
            isas=(isa,),
            threads=tuple(thread_steps),
            size=size,
            scenario="wasi",
        ),
        verbose=verbose,
    )
    rows: List[dict] = []
    for m in swept.measurements:
        syscall_calls = sum(
            int(entry["calls"]) for entry in m.syscall_stats.values()
        )
        rows.append(
            {
                "isa": isa,
                "runtime": RUNTIME,
                "workload": m.workload,
                "strategy": m.strategy,
                "threads": m.threads,
                "median_ms": m.median_iteration * 1e3,
                "syscall_ms": m.syscall_seconds * 1e3,
                "syscall_share": m.syscall_seconds / m.median_iteration,
                "syscall_calls": syscall_calls,
                "wasi_calls": m.kernel_stats.get("wasi_calls", 0),
                "wasi_bytes": m.kernel_stats.get("wasi_bytes", 0),
                "utilisation_percent": m.utilisation.utilisation_percent,
                "mmap_write_wait_ms": m.mmap_write_wait * 1e3,
            }
        )

    # One traced run per workload feeds the latency histograms; the
    # per-call latency model carries no strategy term, so a single
    # strategy's trace speaks for the whole grid.
    histograms: Dict[str, dict] = {}
    for workload in WORKLOADS:
        with tracing() as sink:
            run_benchmark(
                workload, RUNTIME, _TRACE_STRATEGY, isa,
                threads=1, size=size, iterations=2, warmup=1,
            )
        histograms[workload] = histograms_to_json(
            latency_histograms(sink.events)
        )
    return {"rows": rows, "histograms": histograms}


def render(payload: dict) -> str:
    rows = payload["rows"]
    blocks = []
    for threads in sorted({r["threads"] for r in rows}):
        subset = [r for r in rows if r["threads"] == threads]
        blocks.append(
            render_table(
                ["workload", "strategy", "median ms", "syscall ms",
                 "syscall share", "wasi calls", "util %"],
                [
                    (r["workload"], r["strategy"], r["median_ms"],
                     r["syscall_ms"], r["syscall_share"],
                     r["wasi_calls"], r["utilisation_percent"])
                    for r in subset
                ],
                title=(
                    f"fig-wasi ({subset[0]['isa']}, {threads} thread(s)) — "
                    "syscall-bound scenarios across bounds strategies"
                ),
            )
        )
    for workload, table in payload["histograms"].items():
        restored = {
            name: {
                "calls": entry["calls"],
                "bytes": entry["bytes"],
                "seconds": entry["seconds"],
                "buckets": {
                    int(bucket): count
                    for bucket, count in entry["buckets"].items()
                },
            }
            for name, entry in table.items()
        }
        blocks.append(
            f"{workload} — per-syscall latency (log2 ns buckets):\n"
            + render_histograms(restored)
        )
    return "\n\n".join(blocks)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="armv8", choices=["armv8", "x86_64"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    payload = run(isa=args.isa, size=args.size, verbose=args.verbose)
    print(render(payload))
    path = save_results(f"fig-wasi-{args.isa}", payload)
    print(f"\nsaved {path}")
    return payload


if __name__ == "__main__":
    main()
