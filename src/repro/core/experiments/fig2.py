"""Figure 2 — geomean execution time vs native Clang, per ISA.

For each ISA the paper plots, per runtime × bounds-checking strategy,
the geometric mean of per-benchmark median-time ratios against the
native Clang baseline (Fleming & Wallace), with PolyBench and SPEC
kept separate.  RISC-V (Fig. 2c) has only Native, Wasm3 and V8, and
only PolyBench (§3.4).
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    BASELINE,
    configs_for_isa,
    save_results,
    suite_names,
)
from repro.reporting import render_bars
from repro.stats import geomean_of_ratios

#: Suites per ISA: the 1 GiB RISC-V board cannot run SPEC (§3.4).
SUITES_BY_ISA = {
    "x86_64": ("polybench", "spec"),
    "armv8": ("polybench", "spec"),
    "riscv64": ("polybench",),
}


def run(
    isa: str, size: str = "small", quick: bool = True, verbose: bool = False
) -> List[dict]:
    rows: List[dict] = []
    for suite in SUITES_BY_ISA[isa]:
        workloads = suite_names(suite, quick)
        baseline = api.measure(
            api.SweepSpec(
                workloads, runtimes=(BASELINE,), strategies=("none",),
                isas=(isa,), size=size,
            ),
            strict=True, verbose=verbose,
        ).medians()
        for runtime, strategy in configs_for_isa(isa):
            measured = api.measure(
                api.SweepSpec(
                    workloads, runtimes=(runtime,), strategies=(strategy,),
                    isas=(isa,), size=size,
                ),
                strict=True, verbose=verbose,
            ).medians()
            rows.append(
                {
                    "isa": isa,
                    "suite": suite,
                    "runtime": runtime,
                    "strategy": strategy,
                    "geomean_vs_native": geomean_of_ratios(measured, baseline),
                }
            )
    return rows


def render(rows: List[dict], isa: str) -> str:
    blocks = []
    for suite in SUITES_BY_ISA[isa]:
        suite_rows = [r for r in rows if r["suite"] == suite]
        labels = [f"{r['runtime']}/{r['strategy']}" for r in suite_rows]
        values = [r["geomean_vs_native"] for r in suite_rows]
        blocks.append(
            render_bars(
                labels,
                values,
                title=f"Fig. 2 ({isa}, {suite}) — geomean time vs native Clang",
                unit="x",
                reference=1.0,
            )
        )
    return "\n\n".join(blocks)


def main(argv=None) -> Dict[str, List[dict]]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument(
        "--isa", default="all", choices=["x86_64", "armv8", "riscv64", "all"]
    )
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    isas = list(SUITES_BY_ISA) if args.isa == "all" else [args.isa]
    all_rows: Dict[str, List[dict]] = {}
    for isa in isas:
        rows = run(isa, size=args.size, quick=not args.full, verbose=args.verbose)
        all_rows[isa] = rows
        print(render(rows, isa))
        print()
    path = save_results("fig2", all_rows)
    print(f"saved {path}")
    return all_rows


if __name__ == "__main__":
    main()
