"""Figure BCE — what bounds-check elimination buys each compiler.

The optimising runtimes do not pay for every static bounds check the
wasm module implies: TurboFan and WAVM's LLVM pipeline eliminate
dominated checks, hoist loop-invariant guards and widen per-iteration
checks into a single guard per induction variable; Cranelift only
eliminates dominated checks (§2.1's spectrum of check-removal
aggressiveness).  This experiment quantifies that by re-measuring the
inline-check strategies (``clamp``/``trap``) with the pass force
disabled:

* ``median_ms`` / ``median_ms_nobce``  — measured cost with the
  compiler's BCE configuration vs with the pass off;
* ``bce_saving_pct``  — how much of the configuration's execution
  time the pass removes;
* ``checks_emitted`` / ``checks_elided``  — dynamic per-iteration
  check counters with the pass on (``elided`` counts checks the
  compiler proved redundant at the executed block counts).

Strategies without inline checks are unaffected by construction — the
diffcheck ``bce`` phase asserts they are byte-identical.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import save_results, suite_names
from repro.reporting import render_table
from repro.runtimes import bce_enabled, runtime_named, set_bce_enabled

#: Compiling runtimes only: wasm3 interprets (checks stay in the
#: dispatch loop) and the native baselines have nothing to elide.
RUNTIMES = ("wavm", "wasmtime", "v8")
STRATEGIES = ("clamp", "trap")


def _per_workload(workloads, runtime, strategy, isa, size, verbose):
    return api.measure(
        api.SweepSpec(
            workloads, runtimes=(runtime,), strategies=(strategy,),
            isas=(isa,), size=size,
        ),
        strict=True, verbose=verbose,
    ).per_workload()


def run(
    isa: str = "x86_64",
    size: str = "small",
    quick: bool = True,
    verbose: bool = False,
) -> List[dict]:
    workloads = suite_names("polybench", quick)
    rows: List[dict] = []
    was_enabled = bce_enabled()
    try:
        for runtime in RUNTIMES:
            if not runtime_named(runtime).supports(isa):
                continue
            for strategy in STRATEGIES:
                set_bce_enabled(True)
                with_bce = _per_workload(
                    workloads, runtime, strategy, isa, size, verbose
                )
                set_bce_enabled(False)
                without = _per_workload(
                    workloads, runtime, strategy, isa, size, verbose
                )
                for name in workloads:
                    on, off = with_bce[name], without[name]
                    saving = 1.0 - on.median_iteration / off.median_iteration
                    rows.append(
                        {
                            "benchmark": name,
                            "runtime": runtime,
                            "strategy": strategy,
                            "isa": isa,
                            "median_ms": on.median_iteration * 1e3,
                            "median_ms_nobce": off.median_iteration * 1e3,
                            "bce_saving_pct": 100.0 * saving,
                            "checks_emitted": on.bounds_checks.get("emitted", 0),
                            "checks_elided": on.bounds_checks.get("elided", 0),
                            "checks_emitted_nobce": off.bounds_checks.get(
                                "emitted", 0
                            ),
                        }
                    )
    finally:
        set_bce_enabled(was_enabled)
    return rows


def render(rows: List[dict], isa: str) -> str:
    blocks = []
    for runtime in RUNTIMES:
        for strategy in STRATEGIES:
            subset = [
                r for r in rows
                if r["runtime"] == runtime and r["strategy"] == strategy
            ]
            if not subset:
                continue
            blocks.append(
                render_table(
                    ["benchmark", "with BCE ms", "without ms", "saving %",
                     "emitted", "elided"],
                    [
                        (
                            r["benchmark"],
                            r["median_ms"],
                            r["median_ms_nobce"],
                            r["bce_saving_pct"],
                            r["checks_emitted"],
                            r["checks_elided"],
                        )
                        for r in subset
                    ],
                    title=(
                        f"Fig. BCE ({isa}, {runtime}/{strategy}) — "
                        "bounds-check elimination effect"
                    ),
                )
            )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="x86_64", choices=["x86_64", "armv8"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows, args.isa))
    path = save_results("fig-bce", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
