"""Shared plumbing for the figure experiments."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.engine import (
    MeasurementEngine,
    MeasurementRequest,
    add_engine_args,
    configure_from_args,
    default_engine,
)
from repro.core.harness import RunMeasurement
from repro.runtime.strategies import STRATEGY_ORDER
from repro.runtimes import RUNTIMES, runtime_named
from repro.workloads import suite_workloads

#: Representative subsets for the system-level (multi-thread) figures:
#: they span long/short iterations, float/integer kernels, and the
#: memory-intensity range — chosen so the contention effects the paper
#: reports on "short-running benchmarks" are represented.
PBC_QUICK = [
    "gemm", "2mm", "atax", "trisolv", "jacobi-2d",
    "cholesky", "floyd-warshall", "deriche",
]
SPEC_QUICK = ["505.mcf", "519.lbm", "557.xz"]

#: Runtime rows in the paper's presentation order (Fig. 2).
RUNTIME_ORDER = ["native-gcc", "wavm", "wasmtime", "v8", "wasm3"]
BASELINE = "native-clang"


def suite_names(suite: str, quick: bool) -> List[str]:
    if quick:
        return list(PBC_QUICK if suite == "polybench" else SPEC_QUICK)
    return [w.name for w in suite_workloads(suite)]


def configs_for_isa(isa: str) -> List[tuple]:
    """(runtime, strategy) combinations available on an ISA (§3.2/3.4)."""
    combos = []
    for runtime in RUNTIME_ORDER:
        model = runtime_named(runtime)
        if not model.supports(isa):
            continue
        for strategy in STRATEGY_ORDER:
            if strategy in model.strategies:
                combos.append((runtime, strategy))
    return combos


def measure(
    workloads: Sequence[str],
    runtime: str,
    strategy: str,
    isa: str,
    threads: int = 1,
    size: str = "small",
    iterations: int = 3,
    verbose: bool = False,
    engine: Optional[MeasurementEngine] = None,
) -> Dict[str, RunMeasurement]:
    """Run a set of workloads under one configuration.

    Execution goes through the measurement engine (``--jobs`` fan-out,
    content-addressed result cache), so a figure that repeats another
    figure's grid — fig4/fig5/fig6 re-walk fig3's thread sweep — pays
    only cache reads.
    """
    engine = engine if engine is not None else default_engine()
    requests = [
        MeasurementRequest(
            name, runtime, strategy, isa,
            threads=threads, size=size, iterations=iterations,
        )
        for name in workloads
    ]
    results = engine.run(requests)
    out: Dict[str, RunMeasurement] = {}
    for request, result in zip(requests, results):
        out[request.workload] = result.measurement
        if verbose:
            origin = "cache" if result.cache_hit else f"{result.elapsed:.1f}s"
            print(
                f"    {request.workload:16s} {runtime}/{strategy}/{isa}/t{threads}: "
                f"{result.measurement.median_iteration * 1e3:.3f} ms "
                f"[{origin}]"
            )
    return out


def medians(measurements: Dict[str, RunMeasurement]) -> Dict[str, float]:
    return {name: m.median_iteration for name, m in measurements.items()}


def results_dir() -> Path:
    root = os.environ.get("REPRO_RESULTS_DIR", "results")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_results(name: str, payload: object) -> Path:
    path = results_dir() / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
