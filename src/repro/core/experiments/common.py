"""Shared plumbing for the figure experiments."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import warnings

from repro.core.engine import MeasurementEngine
from repro.core.harness import RunMeasurement
from repro.runtime.strategies import PAPER_STRATEGY_ORDER
from repro.runtimes import RUNTIMES, runtime_named
from repro.workloads import suite_workloads

#: Representative subsets for the system-level (multi-thread) figures:
#: they span long/short iterations, float/integer kernels, and the
#: memory-intensity range — chosen so the contention effects the paper
#: reports on "short-running benchmarks" are represented.
PBC_QUICK = [
    "gemm", "2mm", "atax", "trisolv", "jacobi-2d",
    "cholesky", "floyd-warshall", "deriche",
]
SPEC_QUICK = ["505.mcf", "519.lbm", "557.xz"]

#: Runtime rows in the paper's presentation order (Fig. 2).
RUNTIME_ORDER = ["native-gcc", "wavm", "wasmtime", "v8", "wasm3"]
BASELINE = "native-clang"


def suite_names(suite: str, quick: bool) -> List[str]:
    if quick:
        return list(PBC_QUICK if suite == "polybench" else SPEC_QUICK)
    return [w.name for w in suite_workloads(suite)]


def configs_for_isa(isa: str) -> List[tuple]:
    """(runtime, strategy) combinations available on an ISA (§3.2/3.4)."""
    combos = []
    for runtime in RUNTIME_ORDER:
        model = runtime_named(runtime)
        if not model.supports(isa):
            continue
        # The paper's five strategies only: fig2–fig6 reproduce the
        # published grids, so the hardware-assisted extensions (mte,
        # wasm64) stay out of them — fig-cage covers those.
        for strategy in PAPER_STRATEGY_ORDER:
            if strategy in model.strategies:
                combos.append((runtime, strategy))
    return combos


def measure(
    workloads: Sequence[str],
    runtime: str,
    strategy: str,
    isa: str,
    threads: int = 1,
    size: str = "small",
    iterations: int = 3,
    verbose: bool = False,
    engine: Optional[MeasurementEngine] = None,
) -> Dict[str, RunMeasurement]:
    """Deprecated: use :func:`repro.api.measure` with a ``SweepSpec``.

    ``strict=True`` preserves this function's historical behaviour of
    raising ValueError on unsupported runtime/ISA/strategy/thread
    combinations (the facade's default is to skip them).
    """
    warnings.warn(
        "repro.core.experiments.common.measure is deprecated; use "
        "repro.api.measure(SweepSpec(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    swept = api.measure(
        api.SweepSpec(
            workloads=tuple(workloads),
            runtimes=(runtime,),
            strategies=(strategy,),
            isas=(isa,),
            threads=(threads,),
            size=size,
            iterations=iterations,
        ),
        engine=engine,
        strict=True,
        verbose=verbose,
    )
    return swept.per_workload()


def medians(measurements: Dict[str, RunMeasurement]) -> Dict[str, float]:
    return {name: m.median_iteration for name, m in measurements.items()}


def results_dir() -> Path:
    root = os.environ.get("REPRO_RESULTS_DIR", "results")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_results(name: str, payload: object) -> Path:
    path = results_dir() / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
