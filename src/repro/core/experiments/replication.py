"""Section 4.4 — replicating previous results.

The paper cross-checks its measurements against three earlier studies;
this experiment regenerates the same comparisons from our models:

* **Titzer [29] / paper §4.4** — Wasm3 is 6-11x slower than
  V8-TurboFan on PolyBench, depending on ISA;
* **Rossberg et al. [25]** — on V8, "seven benchmarks within 10 % of
  native and nearly all of them within 2x of native";
* **Jangda et al. [12]** — SPEC on V8 is ~1.55x native (the paper
  itself measures 1.69x on x86-64 and 1.76x on Armv8).
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    save_results,
    suite_names,
)
from repro.reporting import render_table
from repro.stats import geomean_of_ratios


def _medians(workloads, runtime, strategy, isa, size, verbose):
    return api.measure(
        api.SweepSpec(
            workloads, runtimes=(runtime,), strategies=(strategy,),
            isas=(isa,), size=size,
        ),
        strict=True, verbose=verbose,
    ).medians()


def run(size: str = "small", quick: bool = True, verbose: bool = False) -> List[dict]:
    rows: List[dict] = []
    pbc = suite_names("polybench", quick)
    spec = suite_names("spec", quick)

    # Wasm3 vs V8-TurboFan on PolyBench, per ISA (default strategies).
    for isa in ("x86_64", "armv8", "riscv64"):
        v8 = _medians(pbc, "v8", "mprotect", isa, size, verbose)
        wasm3 = _medians(pbc, "wasm3", "trap", isa, size, verbose)
        rows.append(
            {
                "claim": f"wasm3-vs-v8-{isa}",
                "paper": "6x-11x (depending on ISA)",
                "measured": round(geomean_of_ratios(wasm3, v8), 2),
            }
        )

    # Rossberg: per-benchmark V8 vs native on PolyBench (x86-64).
    native = _medians(pbc, "native-clang", "none", "x86_64", size, verbose)
    v8 = _medians(pbc, "v8", "mprotect", "x86_64", size, verbose)
    ratios = {name: v8[name] / native[name] for name in pbc}
    within_10pct = sum(1 for r in ratios.values() if r <= 1.10)
    within_2x = sum(1 for r in ratios.values() if r <= 2.0)
    rows.append(
        {
            "claim": "rossberg-within-10pct",
            "paper": "7 benchmarks within 10% of native",
            "measured": f"{within_10pct}/{len(ratios)} benchmarks",
        }
    )
    rows.append(
        {
            "claim": "rossberg-within-2x",
            "paper": "nearly all within 2x of native",
            "measured": f"{within_2x}/{len(ratios)} benchmarks",
        }
    )

    # Jangda: SPEC V8 slowdown vs native, x86-64 and Armv8.
    for isa, paper_value in (("x86_64", "1.69x"), ("armv8", "1.76x")):
        native = _medians(spec, "native-clang", "none", isa, size, verbose)
        v8 = _medians(spec, "v8", "mprotect", isa, size, verbose)
        rows.append(
            {
                "claim": f"jangda-spec-v8-{isa}",
                "paper": paper_value + " (paper's own measurement)",
                "measured": f"{geomean_of_ratios(v8, native):.2f}x",
            }
        )

    # Headline §1.3: WAVM overhead on x86-64.
    pbc_native = _medians(pbc, "native-clang", "none", "x86_64", size, verbose)
    wavm = _medians(pbc, "wavm", "mprotect", "x86_64", size, verbose)
    rows.append(
        {
            "claim": "wavm-overhead-x86",
            "paper": "8-20% average overhead vs native",
            "measured": f"{(geomean_of_ratios(wavm, pbc_native) - 1) * 100:.0f}%",
        }
    )
    return rows


def render(rows: List[dict]) -> str:
    return render_table(
        ["claim", "paper", "measured (this reproduction)"],
        [(r["claim"], r["paper"], r["measured"]) for r in rows],
        title="§4.4 replication of previous results",
    )


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results("replication", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
