"""fig-cage — hardware-assisted bounds strategies under thread scaling.

Beyond the paper's five-strategy axis, this experiment puts the two
hardware-assisted extensions next to them on Armv8 (the only modelled
ISA with the MTE tagging extension):

* ``mte`` — CAGE-style Arm MTE tag checking: the bounds check rides
  the load/store pipe (one TAGCHECK op per access) and ``memory.grow``
  retags the new 16-byte granules in userspace, with **no** mprotect
  calls and no mmap_lock traffic;
* ``wasm64`` — the eWAPA 64-bit-memory regime: no guard region can
  cover a 64-bit index space, so explicit per-access checks are
  mandatory and BCE's pooled affine guard is illegal.

The headline shape this reproduces: at one thread ``mte`` sits between
the fault-based strategies and the explicit-check strategies (a tag
check is cheaper than a compare+branch), and under thread scaling it
stays flat where ``mprotect`` collapses — retagging is per-thread
userspace work, so the mmap_lock convoy the paper blames for the
mprotect cliff (§4.2) never forms.  ``wasm64`` tracks ``trap``/``clamp``:
it pays explicit-check costs plus the checks BCE could no longer pool.
"""

from __future__ import annotations

import argparse
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import save_results
from repro.reporting import render_table
from repro.runtime.strategies import STRATEGY_ORDER
from repro.stats import geomean

#: Short-iteration, memory-touching kernels — the ones the paper shows
#: are contention-sensitive, so the mprotect-vs-mte scaling gap is
#: visible rather than amortised away.
WORKLOADS = ("trisolv", "atax", "jacobi-2d")

#: One runtime keeps the grid readable; wavm is the paper's
#: best-performing compiled runtime and supports every strategy.
RUNTIME = "wavm"

THREAD_STEPS = (1, 4, 16)


def run(
    isa: str = "armv8",
    size: str = "small",
    thread_steps: tuple = THREAD_STEPS,
    verbose: bool = False,
) -> List[dict]:
    swept = api.measure(
        api.SweepSpec(
            WORKLOADS,
            runtimes=(RUNTIME,),
            strategies=tuple(STRATEGY_ORDER),
            isas=(isa,),
            threads=tuple(thread_steps),
            size=size,
        ),
        verbose=verbose,
    )
    # strategy -> workload -> threads -> measurement (non-strict grid:
    # on x86_64 the mte rows are skipped, not errors).
    grid: dict = {}
    for m in swept.measurements:
        grid.setdefault(m.strategy, {}).setdefault(m.workload, {})[m.threads] = m

    rows: List[dict] = []
    for strategy in STRATEGY_ORDER:
        per_workload = grid.get(strategy)
        if not per_workload:
            continue
        for workload, by_threads in per_workload.items():
            base = by_threads[min(by_threads)].median_iteration
            for threads, m in sorted(by_threads.items()):
                rows.append(
                    {
                        "isa": isa,
                        "runtime": RUNTIME,
                        "workload": workload,
                        "strategy": strategy,
                        "threads": threads,
                        "median_ms": m.median_iteration * 1e3,
                        "slowdown_vs_1t": m.median_iteration / base,
                        "utilisation_percent":
                            m.utilisation.utilisation_percent,
                        "mmap_write_wait_ms": m.mmap_write_wait * 1e3,
                        "mprotect_calls":
                            m.kernel_stats.get("mprotect_calls", 0),
                        "checks_emitted":
                            m.bounds_checks.get("emitted", 0),
                        "checks_elided":
                            m.bounds_checks.get("elided", 0),
                    }
                )
    return rows


def render(rows: List[dict]) -> str:
    blocks = []
    for threads in sorted({r["threads"] for r in rows}):
        subset = [r for r in rows if r["threads"] == threads]
        blocks.append(
            render_table(
                ["workload", "strategy", "median ms", "x vs 1t",
                 "util %", "mmap wait ms"],
                [
                    (r["workload"], r["strategy"], r["median_ms"],
                     r["slowdown_vs_1t"], r["utilisation_percent"],
                     r["mmap_write_wait_ms"])
                    for r in subset
                ],
                title=(
                    f"fig-cage ({subset[0]['isa']}, {threads} thread(s)) — "
                    "hardware-assisted bounds strategies"
                ),
            )
        )
    # The headline: per-strategy scaling factor, geomean across
    # workloads, worst thread count vs one thread.
    top = max(r["threads"] for r in rows)
    summary = []
    for strategy in STRATEGY_ORDER:
        finals = [
            r["slowdown_vs_1t"]
            for r in rows
            if r["strategy"] == strategy and r["threads"] == top
        ]
        if finals:
            summary.append((strategy, geomean(finals)))
    blocks.append(
        render_table(
            ["strategy", f"geomean slowdown @{top}t"],
            summary,
            title="fig-cage — thread-scaling collapse (1.0 = flat)",
        )
    )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="armv8", choices=["armv8", "x86_64"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, verbose=args.verbose)
    print(render(rows))
    path = save_results(f"fig-cage-{args.isa}", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
