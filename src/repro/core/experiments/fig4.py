"""Figure 4 — average CPU utilisation during benchmark execution.

The paper samples /proc/stat (their Equation 1, rescaled so 100 % is
one fully-busy core) for single-threaded and 16-threaded runs on
x86-64 and Armv8.  Key shapes: all runtimes saturate their cores
except V8 (helper threads push 1-thread utilisation *above* 100 %,
while GC pauses pull 16-thread utilisation below 1600 %), and the
``mprotect`` strategy fails to saturate the machine at 16 threads on
the short-running PolyBench kernels.
"""

from __future__ import annotations

import argparse
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    configs_for_isa,
    save_results,
    suite_names,
)
from repro.reporting import render_table
from repro.stats import geomean


def run(
    isa: str = "x86_64",
    size: str = "small",
    quick: bool = True,
    suites: tuple = ("polybench", "spec"),
    thread_steps: tuple = (1, 16),
    verbose: bool = False,
) -> List[dict]:
    rows: List[dict] = []
    for suite in suites:
        workloads = suite_names(suite, quick)
        for runtime, strategy in configs_for_isa(isa):
            for threads in thread_steps:
                measurements = api.measure(
                    api.SweepSpec(
                        workloads, runtimes=(runtime,), strategies=(strategy,),
                        isas=(isa,), threads=(threads,), size=size,
                    ),
                    strict=True, verbose=verbose,
                ).per_workload()
                utilisation = geomean(
                    m.utilisation.utilisation_percent
                    for m in measurements.values()
                )
                rows.append(
                    {
                        "isa": isa,
                        "suite": suite,
                        "runtime": runtime,
                        "strategy": strategy,
                        "threads": threads,
                        "utilisation_percent": utilisation,
                    }
                )
    return rows


def render(rows: List[dict]) -> str:
    blocks = []
    for suite in sorted({r["suite"] for r in rows}):
        for threads in sorted({r["threads"] for r in rows}):
            subset = [
                r for r in rows if r["suite"] == suite and r["threads"] == threads
            ]
            if not subset:
                continue
            blocks.append(
                render_table(
                    ["runtime", "strategy", "utilisation %"],
                    [
                        (r["runtime"], r["strategy"], r["utilisation_percent"])
                        for r in subset
                    ],
                    title=(
                        f"Fig. 4 ({suite}, {threads} thread(s)) — "
                        f"average CPU utilisation (100 % = one core)"
                    ),
                )
            )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="x86_64", choices=["x86_64", "armv8"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results(f"fig4-{args.isa}", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
