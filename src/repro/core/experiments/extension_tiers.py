"""Extension — the translation-time / code-size / speed triangle.

§2.2 of the paper lays out the interpreter→JIT→AOT spectrum and §5
cites Titzer [29] for "execution time, translation time and space
statistics" across engine tiers.  This extension tabulates that
trade-off for our runtime models, adding the V8 *Liftoff* baseline
tier (which Titzer compares and the paper's related work names):

* **translation time** — modelled seconds to compile the PolyBench
  modules (LLVM slowest, Cranelift ~10× faster, Liftoff near-instant,
  Wasm3's transpile effectively free);
* **code size** — static machine ops emitted (interpreters: none);
* **execution time** — geomean vs native Clang, as in Fig. 2.
"""

from __future__ import annotations

import argparse
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    BASELINE,
    save_results,
    suite_names,
)
from repro.core.profiles import profile_for
from repro.isa import isa_named
from repro.reporting import render_table
from repro.runtime import strategy_named
from repro.runtimes import runtime_named
from repro.stats import geomean_of_ratios

TIERS = ["wasm3", "v8-liftoff", "v8", "wasmtime", "wavm"]


def _medians(workloads, runtime, strategy, size, verbose):
    return api.measure(
        api.SweepSpec(
            workloads, runtimes=(runtime,), strategies=(strategy,),
            isas=("x86_64",), size=size,
        ),
        strict=True, verbose=verbose,
    ).medians()


def run(size: str = "small", quick: bool = True, verbose: bool = False) -> List[dict]:
    workloads = suite_names("polybench", quick)
    isa = isa_named("x86_64")
    baseline = _medians(workloads, BASELINE, "none", size, verbose)
    rows: List[dict] = []
    for runtime_name in TIERS:
        runtime = runtime_named(runtime_name)
        strategy = strategy_named(runtime.default_strategy)
        compile_seconds = 0.0
        code_ops = 0
        for name in workloads:
            module, _ = profile_for(name, size)
            compile_seconds += runtime.compile_seconds(module)
            code_ops += runtime.code_size_ops(module, isa, strategy)
        measured = _medians(
            workloads, runtime_name, runtime.default_strategy, size, verbose
        )
        rows.append(
            {
                "runtime": runtime_name,
                "compile_ms": compile_seconds * 1e3,
                "code_ops": code_ops,
                "geomean_vs_native": geomean_of_ratios(measured, baseline),
            }
        )
    return rows


def render(rows: List[dict]) -> str:
    return render_table(
        ["runtime", "translation ms (suite)", "machine ops", "exec vs native"],
        [
            (r["runtime"], r["compile_ms"], r["code_ops"], r["geomean_vs_native"])
            for r in rows
        ],
        title="Extension — tier trade-off (PolyBench modules, x86-64)",
    )


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results("extension-tiers", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
