"""Figure 5 — context switches per second.

The paper's findings: bounds-checking strategy barely moves the
context-switch rate *except* for the contended ``mprotect``
configuration (threads sleeping on mmap_lock), and V8 at 16 worker
threads switches an order of magnitude more than anything else because
its helper threads oversubscribe the fully-pinned machine.
"""

from __future__ import annotations

import argparse
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    configs_for_isa,
    save_results,
    suite_names,
)
from repro.reporting import render_table
from repro.stats import geomean


def run(
    isa: str = "x86_64",
    size: str = "small",
    quick: bool = True,
    suites: tuple = ("polybench", "spec"),
    thread_steps: tuple = (1, 16),
    verbose: bool = False,
) -> List[dict]:
    rows: List[dict] = []
    for suite in suites:
        workloads = suite_names(suite, quick)
        for runtime, strategy in configs_for_isa(isa):
            for threads in thread_steps:
                measurements = api.measure(
                    api.SweepSpec(
                        workloads, runtimes=(runtime,), strategies=(strategy,),
                        isas=(isa,), threads=(threads,), size=size,
                    ),
                    strict=True, verbose=verbose,
                ).per_workload()
                rate = geomean(
                    max(m.utilisation.context_switches_per_sec, 1.0)
                    for m in measurements.values()
                )
                rows.append(
                    {
                        "isa": isa,
                        "suite": suite,
                        "runtime": runtime,
                        "strategy": strategy,
                        "threads": threads,
                        "ctx_per_sec": rate,
                    }
                )
    return rows


def render(rows: List[dict]) -> str:
    blocks = []
    for suite in sorted({r["suite"] for r in rows}):
        for threads in sorted({r["threads"] for r in rows}):
            subset = [
                r for r in rows if r["suite"] == suite and r["threads"] == threads
            ]
            if not subset:
                continue
            blocks.append(
                render_table(
                    ["runtime", "strategy", "ctx/s"],
                    [
                        (r["runtime"], r["strategy"], r["ctx_per_sec"])
                        for r in subset
                    ],
                    title=f"Fig. 5 ({suite}, {threads} thread(s)) — context switches/s",
                )
            )
    return "\n\n".join(blocks)


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--isa", default="x86_64", choices=["x86_64", "armv8"])
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(isa=args.isa, size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results(f"fig5-{args.isa}", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
