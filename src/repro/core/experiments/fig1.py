"""Figure 1 — cost of bounds checking in V8-TurboFan on x86-64.

The paper's motivating figure runs PolyBench and the SPEC subset on V8
with and without bounds checking, normalised to native execution, and
observes that roughly half of PolyBench is unaffected while
memory-dense kernels pay substantially (gemm worst).

We regenerate the series per benchmark:

* ``v8-none / native``      — V8 with checks disabled;
* ``v8-mprotect / native``  — V8's default virtual-memory checks;
* ``v8-trap / native``      — V8 with explicit software checks
  (included because "bounds checking enabled" for several benchmarks
  in the paper's V8 build behaves like explicit checking);
* ``bounds overhead %``     — (default − none)/none.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    save_results,
    suite_names,
)
from repro.reporting import render_table

ISA = "x86_64"


def _medians(workloads, runtime, strategy, size, verbose):
    return api.measure(
        api.SweepSpec(
            workloads, runtimes=(runtime,), strategies=(strategy,),
            isas=(ISA,), size=size,
        ),
        strict=True, verbose=verbose,
    ).medians()


def run(size: str = "small", quick: bool = True, verbose: bool = False) -> List[dict]:
    workloads = suite_names("polybench", quick) + suite_names("spec", quick)
    native = _medians(workloads, "native-clang", "none", size, verbose)
    v8_none = _medians(workloads, "v8", "none", size, verbose)
    v8_default = _medians(workloads, "v8", "mprotect", size, verbose)
    v8_trap = _medians(workloads, "v8", "trap", size, verbose)
    rows = []
    for name in workloads:
        rows.append(
            {
                "benchmark": name,
                "v8_none_vs_native": v8_none[name] / native[name],
                "v8_default_vs_native": v8_default[name] / native[name],
                "v8_trap_vs_native": v8_trap[name] / native[name],
                "default_overhead_pct": 100.0 * (v8_default[name] / v8_none[name] - 1.0),
                "trap_overhead_pct": 100.0 * (v8_trap[name] / v8_none[name] - 1.0),
            }
        )
    return rows


def render(rows: List[dict]) -> str:
    table = render_table(
        ["benchmark", "v8-none/nat", "v8-default/nat", "v8-trap/nat",
         "default ovh %", "trap ovh %"],
        [
            (
                r["benchmark"],
                r["v8_none_vs_native"],
                r["v8_default_vs_native"],
                r["v8_trap_vs_native"],
                r["default_overhead_pct"],
                r["trap_overhead_pct"],
            )
            for r in rows
        ],
        title="Fig. 1 — V8-TurboFan bounds-checking cost on x86-64 "
              "(execution time vs native Clang)",
    )
    return table


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true", help="all 37 workloads")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results("fig1", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
