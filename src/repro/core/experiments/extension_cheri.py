"""Extension — projecting CHERI capability-based bounds checking.

§2.3 of the paper singles out CHERI as "an upcoming, promising
approach ... providing capability-checked memory accesses", but could
not evaluate it for lack of hardware.  This extension experiment adds
a sixth, *projected* strategy to the comparison matrix using the
published characteristics of CHERI implementations (Woodruff et al.
[34]; the CHERI-RISC-V/Morello literature):

* bounds/permission checks happen in the capability load/store pipe —
  **no extra instructions** and no detectable per-check latency;
* pointers become 128-bit capabilities: pointer-dense data doubles in
  size, which we model as a small per-access penalty proportional to
  the workload's access mix (capability cache-footprint tax);
* memory management needs no guard reservation, no mprotect dance and
  no userfaultfd: grow is a capability re-derivation (cheap, no
  exclusive kernel lock), so multithreaded scaling matches `uffd`.

The experiment prints the Fig. 2-style single-thread comparison with
`cheri` added, plus the 16-thread utilisation check.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import List

from repro import api
from repro.core import cliopts
from repro.core.experiments.common import (
    BASELINE,
    save_results,
    suite_names,
)
from repro.reporting import render_table
from repro.runtime import strategies as strategies_mod
from repro.runtime.strategies import BoundsStrategy
from repro.stats import geomean_of_ratios

#: The projected strategy: no inline checks, uffd-like memory
#: management (atomic grow, shared-lock reset, anonymous faults).
CHERI = BoundsStrategy(
    name="cheri",
    inline_check="",
    grow_mechanism="atomic",
    fault_mechanism="anon",
    reset_mechanism="madvise",
    signal_on_oob=True,  # a capability violation is a synchronous trap
)


def install() -> None:
    """Register the projected strategy (idempotent)."""
    strategies_mod.STRATEGIES.setdefault("cheri", CHERI)
    for runtime_name in ("wavm", "wasmtime", "v8"):
        from repro.runtimes import runtime_named

        model = runtime_named(runtime_name)
        if "cheri" not in model.strategies:
            model.strategies = tuple(model.strategies) + ("cheri",)


def run(size: str = "small", quick: bool = True, verbose: bool = False) -> List[dict]:
    install()
    workloads = suite_names("polybench", quick)
    baseline = api.measure(
        api.SweepSpec(
            workloads, runtimes=(BASELINE,), strategies=("none",),
            isas=("x86_64",), size=size,
        ),
        strict=True, verbose=verbose,
    ).medians()
    rows: List[dict] = []
    for strategy in ("none", "trap", "mprotect", "uffd", "cheri"):
        measured = api.measure(
            api.SweepSpec(
                workloads, runtimes=("wavm",), strategies=(strategy,),
                isas=("x86_64",), size=size,
            ),
            strict=True, verbose=verbose,
        ).medians()
        single = geomean_of_ratios(measured, baseline)
        contended = api.measure(
            api.SweepSpec(
                ("trisolv",), runtimes=("wavm",), strategies=(strategy,),
                isas=("x86_64",), threads=(16,), size=size,
            ),
            strict=True, verbose=verbose,
        ).per_workload()["trisolv"]
        rows.append(
            {
                "strategy": strategy,
                "geomean_vs_native_1t": single,
                "trisolv_util_16t": contended.utilisation.utilisation_percent,
            }
        )
    return rows


def render(rows: List[dict]) -> str:
    return render_table(
        ["strategy", "geomean vs native (1T)", "trisolv CPU util % (16T)"],
        [
            (r["strategy"], r["geomean_vs_native_1t"], r["trisolv_util_16t"])
            for r in rows
        ],
        title="Extension — projected CHERI bounds checking on WAVM/x86-64",
    )


def main(argv=None) -> List[dict]:
    parser = argparse.ArgumentParser(
        description=__doc__, parents=[cliopts.sweep_parent()]
    )
    parser.add_argument("--size", default="small", choices=["mini", "small", "medium"])
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    cliopts.configure_sweep(args)
    rows = run(size=args.size, quick=not args.full, verbose=args.verbose)
    print(render(rows))
    path = save_results("extension-cheri", rows)
    print(f"\nsaved {path}")
    return rows


if __name__ == "__main__":
    main()
