"""The paper's contribution: the benchmarking harness and experiments.

This package mirrors the paper's measurement infrastructure (§3.5):
a harness that loads a workload into a runtime configuration, spawns
pinned worker threads (or processes, for native code), runs warm-up and
timed iterations, and collects execution times, ``/proc/stat`` CPU
utilisation, context-switch rates and memory usage — all against the
simulated machine, kernel and runtime models.

``experiments/`` regenerates every figure of the paper's evaluation;
see DESIGN.md §4 for the index.
"""

from repro.core.config import BenchmarkConfig, ScaleModel, PAPER_TARGETS
from repro.core.harness import RunMeasurement, run_benchmark
from repro.core.profiles import profile_for, clear_profile_cache

__all__ = [
    "BenchmarkConfig",
    "ScaleModel",
    "PAPER_TARGETS",
    "RunMeasurement",
    "run_benchmark",
    "profile_for",
    "clear_profile_cache",
]
