"""The benchmarking harness (§3.5).

Mirrors the paper's 2000-line C++ harness:

* worker threads pinned to CPU cores 0..N-1, one runtime instance each;
* a warm-up phase with a gate so all workers enter the timed region
  together, and a cool-down phase where finished workers keep running
  extra iterations until every worker's measured runs are complete, so
  late measurements are not flattered by an emptying machine;
* only module execution is timed; setup/teardown per iteration is not
  part of the reported time (but *is* part of the system-level
  utilisation/context-switch/memory measurements, exactly as the
  paper's /proc/stat sampling sees it);
* native baselines spawn one process per instance (vfork+fexecve) —
  each with its own address space and mmap_lock;
* V8 additionally runs its helper threads (JIT/GC/IO) placed after the
  workers, plus periodic stop-the-world GC pauses.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import PAPER_TARGETS, ScaleModel
from repro.core.lifecycle import InstanceLifecycle, make_plan
from repro.core.profiles import profile_for
from repro.cpu.core import USER
from repro.cpu.machine import MACHINE_SPECS, Machine
from repro.cpu.thread import SimThread
from repro.isa import isa_named
from repro.oskernel.kernel import Kernel
from repro.oskernel.meminfo import MemInfoModel
from repro.oskernel.procstat import ProcStat, UtilisationSample
from repro.oskernel.syscalls import SyscallCostModel
from repro.runtime.strategies import strategy_named
from repro.runtimes import runtime_named
from repro.sim.engine import Delay, Engine
from repro.sim.resources import Gate
from repro.trace.events import (
    PHASE_TIMED_BEGIN,
    PHASE_TIMED_END,
    RUN_END,
    RUN_META,
)
from repro.trace.tracer import TRACE
from repro.workloads import workload_named

#: Memory-usage sampling period for the Fig. 6 model.
_MEMINFO_PERIOD = 10e-3


@dataclass
class RunMeasurement:
    """Everything one harness run reports."""

    workload: str
    runtime: str
    strategy: str
    isa: str
    threads: int
    size: str
    #: Timed iteration durations across all workers (seconds).
    iteration_seconds: List[float]
    wall_seconds: float
    utilisation: UtilisationSample
    mem_avg_bytes: float
    kernel_stats: Dict[str, int]
    mmap_read_wait: float
    mmap_write_wait: float
    #: Single-thread modelled compute time per iteration (no system
    #: effects) — the denominator for contention analyses.
    compute_seconds: float
    #: Dynamic bounds-check counters per iteration: ``emitted`` checks
    #: executed in compiled code, ``elided`` checks the BCE pass
    #: removed (both 0 for strategies without inline checks).
    bounds_checks: Dict[str, int] = field(default_factory=dict)
    #: Modelled WASI kernel time per iteration (0 for compute-family
    #: workloads) — the syscall-tax analogue of ``compute_seconds``.
    syscall_seconds: float = 0.0
    #: Kernel-side per-syscall accounting over the whole run, summed
    #: across processes: name -> {"calls": int, "seconds": float}.
    #: Seconds accumulate in batch replay order (the reconciliation
    #: contract with the ``syscall.wasi`` trace events).
    syscall_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def median_iteration(self) -> float:
        return statistics.median(self.iteration_seconds)

    @property
    def throughput_per_sec(self) -> float:
        """Aggregate measured iterations per wall-clock second."""
        return len(self.iteration_seconds) / self.wall_seconds


def run_benchmark(
    workload: str,
    runtime: str,
    strategy: str,
    isa: str,
    threads: int = 1,
    size: str = "small",
    iterations: int = 3,
    warmup: int = 1,
    scale: Optional[ScaleModel] = None,
) -> RunMeasurement:
    """Run one benchmark configuration through the system simulation."""
    runtime_model = runtime_named(runtime)
    strategy_model = strategy_named(strategy)
    isa_model = isa_named(isa)
    workload_entry = workload_named(workload)
    if not runtime_model.supports(isa):
        raise ValueError(f"runtime {runtime} has no {isa} backend (§3.4)")
    if strategy not in runtime_model.strategies:
        raise ValueError(f"runtime {runtime} does not support strategy {strategy}")
    if not isa_model.supports_strategy(strategy_model):
        raise ValueError(
            f"strategy {strategy} requires a hardware memory-tagging "
            f"extension (Arm MTE); ISA {isa} has none — run it on armv8"
        )
    spec = MACHINE_SPECS[isa]
    if threads > spec.cores:
        raise ValueError(f"{threads} workers exceed the {spec.cores}-core machine")

    if TRACE.enabled:
        # Opens a run segment: all pre-simulation events (compile,
        # costing) and the whole simulated timeline follow this marker.
        TRACE.emit(
            0.0, RUN_META,
            workload=workload, runtime=runtime, strategy=strategy, isa=isa,
            threads=threads, size=size, iterations=iterations, warmup=warmup,
        )

    module, profile = profile_for(workload, size)
    cycles = runtime_model.cycles(module, profile, isa_model, strategy_model)
    bounds_checks = runtime_model.check_stats(
        module, profile, isa_model, strategy_model
    )
    if scale is not None:
        time_scale = scale.time_scale
        memory_bytes = int(profile.pages_touched * 4096 * scale.page_scale)
    else:
        # Anchor the iteration duration to the paper-scale native-x86
        # estimate; every other configuration inherits the same scale,
        # so relative runtime/strategy/ISA differences pass through.
        target = PAPER_TARGETS[workload]
        anchor = runtime_named("native-clang")
        anchor_cycles = anchor.cycles(
            module, profile, isa_named("x86_64"), strategy_named("none")
        )
        anchor_seconds = anchor_cycles / MACHINE_SPECS["x86_64"].frequency_hz
        time_scale = target.iteration_seconds / anchor_seconds
        memory_bytes = target.memory_bytes
    plan = make_plan(
        cycles=cycles,
        frequency_hz=spec.frequency_hz,
        strategy=strategy_model,
        time_scale=time_scale,
        memory_bytes=memory_bytes,
        native=runtime_model.is_native,
        # One worker's GC cadence at 1 thread; with more isolates the
        # shared heap fills faster and every stop-the-world pause stops
        # every worker, so the per-worker effective interval shrinks
        # (calibrated as 1/sqrt(threads)).
        gc_interval=(
            runtime_model.gc_pause_interval / max(1.0, threads ** 0.5)
            if runtime_model.gc_pause_interval > 0
            else 0.0
        ),
        gc_duration=runtime_model.gc_pause_duration,
        syscalls=profile.syscalls,
        # Priced at the *measured* machine's entry cost and clock, so
        # the syscall tax shifts across ISAs like check cost does.
        syscall_model=SyscallCostModel(isa_model, spec.frequency_hz),
    )

    engine = Engine()
    machine = Machine(engine, spec)
    kernel = Kernel(engine, machine)
    stat = ProcStat(machine)
    meminfo = MemInfoModel(isa)

    # Process topology: native = process per worker; wasm = one process.
    if runtime_model.process_per_instance:
        procs = [kernel.create_process(f"bench{i}") for i in range(threads)]
    else:
        shared = kernel.create_process(runtime)
        procs = [shared] * threads

    state = _SharedState(
        gate=Gate(engine, "timed-region"),
        warmup_remaining=threads,
        measured_remaining=threads,
    )
    results: List[List[float]] = [[] for _ in range(threads)]

    def worker(index: int):
        proc = procs[index]
        proc.cpumask.add(index)
        thread = SimThread(engine, f"worker{index}", machine.core(index), tgid=proc.tgid)
        lifecycle = InstanceLifecycle(kernel, proc, thread, plan)
        yield from thread.startup()
        yield from lifecycle.setup()
        for _ in range(warmup):
            yield from lifecycle.run_iteration()
        # Synchronise entry into the timed region.
        state.warmup_remaining -= 1
        if state.warmup_remaining == 0:
            state.start_snapshot = stat.snapshot()
            if TRACE.enabled:
                # Emitted immediately after the snapshot, so trace seq
                # order splits events exactly as the counters saw them.
                TRACE.emit(engine.now, PHASE_TIMED_BEGIN, thread=thread.name)
            state.gate.open_gate()
        yield from thread.block_on(state.gate.wait())
        for _ in range(iterations):
            timed = yield from lifecycle.run_iteration()
            results[index].append(timed)
        state.measured_remaining -= 1
        if state.measured_remaining == 0:
            state.end_snapshot = stat.snapshot()
            if TRACE.enabled:
                TRACE.emit(engine.now, PHASE_TIMED_END, thread=thread.name)
            state.stopped = True
        # Cool-down: keep the core busy until everyone has finished.
        while not state.stopped:
            yield from lifecycle.run_iteration()
        thread.finish()

    def helper(index: int):
        # Helpers are unpinned: the load balancer migrates them around
        # the machine, so their bursts perturb every worker in turn.
        position = threads + index
        thread = SimThread(
            engine, f"helper{index}", machine.core(position % spec.cores),
            tgid=procs[0].tgid,
        )
        yield from thread.startup()
        while not state.stopped:
            yield from thread.sleep(runtime_model.helper_period)
            if state.stopped:
                break
            position += runtime_model.helper_threads
            procs[0].cpumask.add(position % spec.cores)
            yield from thread.migrate(machine.core(position % spec.cores))
            yield from thread.run(runtime_model.helper_burst, USER)
        thread.finish()

    def meminfo_sampler():
        unique_procs = _unique_procs(procs)
        while not state.stopped:
            meminfo.sample(unique_procs, weight=_MEMINFO_PERIOD)
            yield Delay(_MEMINFO_PERIOD)

    for index in range(threads):
        engine.process(worker(index), name=f"worker{index}")
    if runtime_model.helper_threads and not runtime_model.is_native:
        for index in range(runtime_model.helper_threads):
            engine.process(helper(index), name=f"helper{index}")
    engine.process(meminfo_sampler(), name="meminfo")
    engine.run()

    assert state.start_snapshot is not None and state.end_snapshot is not None
    utilisation = stat.window(state.start_snapshot, state.end_snapshot)
    unique_procs = _unique_procs(procs)
    kernel_stats: Dict[str, int] = {}
    read_wait = write_wait = 0.0
    syscall_stats: Dict[str, Dict[str, float]] = {}
    for proc in unique_procs:
        for key, value in proc.stats.items():
            kernel_stats[key] = kernel_stats.get(key, 0) + value
        read_wait += proc.mmap_lock.read_stats.total_wait_time
        write_wait += proc.mmap_lock.write_stats.total_wait_time
        for name, seconds in proc.syscall_time.items():
            entry = syscall_stats.setdefault(name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += proc.syscall_calls.get(name, 0)
            entry["seconds"] += seconds

    all_iterations = [dur for worker_times in results for dur in worker_times]
    if TRACE.enabled:
        TRACE.emit(engine.now, RUN_END, wall=utilisation.elapsed)
    return RunMeasurement(
        workload=workload,
        runtime=runtime,
        strategy=strategy,
        isa=isa,
        threads=threads,
        size=size,
        iteration_seconds=all_iterations,
        wall_seconds=utilisation.elapsed,
        utilisation=utilisation,
        mem_avg_bytes=meminfo.average_bytes,
        kernel_stats=kernel_stats,
        mmap_read_wait=read_wait,
        mmap_write_wait=write_wait,
        compute_seconds=plan.compute_seconds,
        bounds_checks=bounds_checks,
        syscall_seconds=plan.syscall_seconds,
        syscall_stats=syscall_stats,
    )


def _unique_procs(procs):
    seen = {}
    for proc in procs:
        seen[proc.tgid] = proc
    return list(seen.values())


@dataclass
class _SharedState:
    gate: Gate
    warmup_remaining: int
    measured_remaining: int
    stopped: bool = False
    start_snapshot: object = None
    end_snapshot: object = None
    gc_epoch: Dict[int, int] = field(default_factory=dict)


