"""Benchmark-run configuration and paper-scale targets.

Our functional profiles execute kernels at reduced dimensions
(``workloads/sizes.py``); system-level experiments must nevertheless
see iteration durations and working sets matching the configurations
the paper ran (PolyBench MEDIUM, SPEC Train), because the
mprotect-contention result (§4.1.1) depends on the ratio of
per-iteration kernel work to per-iteration memory-management work —
the paper stresses it is the *short-running* benchmarks that suffer.

:data:`PAPER_TARGETS` therefore records, per workload, an estimated
native-x86 iteration duration and data footprint at paper scale,
derived from the PolyBench MEDIUM dataset dimensions (flop counts on a
~2 GHz server core) and SPEC Train run behaviour (scaled from minutes
down to seconds to keep simulated time tractable — contention effects
depend on *rates*, which this preserves).  The harness turns them into
per-workload time/page scale factors anchored to the native-Clang
cycle model, so relative runtime/strategy differences pass through
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

KiB, MiB = 1024, 1024 * 1024


@dataclass(frozen=True)
class ScaleModel:
    """Explicit scale override (mostly for tests)."""

    time_scale: float
    page_scale: float


@dataclass(frozen=True)
class PaperTarget:
    """Paper-scale behaviour of one workload (native x86-64 estimate)."""

    iteration_seconds: float
    memory_bytes: int


#: PolyBench MEDIUM estimates: duration ≈ whole-program run (array
#: init + kernel) at ~2 Gflop/s; memory = the kernel's array
#: footprint.  The wide duration spread (~1 ms .. 150 ms) is the
#: load-bearing property: millisecond-scale kernels churn instances
#: fast enough to hammer mmap_lock.
PAPER_TARGETS: dict[str, PaperTarget] = {
    "gemm": PaperTarget(30e-3, int(1.2 * MiB)),
    "2mm": PaperTarget(28e-3, int(1.6 * MiB)),
    "3mm": PaperTarget(40e-3, int(1.9 * MiB)),
    "atax": PaperTarget(1.5e-3, int(1.3 * MiB)),
    "bicg": PaperTarget(1.5e-3, int(1.3 * MiB)),
    "doitgen": PaperTarget(80e-3, 27 * MiB),
    "mvt": PaperTarget(2.5e-3, int(1.3 * MiB)),
    "gemver": PaperTarget(3.0e-3, int(1.4 * MiB)),
    "gesummv": PaperTarget(1.8e-3, int(2.6 * MiB)),
    "symm": PaperTarget(18e-3, int(1.5 * MiB)),
    "syrk": PaperTarget(15e-3, int(1.6 * MiB)),
    "syr2k": PaperTarget(30e-3, int(2.2 * MiB)),
    "trmm": PaperTarget(12e-3, int(1.3 * MiB)),
    "cholesky": PaperTarget(10e-3, int(1.3 * MiB)),
    "durbin": PaperTarget(1.0e-3, 16 * KiB),
    "gramschmidt": PaperTarget(25e-3, int(2.3 * MiB)),
    "lu": PaperTarget(20e-3, int(1.3 * MiB)),
    "ludcmp": PaperTarget(20e-3, int(1.3 * MiB)),
    "trisolv": PaperTarget(1.2e-3, int(1.3 * MiB)),
    "correlation": PaperTarget(12e-3, int(1.0 * MiB)),
    "covariance": PaperTarget(12e-3, int(1.0 * MiB)),
    "deriche": PaperTarget(9e-3, 11 * MiB),
    "floyd-warshall": PaperTarget(150e-3, int(1.0 * MiB)),
    "nussinov": PaperTarget(40e-3, int(1.0 * MiB)),
    "adi": PaperTarget(40e-3, int(1.3 * MiB)),
    "fdtd-2d": PaperTarget(25e-3, int(1.0 * MiB)),
    "heat-3d": PaperTarget(30e-3, int(1.0 * MiB)),
    "jacobi-1d": PaperTarget(1.2e-3, 8 * KiB),
    "jacobi-2d": PaperTarget(10e-3, int(1.0 * MiB)),
    "seidel-2d": PaperTarget(25e-3, int(0.5 * MiB)),
    # SPEC Train behaviour, compressed from minutes to seconds (rates
    # preserved; absolute wall time is irrelevant to every figure).
    "505.mcf": PaperTarget(4.0, 120 * MiB),
    "508.namd": PaperTarget(6.0, 45 * MiB),
    "519.lbm": PaperTarget(5.0, 400 * MiB),
    "525.x264": PaperTarget(4.0, 30 * MiB),
    "531.deepsjeng": PaperTarget(5.0, 700 * MiB),
    "544.nab": PaperTarget(5.0, 60 * MiB),
    "557.xz": PaperTarget(6.0, 900 * MiB),
    # WASI syscall-bound scenarios: millisecond-scale iterations (like
    # the short PolyBench kernels, so instance churn stays high) with
    # small working sets; most of the duration is kernel crossings.
    "wasi-grep": PaperTarget(2.5e-3, 2 * MiB),
    "wasi-checksum": PaperTarget(4.0e-3, 4 * MiB),
    "wasi-montecarlo": PaperTarget(3.0e-3, 2 * MiB),
    "wasi-logappend": PaperTarget(2.0e-3, 2 * MiB),
}


@dataclass(frozen=True)
class BenchmarkConfig:
    """One point in the evaluation grid."""

    runtime: str
    strategy: str
    isa: str
    threads: int = 1
    size: str = "small"
    iterations: int = 3
    warmup: int = 1
    seed: int = 0

    def label(self) -> str:
        return f"{self.runtime}/{self.strategy}/{self.isa}/t{self.threads}"
