"""Profile cache: one functional execution per (workload, size).

The profiling interpreter run is the expensive step of the pipeline
(it executes the whole workload in Python), so results are cached both
in-process and on disk (``.cache/profiles/`` under the repository or
current directory).  Profiles are deterministic, so the cache never
needs invalidation except when workload definitions change — the cache
key includes a hash of the workload's encoded Wasm module.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.runtime.interpreter import Interpreter
from repro.runtime.profile import ExecutionProfile
from repro.wasm.encoder import encode_module
from repro.wasm.module import Module
from repro.workloads import workload_named

_memory_cache: Dict[Tuple[str, str], Tuple[Module, ExecutionProfile]] = {}
_module_cache: Dict[Tuple[str, str], Tuple[Module, str]] = {}


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(".cache") / "profiles"


def _profile_to_json(profile: ExecutionProfile) -> dict:
    return {
        "workload": profile.workload,
        "size": profile.size,
        "instr_counts": {str(k): v for k, v in profile.instr_counts.items()},
        "op_totals": profile.op_totals,
        "mem_loads": profile.mem_loads,
        "mem_stores": profile.mem_stores,
        "pages_touched": profile.pages_touched,
        "grow_events": profile.grow_events,
        "peak_pages": profile.peak_pages,
        "total_instrs": profile.total_instrs,
        "syscalls": profile.syscalls,
    }


def _profile_from_json(raw: dict) -> ExecutionProfile:
    return ExecutionProfile(
        workload=raw["workload"],
        size=raw["size"],
        instr_counts={int(k): v for k, v in raw["instr_counts"].items()},
        op_totals=raw["op_totals"],
        mem_loads=raw["mem_loads"],
        mem_stores=raw["mem_stores"],
        pages_touched=raw["pages_touched"],
        grow_events=[tuple(e) for e in raw["grow_events"]],
        peak_pages=raw["peak_pages"],
        total_instrs=raw["total_instrs"],
        # Pre-WASI cache entries lack the key; they are compute-family
        # profiles, for which the census is legitimately empty.
        syscalls=raw.get("syscalls", {}),
    )


def module_for(workload_name: str, size: str) -> Tuple[Module, str]:
    """The (module, content digest) pair for a workload at a size.

    Building and encoding a module is cheap compared to profiling it,
    but the digest is needed on its own by the measurement cache
    (:mod:`repro.core.engine`), so it gets its own memo — computing a
    cache key must never trigger a profiling interpreter run.
    """
    key = (workload_name, size)
    if key not in _module_cache:
        module = workload_named(workload_name).build(size).module
        digest = hashlib.sha256(encode_module(module)).hexdigest()
        _module_cache[key] = (module, digest)
    return _module_cache[key]


def module_digest(workload_name: str, size: str) -> str:
    """Content digest of a workload's encoded Wasm module."""
    return module_for(workload_name, size)[1]


def profile_for(workload_name: str, size: str) -> Tuple[Module, ExecutionProfile]:
    """The (module, dynamic profile) pair for a workload at a size."""
    key = (workload_name, size)
    if key in _memory_cache:
        return _memory_cache[key]

    module, full_digest = module_for(workload_name, size)
    digest = full_digest[:16]
    disk_path = _cache_dir() / f"{workload_name.replace('/', '_')}-{size}-{digest}.json"

    profile: Optional[ExecutionProfile] = None
    if disk_path.exists():
        try:
            profile = _profile_from_json(json.loads(disk_path.read_text()))
        except (ValueError, KeyError):
            profile = None  # stale/corrupt cache entry: recompute
    if profile is None:
        # Passing the module digest lets the interpreter memoise its
        # pre-decode (fusion) plan next to the profile cache entries.
        # WASI workloads link against a fresh host environment; the
        # module itself stays the memoised one (same digest) since
        # builds are deterministic.
        built = workload_named(workload_name).build(size)
        env = built.env_factory() if built.env_factory is not None else None
        interp = Interpreter(
            module,
            imports=env.imports() if env is not None else None,
            collect_profile=True,
            track_pages=True,
            module_digest=full_digest,
        )
        if env is not None:
            env.bind(interp)
        interp.invoke("bench")
        profile = interp.take_profile(workload_name, size)
        if env is not None:
            profile.syscalls = env.recorder.snapshot()
        try:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            disk_path.write_text(json.dumps(_profile_to_json(profile)))
        except OSError:
            pass  # read-only filesystem: in-memory cache still works

    _memory_cache[key] = (module, profile)
    return module, profile


def clear_profile_cache() -> None:
    _memory_cache.clear()
    _module_cache.clear()
