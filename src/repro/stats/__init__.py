"""Statistics helpers used by the experiments."""

from repro.stats.summary import geomean, geomean_of_ratios, median, summarize

__all__ = ["geomean", "geomean_of_ratios", "median", "summarize"]
