"""Benchmark statistics.

The paper summarises suites "by taking the geometric mean of the
ratios of execution times to the Native Clang execution time for each
benchmark" (§4.1), citing Fleming & Wallace's classic argument [4]
that the geometric mean is the correct way to average normalised
results.  These helpers implement exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; rejects empty input and non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def geomean_of_ratios(
    measured: Dict[str, float],
    baseline: Dict[str, float],
    allow_missing: bool = False,
) -> float:
    """Fleming-Wallace summary: geomean over per-benchmark ratios.

    The two mappings must cover the same benchmarks: a benchmark
    present on only one side would be dropped silently and bias the
    suite geomean, so partial overlap raises unless ``allow_missing``
    explicitly opts into intersection semantics.
    """
    common = sorted(set(measured) & set(baseline))
    if not common:
        raise ValueError("no common benchmarks between measurement and baseline")
    if not allow_missing:
        unmatched = sorted(set(measured) ^ set(baseline))
        if unmatched:
            raise ValueError(
                "benchmarks present on only one side of the ratio: "
                f"{', '.join(unmatched)} (pass allow_missing=True to "
                "summarise the intersection anyway)"
            )
    return geomean(measured[name] / baseline[name] for name in common)


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class Summary:
    count: int
    median: float
    mean: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("summary of empty sequence")
    return Summary(
        count=len(values),
        median=median(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
    )
