"""Per-syscall log2 latency histograms from ``syscall.wasi`` events.

The style deliberately mirrors eBPF tooling (``funclatency`` /
``bpftrace``'s ``hist()``): power-of-two nanosecond buckets with an
ASCII bar per bucket.  The kernel replay emits one ``syscall.wasi``
event per batch carrying the batch's per-call latency (``per_call``)
and call count, so a histogram is exact — every modelled call lands in
the bucket its latency dictates, batching only bounds the event count.

Input is a trace event sequence (or a ``trace summarize``-style event
dict list); output feeds both the ``fig-wasi`` experiment's committed
summary and the human-readable report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.trace.events import SYSCALL_WASI

#: Width of the widest ASCII bar, matching bpftrace's default feel.
_BAR_WIDTH = 40


def latency_bucket(seconds: float) -> int:
    """The log2 nanosecond bucket of one call latency.

    Bucket ``b`` covers latencies in ``[2^(b-1), 2^b)`` ns; anything
    under a nanosecond lands in bucket 0.
    """
    ns = int(seconds * 1e9)
    return ns.bit_length()


def bucket_bounds(bucket: int) -> tuple:
    """(low, high) nanosecond bounds of a bucket."""
    if bucket <= 0:
        return (0, 1)
    return (1 << (bucket - 1), 1 << bucket)


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:g}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:g}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:g}us"
    return f"{ns}ns"


def _get(event, key):
    """Field access across TraceEvent objects and plain JSON dicts."""
    if isinstance(event, dict):
        return event.get(key) if key in ("name",) else event["args"][key]
    return event.name if key == "name" else event.args[key]


def latency_histograms(events: Iterable) -> Dict[str, dict]:
    """Aggregate ``syscall.wasi`` events into per-syscall histograms.

    Returns ``{syscall: {"calls", "bytes", "seconds", "buckets"}}``
    with ``buckets`` mapping the log2 ns bucket to its call count,
    sorted by syscall name then bucket.
    """
    table: Dict[str, dict] = {}
    for event in events:
        if _get(event, "name") != SYSCALL_WASI:
            continue
        name = _get(event, "sys")
        entry = table.setdefault(
            name, {"calls": 0, "bytes": 0, "seconds": 0.0, "buckets": {}}
        )
        calls = _get(event, "calls")
        entry["calls"] += calls
        entry["bytes"] += _get(event, "bytes")
        entry["seconds"] += _get(event, "charged")
        bucket = latency_bucket(_get(event, "per_call"))
        entry["buckets"][bucket] = entry["buckets"].get(bucket, 0) + calls
    return {
        name: {
            "calls": entry["calls"],
            "bytes": entry["bytes"],
            "seconds": entry["seconds"],
            "buckets": dict(sorted(entry["buckets"].items())),
        }
        for name, entry in sorted(table.items())
    }


def histograms_to_json(histograms: Dict[str, dict]) -> Dict[str, dict]:
    """JSON-ready form (string bucket keys, stable ordering)."""
    return {
        name: {
            "calls": entry["calls"],
            "bytes": entry["bytes"],
            "seconds": entry["seconds"],
            "buckets": {
                str(bucket): count
                for bucket, count in sorted(entry["buckets"].items())
            },
        }
        for name, entry in sorted(histograms.items())
    }


def render_histograms(histograms: Dict[str, dict]) -> str:
    """bpftrace-style ASCII report, one section per syscall."""
    if not histograms:
        return "no syscall.wasi events in trace"
    lines: List[str] = []
    for name, entry in histograms.items():
        mean_us = entry["seconds"] / entry["calls"] * 1e6
        lines.append(
            f"{name}: {entry['calls']} calls, {entry['bytes']} bytes, "
            f"avg {mean_us:.2f}us"
        )
        buckets = entry["buckets"]
        peak = max(buckets.values())
        low_bucket, high_bucket = min(buckets), max(buckets)
        for bucket in range(low_bucket, high_bucket + 1):
            count = buckets.get(bucket, 0)
            low, high = bucket_bounds(bucket)
            bar = "@" * round(_BAR_WIDTH * count / peak)
            label = f"[{_fmt_ns(low)}, {_fmt_ns(high)})"
            lines.append(f"  {label:<18} {count:>8} |{bar:<{_BAR_WIDTH}}|")
    return "\n".join(lines)
