"""Export traces to Chrome's ``trace_event`` JSON format.

The output loads directly into ``chrome://tracing`` / Perfetto's legacy
importer: span events (names ending ``.begin``/``.end``) become B/E
duration pairs on one track per simulated thread, everything else
becomes an instant event.  Simulated seconds map to microseconds, the
process id is the simulated ``tgid``, and thread names are attached via
metadata events so the UI labels tracks ``worker0``, ``helper1``, etc.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.trace.events import RUN_META, TraceEvent

_BEGIN = ".begin"
_END = ".end"


def to_chrome(events: Sequence[TraceEvent]) -> dict:
    """Convert events into a ``chrome://tracing``-loadable document."""
    tids: Dict[str, int] = {}
    thread_pids: Dict[str, int] = {}
    out: List[dict] = []

    def tid_for(thread: str, tgid: int) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            thread_pids[thread] = tgid
        return tids[thread]

    for event in events:
        name = event.name
        if name == RUN_META:
            # run.meta opens the run segment that run.end closes.
            phase, name = "B", "run"
        elif name.endswith(_BEGIN):
            phase, name = "B", name[: -len(_BEGIN)]
        elif name.endswith(_END):
            phase, name = "E", name[: -len(_END)]
        else:
            phase = "i"
        record = {
            "name": name,
            "cat": event.cat or "trace",
            "ph": phase,
            "ts": event.ts * 1e6,
            "pid": event.tgid,
            "tid": tid_for(event.thread or "<global>", event.tgid),
        }
        if phase == "i":
            record["s"] = "t"  # instant scope: thread
        args = dict(event.args)
        args["seq"] = event.seq
        if event.core >= 0:
            args["core"] = event.core
        record["args"] = args
        out.append(record)

    # Thread-name metadata so tracks carry simulated thread names.
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": thread_pids[thread],
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in tids.items()
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome(events: Sequence[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(events), handle)
