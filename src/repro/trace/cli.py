"""``leaps-bench trace`` — record, summarize, and export event traces.

Usage::

    leaps-bench trace record --workload trisolv --runtime wavm \
        --strategy mprotect --threads 4 [-o trace.jsonl] [--chrome out.json]
    leaps-bench trace summarize trace.jsonl [--json]
    leaps-bench trace export trace.jsonl -o chrome.json

``record`` runs one benchmark configuration with tracing on, streams
events to a JSONL file, and prints the summarized trace.  ``summarize``
aggregates an existing trace into per-phase/per-lock/per-strategy
counters (``--json`` for the machine-readable form).  ``export``
converts a trace to Chrome's ``trace_event`` format for
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="leaps-bench trace",
        description="record, summarize, and export simulation event traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run one benchmark with tracing on")
    record.add_argument("--workload", required=True)
    record.add_argument("--runtime", required=True)
    record.add_argument("--strategy", required=True)
    record.add_argument("--isa", default="x86_64")
    record.add_argument("--threads", type=int, default=1)
    record.add_argument("--size", default="small")
    record.add_argument("--iterations", type=int, default=3)
    record.add_argument("--warmup", type=int, default=1)
    record.add_argument("-o", "--output", default="trace.jsonl",
                        help="JSONL trace file to write (default: trace.jsonl)")
    record.add_argument("--chrome", metavar="PATH",
                        help="also export Chrome trace_event JSON to PATH")

    summarize = sub.add_parser("summarize", help="aggregate a recorded trace")
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument("--json", action="store_true",
                           help="print the summary as JSON")

    export = sub.add_parser("export", help="convert a trace to Chrome format")
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument("-o", "--output", default="chrome-trace.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # Deferred imports keep `trace --help` fast and the package cycle-free.
    from repro.trace import chrome, summary
    from repro.trace.tracer import JsonlSink, read_jsonl, tracing

    args = _build_parser().parse_args(argv)

    if args.command == "record":
        from repro.core.harness import run_benchmark

        with tracing(JsonlSink(args.output)) as sink:
            run_benchmark(
                args.workload, args.runtime, args.strategy, args.isa,
                threads=args.threads, size=args.size,
                iterations=args.iterations, warmup=args.warmup,
            )
        events = read_jsonl(args.output)
        print(f"wrote {sink.count} events to {args.output}")
        if args.chrome:
            chrome.write_chrome(events, args.chrome)
            print(f"wrote Chrome trace to {args.chrome}")
        print(summary.render(summary.summarize(events)))
        return 0

    events = read_jsonl(args.trace)
    if args.command == "summarize":
        aggregated = summary.summarize(events)
        if args.json:
            json.dump(aggregated, sys.stdout, indent=2)
            print()
        else:
            print(summary.render(aggregated))
        problems = summary.check_invariants(events)
        for problem in problems:
            print(f"invariant violation: {problem}", file=sys.stderr)
        return 1 if problems else 0

    # export
    chrome.write_chrome(events, args.output)
    print(f"wrote Chrome trace to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
