"""The process-local tracer and its pluggable sinks.

Design constraints (ISSUE 2 tentpole):

* **Off by default, ~free when off.**  Instrumented call sites across
  the stack are written as ``if TRACE.enabled: TRACE.emit(...)`` — a
  single attribute check on the module-level singleton when tracing is
  disabled, so sweep outputs are byte-identical to an uninstrumented
  build.
* **Observation only.**  Emitting an event never schedules simulation
  work, takes a lock, or perturbs RNG state; an enabled tracer produces
  the same measurements as a disabled one.
* **Pluggable sinks.**  A sink is anything with ``append(event)``:
  an unbounded list (tests, summaries), a bounded ring buffer (long
  runs, keep the tail), a JSONL file (persist for ``trace summarize`` /
  ``chrome://tracing``), or a null sink (overhead measurement).

The tracer is process-local, like the measurement engine's default
instance: worker processes of a parallel sweep have their own disabled
tracer, so ``--jobs N`` runs are unaffected by tracing in the parent.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.trace.events import TraceEvent, category_of, event_from_json, event_to_json


class TraceError(RuntimeError):
    """Raised for misuse of the tracing subsystem."""


class ListSink:
    """Unbounded in-memory sink; ``events`` is the list itself."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)


class RingBufferSink:
    """Keep only the most recent ``capacity`` events (flight recorder)."""

    __slots__ = ("_buffer",)

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise TraceError(f"ring buffer capacity must be positive: {capacity}")
        self._buffer: deque = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)


class NullSink:
    """Discard everything (measures instrumentation overhead alone)."""

    __slots__ = ()

    #: Shared empty view so ``sink.events`` is uniform across sinks.
    events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        pass


class CallbackSink:
    """Invoke a callable per event (bridge into queues/other loops).

    The sweep service wraps ``loop.call_soon_threadsafe`` in one of
    these to pump job events into per-client ``asyncio`` queues without
    the tracer knowing anything about asyncio.
    """

    __slots__ = ("_callback", "count")

    def __init__(self, callback) -> None:
        self._callback = callback
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        self.count += 1
        self._callback(event)


class BroadcastSink:
    """Fan one event stream out to several subscriber sinks.

    Per-job event history in the sweep service: the broadcast keeps a
    bounded replay buffer (late subscribers catch up before going
    live) and forwards each new event to every attached sink.  A
    subscriber whose ``append`` raises is detached rather than allowed
    to wedge the stream — one slow/dead client must not stall the job.
    """

    __slots__ = ("_subscribers", "_replay", "count")

    def __init__(self, replay_capacity: int = 4096) -> None:
        if replay_capacity <= 0:
            raise TraceError(
                f"replay capacity must be positive: {replay_capacity}"
            )
        self._subscribers: List[object] = []
        self._replay: deque = deque(maxlen=replay_capacity)
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        self.count += 1
        self._replay.append(event)
        for sink in list(self._subscribers):
            try:
                sink.append(event)
            except Exception:
                self.detach(sink)

    def attach(self, sink, replay: bool = True) -> None:
        """Subscribe ``sink``; with ``replay``, deliver history first."""
        if replay:
            for event in list(self._replay):
                sink.append(event)
        self._subscribers.append(sink)

    def detach(self, sink) -> None:
        try:
            self._subscribers.remove(sink)
        except ValueError:
            pass

    @property
    def subscribers(self) -> int:
        return len(self._subscribers)

    @property
    def events(self) -> List[TraceEvent]:
        """The replay buffer (most recent ``replay_capacity`` events)."""
        return list(self._replay)


class JsonlSink:
    """Stream events to a JSON-lines file as they are emitted."""

    __slots__ = ("path", "_file", "count")

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event_to_json(event)) + "\n")
        self.count += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Sequence-stamping event dispatcher.

    ``enabled`` is the hot-path guard; ``emit`` assumes the caller
    checked it (calling emit on a stopped tracer is a no-op rather than
    an error, so guards and emits need not be atomic).
    """

    __slots__ = ("enabled", "sink", "_seq")

    def __init__(self) -> None:
        self.enabled = False
        self.sink = None
        self._seq = 0

    def start(self, sink) -> None:
        if self.enabled:
            raise TraceError("tracer already active; stop() it first")
        self.sink = sink
        self._seq = 0
        self.enabled = True

    def stop(self):
        """Disable tracing; returns the sink that was attached."""
        sink, self.sink = self.sink, None
        self.enabled = False
        return sink

    def emit(
        self,
        ts: float,
        name: str,
        cat: str = "",
        thread: str = "",
        core: int = -1,
        tgid: int = 0,
        **args,
    ) -> None:
        sink = self.sink
        if sink is None:
            return
        self._seq += 1
        sink.append(
            TraceEvent(
                seq=self._seq,
                ts=ts,
                name=name,
                cat=cat or category_of(name),
                thread=thread,
                core=core,
                tgid=tgid,
                args=args,
            )
        )


#: The process-local tracer every instrumented module guards on.
TRACE = Tracer()


@contextmanager
def tracing(sink=None) -> Iterator:
    """Enable tracing for a block; yields the sink (default: ListSink).

    ::

        with tracing() as sink:
            run_benchmark(...)
        summary = summarize(sink.events)
    """
    sink = sink if sink is not None else ListSink()
    TRACE.start(sink)
    try:
        yield sink
    finally:
        TRACE.stop()
        if isinstance(sink, JsonlSink):
            sink.close()


def write_jsonl(events: Iterable[TraceEvent], path: Union[str, Path]) -> int:
    """Persist events as JSONL; returns the number written."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event_to_json(event)) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into event records (blank lines skipped)."""
    events: List[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_json(json.loads(line)))
    return events
