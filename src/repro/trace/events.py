"""Structured trace-event records.

A :class:`TraceEvent` is one observation of the simulated stack: a lock
acquisition, a context switch, a syscall completing, a fault batch, a
compile, a harness phase boundary.  Events are deliberately flat and
cheap — a slotted dataclass with a small ``args`` payload — so that an
enabled tracer adds only allocation cost to the hot paths, and a
disabled one costs a single attribute check.

Event names are dotted, stable identifiers (``lock.acquire``,
``sched.switch``); the constants below are the canonical vocabulary the
summarizer and the golden-trace suite key on.  Categories group names
for the Chrome exporter's track layout.

Ordering: the tracer stamps every event with a monotonically increasing
``seq``.  Simulated timestamps (``ts``) are non-decreasing *within one
benchmark run* (between ``run.meta`` and ``run.end``), but reset to 0
between runs of a traced sweep, so consumers that need a total order
must sort on ``seq`` — which is also how the summarizer aligns events
against the harness's measurement-window markers without timestamp
tie-breaking ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

# -- locks (sim/resources) -------------------------------------------------
LOCK_ACQUIRE = "lock.acquire"        # lock, mode, wait, contended
LOCK_RELEASE = "lock.release"        # lock, mode, hold

# -- scheduler / CPU accounting (cpu/core) ---------------------------------
SCHED_SWITCH = "sched.switch"        # prev, next (one per ctxt increment)
SCHED_IRQ = "sched.irq"              # service
CPU_ACCT = "cpu.acct"                # bucket, amount (one per acct.add)

# -- kernel entry points (oskernel/kernel) ---------------------------------
SYSCALL_MMAP = "syscall.mmap"
SYSCALL_MUNMAP = "syscall.munmap"
SYSCALL_MPROTECT = "syscall.mprotect"
SYSCALL_MADVISE = "syscall.madvise"
SYSCALL_UFFD_REGISTER = "syscall.uffd_register"
SYSCALL_WASI = "syscall.wasi"        # sys, calls, bytes, per_call, charged
FAULT_ANON = "fault.anon"            # faults, pages, dur
FAULT_UFFD = "fault.uffd"            # faults, pages, dur
SIGNAL_SIGSEGV = "signal.sigsegv"
TLB_SHOOTDOWN = "tlb.shootdown"      # targets
VMA_MUTATE = "vma.mutate"            # op, area, pages/splits/merges, excl

# -- simulation engine (sim/engine) ----------------------------------------
SIM_SPAWN = "sim.spawn"
SIM_EXIT = "sim.exit"

# -- runtime models (runtimes/base) ----------------------------------------
RUNTIME_COMPILE = "runtime.compile"  # runtime, isa, strategy, cached
RUNTIME_COSTING = "runtime.costing"  # runtime, isa, strategy, cycles, cached

# -- strategy dispatch / instance lifecycle (core/lifecycle) ---------------
STRATEGY_GROW_BEGIN = "strategy.grow.begin"    # mechanism
STRATEGY_GROW_END = "strategy.grow.end"
STRATEGY_RESET_BEGIN = "strategy.reset.begin"  # mechanism
STRATEGY_RESET_END = "strategy.reset.end"
GC_PAUSE = "gc.pause"                # duration
ITER_BEGIN = "iter.begin"            # index
ITER_END = "iter.end"                # index, timed

# -- harness phases (core/harness) -----------------------------------------
PHASE_TIMED_BEGIN = "phase.timed.begin"  # emitted with the start snapshot
PHASE_TIMED_END = "phase.timed.end"      # emitted with the end snapshot
RUN_META = "run.meta"                # workload, runtime, strategy, ...
RUN_END = "run.end"                  # wall

# -- measurement engine / sweeps (core/engine, core/runner) ----------------
MEASURE_REQUEST = "measure.request"  # label, cache_hit, error
SWEEP_GRID = "sweep.grid"            # requests

# -- sweep service job lifecycle (service/jobs) ----------------------------
JOB_ACCEPTED = "job.accepted"        # job, digest, requests
JOB_ROW = "job.row"                  # job, index, row (one per request)
JOB_PROGRESS = "job.progress"        # job, done, total
JOB_DONE = "job.done"                # job, rows, errors, latency_s
JOB_ERROR = "job.error"              # job, kind, message

#: Category per dotted-name prefix (Chrome export tracks, summary groups).
CATEGORIES = {
    "lock": "lock",
    "sched": "sched",
    "cpu": "cpu",
    "syscall": "kernel",
    "fault": "kernel",
    "signal": "kernel",
    "tlb": "kernel",
    "vma": "vma",
    "sim": "sim",
    "runtime": "runtime",
    "strategy": "strategy",
    "gc": "strategy",
    "iter": "strategy",
    "phase": "phase",
    "run": "harness",
    "measure": "engine",
    "sweep": "engine",
    "job": "service",
}


def category_of(name: str) -> str:
    return CATEGORIES.get(name.split(".", 1)[0], "misc")


@dataclass(slots=True)
class TraceEvent:
    """One observation: ``(seq, ts, name)`` plus attribution and payload."""

    seq: int
    ts: float
    name: str
    cat: str
    thread: str = ""
    core: int = -1
    tgid: int = 0
    args: Dict[str, Any] = field(default_factory=dict)


def event_to_json(event: TraceEvent) -> dict:
    """Flat JSON form (one JSONL line per event)."""
    raw = {"seq": event.seq, "ts": event.ts, "name": event.name, "cat": event.cat}
    if event.thread:
        raw["thread"] = event.thread
    if event.core >= 0:
        raw["core"] = event.core
    if event.tgid:
        raw["tgid"] = event.tgid
    if event.args:
        raw["args"] = event.args
    return raw


def event_from_json(raw: dict) -> TraceEvent:
    return TraceEvent(
        seq=int(raw["seq"]),
        ts=float(raw["ts"]),
        name=str(raw["name"]),
        cat=str(raw.get("cat", "") or category_of(str(raw["name"]))),
        thread=str(raw.get("thread", "")),
        core=int(raw.get("core", -1)),
        tgid=int(raw.get("tgid", 0)),
        args=dict(raw.get("args", {})),
    )
