"""Trace aggregation, invariant checking, and measurement reconciliation.

Three consumers share this module:

* ``leaps-bench trace summarize`` renders :func:`summarize` output for
  humans (and ``--json`` for machines);
* the golden-trace regression suite asserts :func:`check_invariants`
  finds nothing and that :func:`golden_counters` matches the committed
  goldens;
* the differential tests call :func:`reconcile` to prove the
  trace-derived totals equal what the sweep/measurement path reports —
  **bit-exactly** for floats, because snapshots are replayed with the
  same additions in the same order and pushed through the same
  :func:`repro.oskernel.procstat.window_sample` arithmetic.

The timed measurement window is delimited by the harness's
``phase.timed.begin``/``end`` marker events; alignment uses trace
sequence numbers (not timestamps) so events coinciding with a snapshot
instant land on the same side of the window as the counters saw them.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.oskernel.procstat import StatSnapshot, window_sample
from repro.trace.events import (
    CPU_ACCT,
    FAULT_ANON,
    FAULT_UFFD,
    GC_PAUSE,
    ITER_BEGIN,
    ITER_END,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    PHASE_TIMED_BEGIN,
    PHASE_TIMED_END,
    RUN_END,
    RUN_META,
    RUNTIME_COMPILE,
    RUNTIME_COSTING,
    SCHED_IRQ,
    SCHED_SWITCH,
    STRATEGY_GROW_BEGIN,
    STRATEGY_GROW_END,
    STRATEGY_RESET_BEGIN,
    STRATEGY_RESET_END,
    SYSCALL_MADVISE,
    SYSCALL_MMAP,
    SYSCALL_MPROTECT,
    SYSCALL_MUNMAP,
    SYSCALL_WASI,
    TLB_SHOOTDOWN,
    TraceEvent,
    VMA_MUTATE,
)

_BUCKETS = ("user", "sys", "irq", "softirq")

#: kernel_stats key → (event name, how to count it).  ``None`` sums 1
#: per event; a string sums that args key.  This single table is both
#: the reconciliation contract and the summarizer's fault section.
KERNEL_STAT_EVENTS: Dict[str, Tuple[str, Optional[str]]] = {
    "mprotect_calls": (SYSCALL_MPROTECT, None),
    "madvise_calls": (SYSCALL_MADVISE, None),
    "mmap_calls": (SYSCALL_MMAP, None),
    "munmap_calls": (SYSCALL_MUNMAP, None),
    "anon_faults": (FAULT_ANON, "faults"),
    "uffd_faults": (FAULT_UFFD, "faults"),
    "shootdowns": (TLB_SHOOTDOWN, None),
    "wasi_calls": (SYSCALL_WASI, "calls"),
    "wasi_bytes": (SYSCALL_WASI, "bytes"),
}


# --------------------------------------------------------------------------
# Window markers and snapshot replay
# --------------------------------------------------------------------------

def window_markers(
    events: Sequence[TraceEvent],
) -> Tuple[Optional[TraceEvent], Optional[TraceEvent]]:
    """The timed-phase boundary markers (first begin, first end after it)."""
    begin = end = None
    for event in events:
        if begin is None and event.name == PHASE_TIMED_BEGIN:
            begin = event
        elif begin is not None and event.name == PHASE_TIMED_END:
            end = event
            break
    return begin, end


def replay_stat_snapshot(
    events: Sequence[TraceEvent], marker: TraceEvent
) -> StatSnapshot:
    """Rebuild the ``/proc/stat`` snapshot taken alongside ``marker``.

    Accumulates every ``cpu.acct`` addition before the marker per
    (core, bucket) in emission order, then combines per-core totals in
    core-index order — the exact float operations the live snapshot
    performed, so the result is bit-identical, not approximately equal.
    """
    per_core: Dict[Tuple[int, str], float] = {}
    cores: set = set()
    switches = 0
    for event in events:
        if event.seq >= marker.seq:
            break
        if event.name == CPU_ACCT:
            key = (event.core, event.args["bucket"])
            per_core[key] = per_core.get(key, 0.0) + event.args["amount"]
            cores.add(event.core)
        elif event.name == SCHED_SWITCH:
            switches += 1
    totals = dict.fromkeys(_BUCKETS, 0.0)
    for core in sorted(cores):
        for bucket in _BUCKETS:
            totals[bucket] += per_core.get((core, bucket), 0.0)
    return StatSnapshot(
        time=marker.ts,
        user=totals["user"],
        sys=totals["sys"],
        irq=totals["irq"],
        softirq=totals["softirq"],
        context_switches=switches,
    )


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------

def _lock_table(events: Iterable[TraceEvent]) -> Dict[str, dict]:
    """Per-lock, per-mode counters in lock first-seen order."""
    locks: Dict[str, dict] = {}
    for event in events:
        if event.name not in (LOCK_ACQUIRE, LOCK_RELEASE):
            continue
        name = event.args["lock"]
        mode = event.args["mode"]
        table = locks.setdefault(name, {})
        entry = table.setdefault(
            mode,
            {
                "acquisitions": 0,
                "contended": 0,
                "releases": 0,
                "wait": 0.0,
                "max_wait": 0.0,
                "hold": 0.0,
            },
        )
        if event.name == LOCK_ACQUIRE:
            entry["acquisitions"] += 1
            wait = event.args["wait"]
            if event.args["contended"]:
                entry["contended"] += 1
                entry["wait"] += wait
                if wait > entry["max_wait"]:
                    entry["max_wait"] = wait
        else:
            entry["releases"] += 1
            entry["hold"] += event.args["hold"]
    return locks


def _kernel_counters(events: Iterable[TraceEvent]) -> Dict[str, int]:
    counters = dict.fromkeys(KERNEL_STAT_EVENTS, 0)
    counters["pages_populated"] = 0
    counters["pages_zapped"] = 0
    for event in events:
        for stat, (name, arg) in KERNEL_STAT_EVENTS.items():
            if event.name == name:
                counters[stat] += 1 if arg is None else event.args[arg]
        if event.name == VMA_MUTATE:
            op = event.args["op"]
            if op == "populate":
                counters["pages_populated"] += event.args["pages"]
            elif op in ("zap", "unmap"):
                counters["pages_zapped"] += event.args["pages"]
    return counters


def summarize(events: Sequence[TraceEvent]) -> dict:
    """Aggregate a trace into per-phase/per-lock/per-strategy counters."""
    counts = Counter(event.name for event in events)
    runs = [dict(event.args) for event in events if event.name == RUN_META]
    begin, end = window_markers(events)
    windowed = (
        [e for e in events if begin.seq < e.seq < end.seq]
        if begin is not None and end is not None
        else []
    )

    strategies: Dict[str, Counter] = {"grow": Counter(), "reset": Counter()}
    gc_pauses = 0
    for event in events:
        if event.name == STRATEGY_GROW_BEGIN:
            strategies["grow"][event.args["mechanism"]] += 1
        elif event.name == STRATEGY_RESET_BEGIN:
            strategies["reset"][event.args["mechanism"]] += 1
        elif event.name == GC_PAUSE:
            gc_pauses += 1

    summary = {
        "events": len(events),
        "span": (
            [events[0].ts, max(e.ts for e in events)] if events else [0.0, 0.0]
        ),
        "runs": runs,
        "counts": dict(sorted(counts.items())),
        "locks": _lock_table(events),
        "kernel": _kernel_counters(events),
        "sched": {
            "context_switches": counts[SCHED_SWITCH],
            "irqs": counts[SCHED_IRQ],
        },
        "strategies": {
            kind: dict(sorted(table.items()))
            for kind, table in strategies.items()
        },
        "gc_pauses": gc_pauses,
        "runtime": {
            "compiles": counts[RUNTIME_COMPILE],
            "costings": counts[RUNTIME_COSTING],
        },
        "iterations": {
            "started": counts[ITER_BEGIN],
            "finished": counts[ITER_END],
        },
        "window": None,
    }

    if begin is not None and end is not None:
        start_snap = replay_stat_snapshot(events, begin)
        end_snap = replay_stat_snapshot(events, end)
        sample = window_sample(start_snap, end_snap)
        summary["window"] = {
            "begin_ts": begin.ts,
            "end_ts": end.ts,
            "elapsed": sample.elapsed,
            "context_switches": (
                end_snap.context_switches - start_snap.context_switches
            ),
            "context_switches_per_sec": sample.context_switches_per_sec,
            "utilisation_percent": sample.utilisation_percent,
            "user_percent": sample.user_percent,
            "sys_percent": sample.sys_percent,
            "irq_percent": sample.irq_percent,
            "locks": _lock_table(windowed),
            "kernel": _kernel_counters(windowed),
        }
    return summary


def contention_events(summary: dict, lock_prefix: str = "mmap_lock") -> int:
    """Contended acquisitions of matching locks inside the timed window.

    This is the headline check for the paper's story: a multithreaded
    ``mprotect`` run reports a positive count here while the matching
    ``uffd`` run reports zero.
    """
    window = summary.get("window")
    table = (window or summary)["locks"]
    total = 0
    for name, modes in table.items():
        if name.startswith(lock_prefix):
            for entry in modes.values():
                total += entry["contended"]
    return total


# --------------------------------------------------------------------------
# Structural invariants
# --------------------------------------------------------------------------

def check_invariants(events: Sequence[TraceEvent]) -> List[str]:
    """Structural checks any well-formed trace must satisfy.

    Returns human-readable violation strings (empty list == clean):

    * ``seq`` strictly increasing; ``ts`` non-decreasing inside each
      run segment (``run.meta`` .. ``run.end``);
    * no negative lock wait or hold times;
    * lock state machine: balanced acquire/release per (lock, mode),
      never a writer alongside readers or a second writer, never a
      release without a holder;
    * exclusive VMA mutations only while that process's ``mmap_lock``
      writer is active;
    * paired begin/end spans (strategy grow/reset, iterations, timed
      phase markers).
    """
    problems: List[str] = []
    last_seq = 0
    in_run = False
    last_ts = 0.0
    readers: Dict[str, int] = {}
    writers: Dict[str, int] = {}
    spans = Counter()

    for event in events:
        if event.seq <= last_seq:
            problems.append(
                f"seq not strictly increasing at {event.name} ({event.seq})"
            )
        last_seq = event.seq

        if event.name == RUN_META:
            in_run = True
            last_ts = event.ts
        elif event.name == RUN_END:
            in_run = False
        elif in_run:
            if event.ts < last_ts:
                problems.append(
                    f"time went backwards at seq {event.seq} ({event.name}): "
                    f"{event.ts} < {last_ts}"
                )
            last_ts = event.ts

        if event.name == LOCK_ACQUIRE:
            lock, mode = event.args["lock"], event.args["mode"]
            if event.args["wait"] < 0:
                problems.append(f"negative wait on {lock} at seq {event.seq}")
            if mode == "read":
                if writers.get(lock):
                    problems.append(
                        f"reader acquired {lock} while writer active "
                        f"(seq {event.seq})"
                    )
                readers[lock] = readers.get(lock, 0) + 1
            elif mode in ("write", "mutex"):
                if writers.get(lock) or readers.get(lock):
                    problems.append(
                        f"exclusive acquire of held {lock} (seq {event.seq})"
                    )
                writers[lock] = writers.get(lock, 0) + 1
        elif event.name == LOCK_RELEASE:
            lock, mode = event.args["lock"], event.args["mode"]
            if event.args["hold"] < 0:
                problems.append(f"negative hold on {lock} at seq {event.seq}")
            holders = readers if mode == "read" else writers
            if not holders.get(lock):
                problems.append(
                    f"{mode} release of unheld {lock} (seq {event.seq})"
                )
            else:
                holders[lock] -= 1
        elif event.name == VMA_MUTATE and event.args.get("excl"):
            lock = f"mmap_lock.{event.tgid}"
            if not writers.get(lock):
                problems.append(
                    f"exclusive VMA mutation ({event.args['op']}) outside "
                    f"{lock} write hold (seq {event.seq})"
                )

        # Span pairing.  run.meta/run.end and the timed-phase markers
        # are *global* brackets (begin and end can come from different
        # threads: whichever worker crosses the barrier last emits the
        # marker), so they pair without the thread key.
        if event.name == RUN_META:
            spans[("run", "")] += 1
        elif event.name == RUN_END:
            spans[("run", "")] -= 1
        elif event.name == PHASE_TIMED_BEGIN:
            spans[("phase.timed", "")] += 1
        elif event.name == PHASE_TIMED_END:
            spans[("phase.timed", "")] -= 1
        elif event.name.endswith(".begin"):
            spans[(event.name[: -len(".begin")], event.thread)] += 1
        elif event.name.endswith(".end"):
            spans[(event.name[: -len(".end")], event.thread)] -= 1

    for lock, count in readers.items():
        if count:
            problems.append(f"{count} unreleased read hold(s) on {lock}")
    for lock, count in writers.items():
        if count:
            problems.append(f"{count} unreleased exclusive hold(s) on {lock}")
    for (span, thread), depth in spans.items():
        if depth:
            problems.append(
                f"unbalanced {span} span for {thread or '<global>'} ({depth:+d})"
            )
    return problems


# --------------------------------------------------------------------------
# Reconciliation against a RunMeasurement
# --------------------------------------------------------------------------

def reconcile(events: Sequence[TraceEvent], measurement) -> List[str]:
    """Cross-check trace-derived totals against a ``RunMeasurement``.

    The measurement argument is a :class:`repro.core.harness.RunMeasurement`
    (duck-typed to avoid the import).  Returns mismatch descriptions;
    empty list means the two accounting paths agree exactly.
    """
    problems: List[str] = []
    begin, end = window_markers(events)
    if begin is None or end is None:
        return ["trace has no timed-phase markers; was it recorded mid-run?"]

    start_snap = replay_stat_snapshot(events, begin)
    end_snap = replay_stat_snapshot(events, end)
    sample = window_sample(start_snap, end_snap)
    reported = measurement.utilisation
    for field in (
        "elapsed",
        "busy_time",
        "utilisation_percent",
        "user_percent",
        "sys_percent",
        "irq_percent",
        "context_switches_per_sec",
    ):
        derived = getattr(sample, field)
        expected = getattr(reported, field)
        if derived != expected:
            problems.append(
                f"utilisation.{field}: trace-derived {derived!r} != "
                f"measured {expected!r}"
            )

    counters = _kernel_counters(events)
    for stat in list(KERNEL_STAT_EVENTS) + ["pages_populated", "pages_zapped"]:
        expected = measurement.kernel_stats.get(stat, 0)
        if counters[stat] != expected:
            problems.append(
                f"kernel_stats[{stat}]: trace-derived {counters[stat]} != "
                f"measured {expected}"
            )

    for mode, attribute in (("read", "mmap_read_wait"), ("write", "mmap_write_wait")):
        derived = _replayed_wait(events, mode)
        expected = getattr(measurement, attribute)
        if derived != expected:
            problems.append(
                f"{attribute}: trace-derived {derived!r} != measured {expected!r}"
            )

    derived_syscalls = _replayed_syscalls(events)
    reported_syscalls = getattr(measurement, "syscall_stats", {}) or {}
    for name in sorted(set(derived_syscalls) | set(reported_syscalls)):
        derived = derived_syscalls.get(name)
        expected = reported_syscalls.get(name)
        if derived != expected:
            problems.append(
                f"syscall_stats[{name}]: trace-derived {derived!r} != "
                f"measured {expected!r}"
            )
    return problems


def _replayed_wait(events: Sequence[TraceEvent], mode: str) -> float:
    """Total mmap_lock wait for a mode, replayed in LockStats order.

    Per lock, waits accumulate chronologically (only contended
    acquisitions add, mirroring ``LockStats.note_wait``); locks then
    combine in first-seen order — the same order the harness sums
    per-process stats — keeping float addition order identical.
    """
    per_lock: Dict[str, float] = {}
    for event in events:
        if event.name != LOCK_ACQUIRE or event.args["mode"] != mode:
            continue
        if not event.args["lock"].startswith("mmap_lock"):
            continue
        lock = event.args["lock"]
        per_lock.setdefault(lock, 0.0)
        if event.args["contended"]:
            per_lock[lock] += event.args["wait"]
    total = 0.0
    for value in per_lock.values():  # insertion order == first-seen order
        total += value
    return total


def _replayed_syscalls(events: Sequence[TraceEvent]) -> Dict[str, dict]:
    """Per-syscall kernel accounting replayed from ``syscall.wasi`` events.

    Seconds accumulate per name in event (seq) order — the same order
    :meth:`repro.oskernel.kernel.Kernel.sys_wasi_batch` added them to
    the process's ``syscall_time``, so for single-process runs (every
    Wasm runtime) the float sums are bit-identical to the measurement's
    ``syscall_stats``, not approximately equal.
    """
    table: Dict[str, dict] = {}
    for event in events:
        if event.name != SYSCALL_WASI:
            continue
        entry = table.setdefault(
            event.args["sys"], {"calls": 0, "seconds": 0.0}
        )
        entry["calls"] += event.args["calls"]
        entry["seconds"] += event.args["charged"]
    return table


# --------------------------------------------------------------------------
# Golden counters + rendering
# --------------------------------------------------------------------------

def golden_counters(summary: dict) -> dict:
    """The integer-only, regression-stable subset of a summary.

    Golden files hold only event *counts* — no simulated durations — so
    they pin the bookkeeping structure of the stack (lock discipline,
    fault batching, switch counts) without breaking on cost-table
    recalibration that merely moves timestamps.  ``runtime.compile`` is
    excluded: the costing cache legitimately skips compilation when a
    configuration was already priced in this process, so its count
    reflects host-process cache warmth, not simulated behaviour.
    """
    window = summary["window"] or {}
    counts = {
        name: count
        for name, count in summary["counts"].items()
        if name != RUNTIME_COMPILE
    }

    def lock_ints(table: dict) -> dict:
        return {
            name: {
                mode: {
                    "acquisitions": entry["acquisitions"],
                    "contended": entry["contended"],
                    "releases": entry["releases"],
                }
                for mode, entry in sorted(modes.items())
            }
            for name, modes in sorted(table.items())
        }

    return {
        "counts": counts,
        "locks": lock_ints(summary["locks"]),
        "kernel": summary["kernel"],
        "strategies": summary["strategies"],
        "iterations": summary["iterations"],
        "window": {
            "context_switches": window.get("context_switches"),
            "locks": lock_ints(window.get("locks", {})),
            "kernel": window.get("kernel"),
        },
    }


def render(summary: dict) -> str:
    """Human-readable multi-line report for ``trace summarize``."""
    lines: List[str] = []
    span = summary["span"]
    lines.append(
        f"trace: {summary['events']} events over "
        f"{span[1] - span[0]:.6f}s simulated"
    )
    for run in summary["runs"]:
        lines.append(
            "  run: {workload} {runtime}/{strategy}/{isa} t{threads} "
            "({size}, {iterations}+{warmup} iters)".format(**run)
        )
    lines.append("  events by name:")
    for name, count in summary["counts"].items():
        lines.append(f"    {name:<24} {count}")
    lines.append("  locks (whole run):")
    for name, modes in summary["locks"].items():
        for mode, entry in sorted(modes.items()):
            lines.append(
                f"    {name} [{mode}]: {entry['acquisitions']} acq "
                f"({entry['contended']} contended, wait {entry['wait'] * 1e3:.3f}ms, "
                f"max {entry['max_wait'] * 1e3:.3f}ms, "
                f"hold {entry['hold'] * 1e3:.3f}ms)"
            )
    kernel = summary["kernel"]
    lines.append(
        "  kernel: {mprotect_calls} mprotect, {madvise_calls} madvise, "
        "{mmap_calls} mmap, {munmap_calls} munmap, {anon_faults} anon faults, "
        "{uffd_faults} uffd faults, {shootdowns} shootdowns, "
        "{pages_populated} pages populated, {pages_zapped} zapped, "
        "{wasi_calls} wasi calls ({wasi_bytes} bytes)".format(**kernel)
    )
    for kind in ("grow", "reset"):
        table = summary["strategies"][kind]
        if table:
            mechanisms = ", ".join(f"{m}×{c}" for m, c in table.items())
            lines.append(f"  strategy {kind}: {mechanisms}")
    lines.append(
        f"  sched: {summary['sched']['context_switches']} context switches, "
        f"{summary['sched']['irqs']} irqs; gc pauses: {summary['gc_pauses']}"
    )
    lines.append(
        f"  runtime: {summary['runtime']['compiles']} compiles, "
        f"{summary['runtime']['costings']} costings; iterations: "
        f"{summary['iterations']['finished']} finished"
    )
    window = summary["window"]
    if window is None:
        lines.append("  timed window: no phase markers in trace")
    else:
        lines.append(
            f"  timed window [{window['begin_ts']:.6f}s – {window['end_ts']:.6f}s] "
            f"(elapsed {window['elapsed']:.6f}s):"
        )
        lines.append(
            f"    context switches: {window['context_switches']} "
            f"({window['context_switches_per_sec']:.1f}/s)"
        )
        lines.append(
            f"    utilisation: {window['utilisation_percent']:.1f}% "
            f"(user {window['user_percent']:.1f}%, sys {window['sys_percent']:.1f}%, "
            f"irq {window['irq_percent']:.1f}%)"
        )
        for name, modes in window["locks"].items():
            for mode, entry in sorted(modes.items()):
                lines.append(
                    f"    {name} [{mode}]: {entry['acquisitions']} acq "
                    f"({entry['contended']} contended, "
                    f"wait {entry['wait'] * 1e3:.3f}ms)"
                )
        contended = contention_events(summary)
        lines.append(f"    mmap_lock contention events: {contended}")
    return "\n".join(lines)
