"""``repro.trace`` — event-level observability for the simulated stack.

The package has three layers:

* :mod:`repro.trace.events` / :mod:`repro.trace.tracer` — the record
  type, the process-local :data:`TRACE` singleton the instrumented
  modules guard on, and the sinks (list, ring buffer, JSONL, null);
* :mod:`repro.trace.summary` — aggregation of a trace into per-phase /
  per-lock / per-strategy counters, structural invariant checks, and
  *reconciliation* of trace-derived totals against a
  ``RunMeasurement`` (the second, independent accounting path through
  the stack);
* :mod:`repro.trace.chrome` — a ``chrome://tracing`` /
  `trace_event-format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`__
  exporter for visual inspection.

This ``__init__`` deliberately re-exports only the tracer layer:
``summary`` and ``chrome`` import simulation modules (which themselves
import the tracer), so they must be imported as submodules to keep the
dependency graph acyclic.
"""

from repro.trace.events import TraceEvent, event_from_json, event_to_json
from repro.trace.tracer import (
    TRACE,
    BroadcastSink,
    CallbackSink,
    JsonlSink,
    ListSink,
    NullSink,
    RingBufferSink,
    TraceError,
    Tracer,
    read_jsonl,
    tracing,
    write_jsonl,
)

__all__ = [
    "TRACE",
    "TraceEvent",
    "Tracer",
    "TraceError",
    "ListSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "BroadcastSink",
    "CallbackSink",
    "tracing",
    "read_jsonl",
    "write_jsonl",
    "event_to_json",
    "event_from_json",
]
