"""WASI syscall latency calibration and the per-call cost model.

The compute-bound scenario family prices work per machine op; the WASI
family prices it per kernel crossing.  :class:`SyscallCosts` holds the
kernel-side service latencies (seconds, same provenance discipline as
:class:`repro.oskernel.layout.KernelCosts`); :class:`SyscallCostModel`
combines them with the ISA's user→kernel transition cost
(``IsaModel.syscall_entry_cycles`` at the machine's clock) into the
per-call seconds the harness replays through the simulated kernel.

Two data-movement regimes, mirroring buffered vs direct I/O:

* **buffered** — the payload is already in the page cache / pipe
  buffer; the per-byte cost is one kernel-side ``copy_to_user`` pass
  (memcpy at tens of GB/s).
* **direct** — the payload misses the cache and pays a second pass
  (device/backing-store fill) on top of the copy-out.

Which regime applies is a property of the *file*, not the call: the
fd table marks each open file, and reads/writes on it price per byte
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oskernel.layout import KernelCosts


@dataclass(frozen=True)
class SyscallCosts:
    """Kernel-side service latencies for the WASI surface, in seconds.

    These are *service* costs only — the user→kernel transition itself
    comes from the ISA model so the syscall tax scales with the CPU the
    way check cost does.  Magnitudes follow the same sources as
    ``KernelCosts``: fd-table lookup and vfs dispatch are each a
    fraction of the bare syscall entry; ``getrandom`` pays the ChaCha20
    per-byte expansion; ``clock_gettime`` normally stays in userspace
    via the vDSO but WASI's hostcall forces the crossing, leaving only
    the cheap counter read as service time.
    """

    #: fd-table lookup + file->f_op dispatch, charged by every fd_* call.
    fd_lookup: float = 0.04e-6

    #: vfs_read/vfs_write fixed path (rw_verify_area, iterator setup).
    vfs_dispatch: float = 0.10e-6

    #: Path resolution + dentry walk + file allocation for path_open.
    open_path: float = 0.90e-6

    #: Releasing a file (fput, dentry refcount) for fd_close.
    close_file: float = 0.30e-6

    #: llseek: pure offset arithmetic on the open file.
    seek: float = 0.05e-6

    #: fd_fdstat_get: copying the fdstat block out.
    fdstat: float = 0.08e-6

    #: Reading the monotonic clock (counter read; no vDSO shortcut
    #: because the Wasm hostcall already crossed into the runtime).
    clock_read: float = 0.06e-6

    #: getrandom fixed cost (per call).
    random_fixed: float = 0.20e-6

    #: getrandom per byte (ChaCha20 keystream expansion).
    random_per_byte: float = 1.5e-9

    #: poll_oneoff with an empty/immediate subscription set: wait-queue
    #: registration and teardown without blocking.
    poll_immediate: float = 0.45e-6

    #: copy_to_user/copy_from_user per payload byte (memcpy-speed).
    copy_per_byte: float = 0.04e-9

    #: Extra per-byte cost when the payload misses the page cache and
    #: must be filled from the backing store (direct regime).
    direct_per_byte: float = 0.35e-9

    #: environ_get / args_get: copying the prebuilt block out is priced
    #: per byte; the fixed part is one fd-less syscall dispatch.
    env_fixed: float = 0.05e-6


#: Service cost per WASI syscall name: (fixed seconds, per-byte kind).
#: per-byte kind: "copy" pays copy_per_byte; "random" pays
#: random_per_byte; None moves no payload.
_SERVICE = {
    "fd_read": ("fd_lookup+vfs", "copy"),
    "fd_write": ("fd_lookup+vfs", "copy"),
    "fd_seek": ("fd_lookup+seek", None),
    "fd_close": ("close", None),
    "fd_fdstat_get": ("fd_lookup+fdstat", None),
    "path_open": ("open", None),
    "clock_time_get": ("clock", None),
    "random_get": ("random", "random"),
    "poll_oneoff": ("poll", None),
    "args_sizes_get": ("env", None),
    "args_get": ("env", "copy"),
    "environ_sizes_get": ("env", None),
    "environ_get": ("env", "copy"),
    "proc_exit": ("env", None),
}


class SyscallCostModel:
    """Prices one WASI call: ISA crossing + kernel service + payload.

    ``entry_seconds`` is the ISA-dependent user→kernel→user transition;
    every named call adds its service fixed cost and, when it moves
    payload, a per-byte term.  Files opened in the direct regime add
    ``direct_per_byte`` on top of the copy cost (decided by the caller
    via ``direct=True``).
    """

    def __init__(
        self,
        isa,
        frequency_hz: float,
        kernel_costs: KernelCosts | None = None,
        costs: SyscallCosts | None = None,
    ) -> None:
        self.isa = isa
        self.frequency_hz = frequency_hz
        self.kernel_costs = kernel_costs or KernelCosts()
        self.costs = costs or SyscallCosts()
        self.entry_seconds = isa.syscall_entry_cycles / frequency_hz

    def _fixed(self, kind: str) -> float:
        c = self.costs
        return {
            "fd_lookup+vfs": c.fd_lookup + c.vfs_dispatch,
            "fd_lookup+seek": c.fd_lookup + c.seek,
            "fd_lookup+fdstat": c.fd_lookup + c.fdstat,
            "close": c.fd_lookup + c.close_file,
            "open": c.open_path,
            "clock": c.clock_read,
            "random": c.random_fixed,
            "poll": c.poll_immediate,
            "env": c.env_fixed,
        }[kind]

    def per_call(self, name: str, avg_bytes: float = 0.0, direct: bool = False) -> float:
        """Seconds for one ``name`` call moving ``avg_bytes`` payload."""
        try:
            fixed_kind, byte_kind = _SERVICE[name]
        except KeyError:
            raise KeyError(f"no cost entry for WASI syscall {name!r}") from None
        seconds = self.entry_seconds + self._fixed(fixed_kind)
        if byte_kind == "copy" and avg_bytes:
            seconds += avg_bytes * self.costs.copy_per_byte
            if direct:
                seconds += avg_bytes * self.costs.direct_per_byte
        elif byte_kind == "random" and avg_bytes:
            seconds += avg_bytes * self.costs.random_per_byte
        return seconds

    def batch(
        self, name: str, calls: int, nbytes: int, direct: bool = False
    ) -> tuple[float, float]:
        """(total seconds, per-call seconds) for a batch of calls."""
        if calls <= 0:
            return 0.0, 0.0
        per = self.per_call(name, nbytes / calls, direct=direct)
        return per * calls, per

    @staticmethod
    def known_syscalls() -> tuple[str, ...]:
        return tuple(_SERVICE)
