"""Memory-layout constants and kernel latency calibration.

Every latency constant used by the simulated kernel is defined here, in
seconds, with a note on its provenance.  Values are representative of a
server-class x86-64 machine with CPU vulnerability mitigations disabled
(the paper boots with ``mitigations=off``, §3.4); the experiments only
depend on their *relative* magnitudes, which are well established:

* syscall entry/exit is a fraction of a microsecond without mitigations;
* delivering a signal to userspace costs roughly a microsecond
  (cf. Xu, "Userfaultfd-wp Latency Measurements", ref. [35] of the
  paper, which measures ~1–2 µs for the SIGBUS userfaultfd path);
* zapping or installing a PTE is tens of nanoseconds per page;
* zero-filling a 4 KiB page runs at memset speed (tens of GB/s);
* a TLB-shootdown IPI costs on the order of a microsecond per target.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base (small) page size on all three platforms.
PAGE_SIZE = 4096

#: WebAssembly linear-memory page size (64 KiB, fixed by the spec).
WASM_PAGE_SIZE = 64 * 1024

#: Size of the virtual-address reservation made for one linear memory.
#: Wasm memory instructions take a 32-bit base plus a 32-bit offset, so
#: the total addressable span is 8 GiB (§2.3) and 64-bit runtimes
#: reserve the whole region up front.
GUARD_REGION_BYTES = 8 << 30


@dataclass(frozen=True)
class KernelCosts:
    """Latency constants for the simulated kernel, in seconds."""

    #: Syscall entry + exit, mitigations off (~100 ns measured on
    #: Skylake-era parts without KPTI; we use a round 250 ns to include
    #: basic argument validation).
    syscall_entry: float = 0.25e-6

    #: Finding a VMA in the rbtree / maple tree: O(log n), folded into a
    #: constant because our processes hold tens of VMAs, not thousands.
    vma_find: float = 0.08e-6

    #: Splitting a VMA during mprotect (allocation + rbtree insert).
    vma_split: float = 0.18e-6

    #: Merging adjacent VMAs with equal protections.
    vma_merge: float = 0.12e-6

    #: Removing a PTE during zap_page_range (per populated page),
    #: including rmap/mmu-notifier bookkeeping — zap throughput on
    #: server parts is on the order of tens of GB/s of address space.
    pte_zap_per_page: float = 120e-9

    #: Installing a PTE on fault (per page).
    pte_set_per_page: float = 25e-9

    #: Zero-filling one 4 KiB page (memset at ~25 GB/s).
    page_zero_per_page: float = 0.16e-6

    #: Hardware fault + kernel fault-path entry (per fault).
    fault_entry: float = 0.45e-6

    #: Delivering SIGSEGV/SIGBUS to a userspace handler and returning
    #: (sigreturn): the dominant cost of the userfaultfd SIGBUS scheme.
    signal_deliver: float = 1.1e-6

    #: One UFFDIO_ZEROPAGE/UFFDIO_COPY ioctl, excluding the page zeroing
    #: itself (entry, fd lookup, mfill bookkeeping).
    uffd_ioctl: float = 0.55e-6

    #: Local TLB flush after changing mappings.
    tlb_local_flush: float = 0.3e-6

    #: Sending one shootdown IPI and waiting for the ack, per target
    #: core (initiator-side cost; the initiator cannot return until
    #: every core acknowledges the flush).
    tlb_ipi_send: float = 1.0e-6

    #: Servicing a shootdown IPI (target-side cost, charged as irq time).
    tlb_ipi_service: float = 0.8e-6

    #: mmap_lock write-side fixed overhead beyond the queueing itself
    #: (rwsem slow path, waiter wakeups under contention).
    mmap_write_overhead: float = 1.0e-6


#: Transparent-huge-page accounting granularity per ISA, in bytes.
#:
#: §4.3 of the paper attributes the higher apparent memory usage of the
#: PolyBench suite on x86-64 to the kernel backing the Wasm reservations
#: with huge pages "of up to 1 GiB" there, versus a 2 MiB limit on the
#: ThunderX2.  We model this as a per-arena round-up granularity for the
#: ``MemAvailable`` calculation: a conservative 64 MiB effective
#: granularity on x86-64 (occasional 1 GiB THP promotion averaged over
#: arenas) and 2 MiB on Armv8 and RISC-V.
THP_GRANULARITY: dict[str, int] = {
    "x86_64": 64 << 20,
    "armv8": 2 << 20,
    "riscv64": 2 << 20,
}
