"""Deterministic file-descriptor table backing the WASI surface.

A :class:`FdTable` is the kernel-side state the WASI preview-1 calls
operate on: a tiny virtual filesystem (a dict of named byte buffers)
plus per-process open-file state.  Everything is deterministic — file
contents are supplied by the workload at construction, reads and
writes are plain buffer arithmetic — so WASI workloads replay
bit-identically across interpreter tiers and their NumPy references
can reproduce every observable byte.

Descriptor layout follows the WASI convention: fds 0/1/2 are the stdio
streams (stdout/stderr capture into buffers the harness can assert
on), fd 3 is the single preopened directory ``/`` that ``path_open``
resolves against, and opened files count up from 4.

Each file is either **buffered** (page-cache hit: reads pay one
copy-out) or **direct** (cache miss: reads also pay the backing-store
fill) — a static property of the file chosen by the workload, consumed
by :class:`repro.oskernel.syscalls.SyscallCostModel` via the
``name@direct`` cost-key suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

# WASI preview-1 errno values (the subset this table can produce).
ERRNO_SUCCESS = 0
ERRNO_BADF = 8
ERRNO_EXIST = 20
ERRNO_INVAL = 28
ERRNO_NOENT = 44
ERRNO_NOTCAPABLE = 76

# WASI filetypes for fd_fdstat_get.
FILETYPE_UNKNOWN = 0
FILETYPE_DIRECTORY = 3
FILETYPE_REGULAR_FILE = 4
FILETYPE_CHARACTER_DEVICE = 2

# WASI whence values for fd_seek.
WHENCE_SET = 0
WHENCE_CUR = 1
WHENCE_END = 2

# WASI oflags for path_open.
OFLAGS_CREAT = 1
OFLAGS_EXCL = 4
OFLAGS_TRUNC = 8

# WASI fdflags.
FDFLAGS_APPEND = 1

#: The single preopened directory descriptor.
PREOPEN_FD = 3


@dataclass
class OpenFile:
    """One open descriptor: identity, cursor, and capabilities."""

    fd: int
    name: str
    data: bytearray
    kind: str = "file"  # "file" | "stream" | "dir"
    pos: int = 0
    readable: bool = True
    writable: bool = False
    append: bool = False
    direct: bool = False

    @property
    def filetype(self) -> int:
        if self.kind == "dir":
            return FILETYPE_DIRECTORY
        if self.kind == "stream":
            return FILETYPE_CHARACTER_DEVICE
        return FILETYPE_REGULAR_FILE


class FdTable:
    """Open-file state plus the virtual filesystem it resolves against.

    ``files`` seeds the filesystem (name → contents); ``direct`` names
    the files whose reads miss the simulated page cache.  Buffers are
    copied in, so a table never aliases caller state and two runs from
    the same inputs are independent.
    """

    def __init__(
        self,
        files: Optional[Dict[str, bytes]] = None,
        stdin: bytes = b"",
        direct: Iterable[str] = (),
    ) -> None:
        self.root: Dict[str, bytearray] = {
            name: bytearray(data) for name, data in (files or {}).items()
        }
        self._direct = frozenset(direct)
        self._open: Dict[int, OpenFile] = {
            0: OpenFile(0, "<stdin>", bytearray(stdin), kind="stream",
                        readable=True, writable=False),
            1: OpenFile(1, "<stdout>", bytearray(), kind="stream",
                        readable=False, writable=True, append=True),
            2: OpenFile(2, "<stderr>", bytearray(), kind="stream",
                        readable=False, writable=True, append=True),
            PREOPEN_FD: OpenFile(PREOPEN_FD, "/", bytearray(), kind="dir",
                                 readable=False, writable=False),
        }
        self._next_fd = PREOPEN_FD + 1

    # ------------------------------------------------------------------
    def lookup(self, fd: int) -> Optional[OpenFile]:
        return self._open.get(fd)

    def output(self, fd: int) -> bytes:
        """Captured bytes of a stdio stream (assertable by tests)."""
        return bytes(self._open[fd].data)

    def open_fds(self) -> Tuple[int, ...]:
        return tuple(sorted(self._open))

    # ------------------------------------------------------------------
    def open_path(
        self, dirfd: int, path: str, oflags: int = 0, fdflags: int = 0,
        write: bool = False,
    ) -> Tuple[int, int]:
        """path_open against the preopen; returns (errno, new fd)."""
        base = self._open.get(dirfd)
        if base is None:
            return ERRNO_BADF, 0
        if base.kind != "dir":
            return ERRNO_NOTCAPABLE, 0
        name = path.lstrip("/")
        if not name:
            return ERRNO_INVAL, 0
        existing = self.root.get(name)
        if existing is None:
            if not oflags & OFLAGS_CREAT:
                return ERRNO_NOENT, 0
            existing = self.root[name] = bytearray()
        elif oflags & OFLAGS_CREAT and oflags & OFLAGS_EXCL:
            return ERRNO_EXIST, 0
        elif oflags & OFLAGS_TRUNC:
            if not write:
                return ERRNO_INVAL, 0
            del existing[:]
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = OpenFile(
            fd, name, existing,
            readable=True, writable=write,
            append=bool(fdflags & FDFLAGS_APPEND),
            direct=name in self._direct,
        )
        return ERRNO_SUCCESS, fd

    def read(self, fd: int, length: int) -> Tuple[int, bytes]:
        file = self._open.get(fd)
        if file is None:
            return ERRNO_BADF, b""
        if not file.readable:
            return ERRNO_NOTCAPABLE, b""
        if length < 0:
            return ERRNO_INVAL, b""
        chunk = bytes(file.data[file.pos:file.pos + length])
        file.pos += len(chunk)
        return ERRNO_SUCCESS, chunk

    def write(self, fd: int, data: bytes) -> Tuple[int, int]:
        file = self._open.get(fd)
        if file is None:
            return ERRNO_BADF, 0
        if not file.writable:
            return ERRNO_NOTCAPABLE, 0
        if file.append:
            file.data.extend(data)
            file.pos = len(file.data)
        else:
            end = file.pos + len(data)
            if end > len(file.data):
                file.data.extend(b"\x00" * (end - len(file.data)))
            file.data[file.pos:end] = data
            file.pos = end
        return ERRNO_SUCCESS, len(data)

    def seek(self, fd: int, offset: int, whence: int) -> Tuple[int, int]:
        file = self._open.get(fd)
        if file is None:
            return ERRNO_BADF, 0
        if file.kind == "stream":
            return ERRNO_NOTCAPABLE, 0
        if whence == WHENCE_SET:
            pos = offset
        elif whence == WHENCE_CUR:
            pos = file.pos + offset
        elif whence == WHENCE_END:
            pos = len(file.data) + offset
        else:
            return ERRNO_INVAL, 0
        if pos < 0:
            return ERRNO_INVAL, 0
        file.pos = pos
        return ERRNO_SUCCESS, pos

    def close(self, fd: int) -> int:
        file = self._open.get(fd)
        if file is None:
            return ERRNO_BADF
        if fd <= PREOPEN_FD:
            # Closing stdio/the preopen would strand later calls; the
            # real wasi-libc never does it and neither may workloads.
            return ERRNO_NOTCAPABLE
        del self._open[fd]
        return ERRNO_SUCCESS

    def fdstat(self, fd: int) -> Tuple[int, Tuple[int, int]]:
        """Returns (errno, (filetype, fdflags))."""
        file = self._open.get(fd)
        if file is None:
            return ERRNO_BADF, (FILETYPE_UNKNOWN, 0)
        flags = FDFLAGS_APPEND if file.append else 0
        return ERRNO_SUCCESS, (file.filetype, flags)

    def file_bytes(self, name: str) -> bytes:
        """Current contents of a virtual file (for test assertions)."""
        return bytes(self.root[name])

    def is_direct(self, fd: int) -> bool:
        file = self._open.get(fd)
        return bool(file and file.direct)
