"""``/proc/stat``-style CPU accounting and the paper's utilisation metric.

The paper (§4.2.1) defines CPU utilisation as

    (us + sys + hi + si) / (us + sys + hi + si + id)

averaged across CPUs, then rescaled so 100 % means one fully busy core
(1600 % = all 16 cores busy).  :class:`ProcStat` snapshots the per-core
accounting buckets of the machine model and computes exactly that
quantity over a measurement window, along with the context-switch rate
used for Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine


@dataclass(frozen=True)
class StatSnapshot:
    """Cumulative counters at one instant."""

    time: float
    user: float
    sys: float
    irq: float
    softirq: float
    context_switches: int

    @property
    def busy(self) -> float:
        return self.user + self.sys + self.irq + self.softirq


@dataclass(frozen=True)
class UtilisationSample:
    """Derived metrics over a window between two snapshots."""

    elapsed: float
    busy_time: float
    utilisation_percent: float
    user_percent: float
    sys_percent: float
    irq_percent: float
    context_switches_per_sec: float


def window_sample(start: StatSnapshot, end: StatSnapshot) -> UtilisationSample:
    """Derive the paper's utilisation metrics between two snapshots.

    Module-level so the trace summarizer can reuse the *identical*
    arithmetic when it rebuilds snapshots from ``cpu.acct`` events:
    reconciliation then compares bit-equal floats, not approximations.
    """
    elapsed = end.time - start.time
    if elapsed <= 0:
        raise ValueError("measurement window must have positive duration")
    busy = end.busy - start.busy
    # 100 % == one core fully busy for the whole window (paper's
    # rescaled Equation 1).
    scale = 100.0 / elapsed
    return UtilisationSample(
        elapsed=elapsed,
        busy_time=busy,
        utilisation_percent=busy * scale,
        user_percent=(end.user - start.user) * scale,
        sys_percent=(end.sys - start.sys) * scale,
        irq_percent=(end.irq - start.irq) * scale,
        context_switches_per_sec=(end.context_switches - start.context_switches)
        / elapsed,
    )


class ProcStat:
    """Samples machine accounting the way the harness reads /proc/stat."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def snapshot(self) -> StatSnapshot:
        user = sys = irq = softirq = 0.0
        for core in self.machine.cores:
            user += core.acct.user
            sys += core.acct.sys
            irq += core.acct.irq
            softirq += core.acct.softirq
        return StatSnapshot(
            time=self.machine.engine.now,
            user=user,
            sys=sys,
            irq=irq,
            softirq=softirq,
            context_switches=self.machine.context_switches,
        )

    def window(self, start: StatSnapshot, end: StatSnapshot) -> UtilisationSample:
        return window_sample(start, end)
